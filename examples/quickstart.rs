//! Quickstart: two scheduled queries with different latency goals,
//! end-to-end.
//!
//! ```text
//! cargo run --release --example quickstart [-- --threads N]
//!     [--trace-out trace.json] [--metrics-out metrics.json]
//! ```
//!
//! Builds a tiny catalog, registers two queries over the same stream — a
//! broad daily report that can wait (relative constraint 1.0) and a narrow
//! alert that cannot (0.1) — lets iShare plan them, and executes the plan
//! against simulated arrivals, comparing against Share-Uniform. With
//! `--threads N > 1` the run uses the multi-threaded driver, whose work
//! numbers are bit-identical to the sequential one. `--trace-out` /
//! `--metrics-out` enable observability on the iShare run and write its
//! Chrome `trace_event` JSON (open in `chrome://tracing` or Perfetto) and
//! per-operator work/metrics snapshot; a `--metrics-out` path ending in
//! `.prom` writes the Prometheus text exposition instead of JSON.

use ishare::core::{plan_workload, Approach, FinalWorkConstraint, PlanningOptions};
use ishare::plan::PlanBuilder;
use ishare::stream::{execute_planned_obs, execute_planned_parallel_obs, ObsConfig};
use ishare_common::{CostWeights, DataType, QueryId, Value};
use ishare_expr::Expr;
use ishare_storage::{Catalog, Field, Row, Schema, TableStats};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn write_json(path: &PathBuf, value: &serde_json::Value) -> ishare::Result<()> {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let text = serde_json::to_string_pretty(value)
        .map_err(|e| ishare_common::Error::InvalidConfig(format!("serialize {path:?}: {e}")))?;
    std::fs::write(path, text)
        .map_err(|e| ishare_common::Error::InvalidConfig(format!("write {path:?}: {e}")))?;
    println!("[saved {}]", path.display());
    Ok(())
}

fn main() -> ishare::Result<()> {
    // 0. Worker threads (1 = sequential reference driver) and optional
    //    observability artifact paths.
    let args: Vec<String> = std::env::args().collect();
    let flag =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let threads = flag("--threads").and_then(|v| v.parse::<usize>().ok()).unwrap_or(1);
    let trace_out = flag("--trace-out").map(PathBuf::from);
    let metrics_out = flag("--metrics-out").map(PathBuf::from);
    let want_obs = trace_out.is_some() || metrics_out.is_some();

    // 1. A catalog with one streamed relation: orders(customer, amount).
    let mut catalog = Catalog::new();
    let n_rows = 20_000usize;
    let orders = catalog.add_table(
        "orders",
        Schema::new(vec![
            Field::new("customer", DataType::Int),
            Field::new("amount", DataType::Int),
        ]),
        TableStats {
            row_count: n_rows as f64,
            columns: vec![
                ishare_storage::ColumnStats::ndv(500.0),
                ishare_storage::ColumnStats::with_range(1000.0, Value::Int(0), Value::Int(999)),
            ],
        },
    )?;

    // 2. Two structurally identical queries with different predicates:
    //    a broad report and a narrow alert.
    let report = PlanBuilder::scan(&catalog, "orders")?
        .aggregate(&["customer"], |x| Ok(vec![x.sum("amount", "total")?]))?
        .build();
    let alert = PlanBuilder::scan(&catalog, "orders")?
        .select(|x| Ok(x.col("amount")?.gt(Expr::lit(950i64))))?
        .aggregate(&["customer"], |x| Ok(vec![x.sum("amount", "total")?]))?
        .build();
    let queries = vec![(QueryId(0), report), (QueryId(1), alert)];

    // 3. Latency goals: the report tolerates batch latency, the alert wants
    //    a 10× lower final work.
    let mut constraints = BTreeMap::new();
    constraints.insert(QueryId(0), FinalWorkConstraint::Relative(1.0));
    constraints.insert(QueryId(1), FinalWorkConstraint::Relative(0.1));

    // 4. Simulated arrivals: one trigger condition's worth of rows.
    let rows: Vec<Row> = (0..n_rows)
        .map(|i| Row::new(vec![Value::Int((i % 500) as i64), Value::Int(((i * 37) % 1000) as i64)]))
        .collect();
    let data = [(orders, rows)].into_iter().collect();

    // 5. Plan and execute under iShare and Share-Uniform.
    let opts = PlanningOptions { max_pace: 50, ..Default::default() };
    println!("worker threads: {threads}");
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>10}",
        "approach", "total work", "report final", "alert final", "elapsed"
    );
    for approach in [Approach::ShareUniform, Approach::IShare] {
        // Observability is opt-in and passive: enabling it on the iShare run
        // leaves every measured work number bit-identical.
        let obs = (want_obs && approach == Approach::IShare).then(ObsConfig::default);
        let planned = plan_workload(approach, &queries, &constraints, &catalog, &opts)?;
        let mut run = if threads == 1 {
            execute_planned_obs(
                &planned.plan,
                planned.paces.as_slice(),
                &catalog,
                &data,
                CostWeights::default(),
                obs,
            )?
        } else {
            execute_planned_parallel_obs(
                &planned.plan,
                planned.paces.as_slice(),
                &catalog,
                &data,
                CostWeights::default(),
                threads,
                obs,
            )?
        };
        println!(
            "{:<16} {:>14.0} {:>14.0} {:>14.0} {:>9.3}s   (paces {})",
            approach.label(),
            run.total_work.get(),
            run.final_work[&QueryId(0)],
            run.final_work[&QueryId(1)],
            run.elapsed.as_secs_f64(),
            planned.paces
        );
        if let Some(report) = run.obs.take() {
            if let Some(path) = &trace_out {
                write_json(path, &report.chrome_trace())?;
            }
            if let Some(path) = &metrics_out {
                if path.extension().and_then(|e| e.to_str()) == Some("prom") {
                    if let Some(parent) = path.parent() {
                        let _ = std::fs::create_dir_all(parent);
                    }
                    std::fs::write(path, report.prometheus()).map_err(|e| {
                        ishare_common::Error::InvalidConfig(format!("write {path:?}: {e}"))
                    })?;
                    println!("[saved {}]", path.display());
                } else {
                    write_json(path, &report.metrics_json())?;
                }
            }
        }
    }
    println!(
        "\niShare runs the shared scan+aggregate eagerly only where the alert \
         needs it and leaves the report's private work lazy — same results, \
         less total work than pushing the whole shared plan to the alert's pace."
    );
    Ok(())
}
