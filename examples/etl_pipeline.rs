//! Scheduled-ETL scenario: one widely shared extraction feeding several
//! downstream rollups, with a constraint sweep showing the
//! resource/latency trade-off (the paper's Fig. 1 in runnable form).
//!
//! ```text
//! cargo run --release --example etl_pipeline
//! ```
//!
//! Sweeping the relative final work constraint from 1.0 (pure batch) to
//! 0.05 shows total work rising as latency falls — and how much of that
//! rise iShare avoids relative to a single-pace shared plan.

use ishare::core::{plan_workload, Approach, FinalWorkConstraint, PlanningOptions};
use ishare::stream::execute_planned;
use ishare::tpch::{generate, query_by_name};
use ishare_common::{CostWeights, QueryId};
use std::collections::BTreeMap;

fn main() -> ishare::Result<()> {
    let data = generate(0.003, 11)?;

    // An ETL fan-out: three rollups sharing the lineitem extraction. These
    // aggregates have few groups relative to their input (q1 keeps six
    // groups over all of lineitem), so eager maintenance re-emits
    // constantly — low incrementability, a steep trade-off curve.
    let names = ["q1", "q6", "qa"];
    let queries: Vec<(QueryId, ishare::plan::LogicalPlan)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| Ok((QueryId(i as u16), query_by_name(&data.catalog, n)?.plan)))
        .collect::<ishare::Result<_>>()?;

    println!("{:<10} {:>18} {:>18} {:>9}", "rel", "Share-Uniform work", "iShare work", "saving");
    for frac in [1.0, 0.5, 0.2, 0.1, 0.05] {
        let constraints: BTreeMap<QueryId, FinalWorkConstraint> = (0..names.len())
            .map(|i| (QueryId(i as u16), FinalWorkConstraint::Relative(frac)))
            .collect();
        let opts = PlanningOptions { max_pace: 60, ..Default::default() };
        let mut totals = Vec::new();
        for approach in [Approach::ShareUniform, Approach::IShare] {
            let planned = plan_workload(approach, &queries, &constraints, &data.catalog, &opts)?;
            let run = execute_planned(
                &planned.plan,
                planned.paces.as_slice(),
                &data.catalog,
                &data.data,
                CostWeights::default(),
            )?;
            totals.push(run.total_work.get());
        }
        println!(
            "{:<10} {:>18.0} {:>18.0} {:>8.1}%",
            frac,
            totals[0],
            totals[1],
            100.0 * (1.0 - totals[1] / totals[0])
        );
    }
    println!(
        "\nLower constraints force eager incremental maintenance; the shared \
         single-pace plan pays it everywhere, iShare only where a deadline \
         demands it."
    );
    Ok(())
}
