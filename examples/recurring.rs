//! Recurring triggers with statistics calibration.
//!
//! ```text
//! cargo run --release --example recurring
//! ```
//!
//! Scheduled queries run every day. On day one the optimizer only has naive
//! priors; after the trigger, [`ishare::tpch::calibrate`] rebuilds the
//! catalog's statistics from the observed rows ("we can calibrate the
//! cardinality estimation based on previous query executions", paper
//! Sec. 3.2), so day two's pace search works from measured reality. The
//! example compares the estimator's accuracy (estimated vs measured total
//! work) before and after calibration.

use ishare::core::{plan_workload, Approach, FinalWorkConstraint, PlanningOptions};
use ishare::stream::execute_planned;
use ishare::tpch::{calibrate, generate, query_by_name};
use ishare_common::{CostWeights, QueryId};
use ishare_storage::{Catalog, TableStats};
use std::collections::BTreeMap;

fn plan_and_run(
    catalog: &Catalog,
    day: &ishare::tpch::TpchData,
    queries: &[(QueryId, ishare::plan::LogicalPlan)],
) -> ishare::Result<(f64, f64)> {
    let cons: BTreeMap<QueryId, FinalWorkConstraint> = (0..queries.len())
        .map(|i| (QueryId(i as u16), FinalWorkConstraint::Relative(0.2)))
        .collect();
    let opts = PlanningOptions { max_pace: 40, ..Default::default() };
    let planned = plan_workload(Approach::IShare, queries, &cons, catalog, &opts)?;
    let run = execute_planned(
        &planned.plan,
        planned.paces.as_slice(),
        catalog,
        &day.data,
        CostWeights::default(),
    )?;
    Ok((planned.report.total_work.get(), run.total_work.get()))
}

fn main() -> ishare::Result<()> {
    // Two consecutive trigger windows of the same stream (different seeds,
    // same shape).
    let day1 = generate(0.003, 101)?;
    let day2 = generate(0.003, 102)?;

    let queries: Vec<(QueryId, ishare::plan::LogicalPlan)> = ["q3", "q6", "qa"]
        .iter()
        .enumerate()
        .map(|(i, n)| Ok((QueryId(i as u16), query_by_name(&day1.catalog, n)?.plan)))
        .collect::<ishare::Result<_>>()?;

    // A stale catalog: same schemas, naive priors (every column a key of a
    // 1000-row table).
    let mut stale = Catalog::new();
    for def in day1.catalog.tables() {
        stale.add_table(
            def.name.clone(),
            def.schema.clone(),
            TableStats::unknown(1000.0, def.schema.arity()),
        )?;
    }

    println!("day 1, stale priors:");
    let (est, meas) = plan_and_run(&stale, &day1, &queries)?;
    println!(
        "  estimated {est:.0} vs measured {meas:.0}  (error {:+.1}%)",
        100.0 * (est - meas) / meas
    );

    // Calibrate from day 1's observed rows and re-plan day 2.
    let calibrated = calibrate(&stale, &day1.data)?;
    println!("day 2, calibrated from day 1:");
    let (est, meas) = plan_and_run(&calibrated, &day2, &queries)?;
    println!(
        "  estimated {est:.0} vs measured {meas:.0}  (error {:+.1}%)",
        100.0 * (est - meas) / meas
    );
    println!(
        "\nCalibration pulls the cost model toward the measured workload, so the\n\
         greedy pace search stops over- or under-shooting the latency goals."
    );
    Ok(())
}
