//! Pace explorer: inspect how the optimizer sees a workload — the shared
//! plan's subplans, per-subplan paces, estimated vs measured work, and the
//! incrementability surface the greedy search walks.
//!
//! ```text
//! cargo run --release --example pace_explorer [-- <query> <query> ...]
//! ```
//!
//! Defaults to the paper's Fig. 2 pair (qa, qb).

use ishare::core::{
    find_pace_configuration, resolve_constraints, FinalWorkConstraint, PaceConfiguration,
};
use ishare::cost::PlanEstimator;
use ishare::mqo::{build_shared_dag, normalize, MqoConfig};
use ishare::plan::SharedPlan;
use ishare::stream::execute_planned;
use ishare::tpch::{generate, query_by_name};
use ishare_common::{CostWeights, QueryId};
use std::collections::BTreeMap;

fn main() -> ishare::Result<()> {
    let names: Vec<String> = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.is_empty() {
            vec!["qa".into(), "qb".into()]
        } else {
            args
        }
    };
    let data = generate(0.003, 5)?;
    let queries: Vec<(QueryId, ishare::plan::LogicalPlan)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| Ok((QueryId(i as u16), normalize(&query_by_name(&data.catalog, n)?.plan))))
        .collect::<ishare::Result<_>>()?;

    // Build the shared plan and show its structure.
    let dag = build_shared_dag(&queries, &data.catalog, &MqoConfig::default())?;
    let plan = SharedPlan::from_dag(&dag, |_| false)?;
    println!("shared plan ({} subplans):\n{plan}", plan.len());

    // Resolve 0.2-relative constraints and walk the greedy search.
    let constraints: BTreeMap<QueryId, FinalWorkConstraint> =
        (0..names.len()).map(|i| (QueryId(i as u16), FinalWorkConstraint::Relative(0.2))).collect();
    let resolved =
        resolve_constraints(&queries, &constraints, &data.catalog, CostWeights::default())?;
    let mut est = PlanEstimator::new(&plan, &data.catalog, CostWeights::default())?;
    println!("resolved constraints (work units):");
    for (q, l) in &resolved {
        println!("  {} [{}]: {:.0}", q, names[q.0 as usize], l);
    }

    let outcome = find_pace_configuration(&mut est, &resolved, 50)?;
    println!(
        "\ngreedy search: {} steps, feasible={}, paces {}",
        outcome.steps, outcome.feasible, outcome.paces
    );
    println!(
        "estimator: {} simulations, {} memo hits",
        est.counters.simulations, est.counters.memo_hits
    );

    // Estimated vs measured per subplan.
    let run = execute_planned(
        &plan,
        outcome.paces.as_slice(),
        &data.catalog,
        &data.data,
        CostWeights::default(),
    )?;
    println!(
        "\nestimated total {:.0} vs measured total {:.0}",
        outcome.report.total_work.get(),
        run.total_work.get()
    );
    for sp in &plan.subplans {
        println!(
            "  {}: pace {:>3}, est private total {:>12.0}",
            sp.id,
            outcome.paces.pace(sp.id),
            outcome.report.subplan_total[sp.id.index()],
        );
    }

    // The incrementability surface around batch execution.
    println!("\nincrementability of the first eagerness step per subplan:");
    let base = PaceConfiguration::batch(plan.len());
    let base_report = est.estimate(base.as_slice())?;
    for sp in &plan.subplans {
        let cand = base.with_pace(sp.id, 2);
        if cand.respects_plan(&plan).is_err() {
            println!("  {}: blocked (parent pace would exceed child)", sp.id);
            continue;
        }
        let cand_report = est.estimate(cand.as_slice())?;
        let inc = ishare::core::incrementability(&cand_report, &base_report, &resolved);
        println!("  {}: InC = {inc:.4}", sp.id);
    }
    Ok(())
}
