//! Streaming quickstart: pull-based ingest, kill, and exact resume.
//!
//! ```text
//! cargo run --release --example streaming -- --out run.json
//! cargo run --release --example streaming -- --kill-after 2 --out resumed.json
//! cargo run -p ishare-bench --bin validate_replay -- run.json resumed.json
//! ```
//!
//! Generates a small TPC-H instance, turns its update stream into an ingest
//! [`Source`] (partitioned bounded topics with jittered, watermarked
//! arrivals — the repo's in-process Kafka substitute), plans the paper's
//! Fig. 2 queries Q_A/Q_B under iShare, and executes by *pulling* watermark
//! cuts from the source instead of reading pre-materialized feeds.
//!
//! With `--kill-after K` the run is stopped after `K` committed wavefronts
//! (simulating a crash), then resumed: the source is rebuilt from the same
//! seed and replayed from offset zero, each wavefront's commit verified
//! against the killed run's commit log. The resumed run must be
//! bit-identical to an uninterrupted one — the summary JSON records every
//! work number as exact f64 bits so `validate_replay` can diff two runs
//! with zero tolerance. `--mode vec` runs the classic `Vec`-fed driver on
//! the same workload; its summary must also match ingest-mode runs exactly.
//!
//! Options: `--mode ingest|vec`, `--threads N`, `--sf F`, `--seed N`,
//! `--jitter N`, `--update-frac F`, `--kill-after K` (0 = none, ingest
//! only), `--out <path>`.

use ishare::core::{plan_workload, Approach, FinalWorkConstraint, PlanningOptions};
use ishare::stream::{
    execute_from_source_obs, execute_from_source_parallel_obs, execute_planned_deltas,
    execute_planned_deltas_parallel, RunResult, SourceOptions, SourceOutcome,
};
use ishare::tpch::{generate, produce_source, query_by_name, with_updates, StreamConfig};
use ishare_common::{CostWeights, Error, QueryId, Result};
use ishare_ingest::SourceConfig;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn main() -> Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let flag =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let mode = flag("--mode").unwrap_or_else(|| "ingest".into());
    let threads = flag("--threads").and_then(|v| v.parse::<usize>().ok()).unwrap_or(1);
    let sf = flag("--sf").and_then(|v| v.parse::<f64>().ok()).unwrap_or(0.002);
    let seed = flag("--seed").and_then(|v| v.parse::<u64>().ok()).unwrap_or(42);
    let jitter = flag("--jitter").and_then(|v| v.parse::<u64>().ok()).unwrap_or(13);
    let update_frac = flag("--update-frac").and_then(|v| v.parse::<f64>().ok()).unwrap_or(0.1);
    let kill_after = flag("--kill-after").and_then(|v| v.parse::<usize>().ok()).unwrap_or(0);
    let out = flag("--out").map(PathBuf::from);

    // 1. Workload: a tiny TPC-H instance and the paper's Fig. 2 pair — the
    //    broad Q_A (relative constraint 1.0) and the urgent Q_B (0.1).
    let data = generate(sf, seed)?;
    let qa = query_by_name(&data.catalog, "qa")?;
    let qb = query_by_name(&data.catalog, "qb")?;
    let queries = vec![(QueryId(0), qa.plan), (QueryId(1), qb.plan)];
    let mut constraints = BTreeMap::new();
    constraints.insert(QueryId(0), FinalWorkConstraint::Relative(1.0));
    constraints.insert(QueryId(1), FinalWorkConstraint::Relative(0.1));
    let opts = PlanningOptions { max_pace: 20, ..Default::default() };
    let planned = plan_workload(Approach::IShare, &queries, &constraints, &data.catalog, &opts)?;

    // 2. Arrival model: `update_frac` of fact arrivals are delete+insert
    //    updates; topics are partitioned with a bounded ring (so the
    //    producer genuinely stalls) and jittered arrival order.
    let cfg = StreamConfig {
        update_frac,
        source: SourceConfig { partitions: 2, capacity: 256, jitter, seed },
    };
    let weights = CostWeights::default();
    println!("mode {mode}, {threads} thread(s), sf {sf}, seed {seed}, jitter {jitter}");

    let (run, committed) = match mode.as_str() {
        "vec" => {
            // The classic pre-materialized path, as a cross-check target.
            let feeds = with_updates(&data, update_frac, seed)?;
            let run = if threads == 1 {
                execute_planned_deltas(
                    &planned.plan,
                    planned.paces.as_slice(),
                    &data.catalog,
                    &feeds,
                    weights,
                )?
            } else {
                execute_planned_deltas_parallel(
                    &planned.plan,
                    planned.paces.as_slice(),
                    &data.catalog,
                    &feeds,
                    weights,
                    threads,
                )?
            };
            (run, 0usize)
        }
        "ingest" => {
            let run_once = |source: &mut _, sopts: SourceOptions| -> Result<SourceOutcome> {
                if threads == 1 {
                    execute_from_source_obs(
                        &planned.plan,
                        planned.paces.as_slice(),
                        &data.catalog,
                        source,
                        weights,
                        sopts,
                    )
                } else {
                    execute_from_source_parallel_obs(
                        &planned.plan,
                        planned.paces.as_slice(),
                        &data.catalog,
                        source,
                        weights,
                        threads,
                        sopts,
                    )
                }
            };
            let mut source = produce_source(&data, cfg)?;
            let verify = if kill_after > 0 {
                // Kill: stop after `kill_after` committed wavefronts …
                let SourceOutcome::Suspended { log } = run_once(
                    &mut source,
                    SourceOptions { stop_after: Some(kill_after), ..Default::default() },
                )?
                else {
                    return Err(Error::InvalidConfig(format!(
                        "--kill-after {kill_after} exceeds the schedule's wavefront count"
                    )));
                };
                println!(
                    "killed after wavefront {} (commit log: {} entries)",
                    kill_after,
                    log.len()
                );
                // … resume: rebuild the source from the same seed and replay
                // from offset zero, verifying every commit against the log.
                source = produce_source(&data, cfg)?;
                Some(log)
            } else {
                None
            };
            match run_once(&mut source, SourceOptions { verify, ..Default::default() })? {
                SourceOutcome::Completed { result, log } => (*result, log.len()),
                SourceOutcome::Suspended { .. } => unreachable!("no stop requested"),
            }
        }
        other => {
            return Err(Error::InvalidConfig(format!("--mode must be ingest or vec, got {other}")))
        }
    };

    println!(
        "total work {:.0} ({} executions, {} wavefronts committed), \
         Q_A final {:.0}, Q_B final {:.0}",
        run.total_work.get(),
        run.executions,
        committed,
        run.final_work[&QueryId(0)],
        run.final_work[&QueryId(1)],
    );
    if let Some(path) = &out {
        let summary = summarize(&run, &mode, threads, kill_after);
        let text = serde_json::to_string_pretty(&summary)
            .map_err(|e| Error::InvalidConfig(format!("serialize summary: {e}")))?;
        std::fs::write(path, text)
            .map_err(|e| Error::InvalidConfig(format!("write {path:?}: {e}")))?;
        println!("[saved {}]", path.display());
    }
    Ok(())
}

/// Run summary with every work number as exact f64 bits (hex), so two runs
/// can be diffed with zero tolerance by `validate_replay`.
fn summarize(run: &RunResult, mode: &str, threads: usize, kill_after: usize) -> serde_json::Value {
    let final_work: Vec<(String, serde_json::Value)> = run
        .final_work
        .iter()
        .map(|(q, w)| (format!("q{}", q.0), format!("{:016x}", w.to_bits()).into()))
        .collect();
    serde_json::json!({
        "mode": mode,
        "threads": threads as u64,
        "kill_after": kill_after as u64,
        "executions": run.executions as u64,
        "total_work": run.total_work.get(),
        "total_work_bits": format!("{:016x}", run.total_work.get().to_bits()),
        "final_work_bits": serde_json::Value::Object(final_work),
        "result_checksum": format!("{:016x}", result_checksum(run)),
    })
}

/// Order-independent FNV-1a digest of every query's final result multiset.
fn result_checksum(run: &RunResult) -> u64 {
    let mut lines: Vec<String> = Vec::new();
    for (q, result) in &run.results {
        for (row, w) in result {
            lines.push(format!("q{}|{row:?}|{w}", q.0));
        }
    }
    lines.sort_unstable();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for line in &lines {
        for b in line.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash ^= 0x0a;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}
