//! Recurring-dashboard scenario (the paper's introduction): several daily
//! reports over the same TPC-H stream, due at different times.
//!
//! ```text
//! cargo run --release --example dashboard
//! ```
//!
//! The 6am data load feeds four dashboards: two due right away (tight
//! constraints) and two due mid-morning (loose constraints). The example
//! compares all four planning approaches on measured work and per-dashboard
//! final work, showing iShare meeting every deadline at the lowest cost.

use ishare::core::{plan_workload, Approach, FinalWorkConstraint, PlanningOptions};
use ishare::stream::execute_planned;
use ishare::tpch::{generate, query_by_name};
use ishare_common::{CostWeights, QueryId};
use std::collections::BTreeMap;

fn main() -> ishare::Result<()> {
    let data = generate(0.003, 7)?;

    // Four dashboards over the shared TPC-H stream. q3 and q5 share scans
    // and joins of customer/orders/lineitem; q1 and q6 share the lineitem
    // scan.
    let dashboards = [
        ("revenue by nation (due 10am)", "q5", 1.0),
        ("shipping priorities (due 7am)", "q3", 0.2),
        ("pricing summary (due 10am)", "q1", 1.0),
        ("promo forecast (due 7am)", "q6", 0.2),
    ];
    let queries: Vec<(QueryId, ishare::plan::LogicalPlan)> = dashboards
        .iter()
        .enumerate()
        .map(|(i, (_, name, _))| Ok((QueryId(i as u16), query_by_name(&data.catalog, name)?.plan)))
        .collect::<ishare::Result<_>>()?;
    let constraints: BTreeMap<QueryId, FinalWorkConstraint> = dashboards
        .iter()
        .enumerate()
        .map(|(i, (_, _, frac))| (QueryId(i as u16), FinalWorkConstraint::Relative(*frac)))
        .collect();

    let opts = PlanningOptions { max_pace: 50, ..Default::default() };
    for approach in [
        Approach::NoShareUniform,
        Approach::NoShareNonuniform,
        Approach::ShareUniform,
        Approach::IShare,
    ] {
        let planned = plan_workload(approach, &queries, &constraints, &data.catalog, &opts)?;
        let run = execute_planned(
            &planned.plan,
            planned.paces.as_slice(),
            &data.catalog,
            &data.data,
            CostWeights::default(),
        )?;
        println!(
            "\n{} — total work {:.0}, wall {:?}, {} subplans, paces {}",
            approach.label(),
            run.total_work.get(),
            run.total_wall,
            planned.plan.len(),
            planned.paces,
        );
        for (i, (label, name, frac)) in dashboards.iter().enumerate() {
            let q = QueryId(i as u16);
            println!(
                "  {label:<32} [{name}, rel {frac}] final work {:>10.0}  ({} result rows)",
                run.final_work[&q],
                run.results[&q].len()
            );
        }
    }
    Ok(())
}
