//! Recurring-dashboard scenario (the paper's introduction): several daily
//! reports over the same TPC-H stream, due at different times — plus the
//! live observability view of the winning plan.
//!
//! ```text
//! cargo run --release --example dashboard
//! ```
//!
//! The 6am data load feeds four dashboards: two due right away (tight
//! constraints) and two due mid-morning (loose constraints). The example
//! compares all four planning approaches on measured work and per-dashboard
//! final work, then renders the iShare run's [`ObsReport`]: the
//! per-operator work breakdown, per-subplan execution counts, delta-buffer
//! high-water and ingest gauges from the metrics registry, the
//! partition-skew gauges of the hash-partitioned operator state, the
//! per-dashboard slack ledger (budget vs consumed final work at every
//! wavefront, met/missed), and per-dashboard missed-latency statistics
//! against the resolved goals.
//!
//! [`ObsReport`]: ishare::stream::ObsReport

use ishare::core::{
    plan_workload, resolve_constraints, Approach, FinalWorkConstraint, PlanningOptions,
};
use ishare::stream::{
    execute_churn_from_source, execute_from_source_obs, execute_planned_obs, missed_latency_stats,
    ChurnEvent, ChurnKind, ChurnOp, ChurnOptions, ChurnScript, ObsConfig, ObsReport, Source,
    SourceConfig, SourceOptions,
};
use ishare::tpch::{generate, query_by_name};
use ishare_common::{CostWeights, OpKind, QueryId};
use std::collections::BTreeMap;

fn bar(value: f64, max: f64) -> String {
    const WIDTH: f64 = 40.0;
    let n = if max > 0.0 { (WIDTH * value / max).round() as usize } else { 0 };
    "#".repeat(n)
}

fn render_report(
    report: &ObsReport,
    goals: &BTreeMap<QueryId, f64>,
    final_work: &BTreeMap<QueryId, f64>,
    dashboards: &[(&str, &str, f64)],
) {
    println!("\n== iShare observability report ==");

    let breakdown = report.breakdown();
    let max = OpKind::ALL.iter().map(|&k| breakdown.get(k)).fold(0.0, f64::max);
    println!(
        "\nwork by operator (total {:.0}, breakdown {:.0}):",
        report.total_work,
        breakdown.sum()
    );
    for kind in OpKind::ALL {
        let w = breakdown.get(kind);
        if w != 0.0 {
            println!("  {:<14} {:>12.0}  {}", kind.label(), w, bar(w, max));
        }
    }

    println!("\nexecutions per subplan (incremental + final):");
    for (i, e) in report.executions_by_subplan.iter().enumerate() {
        println!(
            "  sp{i:<3} {:>4} incremental + {} final  (work {:.0})",
            e.incremental,
            e.finals,
            report.work_by_subplan[i].sum()
        );
    }

    println!("\ndelta-buffer high-water gauges (resident rows at peak):");
    for (name, value) in report.metrics.gauges() {
        if name.ends_with(".high_water") && value > 0.0 && !name.starts_with("ingest.") {
            println!("  {name:<28} {value:>8.0}");
        }
    }

    println!("\ningest gauges (per-topic delivery, backpressure stalls, lag):");
    for (name, value) in report.metrics.gauges() {
        if name.starts_with("ingest.") {
            println!("  {name:<28} {value:>8.0}");
        }
    }

    println!("\npartition skew (max/mean per-partition work, 1.0 = balanced):");
    for (name, value) in report.metrics.gauges() {
        if name.starts_with("partition.sp") && name.ends_with(".skew") {
            println!("  {name:<28} {value:>8.2}");
        }
    }

    if let Some(ledger) = &report.slack {
        println!("\nslack ledger (budget L(q) vs final work consumed, per dashboard):");
        let max = ledger.queries().map(|(_, s)| s.budget.max(s.consumed())).fold(0.0, f64::max);
        for (q, slot) in ledger.queries() {
            let (label, _, _) = dashboards[q.index()];
            println!(
                "  {label:<32} budget {:>9.0}  consumed {:>9.0}  slack {:>9.0}  {}",
                slot.budget,
                slot.consumed(),
                slot.remaining(),
                if slot.met() {
                    "met".to_string()
                } else {
                    format!("MISS (over by {:.0})", slot.overrun())
                },
            );
            println!("    consumed {}", bar(slot.consumed(), max));
            println!("    budget   {}", bar(slot.budget, max));
        }
        println!(
            "  {} of {} deadlines met over {} wavefronts",
            ledger.queries().count() - ledger.misses(),
            ledger.queries().count(),
            ledger.fronts(),
        );
    }

    println!("\nmissed latency per dashboard (goal = rel × batch final work):");
    for (i, (label, name, _)) in dashboards.iter().enumerate() {
        let q = QueryId(i as u16);
        let (goal, tested) = (goals[&q], final_work[&q]);
        let missed = (tested - goal).max(0.0);
        println!(
            "  {label:<32} [{name}] goal {goal:>10.0}  final {tested:>10.0}  missed {:>8.0} ({:.1}%)",
            missed,
            if goal > 0.0 { 100.0 * missed / goal } else { 0.0 },
        );
    }
    let stats = missed_latency_stats(goals, final_work);
    println!(
        "  across dashboards: mean missed {:.0} ({:.1}%), max missed {:.0} ({:.1}%)",
        stats.mean_abs, stats.mean_pct, stats.max_abs, stats.max_pct
    );
}

fn main() -> ishare::Result<()> {
    let data = generate(0.003, 7)?;

    // Four dashboards over the shared TPC-H stream. q3 and q5 share scans
    // and joins of customer/orders/lineitem; q1 and q6 share the lineitem
    // scan.
    let dashboards = [
        ("revenue by nation (due 10am)", "q5", 1.0),
        ("shipping priorities (due 7am)", "q3", 0.2),
        ("pricing summary (due 10am)", "q1", 1.0),
        ("promo forecast (due 7am)", "q6", 0.2),
    ];
    let queries: Vec<(QueryId, ishare::plan::LogicalPlan)> = dashboards
        .iter()
        .enumerate()
        .map(|(i, (_, name, _))| Ok((QueryId(i as u16), query_by_name(&data.catalog, name)?.plan)))
        .collect::<ishare::Result<_>>()?;
    let constraints: BTreeMap<QueryId, FinalWorkConstraint> = dashboards
        .iter()
        .enumerate()
        .map(|(i, (_, _, frac))| (QueryId(i as u16), FinalWorkConstraint::Relative(*frac)))
        .collect();
    let goals = resolve_constraints(&queries, &constraints, &data.catalog, CostWeights::default())?;

    let opts = PlanningOptions { max_pace: 50, ..Default::default() };
    let mut ishare_view: Option<(ObsReport, BTreeMap<QueryId, f64>)> = None;
    for approach in [
        Approach::NoShareUniform,
        Approach::NoShareNonuniform,
        Approach::ShareUniform,
        Approach::IShare,
    ] {
        let obs = (approach == Approach::IShare).then(ObsConfig::default);
        let planned = plan_workload(approach, &queries, &constraints, &data.catalog, &opts)?;
        let mut run = if approach == Approach::IShare {
            // The winning plan pulls from a jittered, bounded ingest source
            // (the in-process Kafka substitute) instead of the Vec feeds the
            // other approaches use — its work numbers are bit-identical, and
            // the report below gains the ingest gauges (delivery,
            // backpressure stalls, per-topic lag).
            let feeds = data
                .data
                .iter()
                .map(|(t, rows)| (*t, rows.iter().map(|r| (r.clone(), 1i64)).collect()))
                .collect();
            let mut source = Source::new(
                &feeds,
                SourceConfig { partitions: 2, capacity: 128, jitter: 11, seed: 7 },
            )?;
            execute_from_source_obs(
                &planned.plan,
                planned.paces.as_slice(),
                &data.catalog,
                &mut source,
                CostWeights::default(),
                // Partitioned operator state (bit-identical; adds the
                // partition.sp*.skew gauges) and per-dashboard SLO budgets
                // (the resolved goals) for the slack ledger.
                SourceOptions {
                    obs,
                    partitions: 2,
                    slo: Some(goals.clone()),
                    ..Default::default()
                },
            )?
            .into_result()?
        } else {
            execute_planned_obs(
                &planned.plan,
                planned.paces.as_slice(),
                &data.catalog,
                &data.data,
                CostWeights::default(),
                obs,
            )?
        };
        println!(
            "\n{} — total work {:.0}, wall {:?}, {} subplans, paces {}",
            approach.label(),
            run.total_work.get(),
            run.total_wall,
            planned.plan.len(),
            planned.paces,
        );
        for (i, (label, name, frac)) in dashboards.iter().enumerate() {
            let q = QueryId(i as u16);
            println!(
                "  {label:<32} [{name}, rel {frac}] final work {:>10.0}  ({} result rows)",
                run.final_work[&q],
                run.results[&q].len()
            );
        }
        if let Some(report) = run.obs.take() {
            ishare_view = Some((report, run.final_work.clone()));
        }
    }

    if let Some((report, final_work)) = &ishare_view {
        render_report(report, &goals, final_work, &dashboards);
    }

    // — live churn: a quarter into the 6am load a second analyst opens a
    // regional variant of the revenue dashboard (the paper's
    // recurring-query setting — same join spine, different filters), and
    // the 7am promo forecast is retired at the halfway mark once its
    // report has shipped. The variant's shared prefix widens live operator
    // state in place; its divergent filter cone is seeded from snapshots
    // of the shared children's history — no replay of the stream — and the
    // forecast's state is reclaimed, all recorded in the commit log so the
    // whole trajectory replays bit-identically.
    println!("\n== live churn: a revenue-dashboard variant joins the 6am load ==");
    let drilldown = ishare::tpch::variant_plan(&query_by_name(&data.catalog, "q5")?.plan, 1);
    let script = ChurnScript::new(vec![
        ChurnEvent {
            num: 1,
            den: 4,
            op: ChurnOp::Admit {
                query: QueryId(4),
                plan: drilldown,
                constraint: FinalWorkConstraint::Relative(0.9),
            },
        },
        ChurnEvent { num: 1, den: 2, op: ChurnOp::Remove { query: QueryId(3) } },
    ]);
    let feeds = data
        .data
        .iter()
        .map(|(t, rows)| (*t, rows.iter().map(|r| (r.clone(), 1i64)).collect()))
        .collect();
    let mut source = Source::in_order(&feeds);
    let mut churn_opts = ChurnOptions { max_pace: 16, ..Default::default() };
    churn_opts.source.obs = Some(ObsConfig::default());
    // The morning deadlines leave headroom for churn: re-cutting a live
    // plan at the admission frontier adds materialization boundaries, so
    // budgets right at the batch edge would reject the newcomer.
    let churn_cons: BTreeMap<QueryId, FinalWorkConstraint> = dashboards
        .iter()
        .enumerate()
        .map(|(i, (_, _, frac))| (QueryId(i as u16), FinalWorkConstraint::Relative(frac.max(0.4))))
        .collect();
    let churn_run = execute_churn_from_source(
        &queries,
        &churn_cons,
        &script,
        &data.catalog,
        &mut source,
        CostWeights::default(),
        &churn_opts,
    )?
    .into_result()?;
    for r in &churn_run.churn {
        match r.kind {
            ChurnKind::Admit => println!(
                "  admit  q{} at the boundary: {} nodes reused + {} created, {} subplans, \
                 {} rows handed off (work {:.0})",
                r.query,
                r.nodes_reused,
                r.nodes_created,
                r.subplans,
                r.handoff_rows,
                f64::from_bits(r.handoff_work_bits),
            ),
            ChurnKind::Remove => println!(
                "  remove q{}: {} state rows reclaimed, {} subplans survive",
                r.query, r.reclaimed_rows, r.subplans,
            ),
        }
    }
    println!(
        "  variant dashboard delivered {} result rows; promo forecast retired mid-run ({})",
        churn_run.run.results[&QueryId(4)].len(),
        if churn_run.run.results.contains_key(&QueryId(3)) { "still present!" } else { "gone" },
    );
    if let Some(report) = &churn_run.run.obs {
        println!("  churn gauges from the observability registry:");
        for (name, value) in report.metrics.gauges() {
            if name.starts_with("churn.") {
                println!("    {name:<28} {value:>8.0}");
            }
        }
    }
    Ok(())
}
