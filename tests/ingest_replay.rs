//! Differential tests for the ingest subsystem: source-fed execution is
//! bit-identical to `Vec`-fed execution, and a killed run resumed from its
//! commit log is bit-identical to an uninterrupted one.
//!
//! Random small shared plans and delta feeds (the same generators as
//! `parallel_equivalence`), random topic topologies (partitions, ring
//! capacity, jitter, seed), random pace vectors, sequential and parallel
//! drivers: pulling watermark cuts from an out-of-order, backpressured
//! source must reproduce the `Vec` driver's `QueryResult`s, bitwise-equal
//! `total_work` and `final_work`, and execution counts — and killing the
//! run after any wavefront, rebuilding the source, and replaying against
//! the commit log must land on the same bits.

use ishare::core::{plan_workload, Approach, FinalWorkConstraint, PlanningOptions};
use ishare::stream::{
    execute_from_source_obs, execute_from_source_parallel_obs, execute_planned_deltas, RunResult,
    Source, SourceConfig, SourceOptions, SourceOutcome,
};
use ishare::tpch::{generate, produce_source, queries::sharing_friendly_queries, StreamConfig};
use ishare_common::{CostWeights, DataType, QueryId, QuerySet, TableId, Value};
use ishare_expr::Expr;
use ishare_plan::{AggExpr, AggFunc, DagOp, SelectBranch, SharedDag, SharedPlan};
use ishare_storage::{Catalog, Field, Row, Schema, TableStats};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

fn qs(ids: &[u16]) -> QuerySet {
    QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "t",
        Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
        TableStats::unknown(100.0, 2),
    )
    .unwrap();
    c
}

/// Shared trunk (scan → marking select) feeding one aggregate subplan per
/// query (see `parallel_equivalence`).
fn build_plan(c: &Catalog, n_queries: usize, cutoffs: &[i64], funcs: &[usize]) -> SharedPlan {
    let t = c.table_by_name("t").unwrap().id;
    let all: Vec<u16> = (0..n_queries as u16).collect();
    let mut d = SharedDag::new();
    let scan = d.add_node(DagOp::Scan { table: t }, vec![], qs(&all)).unwrap();
    let branches = (0..n_queries)
        .map(|q| SelectBranch {
            queries: qs(&[q as u16]),
            predicate: if cutoffs[q % cutoffs.len()] >= 95 {
                Expr::true_lit()
            } else {
                Expr::col(1).lt(Expr::lit(cutoffs[q % cutoffs.len()]))
            },
        })
        .collect();
    let sel = d.add_node(DagOp::Select { branches }, vec![scan], qs(&all)).unwrap();
    for q in 0..n_queries {
        let func =
            [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max][funcs[q % funcs.len()] % 4];
        let agg = d
            .add_node(
                DagOp::Aggregate {
                    group_by: vec![(Expr::col(0), "k".into())],
                    aggs: vec![AggExpr::new(func, Expr::col(1), "a")],
                },
                vec![sel],
                qs(&[q as u16]),
            )
            .unwrap();
        d.set_query_root(QueryId(q as u16), agg).unwrap();
    }
    SharedPlan::from_dag(&d, |_| false).unwrap()
}

/// Insert+delete feed that never over-retracts (see `parallel_equivalence`).
fn build_feed(spec: &[(i64, i64, bool)]) -> Vec<(Row, i64)> {
    let mut live: Vec<Row> = Vec::new();
    let mut out = Vec::new();
    for &(k, v, is_delete) in spec {
        if is_delete && !live.is_empty() {
            let row = live.pop().unwrap();
            out.push((row, -1));
        } else {
            let row = Row::new(vec![Value::Int(k), Value::Int(v)]);
            live.push(row.clone());
            out.push((row, 1));
        }
    }
    out
}

fn assert_bit_identical(a: &RunResult, b: &RunResult, label: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.results, &b.results, "{}: query results differ", label);
    prop_assert_eq!(
        a.total_work.get().to_bits(),
        b.total_work.get().to_bits(),
        "{}: total_work differs ({} vs {})",
        label,
        a.total_work.get(),
        b.total_work.get()
    );
    for (q, w) in &a.final_work {
        prop_assert_eq!(
            w.to_bits(),
            b.final_work[q].to_bits(),
            "{}: final_work bits differ for {}",
            label,
            q
        );
    }
    prop_assert_eq!(a.executions, b.executions, "{}: executions differ", label);
    prop_assert_eq!(
        &a.executions_per_query,
        &b.executions_per_query,
        "{}: per-query execution counts differ",
        label
    );
    Ok(())
}

/// Run `plan` from a fresh source built with `cfg`, at `threads` workers.
fn run_from_source(
    plan: &SharedPlan,
    paces: &[u32],
    c: &Catalog,
    feeds: &HashMap<TableId, Vec<(Row, i64)>>,
    cfg: SourceConfig,
    threads: usize,
    opts: SourceOptions,
) -> SourceOutcome {
    let mut source = Source::new(feeds, cfg).unwrap();
    if threads == 1 {
        execute_from_source_obs(plan, paces, c, &mut source, CostWeights::default(), opts).unwrap()
    } else {
        execute_from_source_parallel_obs(
            plan,
            paces,
            c,
            &mut source,
            CostWeights::default(),
            threads,
            opts,
        )
        .unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Source-fed ≡ Vec-fed over random plans, feeds, topologies, paces, and
    /// thread counts — and kill-after-wavefront-k + replay ≡ uninterrupted.
    #[test]
    fn source_fed_matches_vec_fed_and_replay_is_exact(
        shape in (
            2usize..4,
            proptest::collection::vec(5i64..100, 4),
            proptest::collection::vec(0usize..4, 4),
        ),
        spec in proptest::collection::vec(
            (0i64..6, 0i64..100, proptest::bool::weighted(0.3)),
            1..40,
        ),
        paces_seed in proptest::collection::vec(1u32..6, 8),
        topo in (
            1usize..4,
            prop_oneof![Just(1usize), Just(3), Just(64)],
            prop_oneof![Just(0u64), Just(2), Just(9)],
            0u64..1000,
        ),
        run_shape in (prop_oneof![Just(1usize), Just(2), Just(4)], 1usize..4),
    ) {
        let (n_queries, cutoffs, funcs) = shape;
        let (partitions, capacity, jitter, seed) = topo;
        let (threads, kill_after) = run_shape;
        let c = catalog();
        let plan = build_plan(&c, n_queries, &cutoffs, &funcs);
        let t = c.table_by_name("t").unwrap().id;
        let feeds: HashMap<TableId, Vec<(Row, i64)>> =
            [(t, build_feed(&spec))].into_iter().collect();
        let mut paces = paces_seed;
        paces.resize(plan.len(), 1);
        let paces = &paces[..plan.len()];
        let cfg = SourceConfig { partitions, capacity, jitter, seed };

        // Reference: the Vec-fed sequential driver.
        let reference =
            execute_planned_deltas(&plan, paces, &c, &feeds, CostWeights::default()).unwrap();

        // Source-fed, uninterrupted.
        let outcome = run_from_source(
            &plan, paces, &c, &feeds, cfg, threads, SourceOptions::default(),
        );
        let SourceOutcome::Completed { result: full, log } = outcome else {
            panic!("no stop requested, run must complete");
        };
        let label = format!("P{partitions} C{capacity} J{jitter} s{seed} th{threads}");
        assert_bit_identical(&reference, &full, &label)?;
        prop_assert!(!log.is_empty(), "{}: completed run must have commits", label);

        // Kill after wavefront `kill_after` (clamped into the schedule),
        // rebuild the source from the same config, replay under
        // verification, and land on the same bits.
        let stop = kill_after.min(log.len() - 1).max(1);
        let killed = run_from_source(
            &plan, paces, &c, &feeds, cfg, threads,
            SourceOptions { stop_after: Some(stop), ..Default::default() },
        );
        let SourceOutcome::Suspended { log: partial } = killed else {
            panic!("stop_after {stop} of {} wavefronts must suspend", log.len());
        };
        prop_assert_eq!(partial.len(), stop, "{}: commit log cut at the stop", &label);
        let resumed = run_from_source(
            &plan, paces, &c, &feeds, cfg, threads,
            SourceOptions { verify: Some(partial), ..Default::default() },
        );
        let SourceOutcome::Completed { result: resumed, log: resumed_log } = resumed else {
            panic!("resume must complete");
        };
        assert_bit_identical(&full, &resumed, &format!("{label} resumed@{stop}"))?;
        prop_assert_eq!(
            resumed_log.entries.len(), log.entries.len(),
            "{}: resumed log covers the full schedule", &label
        );
        prop_assert_eq!(&resumed_log.entries, &log.entries, "{}: commit logs agree", &label);
    }
}

/// Acceptance-level: an iShare-planned TPC-H workload with an update stream
/// (deletes + inserts), pulled from a jittered partitioned source, killed
/// after wavefront 2 and resumed — all bit-identical to the Vec-fed run.
#[test]
fn tpch_source_fed_matches_vec_fed_with_kill_resume() {
    let tpch = generate(0.002, 11).unwrap();
    let queries: Vec<(QueryId, _)> = sharing_friendly_queries(&tpch.catalog)
        .unwrap()
        .into_iter()
        .take(4)
        .enumerate()
        .map(|(i, q)| (QueryId(i as u16), q.plan))
        .collect();
    let cons: BTreeMap<QueryId, FinalWorkConstraint> =
        queries.iter().map(|(q, _)| (*q, FinalWorkConstraint::Relative(0.25))).collect();
    let opts = PlanningOptions { max_pace: 8, ..Default::default() };
    let planned = plan_workload(Approach::IShare, &queries, &cons, &tpch.catalog, &opts).unwrap();
    let stream_cfg = StreamConfig {
        update_frac: 0.1,
        source: SourceConfig { partitions: 3, capacity: 32, jitter: 15, seed: 11 },
    };
    let feeds =
        ishare::tpch::with_updates(&tpch, stream_cfg.update_frac, stream_cfg.source.seed).unwrap();

    let reference = execute_planned_deltas(
        &planned.plan,
        planned.paces.as_slice(),
        &tpch.catalog,
        &feeds,
        CostWeights::default(),
    )
    .unwrap();

    // Jittered source, sequential and parallel.
    for threads in [1usize, 4] {
        let mut source = produce_source(&tpch, stream_cfg).unwrap();
        let outcome = if threads == 1 {
            execute_from_source_obs(
                &planned.plan,
                planned.paces.as_slice(),
                &tpch.catalog,
                &mut source,
                CostWeights::default(),
                SourceOptions::default(),
            )
        } else {
            execute_from_source_parallel_obs(
                &planned.plan,
                planned.paces.as_slice(),
                &tpch.catalog,
                &mut source,
                CostWeights::default(),
                threads,
                SourceOptions::default(),
            )
        }
        .unwrap();
        let run = outcome.into_result().unwrap();
        assert_eq!(reference.results, run.results, "threads={threads}");
        assert_eq!(
            reference.total_work.get().to_bits(),
            run.total_work.get().to_bits(),
            "threads={threads}: source-fed total work must be bit-identical to Vec-fed"
        );
        assert_eq!(reference.final_work, run.final_work, "threads={threads}");
        assert_eq!(reference.executions, run.executions, "threads={threads}");
    }

    // Kill after wavefront 2, rebuild the source deterministically, replay.
    let mut source = produce_source(&tpch, stream_cfg).unwrap();
    let killed = execute_from_source_obs(
        &planned.plan,
        planned.paces.as_slice(),
        &tpch.catalog,
        &mut source,
        CostWeights::default(),
        SourceOptions { stop_after: Some(2), ..Default::default() },
    )
    .unwrap();
    let SourceOutcome::Suspended { log } = killed else {
        panic!("stop_after 2 must suspend");
    };
    assert_eq!(log.len(), 2);
    let mut source = produce_source(&tpch, stream_cfg).unwrap();
    let resumed = execute_from_source_obs(
        &planned.plan,
        planned.paces.as_slice(),
        &tpch.catalog,
        &mut source,
        CostWeights::default(),
        SourceOptions { verify: Some(log), ..Default::default() },
    )
    .unwrap()
    .into_result()
    .unwrap();
    assert_eq!(reference.results, resumed.results);
    assert_eq!(
        reference.total_work.get().to_bits(),
        resumed.total_work.get().to_bits(),
        "kill-after-2 + replay must be bit-identical to the uninterrupted Vec-fed run"
    );
    assert_eq!(reference.executions, resumed.executions);
}

/// Kill/resume with intra-subplan data parallelism on (DESIGN.md §12): the
/// exchange rebuilds hash-partitioned operator state deterministically from
/// the replayed deltas, so a run killed at a wavefront boundary and resumed
/// against its commit log at 2/4 partitions — through the jittered source,
/// on the parallel driver — must land bit-exactly on the unpartitioned
/// Vec-fed run's numbers.
#[test]
fn partitioned_kill_resume_replays_bit_exact() {
    let c = catalog();
    let plan = build_plan(&c, 3, &[50, 90, 30, 70], &[0, 2, 3, 1]);
    let t = c.table_by_name("t").unwrap().id;
    let spec: Vec<(i64, i64, bool)> = (0..50).map(|i| (i % 5, i * 17 % 100, i % 6 == 4)).collect();
    let feeds: HashMap<TableId, Vec<(Row, i64)>> = [(t, build_feed(&spec))].into_iter().collect();
    let paces = vec![3u32; plan.len()];
    let cfg = SourceConfig { partitions: 3, capacity: 32, jitter: 7, seed: 13 };

    let reference =
        execute_planned_deltas(&plan, &paces, &c, &feeds, CostWeights::default()).unwrap();

    for exec_partitions in [2usize, 4] {
        let popts = SourceOptions {
            partitions: exec_partitions,
            partition_threads: 2,
            ..Default::default()
        };
        let label = format!("exec partitions={exec_partitions}");

        // Uninterrupted source-fed partitioned run on the parallel driver.
        let SourceOutcome::Completed { result: full, log } =
            run_from_source(&plan, &paces, &c, &feeds, cfg, 2, popts.clone())
        else {
            panic!("{label}: uninterrupted run must complete");
        };
        assert_bit_identical(&reference, &full, &label).unwrap();

        // Kill after wavefront 2, rebuild, replay under verification.
        let killed = run_from_source(
            &plan,
            &paces,
            &c,
            &feeds,
            cfg,
            2,
            SourceOptions { stop_after: Some(2), ..popts.clone() },
        );
        let SourceOutcome::Suspended { log: partial } = killed else {
            panic!("{label}: stop_after 2 must suspend");
        };
        assert_eq!(partial.len(), 2, "{label}: commit log cut at the stop");
        let resumed = run_from_source(
            &plan,
            &paces,
            &c,
            &feeds,
            cfg,
            2,
            SourceOptions { verify: Some(partial), ..popts },
        );
        let SourceOutcome::Completed { result: resumed, log: resumed_log } = resumed else {
            panic!("{label}: resume must complete");
        };
        assert_bit_identical(&reference, &resumed, &format!("{label} resumed")).unwrap();
        assert_eq!(resumed_log.entries, log.entries, "{label}: commit logs agree");
    }
}

/// A tampered commit log must make the replay fail loudly instead of
/// silently diverging.
#[test]
fn replay_against_wrong_log_errors() {
    let c = catalog();
    let plan = build_plan(&c, 2, &[50, 90], &[0, 1]);
    let t = c.table_by_name("t").unwrap().id;
    let feed: Vec<(Row, i64)> =
        (0..30).map(|i| (Row::new(vec![Value::Int(i % 4), Value::Int(i)]), 1)).collect();
    let feeds: HashMap<TableId, Vec<(Row, i64)>> = [(t, feed)].into_iter().collect();
    let paces = vec![2u32; plan.len()];
    let cfg = SourceConfig { partitions: 2, capacity: 8, jitter: 3, seed: 5 };

    let mut source = Source::new(&feeds, cfg).unwrap();
    let SourceOutcome::Completed { mut log, .. } = execute_from_source_obs(
        &plan,
        &paces,
        &c,
        &mut source,
        CostWeights::default(),
        SourceOptions::default(),
    )
    .unwrap() else {
        panic!("must complete");
    };

    // Corrupt the first commit's delivered count.
    let first = log.entries.first_mut().unwrap();
    for tc in first.topics.values_mut() {
        tc.delivered += 1;
    }
    let mut source = Source::new(&feeds, cfg).unwrap();
    let err = execute_from_source_obs(
        &plan,
        &paces,
        &c,
        &mut source,
        CostWeights::default(),
        SourceOptions { verify: Some(log), ..Default::default() },
    );
    assert!(err.is_err(), "verification against a tampered log must error");
}
