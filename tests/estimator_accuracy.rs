//! The cost model and the engine share one unit (CostWeights-weighted
//! tuples). With exact statistics, estimated totals must *track*
//! measurements — not match them (the paper leans on cost-model imprecision
//! to explain its missed latencies), but stay within a small factor and
//! preserve ordering across pace configurations.

use ishare::cost::PlanEstimator;
use ishare::mqo::{build_shared_dag, normalize, MqoConfig};
use ishare::plan::SharedPlan;
use ishare::stream::execute_planned;
use ishare::tpch::{generate, query_by_name};
use ishare_common::{CostWeights, QueryId};

fn setup(names: &[&str], seed: u64) -> (ishare::tpch::TpchData, SharedPlan) {
    let data = generate(0.002, seed).unwrap();
    let queries: Vec<(QueryId, ishare::plan::LogicalPlan)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            (QueryId(i as u16), normalize(&query_by_name(&data.catalog, n).unwrap().plan))
        })
        .collect();
    let dag = build_shared_dag(&queries, &data.catalog, &MqoConfig::default()).unwrap();
    let plan = SharedPlan::from_dag(&dag, |_| false).unwrap();
    (data, plan)
}

#[test]
fn estimates_track_measurements_within_a_small_factor() {
    let (data, plan) = setup(&["q1", "q6", "qa"], 61);
    let mut est = PlanEstimator::new(&plan, &data.catalog, CostWeights::default()).unwrap();
    for pace in [1u32, 4, 10] {
        let paces = vec![pace; plan.len()];
        let estimated = est.estimate(&paces).unwrap().total_work.get();
        let measured =
            execute_planned(&plan, &paces, &data.catalog, &data.data, CostWeights::default())
                .unwrap()
                .total_work
                .get();
        let ratio = estimated / measured;
        assert!(
            (0.4..2.5).contains(&ratio),
            "pace {pace}: estimated {estimated:.0} vs measured {measured:.0} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn estimates_preserve_the_pace_ordering() {
    // The greedy search only needs the estimator to RANK configurations
    // correctly: more eager ⇒ more total work, less final work — and the
    // measured engine must agree.
    let (data, plan) = setup(&["qa", "qb"], 62);
    let mut est = PlanEstimator::new(&plan, &data.catalog, CostWeights::default()).unwrap();
    let mut prev_est_total = 0.0f64;
    let mut prev_meas_total = 0.0f64;
    let mut prev_est_final = f64::INFINITY;
    let mut prev_meas_final = f64::INFINITY;
    for pace in [1u32, 5, 20] {
        let paces = vec![pace; plan.len()];
        let rep = est.estimate(&paces).unwrap();
        let run = execute_planned(&plan, &paces, &data.catalog, &data.data, CostWeights::default())
            .unwrap();
        let est_total = rep.total_work.get();
        let meas_total = run.total_work.get();
        let est_final: f64 = rep.final_work.values().map(|w| w.get()).sum();
        let meas_final: f64 = run.final_work.values().sum();
        assert!(est_total >= prev_est_total, "estimated total monotone in pace");
        assert!(meas_total >= prev_meas_total, "measured total monotone in pace");
        assert!(est_final <= prev_est_final, "estimated final anti-monotone in pace");
        assert!(meas_final <= prev_meas_final, "measured final anti-monotone in pace");
        prev_est_total = est_total;
        prev_meas_total = meas_total;
        prev_est_final = est_final;
        prev_meas_final = meas_final;
    }
}
