//! Differential tests: intra-subplan data parallelism (hash-partitioned
//! join/aggregate state behind a per-operator exchange, DESIGN.md §12) is
//! bit-identical to unpartitioned sequential execution.
//!
//! Random small shared plans — the aggregate fan-out shape and the
//! join-shaped variant (select → join → project → aggregate) — random
//! insert+delete feeds (including extremum deletes that trigger MIN/MAX
//! rescans), and random pace vectors: at 1/2/4/8 partitions, with 1 or 2
//! partition workers, alone or stacked on the 2-thread inter-subplan
//! parallel driver, every run must produce the same `QueryResult`s,
//! bitwise-equal `total_work` and per-query `final_work`, and the same
//! execution counts as the sequential unpartitioned oracle — with the
//! passive observability layer on or off.

use ishare::core::{plan_workload, Approach, FinalWorkConstraint, PlanningOptions};
use ishare::stream::{
    execute_planned_deltas, execute_planned_deltas_obs,
    execute_planned_deltas_parallel_partitioned_obs, execute_planned_deltas_partitioned,
    execute_planned_deltas_partitioned_obs, ObsConfig, RunResult,
};
use ishare::tpch::{generate, queries::sharing_friendly_queries};
use ishare_common::{CostWeights, DataType, QueryId, QuerySet, TableId, Value};
use ishare_expr::Expr;
use ishare_plan::{AggExpr, AggFunc, DagOp, SelectBranch, SharedDag, SharedPlan};
use ishare_storage::{Catalog, Field, Row, Schema, TableStats};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

fn qs(ids: &[u16]) -> QuerySet {
    QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "t",
        Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
        TableStats::unknown(100.0, 2),
    )
    .unwrap();
    c.add_table(
        "u",
        Schema::new(vec![Field::new("k", DataType::Int), Field::new("w", DataType::Int)]),
        TableStats::unknown(100.0, 2),
    )
    .unwrap();
    c
}

/// Shared trunk (scan → marking select) feeding one aggregate subplan per
/// query (same generator family as `parallel_equivalence`).
fn build_agg_plan(c: &Catalog, n_queries: usize, cutoffs: &[i64], funcs: &[usize]) -> SharedPlan {
    let t = c.table_by_name("t").unwrap().id;
    let all: Vec<u16> = (0..n_queries as u16).collect();
    let mut d = SharedDag::new();
    let scan = d.add_node(DagOp::Scan { table: t }, vec![], qs(&all)).unwrap();
    let branches = (0..n_queries)
        .map(|q| SelectBranch {
            queries: qs(&[q as u16]),
            predicate: if cutoffs[q % cutoffs.len()] >= 95 {
                Expr::true_lit()
            } else {
                Expr::col(1).lt(Expr::lit(cutoffs[q % cutoffs.len()]))
            },
        })
        .collect();
    let sel = d.add_node(DagOp::Select { branches }, vec![scan], qs(&all)).unwrap();
    for q in 0..n_queries {
        let func =
            [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max][funcs[q % funcs.len()] % 4];
        let agg = d
            .add_node(
                DagOp::Aggregate {
                    group_by: vec![(Expr::col(0), "k".into())],
                    aggs: vec![AggExpr::new(func, Expr::col(1), "a")],
                },
                vec![sel],
                qs(&[q as u16]),
            )
            .unwrap();
        d.set_query_root(QueryId(q as u16), agg).unwrap();
    }
    SharedPlan::from_dag(&d, |_| false).unwrap()
}

/// Join-shaped trunk: marking select over `t`, join with `u` on `k` (the
/// join partitions on the join key), a computing projection, then one
/// aggregate per query (each aggregate partitions on its group key — a
/// different exchange than the join's, which is exactly what the
/// per-operator design must survive).
fn build_join_plan(c: &Catalog, n_queries: usize, cutoffs: &[i64], funcs: &[usize]) -> SharedPlan {
    let t = c.table_by_name("t").unwrap().id;
    let u = c.table_by_name("u").unwrap().id;
    let all: Vec<u16> = (0..n_queries as u16).collect();
    let mut d = SharedDag::new();
    let scan_t = d.add_node(DagOp::Scan { table: t }, vec![], qs(&all)).unwrap();
    let scan_u = d.add_node(DagOp::Scan { table: u }, vec![], qs(&all)).unwrap();
    let branches = (0..n_queries)
        .map(|q| SelectBranch {
            queries: qs(&[q as u16]),
            predicate: if cutoffs[q % cutoffs.len()] >= 95 {
                Expr::true_lit()
            } else {
                Expr::col(1).lt(Expr::lit(cutoffs[q % cutoffs.len()]))
            },
        })
        .collect();
    let sel = d.add_node(DagOp::Select { branches }, vec![scan_t], qs(&all)).unwrap();
    let join = d
        .add_node(
            DagOp::Join { keys: vec![(Expr::col(0), Expr::col(0))] },
            vec![sel, scan_u],
            qs(&all),
        )
        .unwrap();
    let proj = d
        .add_node(
            DagOp::Project {
                exprs: vec![
                    (Expr::col(0), "k".into()),
                    (Expr::col(1).add(Expr::col(3)), "vw".into()),
                ],
            },
            vec![join],
            qs(&all),
        )
        .unwrap();
    for q in 0..n_queries {
        let func =
            [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max][funcs[q % funcs.len()] % 4];
        let agg = d
            .add_node(
                DagOp::Aggregate {
                    group_by: vec![(Expr::col(0), "k".into())],
                    aggs: vec![AggExpr::new(func, Expr::col(1), "a")],
                },
                vec![proj],
                qs(&[q as u16]),
            )
            .unwrap();
        d.set_query_root(QueryId(q as u16), agg).unwrap();
    }
    SharedPlan::from_dag(&d, |_| false).unwrap()
}

/// Insert+delete feed that never over-retracts. A delete with
/// `extremum == true` removes the live row with the extreme `v`
/// (alternating max/min), exercising the MIN/MAX rescan path through the
/// exchange.
fn build_feed(spec: &[(i64, i64, bool, bool)]) -> Vec<(Row, i64)> {
    let v_of = |r: &Row| match r.get(1) {
        Value::Int(v) => *v,
        _ => 0,
    };
    let mut live: Vec<Row> = Vec::new();
    let mut out = Vec::new();
    for &(k, v, is_delete, extremum) in spec {
        if is_delete && !live.is_empty() {
            let idx = if extremum {
                let pick_max = out.len() % 2 == 0;
                let (idx, _) = live
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, r)| if pick_max { v_of(r) } else { -v_of(r) })
                    .unwrap();
                idx
            } else {
                live.len() - 1
            };
            let row = live.swap_remove(idx);
            out.push((row, -1));
        } else {
            let row = Row::new(vec![Value::Int(k), Value::Int(v)]);
            live.push(row.clone());
            out.push((row, 1));
        }
    }
    out
}

fn assert_bit_identical(a: &RunResult, b: &RunResult, label: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.results, &b.results, "{}: query results differ", label);
    prop_assert_eq!(
        a.total_work.get().to_bits(),
        b.total_work.get().to_bits(),
        "{}: total_work differs ({} vs {})",
        label,
        a.total_work.get(),
        b.total_work.get()
    );
    prop_assert_eq!(&a.final_work, &b.final_work, "{}: final_work differs", label);
    for (q, w) in &a.final_work {
        prop_assert_eq!(
            w.to_bits(),
            b.final_work[q].to_bits(),
            "{}: final_work bits differ for {}",
            label,
            q
        );
    }
    prop_assert_eq!(a.executions, b.executions, "{}: executions differ", label);
    prop_assert_eq!(
        &a.executions_per_query,
        &b.executions_per_query,
        "{}: per-query execution counts differ",
        label
    );
    Ok(())
}

/// Obs must stay passive through the exchange: breakdown sums back to the
/// flat total, execution counts agree, and — new with partitioning — the
/// per-partition gauges exist and the routed-row tallies they carry are
/// non-negative with a skew ratio ≥ 1.
fn assert_obs_consistent(
    run: &RunResult,
    partitions: usize,
    label: &str,
) -> Result<(), TestCaseError> {
    let report = run.obs.as_ref().expect("obs requested");
    let total = run.total_work.get();
    let tol = 1e-6 * total.abs().max(1.0);
    prop_assert!(
        (report.breakdown_total() - total).abs() <= tol,
        "{}: breakdown {} != total_work {}",
        label,
        report.breakdown_total(),
        total
    );
    let execs: u64 = report.executions_by_subplan.iter().map(|e| e.total()).sum();
    prop_assert_eq!(execs as usize, run.executions, "{}: execution counts differ", label);
    let skews: Vec<f64> = report
        .metrics
        .gauges()
        .filter(|(name, _)| name.starts_with("partition.sp") && name.ends_with(".skew"))
        .map(|(_, v)| v)
        .collect();
    if partitions > 1 {
        prop_assert!(!skews.is_empty(), "{}: partitioned run must record partition gauges", label);
        for s in &skews {
            prop_assert!(
                *s >= 1.0 - 1e-9 && *s <= partitions as f64 + 1e-9,
                "{}: skew ratio {} out of [1, {}]",
                label,
                s,
                partitions
            );
        }
    } else {
        prop_assert!(skews.is_empty(), "{}: unpartitioned run must not record them", label);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Partitioned ≡ sequential at 1/2/4/8 partitions, with 1/2 partition
    /// workers, stacked or not on the 2-thread parallel driver, obs on or
    /// off — over random plans (aggregate fan-out and join shaped), random
    /// insert+delete feeds, and random pace vectors.
    #[test]
    fn partitioned_matches_sequential(
        n_queries in 2usize..5,
        cutoffs in proptest::collection::vec(5i64..100, 4),
        funcs in proptest::collection::vec(0usize..4, 4),
        spec in proptest::collection::vec(
            (0i64..6, 0i64..100, proptest::bool::weighted(0.3), proptest::bool::ANY),
            2..50,
        ),
        paces_seed in proptest::collection::vec(1u32..6, 10),
        join_shape in proptest::bool::ANY,
    ) {
        let c = catalog();
        let plan = if join_shape {
            build_join_plan(&c, n_queries, &cutoffs, &funcs)
        } else {
            build_agg_plan(&c, n_queries, &cutoffs, &funcs)
        };
        let t = c.table_by_name("t").unwrap().id;
        let u = c.table_by_name("u").unwrap().id;
        // In the join shape, alternate events between the two base tables so
        // both join sides stream deltas through the exchange.
        let (spec_t, spec_u): (Vec<_>, Vec<_>) = if join_shape {
            let st: Vec<_> = spec.iter().step_by(2).copied().collect();
            let su: Vec<_> = spec.iter().skip(1).step_by(2).copied().collect();
            (st, su)
        } else {
            (spec.clone(), Vec::new())
        };
        let mut feeds: HashMap<TableId, Vec<(Row, i64)>> =
            [(t, build_feed(&spec_t))].into_iter().collect();
        if join_shape {
            feeds.insert(u, build_feed(&spec_u));
        }
        let mut paces = paces_seed;
        paces.resize(plan.len(), 1);
        let paces = &paces[..plan.len()];
        let w = CostWeights::default();
        let shape = if join_shape { "join" } else { "agg" };

        let seq = execute_planned_deltas(&plan, paces, &c, &feeds, w).unwrap();
        let seq_obs = execute_planned_deltas_obs(
            &plan, paces, &c, &feeds, w, Some(ObsConfig::default()),
        )
        .unwrap();
        assert_bit_identical(&seq, &seq_obs, &format!("{shape} obs-on"))?;
        assert_obs_consistent(&seq_obs, 1, &format!("{shape} obs-on"))?;

        for partitions in [1usize, 2, 4, 8] {
            let part =
                execute_planned_deltas_partitioned(&plan, paces, &c, &feeds, w, partitions)
                    .unwrap();
            assert_bit_identical(&seq, &part, &format!("{shape} P={partitions}"))?;
            for partition_threads in [1usize, 2] {
                let part_obs = execute_planned_deltas_partitioned_obs(
                    &plan, paces, &c, &feeds, w, partitions, partition_threads,
                    Some(ObsConfig::default()),
                )
                .unwrap();
                let label = format!("{shape} P={partitions} pt={partition_threads} obs-on");
                assert_bit_identical(&seq, &part_obs, &label)?;
                assert_obs_consistent(&part_obs, partitions, &label)?;
            }
        }
        // Intra-subplan parallelism stacked on inter-subplan parallelism.
        for partitions in [2usize, 4] {
            let stacked = execute_planned_deltas_parallel_partitioned_obs(
                &plan, paces, &c, &feeds, w, 2, partitions, 2, Some(ObsConfig::default()),
            )
            .unwrap();
            let label = format!("{shape} threads=2 P={partitions} pt=2");
            assert_bit_identical(&seq, &stacked, &label)?;
            assert_obs_consistent(&stacked, partitions, &label)?;
        }
    }
}

/// Acceptance-level: an iShare-planned TPC-H workload run unpartitioned and
/// at 2/4/8 partitions (with 2 partition workers) — all bit-identical.
#[test]
fn tpch_workload_partitioned_matches_sequential() {
    let tpch = generate(0.002, 11).unwrap();
    let queries: Vec<(QueryId, _)> = sharing_friendly_queries(&tpch.catalog)
        .unwrap()
        .into_iter()
        .take(6)
        .enumerate()
        .map(|(i, q)| (QueryId(i as u16), q.plan))
        .collect();
    let cons: BTreeMap<QueryId, FinalWorkConstraint> =
        queries.iter().map(|(q, _)| (*q, FinalWorkConstraint::Relative(0.25))).collect();
    let opts = PlanningOptions { max_pace: 8, ..Default::default() };
    let planned = plan_workload(Approach::IShare, &queries, &cons, &tpch.catalog, &opts).unwrap();
    let feeds: HashMap<TableId, Vec<(Row, i64)>> = tpch
        .data
        .iter()
        .map(|(t, rows)| (*t, rows.iter().map(|r| (r.clone(), 1i64)).collect()))
        .collect();
    let w = CostWeights::default();

    let seq =
        execute_planned_deltas(&planned.plan, planned.paces.as_slice(), &tpch.catalog, &feeds, w)
            .unwrap();
    for partitions in [2usize, 4, 8] {
        let part = execute_planned_deltas_partitioned_obs(
            &planned.plan,
            planned.paces.as_slice(),
            &tpch.catalog,
            &feeds,
            w,
            partitions,
            2,
            Some(ObsConfig::default()),
        )
        .unwrap();
        assert_eq!(seq.results, part.results, "P={partitions}: results differ");
        assert_eq!(
            seq.total_work.get().to_bits(),
            part.total_work.get().to_bits(),
            "P={partitions}: total_work differs"
        );
        for (q, w) in &seq.final_work {
            assert_eq!(w.to_bits(), part.final_work[q].to_bits(), "P={partitions}: final_work {q}");
        }
        assert_eq!(seq.executions, part.executions, "P={partitions}: executions differ");
        let report = part.obs.as_ref().unwrap();
        assert!(
            report.metrics.gauges().any(|(name, _)| name.starts_with("partition.sp")),
            "P={partitions}: TPC-H run must record partition gauges"
        );
    }
}
