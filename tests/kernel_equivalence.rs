//! Differential tests: the kernel datapath (`ExecMode::Kernels` — encoded
//! keys, compiled expressions, flat operator state, batched work charges)
//! and the columnar datapath (`ExecMode::Vectorized` — SoA batches,
//! selection-vector kernels) are bit-identical to the original
//! interpreter-shaped datapath (`ExecMode::Reference`).
//!
//! Random shared plans — a scan+marking-select trunk fanning out to one
//! aggregate subplan per query (SUM/COUNT/MIN/MAX), and a join-shaped
//! variant (select → join → project → aggregate) — random insert+delete
//! feeds (including extremum deletes that trigger MIN/MAX rescans), and
//! random pace vectors: the kernel datapath must produce the same
//! `QueryResult`s, bitwise-equal `total_work` and per-query `final_work`,
//! and the same execution counts as the reference, sequentially and at 2/4
//! worker threads, and under a jittered partitioned source with
//! kill-after-wavefront + replay.

use ishare::core::{plan_workload, Approach, FinalWorkConstraint, PlanningOptions};
use ishare::stream::{
    execute_from_source_obs, execute_from_source_parallel_obs, execute_planned_deltas,
    execute_planned_deltas_parallel, execute_planned_deltas_partitioned,
    execute_planned_deltas_reference, execute_planned_deltas_vectorized, ExecMode, RunResult,
    Source, SourceConfig, SourceOptions, SourceOutcome,
};
use ishare::tpch::{generate, queries::sharing_friendly_queries};
use ishare_common::{CostWeights, DataType, QueryId, QuerySet, TableId, Value};
use ishare_expr::Expr;
use ishare_plan::{AggExpr, AggFunc, DagOp, SelectBranch, SharedDag, SharedPlan};
use ishare_storage::{Catalog, Field, Row, Schema, TableStats};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

fn qs(ids: &[u16]) -> QuerySet {
    QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "t",
        Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
        TableStats::unknown(100.0, 2),
    )
    .unwrap();
    c.add_table(
        "u",
        Schema::new(vec![Field::new("k", DataType::Int), Field::new("w", DataType::Int)]),
        TableStats::unknown(100.0, 2),
    )
    .unwrap();
    c
}

/// Shared trunk (scan → marking select) feeding one aggregate subplan per
/// query (same generator family as `parallel_equivalence`).
fn build_agg_plan(c: &Catalog, n_queries: usize, cutoffs: &[i64], funcs: &[usize]) -> SharedPlan {
    let t = c.table_by_name("t").unwrap().id;
    let all: Vec<u16> = (0..n_queries as u16).collect();
    let mut d = SharedDag::new();
    let scan = d.add_node(DagOp::Scan { table: t }, vec![], qs(&all)).unwrap();
    let branches = (0..n_queries)
        .map(|q| SelectBranch {
            queries: qs(&[q as u16]),
            predicate: if cutoffs[q % cutoffs.len()] >= 95 {
                Expr::true_lit()
            } else {
                Expr::col(1).lt(Expr::lit(cutoffs[q % cutoffs.len()]))
            },
        })
        .collect();
    let sel = d.add_node(DagOp::Select { branches }, vec![scan], qs(&all)).unwrap();
    for q in 0..n_queries {
        let func =
            [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max][funcs[q % funcs.len()] % 4];
        let agg = d
            .add_node(
                DagOp::Aggregate {
                    group_by: vec![(Expr::col(0), "k".into())],
                    aggs: vec![AggExpr::new(func, Expr::col(1), "a")],
                },
                vec![sel],
                qs(&[q as u16]),
            )
            .unwrap();
        d.set_query_root(QueryId(q as u16), agg).unwrap();
    }
    SharedPlan::from_dag(&d, |_| false).unwrap()
}

/// Join-shaped trunk exercising every kernel: marking select over `t`, join
/// with `u` on `k`, a computing projection, then one aggregate per query.
fn build_join_plan(c: &Catalog, n_queries: usize, cutoffs: &[i64], funcs: &[usize]) -> SharedPlan {
    let t = c.table_by_name("t").unwrap().id;
    let u = c.table_by_name("u").unwrap().id;
    let all: Vec<u16> = (0..n_queries as u16).collect();
    let mut d = SharedDag::new();
    let scan_t = d.add_node(DagOp::Scan { table: t }, vec![], qs(&all)).unwrap();
    let scan_u = d.add_node(DagOp::Scan { table: u }, vec![], qs(&all)).unwrap();
    let branches = (0..n_queries)
        .map(|q| SelectBranch {
            queries: qs(&[q as u16]),
            predicate: if cutoffs[q % cutoffs.len()] >= 95 {
                Expr::true_lit()
            } else {
                Expr::col(1).lt(Expr::lit(cutoffs[q % cutoffs.len()]))
            },
        })
        .collect();
    let sel = d.add_node(DagOp::Select { branches }, vec![scan_t], qs(&all)).unwrap();
    let join = d
        .add_node(
            DagOp::Join { keys: vec![(Expr::col(0), Expr::col(0))] },
            vec![sel, scan_u],
            qs(&all),
        )
        .unwrap();
    // Computing projection: [k, v + w] — not an identity, so the project
    // kernel's program path runs too.
    let proj = d
        .add_node(
            DagOp::Project {
                exprs: vec![
                    (Expr::col(0), "k".into()),
                    (Expr::col(1).add(Expr::col(3)), "vw".into()),
                ],
            },
            vec![join],
            qs(&all),
        )
        .unwrap();
    for q in 0..n_queries {
        let func =
            [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max][funcs[q % funcs.len()] % 4];
        let agg = d
            .add_node(
                DagOp::Aggregate {
                    group_by: vec![(Expr::col(0), "k".into())],
                    aggs: vec![AggExpr::new(func, Expr::col(1), "a")],
                },
                vec![proj],
                qs(&[q as u16]),
            )
            .unwrap();
        d.set_query_root(QueryId(q as u16), agg).unwrap();
    }
    SharedPlan::from_dag(&d, |_| false).unwrap()
}

/// Insert+delete feed that never over-retracts (see `parallel_equivalence`).
fn build_feed(spec: &[(i64, i64, bool)]) -> Vec<(Row, i64)> {
    let mut live: Vec<Row> = Vec::new();
    let mut out = Vec::new();
    for &(k, v, is_delete) in spec {
        if is_delete && !live.is_empty() {
            let row = live.pop().unwrap();
            out.push((row, -1));
        } else {
            let row = Row::new(vec![Value::Int(k), Value::Int(v)]);
            live.push(row.clone());
            out.push((row, 1));
        }
    }
    out
}

fn assert_bit_identical(a: &RunResult, b: &RunResult, label: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.results, &b.results, "{}: query results differ", label);
    prop_assert_eq!(
        a.total_work.get().to_bits(),
        b.total_work.get().to_bits(),
        "{}: total_work differs ({} vs {})",
        label,
        a.total_work.get(),
        b.total_work.get()
    );
    for (q, w) in &a.final_work {
        prop_assert_eq!(
            w.to_bits(),
            b.final_work[q].to_bits(),
            "{}: final_work bits differ for {}",
            label,
            q
        );
    }
    prop_assert_eq!(a.executions, b.executions, "{}: executions differ", label);
    prop_assert_eq!(
        &a.executions_per_query,
        &b.executions_per_query,
        "{}: per-query execution counts differ",
        label
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Kernels ≡ vectorized ≡ reference over random plans (aggregate-only
    /// and join shaped), random insert+delete feeds, random paces —
    /// sequentially, at 2/4 worker threads, and (vectorized) at 2/4 state
    /// partitions. Every datapath/knob combination must land on the
    /// reference's bits.
    #[test]
    fn kernels_match_reference(
        n_queries in 2usize..5,
        cutoffs in proptest::collection::vec(5i64..100, 4),
        funcs in proptest::collection::vec(0usize..4, 4),
        spec in proptest::collection::vec(
            (0i64..6, 0i64..100, proptest::bool::weighted(0.3), proptest::bool::weighted(0.3)),
            2..50,
        ),
        paces_seed in proptest::collection::vec(1u32..6, 10),
        join_shape in proptest::bool::ANY,
    ) {
        let c = catalog();
        let plan = if join_shape {
            build_join_plan(&c, n_queries, &cutoffs, &funcs)
        } else {
            build_agg_plan(&c, n_queries, &cutoffs, &funcs)
        };
        let t = c.table_by_name("t").unwrap().id;
        let u = c.table_by_name("u").unwrap().id;
        // The 4th flag routes the event to table `u` (join probe side); in
        // the aggregate-only shape all events go to `t`.
        let spec_t: Vec<(i64, i64, bool)> = spec
            .iter()
            .filter(|e| !(join_shape && e.3))
            .map(|e| (e.0, e.1, e.2))
            .collect();
        let spec_u: Vec<(i64, i64, bool)> =
            spec.iter().filter(|e| join_shape && e.3).map(|e| (e.0, e.1, e.2)).collect();
        let mut feeds: HashMap<TableId, Vec<(Row, i64)>> =
            [(t, build_feed(&spec_t))].into_iter().collect();
        if join_shape {
            feeds.insert(u, build_feed(&spec_u));
        }
        let mut paces = paces_seed;
        paces.resize(plan.len(), 1);
        let paces = &paces[..plan.len()];

        let reference =
            execute_planned_deltas_reference(&plan, paces, &c, &feeds, CostWeights::default())
                .unwrap();
        let kernels =
            execute_planned_deltas(&plan, paces, &c, &feeds, CostWeights::default()).unwrap();
        let shape = if join_shape { "join" } else { "agg" };
        assert_bit_identical(&reference, &kernels, &format!("{shape} sequential"))?;
        let vectorized =
            execute_planned_deltas_vectorized(&plan, paces, &c, &feeds, CostWeights::default())
                .unwrap();
        assert_bit_identical(&reference, &vectorized, &format!("{shape} vectorized"))?;
        for threads in [2usize, 4] {
            let par = execute_planned_deltas_parallel(
                &plan, paces, &c, &feeds, CostWeights::default(), threads,
            )
            .unwrap();
            assert_bit_identical(&reference, &par, &format!("{shape} threads={threads}"))?;
            let mut source = Source::in_order(&feeds);
            let vpar = execute_from_source_parallel_obs(
                &plan,
                paces,
                &c,
                &mut source,
                CostWeights::default(),
                threads,
                SourceOptions { mode: ExecMode::Vectorized, ..Default::default() },
            )
            .unwrap()
            .into_result()
            .unwrap();
            assert_bit_identical(
                &reference,
                &vpar,
                &format!("{shape} vectorized threads={threads}"),
            )?;
        }
        for partitions in [2usize, 4] {
            let mut source = Source::in_order(&feeds);
            let vpart = execute_from_source_obs(
                &plan,
                paces,
                &c,
                &mut source,
                CostWeights::default(),
                SourceOptions {
                    mode: ExecMode::Vectorized,
                    partitions,
                    partition_threads: 2,
                    ..Default::default()
                },
            )
            .unwrap()
            .into_result()
            .unwrap();
            assert_bit_identical(
                &reference,
                &vpart,
                &format!("{shape} vectorized partitions={partitions}"),
            )?;
        }
    }
}

/// Acceptance-level: an iShare-planned TPC-H workload run on both datapaths,
/// sequentially and at 2/4 worker threads — all bit-identical.
#[test]
fn tpch_workload_kernels_match_reference() {
    let tpch = generate(0.002, 11).unwrap();
    let queries: Vec<(QueryId, _)> = sharing_friendly_queries(&tpch.catalog)
        .unwrap()
        .into_iter()
        .take(6)
        .enumerate()
        .map(|(i, q)| (QueryId(i as u16), q.plan))
        .collect();
    let cons: BTreeMap<QueryId, FinalWorkConstraint> =
        queries.iter().map(|(q, _)| (*q, FinalWorkConstraint::Relative(0.25))).collect();
    let opts = PlanningOptions { max_pace: 8, ..Default::default() };
    let planned = plan_workload(Approach::IShare, &queries, &cons, &tpch.catalog, &opts).unwrap();
    let feeds: HashMap<TableId, Vec<(Row, i64)>> = tpch
        .data
        .iter()
        .map(|(t, rows)| (*t, rows.iter().map(|r| (r.clone(), 1i64)).collect()))
        .collect();

    let reference = execute_planned_deltas_reference(
        &planned.plan,
        planned.paces.as_slice(),
        &tpch.catalog,
        &feeds,
        CostWeights::default(),
    )
    .unwrap();
    let kernels = execute_planned_deltas(
        &planned.plan,
        planned.paces.as_slice(),
        &tpch.catalog,
        &feeds,
        CostWeights::default(),
    )
    .unwrap();
    let check = |a: &RunResult, b: &RunResult, label: &str| {
        assert_eq!(a.results, b.results, "{label}: results differ");
        assert_eq!(
            a.total_work.get().to_bits(),
            b.total_work.get().to_bits(),
            "{label}: total_work differs"
        );
        for (q, w) in &a.final_work {
            assert_eq!(w.to_bits(), b.final_work[q].to_bits(), "{label}: final_work {q}");
        }
        assert_eq!(a.executions, b.executions, "{label}: executions differ");
    };
    check(&reference, &kernels, "sequential");
    let vectorized = execute_planned_deltas_vectorized(
        &planned.plan,
        planned.paces.as_slice(),
        &tpch.catalog,
        &feeds,
        CostWeights::default(),
    )
    .unwrap();
    check(&reference, &vectorized, "vectorized");
    for threads in [2usize, 4] {
        let par = execute_planned_deltas_parallel(
            &planned.plan,
            planned.paces.as_slice(),
            &tpch.catalog,
            &feeds,
            CostWeights::default(),
            threads,
        )
        .unwrap();
        check(&reference, &par, &format!("threads={threads}"));
    }
}

/// The reference datapath remains the oracle at every partition count: the
/// partitioned kernel exchange (DESIGN.md §12) must land bit-exactly on the
/// interpreter-shaped reference's numbers at 1/2/4 partitions, and
/// requesting partitions *on* the reference datapath is a no-op (the
/// exchange only exists on the kernel path), so it too stays on the same
/// bits.
#[test]
fn reference_remains_oracle_at_every_partition_count() {
    let c = catalog();
    let plan = build_join_plan(&c, 3, &[40, 95, 60, 25], &[0, 1, 2, 3]);
    let t = c.table_by_name("t").unwrap().id;
    let u = c.table_by_name("u").unwrap().id;
    let spec_t: Vec<(i64, i64, bool)> =
        (0..60).map(|i| (i % 5, i * 13 % 100, i % 7 == 3)).collect();
    let spec_u: Vec<(i64, i64, bool)> =
        (0..30).map(|i| (i % 5, i * 31 % 100, i % 9 == 4)).collect();
    let feeds: HashMap<TableId, Vec<(Row, i64)>> =
        [(t, build_feed(&spec_t)), (u, build_feed(&spec_u))].into_iter().collect();
    let paces: Vec<u32> = vec![3; plan.len()];
    let w = CostWeights::default();

    let reference = execute_planned_deltas_reference(&plan, &paces, &c, &feeds, w).unwrap();
    let bit_eq = |a: &RunResult, b: &RunResult, label: &str| {
        assert_eq!(a.results, b.results, "{label}: results differ");
        assert_eq!(
            a.total_work.get().to_bits(),
            b.total_work.get().to_bits(),
            "{label}: total_work differs"
        );
        for (q, wk) in &a.final_work {
            assert_eq!(wk.to_bits(), b.final_work[q].to_bits(), "{label}: final_work {q}");
        }
        assert_eq!(a.executions, b.executions, "{label}: executions differ");
    };
    for partitions in [1usize, 2, 4] {
        let part =
            execute_planned_deltas_partitioned(&plan, &paces, &c, &feeds, w, partitions).unwrap();
        bit_eq(&reference, &part, &format!("kernels P={partitions}"));
        let mut source = Source::in_order(&feeds);
        let vpart = execute_from_source_obs(
            &plan,
            &paces,
            &c,
            &mut source,
            w,
            SourceOptions {
                mode: ExecMode::Vectorized,
                partitions,
                partition_threads: 2,
                ..Default::default()
            },
        )
        .unwrap()
        .into_result()
        .unwrap();
        bit_eq(&reference, &vpart, &format!("vectorized P={partitions}"));
    }
    // Reference mode with partitions requested: the option is ignored, the
    // oracle keeps its bits.
    let mut source = Source::in_order(&feeds);
    let ref_part = execute_from_source_obs(
        &plan,
        &paces,
        &c,
        &mut source,
        w,
        SourceOptions {
            mode: ExecMode::Reference,
            partitions: 4,
            partition_threads: 2,
            ..Default::default()
        },
    )
    .unwrap()
    .into_result()
    .unwrap();
    bit_eq(&reference, &ref_part, "reference P=4 (ignored)");
}

/// Kernels under ingest stress: a jittered, partitioned, backpressured
/// source — killed after a wavefront and replayed against the commit log —
/// must still land bit-exactly on the reference datapath's numbers.
#[test]
fn kernels_match_reference_under_jittered_source_kill_resume() {
    let c = catalog();
    let plan = build_join_plan(&c, 3, &[40, 95, 60, 25], &[0, 1, 2, 3]);
    let t = c.table_by_name("t").unwrap().id;
    let u = c.table_by_name("u").unwrap().id;
    let spec_t: Vec<(i64, i64, bool)> =
        (0..60).map(|i| (i % 5, i * 13 % 100, i % 7 == 3)).collect();
    let spec_u: Vec<(i64, i64, bool)> =
        (0..30).map(|i| (i % 5, i * 31 % 100, i % 9 == 4)).collect();
    let feeds: HashMap<TableId, Vec<(Row, i64)>> =
        [(t, build_feed(&spec_t)), (u, build_feed(&spec_u))].into_iter().collect();
    let paces: Vec<u32> = vec![4; plan.len()];
    let cfg = SourceConfig { partitions: 3, capacity: 64, jitter: 9, seed: 42 };

    let reference =
        execute_planned_deltas_reference(&plan, &paces, &c, &feeds, CostWeights::default())
            .unwrap();

    // Kernels, source-fed sequentially, uninterrupted.
    let mut source = Source::new(&feeds, cfg).unwrap();
    let SourceOutcome::Completed { result: full, log } = execute_from_source_obs(
        &plan,
        &paces,
        &c,
        &mut source,
        CostWeights::default(),
        SourceOptions::default(),
    )
    .unwrap() else {
        panic!("uninterrupted run must complete");
    };
    let bit_eq = |a: &RunResult, b: &RunResult, label: &str| {
        assert_eq!(a.results, b.results, "{label}: results differ");
        assert_eq!(
            a.total_work.get().to_bits(),
            b.total_work.get().to_bits(),
            "{label}: total_work differs"
        );
        for (q, w) in &a.final_work {
            assert_eq!(w.to_bits(), b.final_work[q].to_bits(), "{label}: final_work {q}");
        }
    };
    bit_eq(&reference, &full, "source-fed kernels");

    // Kill after wavefront 2, rebuild, replay against the log — parallel.
    let mut source = Source::new(&feeds, cfg).unwrap();
    let SourceOutcome::Suspended { log: partial } = execute_from_source_parallel_obs(
        &plan,
        &paces,
        &c,
        &mut source,
        CostWeights::default(),
        2,
        SourceOptions { stop_after: Some(2), ..Default::default() },
    )
    .unwrap() else {
        panic!("stop_after must suspend");
    };
    assert_eq!(partial.len(), 2);
    let mut source = Source::new(&feeds, cfg).unwrap();
    let SourceOutcome::Completed { result: resumed, log: resumed_log } =
        execute_from_source_parallel_obs(
            &plan,
            &paces,
            &c,
            &mut source,
            CostWeights::default(),
            2,
            SourceOptions { verify: Some(partial), ..Default::default() },
        )
        .unwrap()
    else {
        panic!("resume must complete");
    };
    bit_eq(&reference, &resumed, "resumed kernels");
    assert_eq!(resumed_log.entries, log.entries, "commit logs agree");

    // And the reference datapath itself survives the same source treatment
    // (mode threads through SourceOptions).
    let mut source = Source::new(&feeds, cfg).unwrap();
    let SourceOutcome::Completed { result: ref_src, .. } = execute_from_source_obs(
        &plan,
        &paces,
        &c,
        &mut source,
        CostWeights::default(),
        SourceOptions { mode: ExecMode::Reference, ..Default::default() },
    )
    .unwrap() else {
        panic!("reference source-fed run must complete");
    };
    bit_eq(&reference, &ref_src, "source-fed reference");

    // So does the vectorized datapath, including kill-after-wavefront +
    // replay against the commit log.
    let mut source = Source::new(&feeds, cfg).unwrap();
    let SourceOutcome::Suspended { log: vpartial } = execute_from_source_obs(
        &plan,
        &paces,
        &c,
        &mut source,
        CostWeights::default(),
        SourceOptions { mode: ExecMode::Vectorized, stop_after: Some(2), ..Default::default() },
    )
    .unwrap() else {
        panic!("vectorized stop_after must suspend");
    };
    let mut source = Source::new(&feeds, cfg).unwrap();
    let SourceOutcome::Completed { result: vec_resumed, log: vec_log } = execute_from_source_obs(
        &plan,
        &paces,
        &c,
        &mut source,
        CostWeights::default(),
        SourceOptions { mode: ExecMode::Vectorized, verify: Some(vpartial), ..Default::default() },
    )
    .unwrap() else {
        panic!("vectorized resume must complete");
    };
    bit_eq(&reference, &vec_resumed, "resumed vectorized");
    assert_eq!(vec_log.entries, log.entries, "vectorized commit log agrees");
}
