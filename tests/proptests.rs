//! Property-based tests over the engine's core invariants.
//!
//! The deepest one: *incremental execution is a refinement of batch
//! execution* — any way of chopping a delta stream into batches must
//! consolidate to the same multiset the single batch produces, for every
//! operator and for whole subplans. This is what makes pace configurations
//! a pure performance knob.

use ishare::exec::SubplanExecutor;
use ishare_common::{
    CostWeights, DataType, QueryId, QuerySet, SubplanId, TableId, Value, WorkCounter,
};
use ishare_expr::Expr;
use ishare_plan::{AggExpr, AggFunc, InputSource, OpTree, SelectBranch, Subplan, TreeOp};
use ishare_storage::{consolidate, Catalog, DeltaBatch, DeltaRow, Field, Row, Schema, TableStats};
use proptest::prelude::*;
use std::collections::HashMap;

fn qs(bits: u8) -> QuerySet {
    QuerySet((bits as u64).max(1) & 0b11)
}

/// A random delta stream that never over-retracts: deletes only reference
/// previously inserted (row, mask) pairs.
fn delta_stream(max_len: usize) -> impl Strategy<Value = Vec<DeltaRow>> {
    proptest::collection::vec(
        (0i64..6, 0i64..8, 1u8..4, proptest::bool::weighted(0.25)),
        0..max_len,
    )
    .prop_map(|specs| {
        let mut live: Vec<DeltaRow> = Vec::new();
        let mut out = Vec::new();
        for (k, v, mask, is_delete) in specs {
            if is_delete {
                if let Some(prev) = live.pop() {
                    out.push(DeltaRow { weight: -1, ..prev });
                }
            } else {
                let dr = DeltaRow {
                    row: Row::new(vec![Value::Int(k), Value::Int(v)]),
                    weight: 1,
                    mask: qs(mask),
                };
                live.push(dr.clone());
                out.push(dr);
            }
        }
        out
    })
}

fn catalog2() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "t",
        Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
        TableStats::unknown(100.0, 2),
    )
    .unwrap();
    c.add_table(
        "u",
        Schema::new(vec![Field::new("k", DataType::Int), Field::new("w", DataType::Int)]),
        TableStats::unknown(100.0, 2),
    )
    .unwrap();
    c
}

/// select(q0: all, q1: v>3) → join(t,u on k) → agg sum(w), count(*) by k.
fn rich_subplan() -> Subplan {
    let both = QuerySet(0b11);
    let tree = OpTree::node(
        TreeOp::Aggregate {
            group_by: vec![(Expr::col(0), "k".into())],
            aggs: vec![
                AggExpr::new(AggFunc::Sum, Expr::col(3), "sw"),
                AggExpr::count_star("n"),
                AggExpr::new(AggFunc::Max, Expr::col(3), "mx"),
            ],
        },
        vec![OpTree::node(
            TreeOp::Join { keys: vec![(Expr::col(0), Expr::col(0))] },
            vec![
                OpTree::node(
                    TreeOp::Select {
                        branches: vec![
                            SelectBranch { queries: QuerySet(0b01), predicate: Expr::true_lit() },
                            SelectBranch {
                                queries: QuerySet(0b10),
                                predicate: Expr::col(1).gt(Expr::lit(3i64)),
                            },
                        ],
                    },
                    vec![OpTree::input(InputSource::Base(TableId(0)))],
                ),
                OpTree::input(InputSource::Base(TableId(1))),
            ],
        )],
    );
    Subplan { id: SubplanId(0), root: tree, queries: both, output_queries: both }
}

fn run_chunked(
    sp: &Subplan,
    t_rows: &[DeltaRow],
    u_rows: &[DeltaRow],
    t_cuts: &[usize],
    u_cuts: &[usize],
) -> HashMap<(Row, QuerySet), i64> {
    let c = catalog2();
    let mut ex = SubplanExecutor::new(sp, &c, &HashMap::new(), CostWeights::default()).unwrap();
    let leaves = ex.leaf_paths();
    let counter = WorkCounter::new();
    let steps = t_cuts.len().max(u_cuts.len());
    let mut acc = Vec::new();
    let slice = |rows: &[DeltaRow], cuts: &[usize], i: usize| -> Vec<DeltaRow> {
        if i + 1 >= cuts.len() {
            return Vec::new();
        }
        rows[cuts[i]..cuts[i + 1]].to_vec()
    };
    for i in 0..steps.max(1) {
        let mut inputs = HashMap::new();
        inputs.insert(leaves[0].0.clone(), DeltaBatch::from_rows(slice(t_rows, t_cuts, i)));
        inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(slice(u_rows, u_cuts, i)));
        acc.extend(ex.execute(&mut inputs, &counter).unwrap().rows);
    }
    consolidate(acc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chopping the input stream into any batches yields the same
    /// consolidated output as one big batch — for a subplan combining
    /// marking select, symmetric join, and a SUM/COUNT/MAX aggregate.
    #[test]
    fn incremental_equals_batch_for_any_chunking(
        t_rows in delta_stream(30),
        u_rows in delta_stream(20),
        t_cuts_seed in proptest::collection::vec(0usize..31, 0..5),
        u_cuts_seed in proptest::collection::vec(0usize..21, 0..5),
    ) {
        let sp = rich_subplan();
        let mk_cuts = |mut seed: Vec<usize>, len: usize| {
            seed.iter_mut().for_each(|c| *c = (*c).min(len));
            seed.push(0); seed.push(len);
            seed.sort_unstable(); seed.dedup();
            seed
        };
        let t_cuts = mk_cuts(t_cuts_seed, t_rows.len());
        let u_cuts = mk_cuts(u_cuts_seed, u_rows.len());
        let single_t = vec![0, t_rows.len()];
        let single_u = vec![0, u_rows.len()];
        let batch = run_chunked(&sp, &t_rows, &u_rows, &single_t, &single_u);
        let chunked = run_chunked(&sp, &t_rows, &u_rows, &t_cuts, &u_cuts);
        // The raw (row, mask) representation is not canonical — a refined
        // class emits two disjoint-mask rows where a batch emits one
        // union-mask row — so equality is PER QUERY: each query's visible
        // multiset must match exactly.
        for q in [QueryId(0), QueryId(1)] {
            let view = |m: &HashMap<(Row, QuerySet), i64>| {
                let mut out: HashMap<Row, i64> = HashMap::new();
                for ((row, mask), w) in m {
                    if mask.contains(q) {
                        *out.entry(row.clone()).or_insert(0) += w;
                    }
                }
                out.retain(|_, w| *w != 0);
                out
            };
            prop_assert_eq!(view(&batch), view(&chunked), "query {}", q);
        }
    }

    /// Consolidation of the output never contains masks outside the
    /// subplan's query set, and per-group class masks are disjoint.
    #[test]
    fn output_masks_stay_inside_query_set(
        t_rows in delta_stream(25),
        u_rows in delta_stream(15),
    ) {
        let sp = rich_subplan();
        let out = run_chunked(
            &sp, &t_rows, &u_rows, &[0, t_rows.len()], &[0, u_rows.len()],
        );
        let mut per_group: HashMap<Value, QuerySet> = HashMap::new();
        for ((row, mask), w) in &out {
            prop_assert!(mask.is_subset_of(sp.queries));
            prop_assert!(*w > 0, "net output weights are positive");
            // Disjointness of class masks per group key.
            let key = row.get(0).clone();
            let seen = per_group.entry(key).or_insert(QuerySet::EMPTY);
            prop_assert!(!seen.intersects(*mask), "class masks must be disjoint");
            *seen = seen.union(*mask);
        }
    }

    /// The work counter is additive: the work of executing chunks separately
    /// is at least the single-batch work (eagerness never reduces total
    /// work) for insert-only streams.
    #[test]
    fn eagerness_never_cheaper_insert_only(
        n_rows in 8usize..40,
        chunks in 2usize..6,
    ) {
        let sp = rich_subplan();
        let c = catalog2();
        let both = QuerySet(0b11);
        let t_rows: Vec<DeltaRow> = (0..n_rows as i64)
            .map(|i| DeltaRow {
                row: Row::new(vec![Value::Int(i % 4), Value::Int(i % 7)]),
                weight: 1,
                mask: both,
            })
            .collect();
        let u_rows: Vec<DeltaRow> = (0..4i64)
            .map(|k| DeltaRow {
                row: Row::new(vec![Value::Int(k), Value::Int(10 + k)]),
                weight: 1,
                mask: both,
            })
            .collect();
        let work_of = |n_chunks: usize| {
            let mut ex = SubplanExecutor::new(&sp, &c, &HashMap::new(), CostWeights::default())
                .unwrap();
            let leaves = ex.leaf_paths();
            let counter = WorkCounter::new();
            for i in 0..n_chunks {
                let lo = i * t_rows.len() / n_chunks;
                let hi = (i + 1) * t_rows.len() / n_chunks;
                let mut inputs = HashMap::new();
                inputs.insert(leaves[0].0.clone(), DeltaBatch::from_rows(t_rows[lo..hi].to_vec()));
                if i == 0 {
                    inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(u_rows.clone()));
                }
                ex.execute(&mut inputs, &counter).unwrap();
            }
            counter.total().get()
        };
        prop_assert!(work_of(chunks) >= work_of(1) - 1e-6);
    }

    /// Memoized and unmemoized estimation agree for arbitrary pace vectors.
    #[test]
    fn memoized_estimation_is_pure(paces in proptest::collection::vec(1u32..8, 3)) {
        use ishare::cost::PlanEstimator;
        use ishare::mqo::{build_shared_dag, normalize, MqoConfig};
        use ishare::plan::{PlanBuilder, SharedPlan};
        let c = catalog2();
        let q0 = normalize(
            &PlanBuilder::scan(&c, "t").unwrap()
                .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?])).unwrap()
                .build(),
        );
        let q1 = normalize(
            &PlanBuilder::scan(&c, "t").unwrap()
                .select(|x| Ok(x.col("v")?.gt(Expr::lit(3i64)))).unwrap()
                .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?])).unwrap()
                .build(),
        );
        let dag = build_shared_dag(
            &[(QueryId(0), q0), (QueryId(1), q1)], &c, &MqoConfig::default(),
        ).unwrap();
        let plan = SharedPlan::from_dag(&dag, |_| false).unwrap();
        // Clamp the pace vector to the plan's subplan count and the
        // parent<=child requirement by sorting descending along topo order.
        let n = plan.len();
        let mut p = paces;
        p.resize(n, 1);
        // Force children (lower ids, built bottom-up) at least as eager as
        // parents.
        for i in (1..n).rev() {
            if p[i - 1] < p[i] {
                p[i - 1] = p[i];
            }
        }
        let mut est = PlanEstimator::new(&plan, &c, CostWeights::default()).unwrap();
        let a = est.estimate(&p).unwrap();
        let b = est.estimate_unmemoized(&p).unwrap();
        prop_assert!((a.total_work.get() - b.total_work.get()).abs() < 1e-9);
        for (q, w) in &a.final_work {
            prop_assert!((w.get() - b.final_work[q].get()).abs() < 1e-9);
        }
        // And a second memoized call is identical (pure).
        let a2 = est.estimate(&p).unwrap();
        prop_assert!((a.total_work.get() - a2.total_work.get()).abs() < 1e-12);
    }

    /// Clustering always returns a partition of the query set, and its local
    /// total work never beats the brute-force optimum.
    #[test]
    fn clustering_is_a_partition_and_brute_is_optimal(
        limits in proptest::collection::vec(0.05f64..2.0, 3),
        total in 500f64..5000f64,
    ) {
        use ishare::core::decompose::{
            brute_force_split, cluster_split, BruteOutcome, LocalProblem,
        };
        use ishare::cost::{simulate::simulate_subplan, StreamEstimate};
        use ishare_storage::ColumnStats;
        use std::collections::BTreeMap;

        let both = QuerySet(0b111);
        let tree = OpTree::node(
            TreeOp::Aggregate {
                group_by: vec![(Expr::col(0), "k".into())],
                aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")],
            },
            vec![OpTree::node(
                TreeOp::Select {
                    branches: (0..3)
                        .map(|i| SelectBranch {
                            queries: QuerySet(1 << i),
                            predicate: Expr::col(1).lt(Expr::lit(30 + 20 * i as i64)),
                        })
                        .collect(),
                },
                vec![OpTree::input(InputSource::Base(TableId(0)))],
            )],
        );
        let sp = Subplan { id: SubplanId(0), root: tree, queries: both, output_queries: QuerySet::EMPTY };
        let mut input = StreamEstimate::insert_only(
            total,
            both,
            vec![
                ColumnStats::ndv(20.0),
                ColumnStats::with_range(100.0, Value::Int(0), Value::Int(99)),
            ],
        );
        input.delete_frac = 0.2;
        let mut inputs = ishare_cost::LeafInputs::new();
        inputs.insert(vec![0, 0], input);
        let batch = simulate_subplan(&sp, 1, &inputs, &CostWeights::default()).unwrap();
        let cons: BTreeMap<QueryId, f64> = limits
            .iter()
            .enumerate()
            .map(|(i, &l)| (QueryId(i as u16), batch.private_final * l))
            .collect();
        let problem = LocalProblem {
            subplan: &sp,
            inputs: &inputs,
            local_constraints: &cons,
            weights: CostWeights::default(),
            max_pace: 30,
        };
        let split = cluster_split(&problem).unwrap();
        let mut seen = QuerySet::EMPTY;
        for (s, pace) in &split.partitions {
            prop_assert!(!s.intersects(seen));
            prop_assert!(*pace >= 1 && *pace <= 30);
            seen = seen.union(*s);
        }
        prop_assert_eq!(seen, both);
        match brute_force_split(&problem, std::time::Duration::from_secs(30)).unwrap() {
            BruteOutcome::Done(best) => {
                prop_assert!(best.local_total <= split.local_total + 1e-6);
            }
            BruteOutcome::TimedOut(_) => {}
        }
    }
}
