//! Integration tests of the optimizer's *decisions* — the behaviours the
//! paper's evaluation hinges on, checked on real (small) TPC-H data with
//! measured work.

use ishare::core::{plan_workload, Approach, FinalWorkConstraint, PlanningOptions};
use ishare::stream::execute_planned;
use ishare::tpch::{generate, query_by_name};
use ishare_common::{CostWeights, QueryId};
use std::collections::BTreeMap;

fn queries_by_name(
    data: &ishare::tpch::TpchData,
    names: &[&str],
) -> Vec<(QueryId, ishare::plan::LogicalPlan)> {
    names
        .iter()
        .enumerate()
        .map(|(i, n)| (QueryId(i as u16), query_by_name(&data.catalog, n).unwrap().plan))
        .collect()
}

#[test]
fn sharing_wins_when_constraints_are_loose() {
    // Fig. 17c left side: at relative 1.0 and 0.5, Share-Uniform and iShare
    // beat the NoShare approaches on measured work.
    let data = generate(0.004, 21).unwrap();
    let queries = queries_by_name(&data, &["qa", "qb"]);
    for frac in [1.0, 0.5] {
        let cons: BTreeMap<QueryId, FinalWorkConstraint> = [
            (QueryId(0), FinalWorkConstraint::Relative(1.0)),
            (QueryId(1), FinalWorkConstraint::Relative(frac)),
        ]
        .into_iter()
        .collect();
        let opts = PlanningOptions { max_pace: 60, ..Default::default() };
        let mut measured = BTreeMap::new();
        for a in [Approach::NoShareUniform, Approach::ShareUniform, Approach::IShare] {
            let p = plan_workload(a, &queries, &cons, &data.catalog, &opts).unwrap();
            let run = execute_planned(
                &p.plan,
                p.paces.as_slice(),
                &data.catalog,
                &data.data,
                CostWeights::default(),
            )
            .unwrap();
            measured.insert(a.label(), run.total_work.get());
        }
        assert!(measured["iShare"] < measured["NoShare-Uniform"], "frac {frac}: {measured:?}");
        assert!(
            measured["Share-Uniform"] < measured["NoShare-Uniform"],
            "frac {frac}: {measured:?}"
        );
    }
}

#[test]
fn single_pace_sharing_loses_when_constraints_tighten() {
    // Fig. 17c right side: at relative 0.1 the single-pace shared plan's
    // eager churn makes it worse than not sharing; iShare stays at least
    // competitive with the best of the two.
    let data = generate(0.004, 22).unwrap();
    let queries = queries_by_name(&data, &["qa", "qb"]);
    let cons: BTreeMap<QueryId, FinalWorkConstraint> = [
        (QueryId(0), FinalWorkConstraint::Relative(1.0)),
        (QueryId(1), FinalWorkConstraint::Relative(0.1)),
    ]
    .into_iter()
    .collect();
    let opts = PlanningOptions { max_pace: 100, ..Default::default() };
    let mut measured = BTreeMap::new();
    for a in [Approach::NoShareUniform, Approach::ShareUniform, Approach::IShare] {
        let p = plan_workload(a, &queries, &cons, &data.catalog, &opts).unwrap();
        let run = execute_planned(
            &p.plan,
            p.paces.as_slice(),
            &data.catalog,
            &data.data,
            CostWeights::default(),
        )
        .unwrap();
        measured.insert(a.label(), run.total_work.get());
    }
    assert!(measured["NoShare-Uniform"] < measured["Share-Uniform"], "{measured:?}");
    // The paper's claim for this regime is "similar performance to NoShare
    // approaches"; iShare must at least not be meaningfully worse than the
    // single-pace shared plan.
    assert!(measured["iShare"] <= measured["Share-Uniform"] * 1.05, "{measured:?}");
}

#[test]
fn decomposition_pass_changes_the_plan_under_pressure() {
    // A broad lazy query and a narrow tight one sharing a max-over-sum
    // pipeline (the Q15/Fig. 2 mechanism): the decomposition pass must
    // fire — iShare's plan differs from the w/o-unshare plan and costs
    // less, both estimated and measured.
    use ishare::plan::PlanBuilder;
    use ishare_common::{DataType, Value};
    use ishare_expr::Expr;
    use ishare_storage::{Catalog, ColumnStats, Field, Row, Schema, TableStats};

    let mut catalog = Catalog::new();
    let n_rows = 30_000usize;
    let t = catalog
        .add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats {
                row_count: n_rows as f64,
                columns: vec![
                    ColumnStats::ndv(40.0),
                    ColumnStats::with_range(2000.0, Value::Int(0), Value::Int(1999)),
                ],
            },
        )
        .unwrap();
    let broad = PlanBuilder::scan(&catalog, "t")
        .unwrap()
        .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?]))
        .unwrap()
        .aggregate(&[], |x| Ok(vec![x.max("s", "m")?]))
        .unwrap()
        .build();
    let narrow = PlanBuilder::scan(&catalog, "t")
        .unwrap()
        .select(|x| Ok(x.col("v")?.lt(Expr::lit(40i64))))
        .unwrap()
        .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?]))
        .unwrap()
        .aggregate(&[], |x| Ok(vec![x.max("s", "m")?]))
        .unwrap()
        .build();
    let queries = vec![(QueryId(0), broad), (QueryId(1), narrow)];
    let cons: BTreeMap<QueryId, FinalWorkConstraint> = [
        (QueryId(0), FinalWorkConstraint::Relative(1.0)),
        (QueryId(1), FinalWorkConstraint::Relative(0.05)),
    ]
    .into_iter()
    .collect();
    let opts = PlanningOptions { max_pace: 100, ..Default::default() };
    let without =
        plan_workload(Approach::IShareNoUnshare, &queries, &cons, &catalog, &opts).unwrap();
    let with = plan_workload(Approach::IShare, &queries, &cons, &catalog, &opts).unwrap();
    assert!(
        with.report.total_work.get() <= without.report.total_work.get(),
        "unsharing may only help: {} vs {}",
        with.report.total_work.get(),
        without.report.total_work.get()
    );
    assert!(with.plan != without.plan, "expected the decomposition pass to adopt a new plan");

    // Measured confirmation on real rows, including result equality.
    let rows: Vec<Row> = (0..n_rows as i64)
        .map(|i| Row::new(vec![Value::Int(i % 40), Value::Int(i * 7 % 2000)]))
        .collect();
    let data = [(t, rows)].into_iter().collect();
    let run_without = execute_planned(
        &without.plan,
        without.paces.as_slice(),
        &catalog,
        &data,
        CostWeights::default(),
    )
    .unwrap();
    let run_with =
        execute_planned(&with.plan, with.paces.as_slice(), &catalog, &data, CostWeights::default())
            .unwrap();
    assert!(
        run_with.total_work.get() < run_without.total_work.get(),
        "measured: decomposed {} vs shared {}",
        run_with.total_work.get(),
        run_without.total_work.get()
    );
    for q in [QueryId(0), QueryId(1)] {
        assert!(ishare::exec::approx_result_eq(
            &run_with.results[&q],
            &run_without.results[&q],
            1e-9
        ));
    }
}

#[test]
fn q15_tight_constraint_planned_and_met_by_both_noshare_variants() {
    // The Q15 discussion (Sec. 5.3) concerns paper-scale data, where the
    // MAX's arrived-value rescans dominate. At this repo's test scale the
    // robust claims are: both NoShare variants plan the query, the
    // blocking-operator cuts give Nonuniform strictly more pace knobs, and
    // both meet the measured latency goal (goal = 0.1 × measured batch
    // final work).
    let data = generate(0.004, 24).unwrap();
    let queries = queries_by_name(&data, &["q15"]);
    // Measured batch baseline.
    let loose: BTreeMap<QueryId, FinalWorkConstraint> =
        [(QueryId(0), FinalWorkConstraint::Relative(1.0))].into_iter().collect();
    let batch_opts = PlanningOptions { max_pace: 1, ..Default::default() };
    let batch =
        plan_workload(Approach::NoShareUniform, &queries, &loose, &data.catalog, &batch_opts)
            .unwrap();
    let batch_run = execute_planned(
        &batch.plan,
        batch.paces.as_slice(),
        &data.catalog,
        &data.data,
        CostWeights::default(),
    )
    .unwrap();
    let goal = batch_run.final_work[&QueryId(0)] * 0.1;

    let cons: BTreeMap<QueryId, FinalWorkConstraint> =
        [(QueryId(0), FinalWorkConstraint::Relative(0.1))].into_iter().collect();
    let opts = PlanningOptions { max_pace: 100, ..Default::default() };
    let uni =
        plan_workload(Approach::NoShareUniform, &queries, &cons, &data.catalog, &opts).unwrap();
    let non =
        plan_workload(Approach::NoShareNonuniform, &queries, &cons, &data.catalog, &opts).unwrap();
    assert!(non.plan.len() > uni.plan.len(), "blocking cuts add subplans");
    for planned in [&uni, &non] {
        let run = execute_planned(
            &planned.plan,
            planned.paces.as_slice(),
            &data.catalog,
            &data.data,
            CostWeights::default(),
        )
        .unwrap();
        assert!(
            run.final_work[&QueryId(0)] <= goal * 1.5,
            "measured final {} vs goal {goal}",
            run.final_work[&QueryId(0)]
        );
    }
}

#[test]
fn absolute_constraints_respected_by_estimates() {
    let data = generate(0.004, 25).unwrap();
    let queries = queries_by_name(&data, &["q6"]);
    // Find the batch final work first.
    let loose: BTreeMap<QueryId, FinalWorkConstraint> =
        [(QueryId(0), FinalWorkConstraint::Relative(1.0))].into_iter().collect();
    let opts = PlanningOptions { max_pace: 50, ..Default::default() };
    let base = plan_workload(Approach::IShare, &queries, &loose, &data.catalog, &opts).unwrap();
    let batch_final = base.batch_finals[&QueryId(0)];
    // Now demand an absolute bound at 30% of it.
    let abs: BTreeMap<QueryId, FinalWorkConstraint> =
        [(QueryId(0), FinalWorkConstraint::Absolute(batch_final * 0.3))].into_iter().collect();
    let planned = plan_workload(Approach::IShare, &queries, &abs, &data.catalog, &opts).unwrap();
    assert!(planned.feasible);
    assert!(
        planned.report.final_of(QueryId(0)).get() <= batch_final * 0.3 + 1e-6,
        "estimated final work violates the absolute constraint"
    );
}

#[test]
fn infeasible_workload_still_plans_and_runs() {
    // An absurd constraint is reported as infeasible (missed latency), not
    // an error, and the plan still executes correctly.
    let data = generate(0.003, 26).unwrap();
    let queries = queries_by_name(&data, &["q15"]);
    let cons: BTreeMap<QueryId, FinalWorkConstraint> =
        [(QueryId(0), FinalWorkConstraint::Absolute(1.0))].into_iter().collect();
    let opts = PlanningOptions { max_pace: 10, ..Default::default() };
    let planned = plan_workload(Approach::IShare, &queries, &cons, &data.catalog, &opts).unwrap();
    assert!(!planned.feasible);
    let run = execute_planned(
        &planned.plan,
        planned.paces.as_slice(),
        &data.catalog,
        &data.data,
        CostWeights::default(),
    )
    .unwrap();
    let expected =
        ishare::exec::batch_ref::run_logical(&queries[0].1, &data.catalog, &data.data).unwrap();
    assert!(ishare::exec::approx_result_eq(&run.results[&QueryId(0)], &expected, 1e-9));
}

/// One line capturing everything the optimizer decided: the approach's
/// paces, the plan shape, and the bit patterns of the estimated work.
/// Any nondeterminism in planning — map iteration order, float reduction
/// order, tie-breaking — shows up as a differing summary.
fn optimize_summary() -> String {
    let data = generate(0.004, 42).unwrap();
    let queries = queries_by_name(&data, &["qa", "qb", "q6"]);
    let cons: BTreeMap<QueryId, FinalWorkConstraint> =
        (0..3).map(|i| (QueryId(i), FinalWorkConstraint::Relative(0.3))).collect();
    let opts = PlanningOptions { max_pace: 100, ..Default::default() };
    let p = plan_workload(Approach::IShare, &queries, &cons, &data.catalog, &opts).unwrap();
    let finals: Vec<String> = p
        .plan
        .queries()
        .iter()
        .map(|q| format!("q{}:{:016x}", q.0, p.report.final_of(q).get().to_bits()))
        .collect();
    format!(
        "paces={:?} subplans={} feasible={} total={:016x} {}",
        p.paces,
        p.plan.len(),
        p.feasible,
        p.report.total_work.get().to_bits(),
        finals.join(" ")
    )
}

#[test]
fn optimize_is_deterministic_across_processes() {
    // HashMap iteration order varies *between processes* (random SipHash
    // keys), so in-process repetition cannot catch ordering bugs. Re-run
    // the whole planning pipeline in a child process and demand an
    // identical decision summary.
    let summary = optimize_summary();
    if std::env::var_os("ISHARE_OPT_SUMMARY_CHILD").is_some() {
        println!("SUMMARY:{summary}");
        return;
    }
    let exe = std::env::current_exe().unwrap();
    let out = std::process::Command::new(exe)
        .args(["optimize_is_deterministic_across_processes", "--exact", "--nocapture"])
        .env("ISHARE_OPT_SUMMARY_CHILD", "1")
        .output()
        .unwrap();
    assert!(out.status.success(), "child test run failed: {:?}", out);
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The libtest harness prints "test <name> ... " on the same line before
    // captured output, so match the marker anywhere in a line.
    let child = stdout
        .lines()
        .find_map(|l| l.split_once("SUMMARY:").map(|(_, s)| s))
        .unwrap_or_else(|| panic!("child printed no summary:\n{stdout}"));
    assert_eq!(summary, child, "optimizer decisions differ across processes");
}

// The adaptive drivers with an infinite drift threshold must be
// bit-identical to the static driver — the controller still observes
// every wavefront, so this proves observation itself perturbs nothing —
// and identical across 1/2/4 worker threads, for any seed and update mix.
fn check_disabled_adaptation_invariance(seed: u64, update_frac: f64) {
    use ishare::core::adapt::{AdaptController, AdaptOptions};
    use ishare::stream::{
        execute_adaptive_from_source_obs, execute_adaptive_from_source_parallel_obs,
        execute_planned_deltas, Source, SourceOptions,
    };
    use ishare::tpch::with_updates;

    let data = generate(0.004, seed).unwrap();
    let queries = queries_by_name(&data, &["qa", "qb", "q6"]);
    let cons: BTreeMap<QueryId, FinalWorkConstraint> =
        (0..3).map(|i| (QueryId(i), FinalWorkConstraint::Relative(0.3))).collect();
    let opts = PlanningOptions { max_pace: 100, ..Default::default() };
    let planned = plan_workload(Approach::IShare, &queries, &cons, &data.catalog, &opts).unwrap();
    let feeds = with_updates(&data, update_frac, seed ^ 7).unwrap();
    let w = CostWeights::default();

    let baseline =
        execute_planned_deltas(&planned.plan, planned.paces.as_slice(), &data.catalog, &feeds, w)
            .unwrap();
    for threads in [1usize, 2, 4] {
        let mut ctrl =
            AdaptController::from_planned(&planned, &data.catalog, w, AdaptOptions::disabled())
                .unwrap();
        let mut source = Source::in_order(&feeds);
        let run = if threads == 1 {
            execute_adaptive_from_source_obs(
                &planned.plan,
                &data.catalog,
                &mut source,
                w,
                SourceOptions::default(),
                &mut ctrl,
            )
        } else {
            execute_adaptive_from_source_parallel_obs(
                &planned.plan,
                &data.catalog,
                &mut source,
                w,
                threads,
                SourceOptions::default(),
                &mut ctrl,
            )
        }
        .unwrap()
        .into_result()
        .unwrap();
        assert_eq!(
            baseline.total_work.get().to_bits(),
            run.total_work.get().to_bits(),
            "threads {threads}: total work drifted"
        );
        for (q, work) in &baseline.final_work {
            assert_eq!(
                work.to_bits(),
                run.final_work[q].to_bits(),
                "threads {threads}: final work drifted for q{}",
                q.0
            );
        }
        assert_eq!(baseline.results, run.results, "threads {threads}: results drifted");
        assert!(ctrl.switches().is_empty(), "disabled controller must never switch");
        assert!(ctrl.metrics().evaluations > 0, "controller must still observe wavefronts");
    }
}

proptest::proptest! {
    // Each case plans and runs the workload four times; a few cases keep the
    // suite's wall clock sane while still varying seed and update mix.
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(3))]
    #[test]
    fn disabled_adaptation_is_invariant_across_thread_counts(
        seed in 0u64..256,
        update_frac in 0.1f64..0.6,
    ) {
        check_disabled_adaptation_invariance(seed, update_frac);
    }
}
