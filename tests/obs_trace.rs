//! Observability artifacts are well-formed: the Chrome trace produced by a
//! real run parses, carries valid span events, has non-overlapping spans per
//! worker track, and the metrics document round-trips through the JSON
//! parser with its work invariants intact.

use ishare::stream::{
    execute_from_source_obs, execute_planned_deltas_obs, execute_planned_deltas_parallel_obs,
    ObsConfig, ObsReport, Source, SourceOptions,
};
use ishare_common::{CostWeights, DataType, QueryId, QuerySet, TableId, Value};
use ishare_expr::Expr;
use ishare_plan::{AggExpr, AggFunc, DagOp, SelectBranch, SharedDag, SharedPlan};
use ishare_storage::{Catalog, Field, Row, Schema, TableStats};
use std::collections::HashMap;

type DeltaFeeds = HashMap<TableId, Vec<(Row, i64)>>;

/// A two-query plan that `from_dag` cuts into three subplans (shared
/// scan+select trunk, one aggregate per query).
fn tiny_workload() -> (Catalog, SharedPlan, DeltaFeeds) {
    let mut c = Catalog::new();
    let t = c
        .add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats::unknown(100.0, 2),
        )
        .unwrap();
    let qs = |ids: &[u16]| QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)));
    let mut d = SharedDag::new();
    let scan = d.add_node(DagOp::Scan { table: t }, vec![], qs(&[0, 1])).unwrap();
    let branches = vec![
        SelectBranch { queries: qs(&[0]), predicate: Expr::true_lit() },
        SelectBranch { queries: qs(&[1]), predicate: Expr::col(1).lt(Expr::lit(50i64)) },
    ];
    let sel = d.add_node(DagOp::Select { branches }, vec![scan], qs(&[0, 1])).unwrap();
    for q in 0..2u16 {
        let agg = d
            .add_node(
                DagOp::Aggregate {
                    group_by: vec![(Expr::col(0), "k".into())],
                    aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "a")],
                },
                vec![sel],
                qs(&[q]),
            )
            .unwrap();
        d.set_query_root(QueryId(q), agg).unwrap();
    }
    let plan = SharedPlan::from_dag(&d, |_| false).unwrap();
    let feed: Vec<(Row, i64)> =
        (0..120).map(|i| (Row::new(vec![Value::Int(i % 5), Value::Int(i % 100)]), 1i64)).collect();
    (c, plan, [(t, feed)].into_iter().collect())
}

fn run_with_obs(threads: usize) -> (f64, ObsReport) {
    let (c, plan, data) = tiny_workload();
    let paces = vec![4u32; plan.len()];
    let run = if threads == 1 {
        execute_planned_deltas_obs(
            &plan,
            &paces,
            &c,
            &data,
            CostWeights::default(),
            Some(ObsConfig::default()),
        )
        .unwrap()
    } else {
        execute_planned_deltas_parallel_obs(
            &plan,
            &paces,
            &c,
            &data,
            CostWeights::default(),
            threads,
            Some(ObsConfig::default()),
        )
        .unwrap()
    };
    (run.total_work.get(), run.obs.unwrap())
}

fn check_chrome_trace(trace: &serde_json::Value) {
    let events = trace["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty(), "trace must contain events");
    let mut spans_by_tid: HashMap<i64, Vec<(i64, i64)>> = HashMap::new();
    let mut saw_span = false;
    for ev in events {
        match ev["ph"].as_str().expect("ph field") {
            "M" => {
                assert_eq!(ev["name"].as_str(), Some("thread_name"));
                continue;
            }
            // Slack counter tracks: a timestamped value series per query.
            "C" => {
                assert!(ev["ts"].as_i64().expect("counter ts") >= 0);
                assert!(
                    ev["args"]["remaining"].as_f64().is_some(),
                    "slack counters carry `remaining`"
                );
                continue;
            }
            "X" => {}
            other => panic!("unexpected ph {other:?}"),
        }
        saw_span = true;
        let ts = ev["ts"].as_i64().expect("integer ts");
        let dur = ev["dur"].as_i64().expect("integer dur");
        let tid = ev["tid"].as_i64().expect("integer tid");
        assert!(ts >= 0 && dur >= 0, "ts/dur must be non-negative");
        assert!(ev["args"]["work"].as_f64().is_some(), "span args carry work");
        spans_by_tid.entry(tid).or_default().push((ts, ts + dur));
    }
    assert!(saw_span, "trace must contain at least one span");
    for (tid, spans) in &mut spans_by_tid {
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[1].0 >= w[0].1, "spans overlap on tid {tid}: {:?} then {:?}", w[0], w[1]);
        }
    }
}

#[test]
fn chrome_trace_is_well_formed_sequential_and_parallel() {
    for threads in [1usize, 2, 4] {
        let (_, report) = run_with_obs(threads);
        check_chrome_trace(&report.chrome_trace());
    }
}

#[test]
fn metrics_json_roundtrips_and_sums() {
    let (total, report) = run_with_obs(2);
    let doc = report.metrics_json();
    let text = serde_json::to_string_pretty(&doc).unwrap();
    let parsed = serde_json::from_str(&text).unwrap();
    assert_eq!(doc, parsed, "metrics JSON must round-trip through the parser");

    let tol = 1e-6 * total.abs().max(1.0);
    let breakdown_total = parsed["breakdown_total"].as_f64().unwrap();
    assert!((breakdown_total - total).abs() <= tol);
    let kinds = match &parsed["work_by_kind"] {
        serde_json::Value::Object(fields) => fields,
        other => panic!("work_by_kind must be an object, got {other:?}"),
    };
    let kind_sum: f64 = kinds.iter().map(|(_, v)| v.as_f64().unwrap()).sum();
    assert!((kind_sum - total).abs() <= tol, "kind sum {kind_sum} != total {total}");
}

/// A source-fed run with SLO budgets grows the trace by the new tracks —
/// ingest poll spans, per-worker operator spans, per-query slack counters —
/// and the whole document still satisfies the well-formedness checks.
#[test]
fn slo_run_adds_aux_and_slack_tracks() {
    let (c, plan, data) = tiny_workload();
    let paces = vec![4u32; plan.len()];
    let budgets: std::collections::BTreeMap<QueryId, f64> =
        [(QueryId(0), 1e6), (QueryId(1), 1e6)].into_iter().collect();
    let mut source = Source::in_order(&data);
    let run = execute_from_source_obs(
        &plan,
        &paces,
        &c,
        &mut source,
        CostWeights::default(),
        SourceOptions { obs: Some(ObsConfig::default()), slo: Some(budgets), ..Default::default() },
    )
    .unwrap()
    .into_result()
    .unwrap();
    let report = run.obs.unwrap();

    let ledger = report.slack.as_ref().expect("slo budgets produce a ledger");
    ledger.verify().unwrap();
    assert_eq!(ledger.misses(), 0, "1e6 budgets are unmissable on 120 rows");
    assert!(!report.trace.aux_spans().is_empty(), "ingest/operator aux spans recorded");
    assert!(!report.trace.slack_points().is_empty(), "slack counter points recorded");

    let doc = report.chrome_trace();
    check_chrome_trace(&doc);
    let events = doc["traceEvents"].as_array().unwrap();
    let count_ph = |ph: &str| events.iter().filter(|e| e["ph"].as_str() == Some(ph)).count();
    assert!(count_ph("C") > 0, "trace carries slack counter events");
    let cats: Vec<&str> = events.iter().filter_map(|e| e["cat"].as_str()).collect();
    for want in ["ingest", "operator", "slo"] {
        assert!(cats.contains(&want), "trace lacks category {want:?}");
    }
}

/// The deterministic metrics snapshot must serialize to the same bytes in a
/// different process: HashMap iteration order varies between processes
/// (random SipHash keys), and the snapshot's wall-clock filter plus BTreeMap
/// ordering are what make cross-run diffs meaningful.
#[test]
fn deterministic_snapshot_is_byte_identical_across_processes() {
    let (_, report) = run_with_obs(2);
    let snapshot = serde_json::to_string_pretty(&report.metrics.snapshot_deterministic()).unwrap();
    if std::env::var_os("ISHARE_OBS_SNAPSHOT_CHILD").is_some() {
        println!("SNAPSHOT_LEN:{}", snapshot.len());
        println!("SNAPSHOT_FNV:{:016x}", fnv(&snapshot));
        return;
    }
    let exe = std::env::current_exe().unwrap();
    let out = std::process::Command::new(exe)
        .args([
            "deterministic_snapshot_is_byte_identical_across_processes",
            "--exact",
            "--nocapture",
        ])
        .env("ISHARE_OBS_SNAPSHOT_CHILD", "1")
        .output()
        .unwrap();
    assert!(out.status.success(), "child test run failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let find = |marker: &str| {
        stdout
            .lines()
            .find_map(|l| l.split_once(marker).map(|(_, s)| s.to_string()))
            .unwrap_or_else(|| panic!("child printed no {marker}:\n{stdout}"))
    };
    assert_eq!(find("SNAPSHOT_LEN:"), format!("{}", snapshot.len()));
    assert_eq!(find("SNAPSHOT_FNV:"), format!("{:016x}", fnv(&snapshot)));
}

fn fnv(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[test]
fn trace_roundtrips_through_parser() {
    let (_, report) = run_with_obs(1);
    let doc = report.chrome_trace();
    let text = serde_json::to_string_pretty(&doc).unwrap();
    let parsed = serde_json::from_str(&text).unwrap();
    assert_eq!(doc, parsed);
}
