//! Observability artifacts are well-formed: the Chrome trace produced by a
//! real run parses, carries valid span events, has non-overlapping spans per
//! worker track, and the metrics document round-trips through the JSON
//! parser with its work invariants intact.

use ishare::stream::{
    execute_planned_deltas_obs, execute_planned_deltas_parallel_obs, ObsConfig, ObsReport,
};
use ishare_common::{CostWeights, DataType, QueryId, QuerySet, TableId, Value};
use ishare_expr::Expr;
use ishare_plan::{AggExpr, AggFunc, DagOp, SelectBranch, SharedDag, SharedPlan};
use ishare_storage::{Catalog, Field, Row, Schema, TableStats};
use std::collections::HashMap;

type DeltaFeeds = HashMap<TableId, Vec<(Row, i64)>>;

/// A two-query plan that `from_dag` cuts into three subplans (shared
/// scan+select trunk, one aggregate per query).
fn tiny_workload() -> (Catalog, SharedPlan, DeltaFeeds) {
    let mut c = Catalog::new();
    let t = c
        .add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats::unknown(100.0, 2),
        )
        .unwrap();
    let qs = |ids: &[u16]| QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)));
    let mut d = SharedDag::new();
    let scan = d.add_node(DagOp::Scan { table: t }, vec![], qs(&[0, 1])).unwrap();
    let branches = vec![
        SelectBranch { queries: qs(&[0]), predicate: Expr::true_lit() },
        SelectBranch { queries: qs(&[1]), predicate: Expr::col(1).lt(Expr::lit(50i64)) },
    ];
    let sel = d.add_node(DagOp::Select { branches }, vec![scan], qs(&[0, 1])).unwrap();
    for q in 0..2u16 {
        let agg = d
            .add_node(
                DagOp::Aggregate {
                    group_by: vec![(Expr::col(0), "k".into())],
                    aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "a")],
                },
                vec![sel],
                qs(&[q]),
            )
            .unwrap();
        d.set_query_root(QueryId(q), agg).unwrap();
    }
    let plan = SharedPlan::from_dag(&d, |_| false).unwrap();
    let feed: Vec<(Row, i64)> =
        (0..120).map(|i| (Row::new(vec![Value::Int(i % 5), Value::Int(i % 100)]), 1i64)).collect();
    (c, plan, [(t, feed)].into_iter().collect())
}

fn run_with_obs(threads: usize) -> (f64, ObsReport) {
    let (c, plan, data) = tiny_workload();
    let paces = vec![4u32; plan.len()];
    let run = if threads == 1 {
        execute_planned_deltas_obs(
            &plan,
            &paces,
            &c,
            &data,
            CostWeights::default(),
            Some(ObsConfig::default()),
        )
        .unwrap()
    } else {
        execute_planned_deltas_parallel_obs(
            &plan,
            &paces,
            &c,
            &data,
            CostWeights::default(),
            threads,
            Some(ObsConfig::default()),
        )
        .unwrap()
    };
    (run.total_work.get(), run.obs.unwrap())
}

fn check_chrome_trace(trace: &serde_json::Value) {
    let events = trace["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty(), "trace must contain events");
    let mut spans_by_tid: HashMap<i64, Vec<(i64, i64)>> = HashMap::new();
    let mut saw_span = false;
    for ev in events {
        match ev["ph"].as_str().expect("ph field") {
            "M" => {
                assert_eq!(ev["name"].as_str(), Some("thread_name"));
                continue;
            }
            "X" => {}
            other => panic!("unexpected ph {other:?}"),
        }
        saw_span = true;
        let ts = ev["ts"].as_i64().expect("integer ts");
        let dur = ev["dur"].as_i64().expect("integer dur");
        let tid = ev["tid"].as_i64().expect("integer tid");
        assert!(ts >= 0 && dur >= 0, "ts/dur must be non-negative");
        assert!(ev["args"]["work"].as_f64().is_some(), "span args carry work");
        spans_by_tid.entry(tid).or_default().push((ts, ts + dur));
    }
    assert!(saw_span, "trace must contain at least one span");
    for (tid, spans) in &mut spans_by_tid {
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[1].0 >= w[0].1, "spans overlap on tid {tid}: {:?} then {:?}", w[0], w[1]);
        }
    }
}

#[test]
fn chrome_trace_is_well_formed_sequential_and_parallel() {
    for threads in [1usize, 2, 4] {
        let (_, report) = run_with_obs(threads);
        check_chrome_trace(&report.chrome_trace());
    }
}

#[test]
fn metrics_json_roundtrips_and_sums() {
    let (total, report) = run_with_obs(2);
    let doc = report.metrics_json();
    let text = serde_json::to_string_pretty(&doc).unwrap();
    let parsed = serde_json::from_str(&text).unwrap();
    assert_eq!(doc, parsed, "metrics JSON must round-trip through the parser");

    let tol = 1e-6 * total.abs().max(1.0);
    let breakdown_total = parsed["breakdown_total"].as_f64().unwrap();
    assert!((breakdown_total - total).abs() <= tol);
    let kinds = match &parsed["work_by_kind"] {
        serde_json::Value::Object(fields) => fields,
        other => panic!("work_by_kind must be an object, got {other:?}"),
    };
    let kind_sum: f64 = kinds.iter().map(|(_, v)| v.as_f64().unwrap()).sum();
    assert!((kind_sum - total).abs() <= tol, "kind sum {kind_sum} != total {total}");
}

#[test]
fn trace_roundtrips_through_parser() {
    let (_, report) = run_with_obs(1);
    let doc = report.chrome_trace();
    let text = serde_json::to_string_pretty(&doc).unwrap();
    let parsed = serde_json::from_str(&text).unwrap();
    assert_eq!(doc, parsed);
}
