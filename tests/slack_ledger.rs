//! The slack ledger audits, bit for bit, the same residual-budget
//! arithmetic the adaptive controller plans with.
//!
//! `core::adapt` computes `R(q) = headroom · max(0, L(q) − charged_final)`
//! at every wavefront from quantities folded in global schedule order; the
//! ledger computes `remaining = max(0, budget − consumed)` from the same
//! fold. At headroom 1 the two must be `to_bits`-equal on every wavefront
//! of every query — across worker-thread counts, operator-state partition
//! counts, and with observability on or off (the off runs must reproduce
//! the identical work numbers the ledger was derived from).

use ishare::core::adapt::{AdaptController, AdaptOptions};
use ishare::core::{plan_workload, Approach, FinalWorkConstraint, PlanningOptions};
use ishare::stream::{
    execute_adaptive_from_source_obs, execute_adaptive_from_source_parallel_obs, ObsConfig,
    RunResult, SlackLedger, Source, SourceOptions,
};
use ishare::tpch::{generate, query_by_name, with_updates};
use ishare_common::{CostWeights, QueryId};
use std::collections::BTreeMap;

/// Exercise every wavefront: observe-only adaptation (infinite drift
/// threshold) at headroom 1, so the controller's residual log spans the
/// whole run and `R(q)` carries no headroom scaling.
fn observer_opts() -> AdaptOptions {
    AdaptOptions { headroom: 1.0, ..AdaptOptions::disabled() }
}

fn run_adaptive(
    seed: u64,
    update_frac: f64,
    threads: usize,
    partitions: usize,
    obs: bool,
) -> (RunResult, AdaptController) {
    let data = generate(0.004, seed).unwrap();
    let names = ["qa", "qb", "q6"];
    let queries: Vec<_> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (QueryId(i as u16), query_by_name(&data.catalog, n).unwrap().plan))
        .collect();
    let cons: BTreeMap<QueryId, FinalWorkConstraint> =
        (0..names.len()).map(|i| (QueryId(i as u16), FinalWorkConstraint::Relative(0.3))).collect();
    let opts = PlanningOptions { max_pace: 100, ..Default::default() };
    let planned = plan_workload(Approach::IShare, &queries, &cons, &data.catalog, &opts).unwrap();
    let feeds = with_updates(&data, update_frac, seed ^ 7).unwrap();
    let w = CostWeights::default();

    let mut ctrl =
        AdaptController::from_planned(&planned, &data.catalog, w, observer_opts()).unwrap();
    let mut source = Source::in_order(&feeds);
    // No explicit `slo`: the adaptive entry points default the ledger's
    // budgets to the controller's constraints — the L(q) the residuals use.
    let src_opts =
        SourceOptions { obs: obs.then(ObsConfig::default), partitions, ..Default::default() };
    let run = if threads == 1 {
        execute_adaptive_from_source_obs(
            &planned.plan,
            &data.catalog,
            &mut source,
            w,
            src_opts,
            &mut ctrl,
        )
    } else {
        execute_adaptive_from_source_parallel_obs(
            &planned.plan,
            &data.catalog,
            &mut source,
            w,
            threads,
            src_opts,
            &mut ctrl,
        )
    }
    .unwrap()
    .into_result()
    .unwrap();
    (run, ctrl)
}

/// The heart of the suite: every ledger sample's `remaining` equals the
/// controller's residual budget for that query at that wavefront, bitwise.
fn assert_ledger_matches_residuals(ledger: &SlackLedger, ctrl: &AdaptController, label: &str) {
    let log = ctrl.residual_log();
    assert_eq!(ledger.fronts(), log.len(), "{label}: ledger fronts != controller observations");
    for (q, slot) in ledger.queries() {
        assert_eq!(
            slot.budget.to_bits(),
            ctrl.constraints()[&q].to_bits(),
            "{label}: q{} budget != controller L(q)",
            q.0
        );
        for (sample, front) in slot.samples.iter().zip(log) {
            assert_eq!(sample.wavefront as usize, front.wavefront, "{label}: front order");
            assert_eq!((sample.num, sample.den), (front.num, front.den), "{label}: arrival frac");
            assert_eq!(
                sample.remaining.to_bits(),
                front.residuals[&q].to_bits(),
                "{label}: q{} wavefront {}: ledger remaining {} != residual budget {}",
                q.0,
                front.wavefront,
                sample.remaining,
                front.residuals[&q],
            );
        }
    }
}

fn assert_same_ledger(a: &SlackLedger, b: &SlackLedger, label: &str) {
    assert_eq!(a, b, "{label}: ledgers differ");
    for ((qa, sa), (_, sb)) in a.queries().zip(b.queries()) {
        for (x, y) in sa.samples.iter().zip(&sb.samples) {
            assert_eq!(
                x.remaining.to_bits(),
                y.remaining.to_bits(),
                "{label}: q{} front {} remaining bits",
                qa.0,
                x.wavefront
            );
            assert_eq!(x.consumed.to_bits(), y.consumed.to_bits(), "{label}: consumed bits");
            assert_eq!(
                x.charged_total.to_bits(),
                y.charged_total.to_bits(),
                "{label}: charged bits"
            );
            assert_eq!(x.front_work.to_bits(), y.front_work.to_bits(), "{label}: front_work bits");
        }
    }
}

fn check_case(seed: u64, update_frac: f64) {
    // Reference: sequential, unpartitioned, obs on.
    let (run_ref, ctrl_ref) = run_adaptive(seed, update_frac, 1, 1, true);
    let ledger_ref = run_ref.obs.as_ref().unwrap().slack.clone().expect("adaptive run has ledger");
    ledger_ref.verify().unwrap();
    assert_ledger_matches_residuals(&ledger_ref, &ctrl_ref, "reference");
    // The fold's consumed must be the driver's measured final work.
    for (q, slot) in ledger_ref.queries() {
        assert_eq!(slot.consumed().to_bits(), run_ref.final_work[&q].to_bits());
    }

    // Obs off: identical work numbers, no report — observation is free.
    let (run_off, ctrl_off) = run_adaptive(seed, update_frac, 1, 1, false);
    assert!(run_off.obs.is_none());
    assert_eq!(run_ref.total_work.get().to_bits(), run_off.total_work.get().to_bits());
    for (q, w) in &run_ref.final_work {
        assert_eq!(w.to_bits(), run_off.final_work[q].to_bits(), "obs off: q{}", q.0);
    }
    // The controller saw the same residuals whether or not obs was on.
    for (a, b) in ctrl_ref.residual_log().iter().zip(ctrl_off.residual_log()) {
        for (q, r) in &a.residuals {
            assert_eq!(r.to_bits(), b.residuals[q].to_bits(), "obs off residuals: q{}", q.0);
        }
    }

    // Every thread count × partition count reproduces the identical ledger.
    for threads in [1usize, 2, 4] {
        for partitions in [1usize, 2, 4] {
            if (threads, partitions) == (1, 1) {
                continue;
            }
            let label = format!("threads {threads} × partitions {partitions}");
            let (run, ctrl) = run_adaptive(seed, update_frac, threads, partitions, true);
            assert_eq!(
                run_ref.total_work.get().to_bits(),
                run.total_work.get().to_bits(),
                "{label}: total work"
            );
            let ledger = run.obs.as_ref().unwrap().slack.clone().unwrap();
            ledger.verify().unwrap();
            assert_ledger_matches_residuals(&ledger, &ctrl, &label);
            assert_same_ledger(&ledger_ref, &ledger, &label);
        }
    }
}

proptest::proptest! {
    // Each case executes the workload 11 times (reference + obs-off + the
    // thread × partition grid); a few cases keep the suite's wall clock
    // sane while still varying seed and update mix.
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(3))]
    #[test]
    fn ledger_remaining_is_bitwise_equal_to_adapt_residuals(
        seed in 0u64..256,
        update_frac in 0.1f64..0.6,
    ) {
        check_case(seed, update_frac);
    }
}

/// A pinned single case so plain `cargo test` failures reproduce without
/// proptest shrinking.
#[test]
fn ledger_matches_residuals_pinned_case() {
    check_case(42, 0.4);
}
