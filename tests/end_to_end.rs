//! End-to-end integration tests: queries → MQO → iShare optimization →
//! paced execution, checked against the independent reference executor.
//!
//! These are the repo's strongest correctness guarantees: *every* approach,
//! at *any* pace configuration the optimizers produce, must return results
//! identical to naive single-query batch evaluation.

use ishare::core::{plan_workload, Approach, FinalWorkConstraint, PlanningOptions};
use ishare::exec::approx_result_eq;
use ishare::exec::batch_ref::run_logical;
use ishare::stream::execute_planned;
use ishare::tpch::{generate, query_by_name};
use ishare_common::{CostWeights, QueryId};
use std::collections::BTreeMap;

fn small_workload(
    data: &ishare::tpch::TpchData,
    names: &[&str],
) -> Vec<(QueryId, ishare::plan::LogicalPlan)> {
    names
        .iter()
        .enumerate()
        .map(|(i, n)| (QueryId(i as u16), query_by_name(&data.catalog, n).unwrap().plan))
        .collect()
}

fn rel_constraints(n: usize, frac: f64) -> BTreeMap<QueryId, FinalWorkConstraint> {
    (0..n).map(|i| (QueryId(i as u16), FinalWorkConstraint::Relative(frac))).collect()
}

/// Execute one planned workload and assert results equal the reference.
fn check_results_match_reference(
    approach: Approach,
    names: &[&str],
    frac: f64,
    data: &ishare::tpch::TpchData,
) {
    let queries = small_workload(data, names);
    let cons = rel_constraints(names.len(), frac);
    let opts = PlanningOptions { max_pace: 12, ..Default::default() };
    let planned = plan_workload(approach, &queries, &cons, &data.catalog, &opts)
        .unwrap_or_else(|e| panic!("{} planning failed: {e}", approach.label()));
    planned.paces.respects_plan(&planned.plan).unwrap();
    let run = execute_planned(
        &planned.plan,
        planned.paces.as_slice(),
        &data.catalog,
        &data.data,
        CostWeights::default(),
    )
    .unwrap_or_else(|e| panic!("{} execution failed: {e}", approach.label()));
    for (i, name) in names.iter().enumerate() {
        let q = QueryId(i as u16);
        let expected = run_logical(&queries[i].1, &data.catalog, &data.data).unwrap();
        assert!(
            approx_result_eq(&run.results[&q], &expected, 1e-9),
            "{}: query {name} differs from reference (paces {})",
            approach.label(),
            planned.paces
        );
    }
}

#[test]
fn qa_qb_all_approaches_match_reference() {
    let data = generate(0.002, 77).unwrap();
    for approach in [
        Approach::NoShareUniform,
        Approach::NoShareNonuniform,
        Approach::ShareUniform,
        Approach::IShareNoUnshare,
        Approach::IShare,
    ] {
        check_results_match_reference(approach, &["qa", "qb"], 0.4, &data);
    }
}

#[test]
fn mixed_tpch_queries_match_reference_under_ishare() {
    let data = generate(0.002, 78).unwrap();
    check_results_match_reference(Approach::IShare, &["q1", "q6", "q3"], 0.3, &data);
}

#[test]
fn q15_variant_pair_matches_reference() {
    // The non-incrementable max-over-sum query together with an
    // incrementable one — the PairB shape of Fig. 17b.
    let data = generate(0.002, 79).unwrap();
    check_results_match_reference(Approach::IShare, &["q7", "q15"], 0.5, &data);
    check_results_match_reference(Approach::ShareUniform, &["q7", "q15"], 0.5, &data);
}

#[test]
fn tight_constraints_reduce_measured_final_work() {
    let data = generate(0.002, 80).unwrap();
    let queries = small_workload(&data, &["qa", "qb"]);
    let opts = PlanningOptions { max_pace: 20, ..Default::default() };

    let loose =
        plan_workload(Approach::IShare, &queries, &rel_constraints(2, 1.0), &data.catalog, &opts)
            .unwrap();
    let tight =
        plan_workload(Approach::IShare, &queries, &rel_constraints(2, 0.2), &data.catalog, &opts)
            .unwrap();

    let run_loose = execute_planned(
        &loose.plan,
        loose.paces.as_slice(),
        &data.catalog,
        &data.data,
        CostWeights::default(),
    )
    .unwrap();
    let run_tight = execute_planned(
        &tight.plan,
        tight.paces.as_slice(),
        &data.catalog,
        &data.data,
        CostWeights::default(),
    )
    .unwrap();

    for q in [QueryId(0), QueryId(1)] {
        assert!(
            run_tight.final_work[&q] < run_loose.final_work[&q],
            "query {q}: tight {} !< loose {}",
            run_tight.final_work[&q],
            run_loose.final_work[&q]
        );
    }
    // And the laziness is paid for with less total work.
    assert!(run_loose.total_work.get() <= run_tight.total_work.get());
}

#[test]
fn ishare_total_work_not_worse_than_share_uniform_measured() {
    // Measured (not just estimated) total work: iShare must not lose to
    // Share-Uniform on the Fig. 2 pair with asymmetric constraints.
    let data = generate(0.002, 81).unwrap();
    let queries = small_workload(&data, &["qa", "qb"]);
    let mut cons = BTreeMap::new();
    cons.insert(QueryId(0), FinalWorkConstraint::Relative(1.0));
    cons.insert(QueryId(1), FinalWorkConstraint::Relative(0.1));
    let opts = PlanningOptions { max_pace: 20, ..Default::default() };

    let su = plan_workload(Approach::ShareUniform, &queries, &cons, &data.catalog, &opts).unwrap();
    let is = plan_workload(Approach::IShare, &queries, &cons, &data.catalog, &opts).unwrap();
    let run_su = execute_planned(
        &su.plan,
        su.paces.as_slice(),
        &data.catalog,
        &data.data,
        CostWeights::default(),
    )
    .unwrap();
    let run_is = execute_planned(
        &is.plan,
        is.paces.as_slice(),
        &data.catalog,
        &data.data,
        CostWeights::default(),
    )
    .unwrap();
    assert!(
        run_is.total_work.get() <= run_su.total_work.get() * 1.10,
        "iShare measured {} vs Share-Uniform {}",
        run_is.total_work.get(),
        run_su.total_work.get()
    );
}

#[test]
fn all_22_tpch_queries_match_reference_under_ishare() {
    // The flagship correctness check: the entire TPC-H workload, shared and
    // paced by the full optimizer, must reproduce every query's reference
    // result.
    let data = generate(0.002, 99).unwrap();
    let defs = ishare::tpch::all_queries(&data.catalog).unwrap();
    let queries: Vec<(QueryId, ishare::plan::LogicalPlan)> =
        defs.iter().enumerate().map(|(i, d)| (QueryId(i as u16), d.plan.clone())).collect();
    let cons = rel_constraints(queries.len(), 0.5);
    let opts = PlanningOptions { max_pace: 8, partial: false, ..Default::default() };
    let planned = plan_workload(Approach::IShare, &queries, &cons, &data.catalog, &opts).unwrap();
    planned.paces.respects_plan(&planned.plan).unwrap();
    let run = execute_planned(
        &planned.plan,
        planned.paces.as_slice(),
        &data.catalog,
        &data.data,
        CostWeights::default(),
    )
    .unwrap();
    for (i, d) in defs.iter().enumerate() {
        let q = QueryId(i as u16);
        let expected = run_logical(&d.plan, &data.catalog, &data.data).unwrap();
        assert!(
            approx_result_eq(&run.results[&q], &expected, 1e-9),
            "{} differs from reference under the shared paced plan",
            d.name
        );
    }
}

#[test]
fn update_streams_match_reference_over_net_rows() {
    // The engine's delete/update paths end to end: a quarter of lineitem
    // and orders arrivals are in-place updates (delete + insert). The final
    // results must equal batch evaluation over the NET rows, at any pace.
    use ishare::stream::execute_planned_deltas;
    use ishare::tpch::{net_rows, with_updates};
    use std::collections::HashMap;

    let data = generate(0.002, 55).unwrap();
    let feeds = with_updates(&data, 0.25, 7).unwrap();
    let net: HashMap<_, _> = feeds.iter().map(|(t, f)| (*t, net_rows(f))).collect();

    let queries = small_workload(&data, &["q1", "q3", "qa"]);
    let cons = rel_constraints(queries.len(), 0.3);
    let opts = PlanningOptions { max_pace: 10, ..Default::default() };
    let planned = plan_workload(Approach::IShare, &queries, &cons, &data.catalog, &opts).unwrap();
    let run = execute_planned_deltas(
        &planned.plan,
        planned.paces.as_slice(),
        &data.catalog,
        &feeds,
        CostWeights::default(),
    )
    .unwrap();
    for (i, (q, plan)) in queries.iter().enumerate() {
        let expected = run_logical(plan, &data.catalog, &net).unwrap();
        assert!(
            approx_result_eq(&run.results[q], &expected, 1e-9),
            "query #{i} differs from net-rows reference under updates"
        );
    }
}
