//! Differential tests: the parallel driver is bit-identical to the
//! sequential reference driver.
//!
//! Random small shared plans (a shared scan+select trunk fanning out to one
//! aggregate subplan per query, covering SUM/COUNT/MIN/MAX), random delta
//! feeds with inserts and deletes (including deletes of a group's current
//! extremum, which trigger MIN/MAX rescans), and random pace vectors: at 1,
//! 2 and 4 worker threads the parallel driver must produce the same
//! `QueryResult`s, bitwise-equal `total_work` and per-query `final_work`,
//! and the same execution count as the sequential driver.

use ishare::core::{plan_workload, Approach, FinalWorkConstraint, PlanningOptions};
use ishare::stream::{
    execute_planned_deltas, execute_planned_deltas_obs, execute_planned_deltas_parallel,
    execute_planned_deltas_parallel_obs, ObsConfig, RunResult,
};
use ishare::tpch::{generate, queries::sharing_friendly_queries};
use ishare_common::{CostWeights, DataType, QueryId, QuerySet, TableId, Value};
use ishare_expr::Expr;
use ishare_plan::{AggExpr, AggFunc, DagOp, SelectBranch, SharedDag, SharedPlan};
use ishare_storage::{Catalog, Field, Row, Schema, TableStats};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

fn qs(ids: &[u16]) -> QuerySet {
    QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "t",
        Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
        TableStats::unknown(100.0, 2),
    )
    .unwrap();
    c
}

/// Shared trunk (scan → marking select) feeding one aggregate subplan per
/// query. `from_dag` cuts at the multi-parent select, yielding `1 + n`
/// subplans.
fn build_plan(c: &Catalog, n_queries: usize, cutoffs: &[i64], funcs: &[usize]) -> SharedPlan {
    let t = c.table_by_name("t").unwrap().id;
    let all: Vec<u16> = (0..n_queries as u16).collect();
    let mut d = SharedDag::new();
    let scan = d.add_node(DagOp::Scan { table: t }, vec![], qs(&all)).unwrap();
    let branches = (0..n_queries)
        .map(|q| SelectBranch {
            queries: qs(&[q as u16]),
            predicate: if cutoffs[q % cutoffs.len()] >= 95 {
                Expr::true_lit()
            } else {
                Expr::col(1).lt(Expr::lit(cutoffs[q % cutoffs.len()]))
            },
        })
        .collect();
    let sel = d.add_node(DagOp::Select { branches }, vec![scan], qs(&all)).unwrap();
    for q in 0..n_queries {
        let func =
            [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max][funcs[q % funcs.len()] % 4];
        let agg = d
            .add_node(
                DagOp::Aggregate {
                    group_by: vec![(Expr::col(0), "k".into())],
                    aggs: vec![AggExpr::new(func, Expr::col(1), "a")],
                },
                vec![sel],
                qs(&[q as u16]),
            )
            .unwrap();
        d.set_query_root(QueryId(q as u16), agg).unwrap();
    }
    SharedPlan::from_dag(&d, |_| false).unwrap()
}

/// Turn feed specs into a delta feed that never over-retracts. A delete
/// with `extremum == true` removes the live row with the extreme `v`
/// (alternating max/min), exercising the MIN/MAX rescan path.
fn build_feed(spec: &[(i64, i64, bool, bool)]) -> Vec<(Row, i64)> {
    let v_of = |r: &Row| match r.get(1) {
        Value::Int(v) => *v,
        _ => 0,
    };
    let mut live: Vec<Row> = Vec::new();
    let mut out = Vec::new();
    for &(k, v, is_delete, extremum) in spec {
        if is_delete && !live.is_empty() {
            let idx = if extremum {
                let pick_max = out.len() % 2 == 0;
                let (idx, _) = live
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, r)| if pick_max { v_of(r) } else { -v_of(r) })
                    .unwrap();
                idx
            } else {
                live.len() - 1
            };
            let row = live.swap_remove(idx);
            out.push((row, -1));
        } else {
            let row = Row::new(vec![Value::Int(k), Value::Int(v)]);
            live.push(row.clone());
            out.push((row, 1));
        }
    }
    out
}

fn assert_bit_identical(
    seq: &RunResult,
    par: &RunResult,
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&seq.results, &par.results, "{}: query results differ", label);
    prop_assert_eq!(
        seq.total_work.get().to_bits(),
        par.total_work.get().to_bits(),
        "{}: total_work differs ({} vs {})",
        label,
        seq.total_work.get(),
        par.total_work.get()
    );
    prop_assert_eq!(&seq.final_work, &par.final_work, "{}: final_work differs", label);
    for (q, w) in &seq.final_work {
        prop_assert_eq!(
            w.to_bits(),
            par.final_work[q].to_bits(),
            "{}: final_work bits differ for {}",
            label,
            q
        );
    }
    prop_assert_eq!(seq.executions, par.executions, "{}: executions differ", label);
    prop_assert_eq!(
        &seq.executions_per_query,
        &par.executions_per_query,
        "{}: per-query execution counts differ",
        label
    );
    Ok(())
}

/// The opt-in instrumentation must be passive: same run, obs on, must stay
/// bit-identical, and the per-operator × per-subplan breakdown must sum back
/// to the flat total (same terms regrouped, so only float re-association
/// separates them).
fn assert_obs_consistent(run: &RunResult, label: &str) -> Result<(), TestCaseError> {
    let report = run.obs.as_ref().expect("obs requested");
    let total = run.total_work.get();
    let tol = 1e-6 * total.abs().max(1.0);
    prop_assert!(
        (report.breakdown_total() - total).abs() <= tol,
        "{}: breakdown {} != total_work {}",
        label,
        report.breakdown_total(),
        total
    );
    prop_assert!(
        (report.total_work - total).abs() <= tol,
        "{}: report.total_work {} != total_work {}",
        label,
        report.total_work,
        total
    );
    let execs: u64 = report.executions_by_subplan.iter().map(|e| e.total()).sum();
    prop_assert_eq!(execs as usize, run.executions, "{}: execution counts differ", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel at 1/2/4 threads ≡ sequential, over random plans, random
    /// insert+delete feeds, and random pace vectors.
    #[test]
    fn parallel_matches_sequential(
        n_queries in 2usize..5,
        cutoffs in proptest::collection::vec(5i64..100, 4),
        funcs in proptest::collection::vec(0usize..4, 4),
        spec in proptest::collection::vec(
            (0i64..6, 0i64..100, proptest::bool::weighted(0.3), proptest::bool::ANY),
            1..50,
        ),
        paces_seed in proptest::collection::vec(1u32..7, 8),
    ) {
        let c = catalog();
        let plan = build_plan(&c, n_queries, &cutoffs, &funcs);
        let t = c.table_by_name("t").unwrap().id;
        let feed = build_feed(&spec);
        let data: HashMap<TableId, Vec<(Row, i64)>> = [(t, feed)].into_iter().collect();
        let mut paces = paces_seed;
        paces.resize(plan.len(), 1);
        let paces = &paces[..plan.len()];

        let seq = execute_planned_deltas(&plan, paces, &c, &data, CostWeights::default())
            .unwrap();
        let seq_obs = execute_planned_deltas_obs(
            &plan, paces, &c, &data, CostWeights::default(), Some(ObsConfig::default()),
        )
        .unwrap();
        assert_bit_identical(&seq, &seq_obs, "sequential obs-on")?;
        assert_obs_consistent(&seq_obs, "sequential obs-on")?;
        for threads in [1usize, 2, 4] {
            let par = execute_planned_deltas_parallel(
                &plan, paces, &c, &data, CostWeights::default(), threads,
            )
            .unwrap();
            assert_bit_identical(&seq, &par, &format!("threads={threads}"))?;
            let par_obs = execute_planned_deltas_parallel_obs(
                &plan, paces, &c, &data, CostWeights::default(), threads,
                Some(ObsConfig::default()),
            )
            .unwrap();
            assert_bit_identical(&seq, &par_obs, &format!("threads={threads} obs-on"))?;
            assert_obs_consistent(&par_obs, &format!("threads={threads} obs-on"))?;
        }
    }
}

/// The acceptance-level check: a multi-query TPC-H workload planned by
/// iShare itself, run sequentially and at 2/4 worker threads.
#[test]
fn tpch_workload_parallel_matches_sequential() {
    let tpch = generate(0.002, 11).unwrap();
    let queries: Vec<(QueryId, _)> = sharing_friendly_queries(&tpch.catalog)
        .unwrap()
        .into_iter()
        .take(6)
        .enumerate()
        .map(|(i, q)| (QueryId(i as u16), q.plan))
        .collect();
    let cons: BTreeMap<QueryId, FinalWorkConstraint> =
        queries.iter().map(|(q, _)| (*q, FinalWorkConstraint::Relative(0.25))).collect();
    let opts = PlanningOptions { max_pace: 8, ..Default::default() };
    let planned = plan_workload(Approach::IShare, &queries, &cons, &tpch.catalog, &opts).unwrap();
    let feeds: HashMap<TableId, Vec<(Row, i64)>> = tpch
        .data
        .iter()
        .map(|(t, rows)| (*t, rows.iter().map(|r| (r.clone(), 1i64)).collect()))
        .collect();

    let seq = execute_planned_deltas(
        &planned.plan,
        planned.paces.as_slice(),
        &tpch.catalog,
        &feeds,
        CostWeights::default(),
    )
    .unwrap();
    for threads in [2usize, 4] {
        let par = execute_planned_deltas_parallel_obs(
            &planned.plan,
            planned.paces.as_slice(),
            &tpch.catalog,
            &feeds,
            CostWeights::default(),
            threads,
            Some(ObsConfig::default()),
        )
        .unwrap();
        assert_eq!(seq.results, par.results, "threads={threads}");
        assert_eq!(
            seq.total_work.get().to_bits(),
            par.total_work.get().to_bits(),
            "threads={threads}: total work must be bit-identical even with obs on"
        );
        assert_eq!(seq.final_work, par.final_work, "threads={threads}");
        assert_eq!(seq.executions, par.executions, "threads={threads}");
        let report = par.obs.as_ref().unwrap();
        let total = par.total_work.get();
        assert!(
            (report.breakdown_total() - total).abs() <= 1e-6 * total.abs().max(1.0),
            "threads={threads}: breakdown {} != total {total}",
            report.breakdown_total()
        );
    }
}
