//! Property test: pace configurations are a pure performance knob.
//!
//! For any valid pace vector, the final per-query results equal the
//! pace-all-1 (single batch) results — over random shared plans, random
//! insert+delete feeds, and in particular MIN/MAX aggregate groups whose
//! current extremum gets deleted mid-stream (the rescan-on-delete path of
//! the engine, Sec. 2.3).

use ishare::stream::{
    execute_planned_deltas, execute_planned_deltas_obs, execute_planned_deltas_partitioned_obs,
    ObsConfig,
};
use ishare_common::{CostWeights, DataType, OpKind, QueryId, QuerySet, TableId, Value};
use ishare_expr::Expr;
use ishare_plan::{AggExpr, AggFunc, DagOp, SelectBranch, SharedDag, SharedPlan};
use ishare_storage::{Catalog, Field, Row, Schema, TableStats};
use proptest::prelude::*;
use std::collections::HashMap;

fn qs(ids: &[u16]) -> QuerySet {
    QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "t",
        Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
        TableStats::unknown(100.0, 2),
    )
    .unwrap();
    c
}

/// Shared scan+select trunk with one aggregate subplan per query; the
/// aggregate functions always include MIN and MAX so extremum deletes hit
/// the rescan path.
fn build_plan(c: &Catalog, n_queries: usize, cutoffs: &[i64], funcs: &[usize]) -> SharedPlan {
    let t = c.table_by_name("t").unwrap().id;
    let all: Vec<u16> = (0..n_queries as u16).collect();
    let mut d = SharedDag::new();
    let scan = d.add_node(DagOp::Scan { table: t }, vec![], qs(&all)).unwrap();
    let branches = (0..n_queries)
        .map(|q| SelectBranch {
            queries: qs(&[q as u16]),
            predicate: if cutoffs[q % cutoffs.len()] >= 95 {
                Expr::true_lit()
            } else {
                Expr::col(1).lt(Expr::lit(cutoffs[q % cutoffs.len()]))
            },
        })
        .collect();
    let sel = d.add_node(DagOp::Select { branches }, vec![scan], qs(&all)).unwrap();
    for q in 0..n_queries {
        // Queries 0 and 1 are pinned to MIN and MAX; the rest draw from the
        // full pool.
        let func = match q {
            0 => AggFunc::Min,
            1 => AggFunc::Max,
            _ => [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max]
                [funcs[q % funcs.len()] % 4],
        };
        let agg = d
            .add_node(
                DagOp::Aggregate {
                    group_by: vec![(Expr::col(0), "k".into())],
                    aggs: vec![AggExpr::new(func, Expr::col(1), "a")],
                },
                vec![sel],
                qs(&[q as u16]),
            )
            .unwrap();
        d.set_query_root(QueryId(q as u16), agg).unwrap();
    }
    SharedPlan::from_dag(&d, |_| false).unwrap()
}

/// Delta feed that never over-retracts; `extremum` deletes remove the live
/// row holding the current max (or min, alternating) of `v`.
fn build_feed(spec: &[(i64, i64, bool, bool)]) -> Vec<(Row, i64)> {
    let v_of = |r: &Row| match r.get(1) {
        Value::Int(v) => *v,
        _ => 0,
    };
    let mut live: Vec<Row> = Vec::new();
    let mut out = Vec::new();
    for &(k, v, is_delete, extremum) in spec {
        if is_delete && !live.is_empty() {
            let idx = if extremum {
                let pick_max = out.len() % 2 == 0;
                live.iter()
                    .enumerate()
                    .max_by_key(|(_, r)| if pick_max { v_of(r) } else { -v_of(r) })
                    .unwrap()
                    .0
            } else {
                live.len() - 1
            };
            let row = live.swap_remove(idx);
            out.push((row, -1));
        } else {
            let row = Row::new(vec![Value::Int(k), Value::Int(v)]);
            live.push(row.clone());
            out.push((row, 1));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Final results are invariant under the pace configuration.
    #[test]
    fn any_pace_equals_batch(
        n_queries in 2usize..5,
        cutoffs in proptest::collection::vec(5i64..100, 4),
        funcs in proptest::collection::vec(0usize..4, 4),
        spec in proptest::collection::vec(
            (0i64..6, 0i64..100, proptest::bool::weighted(0.35), proptest::bool::weighted(0.6)),
            1..60,
        ),
        paces_seed in proptest::collection::vec(1u32..9, 8),
    ) {
        let c = catalog();
        let plan = build_plan(&c, n_queries, &cutoffs, &funcs);
        let t = c.table_by_name("t").unwrap().id;
        let feed = build_feed(&spec);
        let data: HashMap<TableId, Vec<(Row, i64)>> = [(t, feed)].into_iter().collect();

        let batch_paces = vec![1u32; plan.len()];
        let batch = execute_planned_deltas(&plan, &batch_paces, &c, &data, CostWeights::default())
            .unwrap();

        let mut paces = paces_seed;
        paces.resize(plan.len(), 1);
        let paces = &paces[..plan.len()];
        let paced = execute_planned_deltas(&plan, paces, &c, &data, CostWeights::default())
            .unwrap();

        prop_assert_eq!(&batch.results, &paced.results, "paces {:?}", paces);

        // Observability must be passive: identical results and bitwise-equal
        // work with obs on, and the per-operator breakdown regroups exactly
        // the charged terms, so it sums back to the flat total.
        let obs = execute_planned_deltas_obs(
            &plan, paces, &c, &data, CostWeights::default(), Some(ObsConfig::default()),
        )
        .unwrap();
        prop_assert_eq!(&paced.results, &obs.results, "obs-on results, paces {:?}", paces);
        prop_assert_eq!(
            paced.total_work.get().to_bits(),
            obs.total_work.get().to_bits(),
            "obs-on total_work not bit-identical"
        );
        let report = obs.obs.as_ref().expect("obs requested");
        let total = obs.total_work.get();
        prop_assert!(
            (report.breakdown_total() - total).abs() <= 1e-6 * total.abs().max(1.0),
            "breakdown {} != total {}",
            report.breakdown_total(),
            total
        );

        // Partitioned execution splits each operator's charges across the
        // exchange; the dyadic cost weights make the split sum *exactly* —
        // every per-subplan, per-kind breakdown cell is bitwise-equal to the
        // unpartitioned run's, not just the flat total.
        let part = execute_planned_deltas_partitioned_obs(
            &plan, paces, &c, &data, CostWeights::default(), 4, 1, Some(ObsConfig::default()),
        )
        .unwrap();
        prop_assert_eq!(
            obs.total_work.get().to_bits(),
            part.total_work.get().to_bits(),
            "partitioned total_work not bit-identical"
        );
        let part_report = part.obs.as_ref().expect("obs requested");
        for (sp, (a, b)) in
            report.work_by_subplan.iter().zip(&part_report.work_by_subplan).enumerate()
        {
            for kind in OpKind::ALL {
                prop_assert_eq!(
                    a.get(kind).to_bits(),
                    b.get(kind).to_bits(),
                    "sp{} {:?}: partitioned charge {} != unpartitioned {}",
                    sp,
                    kind,
                    b.get(kind),
                    a.get(kind)
                );
            }
        }
    }
}
