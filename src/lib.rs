//! # iShare — Resource-efficient Shared Query Execution via Exploiting Time Slackness
//!
//! A from-scratch Rust reproduction of the SIGMOD 2021 paper by Tang, Shang,
//! Ma, Elmore and Krishnan. This facade crate re-exports the public API of
//! the workspace; see `README.md` for a tour and `DESIGN.md` for the paper →
//! code map.
//!
//! The short version: given a set of *scheduled queries* over a continuously
//! loaded dataset, each with its own latency goal (a *final work
//! constraint*), iShare
//!
//! 1. merges the queries into a shared plan (multi-query optimization,
//!    [`mqo`]),
//! 2. splits the shared plan into *subplans* and assigns each its own
//!    execution *pace* via an incrementability-driven greedy search with
//!    memoized cost estimation ([`core::pace_search`]), and
//! 3. selectively *decomposes* (un-shares) subplans whose eager shared
//!    execution costs more than it saves ([`core::decompose`]),
//!
//! then executes the result with a shared incremental execution engine
//! ([`exec`]) driven by an arrival simulator ([`stream`]).

pub use ishare_common as common;
pub use ishare_core as core;
pub use ishare_cost as cost;
pub use ishare_exec as exec;
pub use ishare_expr as expr;
pub use ishare_ingest as ingest;
pub use ishare_mqo as mqo;
pub use ishare_obs as obs;
pub use ishare_plan as plan;
pub use ishare_storage as storage;
pub use ishare_stream as stream;
pub use ishare_tpch as tpch;

pub use ishare_common::{Error, QueryId, QuerySet, Result, Value, WorkUnits};
