//! Metrics registry: named counters, gauges, and fixed-bucket histograms.
//!
//! The registry is a plain mutable value (no atomics, no globals): the
//! drivers own one per run and fold per-tick observations into it on the
//! coordinating thread, so recording cannot perturb the paced execution it
//! observes. Names use dot-separated paths (`work.scan`,
//! `buffer.sp3.high_water`, `tick.wall_us`).

use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Default histogram bucket upper bounds: powers of four, covering everything
/// from single-row ticks to full-table rescans. Values above the last bound
/// land in the implicit overflow bucket.
pub const DEFAULT_BUCKETS: [f64; 12] =
    [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0];

/// A fixed-bucket histogram with running count/sum/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds of each bucket, strictly increasing.
    bounds: Vec<f64>,
    /// `counts[i]` = observations `<= bounds[i]` (and above the previous
    /// bound); `counts[bounds.len()]` is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// New histogram with the given bucket upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest observation, 0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Smallest observation, 0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Bucket upper bounds (the overflow bucket has no bound).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket, so
    /// `bucket_counts().len() == bounds().len() + 1`.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`, clamped) by linear
    /// interpolation within the covering bucket, clamped to the observed
    /// `[min, max]` range.
    ///
    /// Edge cases are exact rather than interpolated: an empty histogram
    /// returns 0, a single sample returns that sample for every `q`, `q = 0`
    /// returns the minimum, and `q = 1` (p100) returns the maximum —
    /// interpolation can neither undershoot the smallest observation nor
    /// overshoot the largest (the overflow bucket has no upper bound, so it
    /// reports the observed maximum).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if self.count == 1 {
            // min == max == the one sample.
            return self.min;
        }
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        // Rank of the target observation, 1-based: ceil(q * count).
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cumulative + c >= rank {
                // Target falls in bucket i. Interpolate between the bucket's
                // lower and upper bound by the rank's position within it.
                if i >= self.bounds.len() {
                    // Overflow bucket: unbounded above, report the max.
                    return self.max;
                }
                let hi = self.bounds[i].min(self.max);
                let lo = if i == 0 { self.min } else { self.bounds[i - 1].max(self.min) };
                let lo = lo.min(hi);
                let frac = (rank - cumulative) as f64 / c as f64;
                return lo + (hi - lo) * frac;
            }
            cumulative += c;
        }
        self.max
    }

    fn to_json(&self) -> Value {
        json!({
            "bounds": self.bounds.clone(),
            "counts": self.counts.clone(),
            "count": self.count,
            "sum": self.sum,
            "min": self.min(),
            "max": self.max(),
            "mean": self.mean(),
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "p100": self.quantile(1.0),
        })
    }
}

/// A registry of named metrics, snapshotable to JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to a (monotonically increasing) counter, creating it at 0.
    pub fn counter_add(&mut self, name: &str, v: f64) {
        *self.counters.entry(name.to_string()).or_insert(0.0) += v;
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Raise a gauge to `v` if `v` is larger (high-water-mark semantics).
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        let g = self.gauges.entry(name.to_string()).or_insert(v);
        if v > *g {
            *g = v;
        }
    }

    /// Record into a histogram with [`DEFAULT_BUCKETS`].
    pub fn histogram_record(&mut self, name: &str, v: f64) {
        self.histogram_record_with(name, &DEFAULT_BUCKETS, v);
    }

    /// Record into a histogram, creating it with the given bounds. Bounds are
    /// fixed at creation; later calls ignore the `bounds` argument.
    pub fn histogram_record_with(&mut self, name: &str, bounds: &[f64], v: f64) {
        self.histograms.entry(name.to_string()).or_insert_with(|| Histogram::new(bounds)).record(v);
    }

    /// Current counter value.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counters.get(name).copied()
    }

    /// Current gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counter names and values in lexicographic order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, f64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Gauge names and values in lexicographic order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Histogram names and values in lexicographic order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Snapshot every metric as a JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name: {bounds,
    /// counts, count, sum, min, max, mean}}}`. Keys are sorted, so equal
    /// registries produce byte-equal snapshots.
    pub fn snapshot(&self) -> Value {
        let counters =
            self.counters.iter().map(|(k, v)| (k.clone(), Value::from(*v))).collect::<Vec<_>>();
        let gauges =
            self.gauges.iter().map(|(k, v)| (k.clone(), Value::from(*v))).collect::<Vec<_>>();
        let histograms =
            self.histograms.iter().map(|(k, h)| (k.clone(), h.to_json())).collect::<Vec<_>>();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(histograms)),
        ])
    }

    /// Like [`snapshot`](Self::snapshot) but with every wall-clock-derived
    /// metric removed (any name mentioning `wall` or `time`, e.g.
    /// `tick.wall_us`, `adapt.reopt_time_us`). Everything left is folded
    /// from deterministic measured work, so two identical runs — regardless
    /// of thread count, obs timing, or process — serialize to byte-equal
    /// documents; golden snapshots and the cross-process determinism test
    /// diff this form.
    pub fn snapshot_deterministic(&self) -> Value {
        fn keep(name: &str) -> bool {
            !name.contains("wall") && !name.contains("time")
        }
        let counters = self
            .counters
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, v)| (k.clone(), Value::from(*v)))
            .collect::<Vec<_>>();
        let gauges = self
            .gauges
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, v)| (k.clone(), Value::from(*v)))
            .collect::<Vec<_>>();
        let histograms = self
            .histograms
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect::<Vec<_>>();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(histograms)),
        ])
    }
}

/// Record one subplan's per-partition exchange statistics as gauges:
/// `partition.sp{sp}.p{j}.rows` / `.work` for each partition `j` (from the
/// `(routed rows, charged work)` pairs) plus `partition.sp{sp}.skew`, the
/// max/mean row ratio (1.0 = perfectly balanced; P = everything on one of P
/// partitions). Passive like every other gauge: the drivers call this once
/// at end of run from the executors' accumulated stats, never on the
/// execution path.
pub fn record_partition_gauges(metrics: &mut MetricsRegistry, sp: usize, stats: &[(u64, f64)]) {
    if stats.is_empty() {
        return;
    }
    let mut max_rows = 0u64;
    let mut total_rows = 0u64;
    for (j, &(rows, work)) in stats.iter().enumerate() {
        metrics.gauge_set(&format!("partition.sp{sp}.p{j}.rows"), rows as f64);
        metrics.gauge_set(&format!("partition.sp{sp}.p{j}.work"), work);
        max_rows = max_rows.max(rows);
        total_rows += rows;
    }
    let mean = total_rows as f64 / stats.len() as f64;
    let skew = if mean > 0.0 { max_rows as f64 / mean } else { 1.0 };
    metrics.gauge_set(&format!("partition.sp{sp}.skew"), skew);
}

/// Record one subplan's vectorized batch statistics as gauges:
/// `batch.sp{sp}.fill` (mean input batch length across the run — how much
/// data each columnar conversion amortizes over) and
/// `batch.sp{sp}.selectivity` (fraction of evaluated selection candidates
/// surviving the subplan's marking selects — how dense the selection
/// vectors stay). No-op when `batches == 0`, so non-vectorized runs emit
/// nothing. Passive like every other gauge: recorded once at end of run.
pub fn record_batch_gauges(
    metrics: &mut MetricsRegistry,
    sp: usize,
    batches: u64,
    mean_fill: f64,
    selectivity: f64,
) {
    if batches == 0 {
        return;
    }
    metrics.gauge_set(&format!("batch.sp{sp}.fill"), mean_fill);
    metrics.gauge_set(&format!("batch.sp{sp}.selectivity"), selectivity);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        m.counter_add("work.scan", 2.5);
        m.counter_add("work.scan", 1.5);
        m.gauge_set("buffer.sp0.high_water", 10.0);
        m.gauge_set("buffer.sp0.high_water", 7.0);
        m.gauge_max("peak", 3.0);
        m.gauge_max("peak", 1.0);
        assert_eq!(m.counter("work.scan"), Some(4.0));
        assert_eq!(m.gauge("buffer.sp0.high_water"), Some(7.0));
        assert_eq!(m.gauge("peak"), Some(3.0));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.counts, vec![1, 2, 1, 1]);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 500.0);
        assert!((h.sum() - 560.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty histogram: every quantile is 0.
        let h = Histogram::new(&[1.0, 10.0]);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);

        // Single sample: every quantile is that sample.
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.record(7.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 7.0, "q={q}");
        }

        // p0 = min, p100 = max, even when max lives in the overflow bucket.
        let mut h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 5.0, 500.0] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0.5);
        assert_eq!(h.quantile(1.0), 500.0);
        // The overflow bucket reports the observed max, not infinity.
        assert_eq!(h.quantile(0.99), 500.0);
        // Out-of-range q clamps instead of panicking.
        assert_eq!(h.quantile(-3.0), 0.5);
        assert_eq!(h.quantile(2.0), 500.0);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Histogram::new(&[10.0, 20.0, 30.0]);
        for v in [2.0, 12.0, 14.0, 16.0, 18.0, 22.0, 24.0, 26.0, 28.0, 29.0] {
            h.record(v);
        }
        // Median falls in the (10, 20] bucket and never leaves [min, max].
        let p50 = h.quantile(0.5);
        assert!((10.0..=20.0).contains(&p50), "p50 = {p50}");
        let p90 = h.quantile(0.9);
        assert!((20.0..=30.0).contains(&p90), "p90 = {p90}");
        // Quantiles are monotone in q.
        let qs: Vec<f64> =
            [0.1, 0.25, 0.5, 0.75, 0.9, 1.0].iter().map(|&q| h.quantile(q)).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    #[test]
    fn deterministic_snapshot_filters_wall_metrics() {
        let mut m = MetricsRegistry::new();
        m.counter_add("work.total", 5.0);
        m.gauge_set("adapt.reopt_time_us", 120.0);
        m.histogram_record("tick.wall_us", 33.0);
        m.histogram_record("tick.work", 5.0);
        let det = m.snapshot_deterministic();
        assert!(det["counters"].get("work.total").is_some());
        assert!(det["gauges"].get("adapt.reopt_time_us").is_none());
        assert!(det["histograms"].get("tick.wall_us").is_none());
        assert!(det["histograms"].get("tick.work").is_some());
    }

    #[test]
    fn partition_gauges_record_rows_work_and_skew() {
        let mut m = MetricsRegistry::new();
        // 3 partitions, one carrying double the mean.
        record_partition_gauges(&mut m, 2, &[(30, 7.5), (60, 15.0), (0, 0.0)]);
        assert_eq!(m.gauge("partition.sp2.p0.rows"), Some(30.0));
        assert_eq!(m.gauge("partition.sp2.p1.work"), Some(15.0));
        assert_eq!(m.gauge("partition.sp2.p2.rows"), Some(0.0));
        assert_eq!(m.gauge("partition.sp2.skew"), Some(2.0));
        // Empty stats record nothing; all-zero stats report balanced.
        record_partition_gauges(&mut m, 3, &[]);
        assert_eq!(m.gauge("partition.sp3.skew"), None);
        record_partition_gauges(&mut m, 4, &[(0, 0.0), (0, 0.0)]);
        assert_eq!(m.gauge("partition.sp4.skew"), Some(1.0));
    }

    #[test]
    fn batch_gauges_record_fill_and_selectivity() {
        let mut m = MetricsRegistry::new();
        record_batch_gauges(&mut m, 1, 4, 250.0, 0.125);
        assert_eq!(m.gauge("batch.sp1.fill"), Some(250.0));
        assert_eq!(m.gauge("batch.sp1.selectivity"), Some(0.125));
        // A subplan that saw no batches (non-vectorized run) emits nothing.
        record_batch_gauges(&mut m, 2, 0, 0.0, 1.0);
        assert_eq!(m.gauge("batch.sp2.fill"), None);
    }

    #[test]
    fn snapshot_roundtrips_through_parser() {
        let mut m = MetricsRegistry::new();
        m.counter_add("work.total", 123.5);
        m.gauge_set("buffer.sp1.high_water", 42.0);
        m.histogram_record_with("tick.work", &[1.0, 10.0], 3.0);
        let snap = m.snapshot();
        let text = serde_json::to_string_pretty(&snap).unwrap();
        let reparsed = serde_json::from_str(&text).unwrap();
        assert_eq!(reparsed, snap);
        assert_eq!(reparsed["counters"]["work.total"].as_f64(), Some(123.5));
        assert_eq!(reparsed["histograms"]["tick.work"]["count"].as_i64(), Some(1));
    }
}
