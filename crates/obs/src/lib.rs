//! # ishare-obs
//!
//! Zero-dependency observability for the iShare engine: a metrics registry
//! ([`MetricsRegistry`]) with Prometheus text exposition ([`prometheus_text`]),
//! a bounded span trace — wavefront/tick spans plus operator, ingest-poll,
//! and adapt re-search aux spans — with Chrome `trace_event` export
//! ([`TraceBuffer`]), the per-query slack ledger ([`SlackLedger`]), and the
//! per-run bundle the drivers hand back ([`ObsReport`]).
//!
//! ## Design constraints
//!
//! Instrumentation is **opt-in** (drivers take an `Option<ObsConfig>`) and
//! **passive**: recording only *reads* the engine's [`WorkCounter`]s and the
//! wall clock, never charges work or takes locks on the execution path, so a
//! run with observability enabled produces bit-identical work numbers to one
//! without — the `parallel_equivalence` and `pace_invariance` suites assert
//! exactly that. The one caveat is float association: the flat `total_work`
//! accumulates in charge order while the breakdown regroups the same terms
//! by operator kind, so the two agree to ~1e-12 relative, not bitwise; the
//! test suites assert agreement at 1e-6.
//!
//! [`WorkCounter`]: ishare_common::WorkCounter

#![warn(missing_docs)]

pub mod metrics;
pub mod prom;
pub mod report;
pub mod slack;
pub mod span;
pub mod trace;

pub use metrics::{
    record_batch_gauges, record_partition_gauges, Histogram, MetricsRegistry, DEFAULT_BUCKETS,
};
pub use prom::{prom_name, prometheus_text};
pub use report::{ExecCounts, ObsConfig, ObsReport};
pub use slack::{FrontCharge, QuerySlack, SlackLedger, SlackSample};
pub use span::{AuxKind, AuxSpan, SlackPoint, ADAPT_TID, INGEST_TID, OP_TID_BASE};
pub use trace::{Span, SpanKind, TraceBuffer, WAVEFRONT_TID};
