//! Prometheus text exposition (version 0.0.4) rendering of a
//! [`MetricsRegistry`] snapshot.
//!
//! `--metrics-out foo.prom` selects this format in the bench harness,
//! `figures`, and the quickstart example (any other extension writes the
//! JSON snapshot). The rendering is a pure function of the registry — names
//! iterate in `BTreeMap` order and numbers go through Rust's deterministic
//! `f64` display — so byte-identical registries produce byte-identical
//! expositions, and the cross-process determinism test can diff them
//! directly.
//!
//! Mapping:
//! * dotted metric names become underscore names under an `ishare_` prefix
//!   (`slo.q0.slack_remaining` → `ishare_slo_q0_slack_remaining`);
//! * counters render as `# TYPE ... counter`, gauges as `gauge`;
//! * histograms render cumulatively as `_bucket{le="..."}` series ending at
//!   `le="+Inf"`, plus `_sum` and `_count`, per the exposition format.

use crate::metrics::{Histogram, MetricsRegistry};
use std::fmt::Write as _;

/// Sanitize a dotted metric name into a Prometheus metric name:
/// `ishare_` prefix, every character outside `[a-zA-Z0-9_]` mapped to `_`.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("ishare_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (bound, count) in h.bounds().iter().zip(h.bucket_counts()) {
        cumulative += count;
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", fmt_value(*bound));
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", fmt_value(h.sum()));
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// Render the full registry as Prometheus text exposition.
pub fn prometheus_text(m: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, v) in m.counters() {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {}", fmt_value(v));
    }
    for (name, v) in m.gauges() {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", fmt_value(v));
    }
    for (name, h) in m.histograms() {
        render_histogram(&mut out, &prom_name(name), h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(prom_name("work.total"), "ishare_work_total");
        assert_eq!(prom_name("slo.q0.slack_remaining"), "ishare_slo_q0_slack_remaining");
        assert_eq!(prom_name("partition.sp3.skew"), "ishare_partition_sp3_skew");
    }

    #[test]
    fn exposition_renders_all_metric_types() {
        let mut m = MetricsRegistry::new();
        m.counter_add("work.total", 42.5);
        m.gauge_set("slo.q0.slack_remaining", 10.0);
        m.histogram_record_with("tick.work", &[1.0, 10.0], 0.5);
        m.histogram_record_with("tick.work", &[1.0, 10.0], 5.0);
        m.histogram_record_with("tick.work", &[1.0, 10.0], 50.0);
        let text = prometheus_text(&m);
        let want = "\
# TYPE ishare_work_total counter
ishare_work_total 42.5
# TYPE ishare_slo_q0_slack_remaining gauge
ishare_slo_q0_slack_remaining 10
# TYPE ishare_tick_work histogram
ishare_tick_work_bucket{le=\"1\"} 1
ishare_tick_work_bucket{le=\"10\"} 2
ishare_tick_work_bucket{le=\"+Inf\"} 3
ishare_tick_work_sum 55.5
ishare_tick_work_count 3
";
        assert_eq!(text, want);
    }

    #[test]
    fn exposition_is_deterministic() {
        let build = || {
            let mut m = MetricsRegistry::new();
            m.gauge_set("b.gauge", 2.0);
            m.counter_add("a.counter", 1.0);
            m.histogram_record("c.hist", 3.0);
            m
        };
        assert_eq!(prometheus_text(&build()), prometheus_text(&build()));
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(prometheus_text(&MetricsRegistry::new()), "");
    }
}
