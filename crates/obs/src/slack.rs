//! Per-query slack ledger: deadline/slack accounting at wavefront
//! granularity (DESIGN.md §13).
//!
//! The paper's premise is *time slackness*: each query `q` carries a latency
//! constraint `L(q)` expressed as a final-work budget, and the optimizer
//! spends the gap between required and actual completion work. The ledger
//! makes that gap observable. At every wavefront boundary it records, per
//! query:
//!
//! * `charged_total` — all work charged to the query's subplans so far
//!   (incremental + final), the "how much did sharing cost" view;
//! * `consumed` — final-tick work charged against the budget so far, the
//!   quantity the optimizer's constraint `C_fin(q) ≤ L(q)` bounds;
//! * `remaining` — `max(0, L(q) − consumed)`, the slack still available;
//! * `front_work` — work charged during this front alone (feeds the
//!   per-wavefront latency histograms `slo.q{i}.front_work`).
//!
//! Every quantity is a *deterministic measured* number folded from the
//! drivers' tick records in global schedule order — the same discipline as
//! `core::adapt`'s `WavefrontObservation`, and deliberately the same
//! summation order, so ledger `remaining` is `to_bits`-equal to the adapt
//! controller's residual budgets `R(q)` at headroom 1 (asserted by
//! `tests/slack_ledger.rs`). Wall clock never enters: obs-on/obs-off,
//! thread counts, partitioning, and kill/resume replay all produce the
//! identical ledger.
//!
//! The ledger upholds (and [`SlackLedger::verify`] re-checks) these
//! invariants on every sample:
//!
//! 1. `remaining == max(0, budget − consumed)` (bitwise);
//! 2. `consumed + remaining == budget` whenever the deadline is met;
//! 3. `consumed` and `charged_total` are non-decreasing across fronts,
//!    `remaining` is non-increasing;
//! 4. every query has a sample for every front (same sample count).

use crate::metrics::MetricsRegistry;
use ishare_common::QueryId;
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Per-query work charged up to (and during) one wavefront, computed by the
/// driver's fold in canonical order. Inputs to [`SlackLedger::record_front`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrontCharge {
    /// Work charged to the query's subplans during this front alone.
    pub front_work: f64,
    /// Cumulative work charged to the query's subplans (incremental + final).
    pub charged_total: f64,
    /// Cumulative final-tick work — the quantity bounded by `L(q)`.
    pub consumed: f64,
}

/// One per-query sample at a wavefront boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackSample {
    /// Wavefront ordinal (0-based).
    pub wavefront: u32,
    /// Arrival-fraction numerator at this front.
    pub num: u32,
    /// Arrival-fraction denominator.
    pub den: u32,
    /// Work charged to the query's subplans during this front.
    pub front_work: f64,
    /// Cumulative charged work (incremental + final).
    pub charged_total: f64,
    /// Cumulative final work counted against the budget.
    pub consumed: f64,
    /// `max(0, budget − consumed)`.
    pub remaining: f64,
}

/// One query's budget and its per-front sample history.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySlack {
    /// The query's final-work budget `L(q)`.
    pub budget: f64,
    /// One sample per wavefront, in front order.
    pub samples: Vec<SlackSample>,
}

impl QuerySlack {
    /// Final consumed work (0 if no fronts were recorded).
    pub fn consumed(&self) -> f64 {
        self.samples.last().map_or(0.0, |s| s.consumed)
    }

    /// Final remaining slack (the full budget if no fronts were recorded).
    pub fn remaining(&self) -> f64 {
        self.samples.last().map_or(self.budget, |s| s.remaining)
    }

    /// `true` iff the deadline was met: final consumed work ≤ budget.
    pub fn met(&self) -> bool {
        self.consumed() <= self.budget
    }

    /// How far over budget the query finished (0 when met).
    pub fn overrun(&self) -> f64 {
        (self.consumed() - self.budget).max(0.0)
    }
}

/// The per-run slack ledger: one [`QuerySlack`] per query with a declared
/// budget, filled in by the drivers' fold at each wavefront boundary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlackLedger {
    queries: BTreeMap<QueryId, QuerySlack>,
}

impl SlackLedger {
    /// New ledger over the given `L(q)` budgets.
    pub fn new(budgets: &BTreeMap<QueryId, f64>) -> Self {
        let queries = budgets
            .iter()
            .map(|(&q, &budget)| (q, QuerySlack { budget, samples: Vec::new() }))
            .collect();
        Self { queries }
    }

    /// `true` iff no query has a budget.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Number of wavefronts recorded (identical for every query).
    pub fn fronts(&self) -> usize {
        self.queries.values().next().map_or(0, |q| q.samples.len())
    }

    /// Per-query ledgers in `QueryId` order.
    pub fn queries(&self) -> impl Iterator<Item = (QueryId, &QuerySlack)> {
        self.queries.iter().map(|(&q, s)| (q, s))
    }

    /// One query's ledger.
    pub fn query(&self, q: QueryId) -> Option<&QuerySlack> {
        self.queries.get(&q)
    }

    /// Admit a query mid-run (live churn): it starts sampling at the next
    /// recorded front with budget `l`, with no retroactive samples. Replaces
    /// any previous ledger for the id (a re-admitted id starts fresh).
    pub fn add_query(&mut self, q: QueryId, l: f64) {
        self.queries.insert(q, QuerySlack { budget: l, samples: Vec::new() });
    }

    /// Release a removed query's ledger (live churn), returning it so the
    /// driver can fold the truncated history into its report if it wants.
    /// `None` when the id carried no budget.
    pub fn drop_query(&mut self, q: QueryId) -> Option<QuerySlack> {
        self.queries.remove(&q)
    }

    /// Number of queries whose final consumed work exceeded the budget.
    pub fn misses(&self) -> usize {
        self.queries.values().filter(|q| !q.met()).count()
    }

    /// Record one wavefront boundary. `charges` must contain exactly the
    /// budgeted queries; `remaining` is derived here as
    /// `max(0, budget − consumed)` so all samples share one definition.
    pub fn record_front(
        &mut self,
        wavefront: u32,
        num: u32,
        den: u32,
        charges: &BTreeMap<QueryId, FrontCharge>,
    ) {
        for (q, slot) in self.queries.iter_mut() {
            let c = charges.get(q).copied().unwrap_or_default();
            slot.samples.push(SlackSample {
                wavefront,
                num,
                den,
                front_work: c.front_work,
                charged_total: c.charged_total,
                consumed: c.consumed,
                remaining: (slot.budget - c.consumed).max(0.0),
            });
        }
    }

    /// Re-check every ledger invariant (see the module docs); returns the
    /// first violation as a human-readable message.
    pub fn verify(&self) -> Result<(), String> {
        let fronts = self.fronts();
        for (q, slot) in &self.queries {
            let i = q.index();
            if slot.samples.len() != fronts {
                return Err(format!(
                    "q{i}: {} samples, expected {fronts} (one per front)",
                    slot.samples.len()
                ));
            }
            let mut prev: Option<&SlackSample> = None;
            for s in &slot.samples {
                let w = s.wavefront;
                let want = (slot.budget - s.consumed).max(0.0);
                if s.remaining.to_bits() != want.to_bits() {
                    return Err(format!(
                        "q{i} front {w}: remaining {} != max(0, budget - consumed) {}",
                        s.remaining, want
                    ));
                }
                if s.consumed <= slot.budget {
                    let sum = s.consumed + s.remaining;
                    let tol = 1e-9 * slot.budget.abs().max(1.0);
                    if (sum - slot.budget).abs() > tol {
                        return Err(format!(
                            "q{i} front {w}: consumed {} + remaining {} != budget {}",
                            s.consumed, s.remaining, slot.budget
                        ));
                    }
                }
                if s.consumed > s.charged_total + 1e-9 * s.charged_total.abs().max(1.0) {
                    return Err(format!(
                        "q{i} front {w}: consumed {} exceeds charged_total {}",
                        s.consumed, s.charged_total
                    ));
                }
                if let Some(p) = prev {
                    if s.consumed < p.consumed {
                        return Err(format!("q{i} front {w}: consumed decreased"));
                    }
                    if s.charged_total < p.charged_total {
                        return Err(format!("q{i} front {w}: charged_total decreased"));
                    }
                    if s.remaining > p.remaining {
                        return Err(format!("q{i} front {w}: remaining increased"));
                    }
                    if s.wavefront <= p.wavefront {
                        return Err(format!("q{i} front {w}: wavefront ordinals not increasing"));
                    }
                }
                prev = Some(s);
            }
        }
        Ok(())
    }

    /// Record the final ledger state into the metrics registry under the
    /// `slo.` prefix: per query `slo.q{i}.budget` / `.consumed` /
    /// `.slack_remaining` / `.overrun` gauges, a `slo.q{i}.deadline_misses`
    /// counter (0 or 1 per run), a `slo.q{i}.front_work` histogram over the
    /// per-wavefront charges, and the aggregate `slo.deadline_misses`.
    pub fn record_metrics(&self, m: &mut MetricsRegistry) {
        for (q, slot) in &self.queries {
            let i = q.index();
            m.gauge_set(&format!("slo.q{i}.budget"), slot.budget);
            m.gauge_set(&format!("slo.q{i}.consumed"), slot.consumed());
            m.gauge_set(&format!("slo.q{i}.slack_remaining"), slot.remaining());
            m.gauge_set(&format!("slo.q{i}.overrun"), slot.overrun());
            m.counter_add(&format!("slo.q{i}.deadline_misses"), if slot.met() { 0.0 } else { 1.0 });
            for s in &slot.samples {
                m.histogram_record(&format!("slo.q{i}.front_work"), s.front_work);
            }
        }
        m.counter_add("slo.deadline_misses", self.misses() as f64);
    }

    /// The ledger as a JSON document (embedded in `--metrics-out` output):
    /// `{"misses": n, "queries": [{"query", "budget", "consumed",
    /// "remaining", "met", "overrun", "fronts": [...]}]}`.
    pub fn to_json(&self) -> Value {
        let queries: Vec<Value> = self
            .queries
            .iter()
            .map(|(q, slot)| {
                let fronts: Vec<Value> = slot
                    .samples
                    .iter()
                    .map(|s| {
                        json!({
                            "wavefront": s.wavefront,
                            "frac": format!("{}/{}", s.num, s.den),
                            "front_work": s.front_work,
                            "charged_total": s.charged_total,
                            "consumed": s.consumed,
                            "remaining": s.remaining,
                        })
                    })
                    .collect();
                json!({
                    "query": q.index(),
                    "budget": slot.budget,
                    "consumed": slot.consumed(),
                    "remaining": slot.remaining(),
                    "met": slot.met(),
                    "overrun": slot.overrun(),
                    "fronts": fronts,
                })
            })
            .collect();
        json!({ "misses": self.misses(), "queries": queries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budgets(pairs: &[(u16, f64)]) -> BTreeMap<QueryId, f64> {
        pairs.iter().map(|&(q, l)| (QueryId(q), l)).collect()
    }

    fn charge(front_work: f64, charged_total: f64, consumed: f64) -> FrontCharge {
        FrontCharge { front_work, charged_total, consumed }
    }

    #[test]
    fn ledger_tracks_consumption_and_slack() {
        let mut l = SlackLedger::new(&budgets(&[(0, 100.0), (2, 50.0)]));
        let mut c = BTreeMap::new();
        c.insert(QueryId(0), charge(10.0, 10.0, 0.0));
        c.insert(QueryId(2), charge(5.0, 5.0, 0.0));
        l.record_front(0, 1, 4, &c);
        c.insert(QueryId(0), charge(30.0, 40.0, 40.0));
        c.insert(QueryId(2), charge(60.0, 65.0, 65.0));
        l.record_front(1, 4, 4, &c);

        assert_eq!(l.fronts(), 2);
        let q0 = l.query(QueryId(0)).unwrap();
        assert_eq!(q0.consumed(), 40.0);
        assert_eq!(q0.remaining(), 60.0);
        assert!(q0.met());
        assert_eq!(q0.overrun(), 0.0);
        let q2 = l.query(QueryId(2)).unwrap();
        assert!(!q2.met());
        assert_eq!(q2.remaining(), 0.0);
        assert_eq!(q2.overrun(), 15.0);
        assert_eq!(l.misses(), 1);
        l.verify().unwrap();
    }

    #[test]
    fn verify_rejects_tampered_samples() {
        let mut l = SlackLedger::new(&budgets(&[(1, 10.0)]));
        let mut c = BTreeMap::new();
        c.insert(QueryId(1), charge(4.0, 4.0, 4.0));
        l.record_front(0, 1, 2, &c);
        l.verify().unwrap();
        let mut bad = l.clone();
        bad.queries.get_mut(&QueryId(1)).unwrap().samples[0].remaining = 7.0;
        assert!(bad.verify().is_err());
        let mut bad = l.clone();
        bad.queries.get_mut(&QueryId(1)).unwrap().samples[0].consumed = 5.0;
        assert!(bad.verify().is_err());
    }

    #[test]
    fn verify_rejects_nonmonotone_fronts() {
        let mut l = SlackLedger::new(&budgets(&[(0, 10.0)]));
        let mut c = BTreeMap::new();
        c.insert(QueryId(0), charge(4.0, 4.0, 4.0));
        l.record_front(0, 1, 2, &c);
        c.insert(QueryId(0), charge(0.0, 3.0, 3.0));
        l.record_front(1, 2, 2, &c);
        let err = l.verify().unwrap_err();
        assert!(err.contains("decreased"), "{err}");
    }

    #[test]
    fn metrics_and_json_export() {
        let mut l = SlackLedger::new(&budgets(&[(0, 20.0)]));
        let mut c = BTreeMap::new();
        c.insert(QueryId(0), charge(8.0, 8.0, 8.0));
        l.record_front(0, 1, 1, &c);
        let mut m = MetricsRegistry::new();
        l.record_metrics(&mut m);
        assert_eq!(m.gauge("slo.q0.budget"), Some(20.0));
        assert_eq!(m.gauge("slo.q0.consumed"), Some(8.0));
        assert_eq!(m.gauge("slo.q0.slack_remaining"), Some(12.0));
        assert_eq!(m.counter("slo.q0.deadline_misses"), Some(0.0));
        assert_eq!(m.counter("slo.deadline_misses"), Some(0.0));
        assert_eq!(m.histogram("slo.q0.front_work").unwrap().count(), 1);

        let j = l.to_json();
        assert_eq!(j["misses"].as_i64(), Some(0));
        assert_eq!(j["queries"][0]["query"].as_i64(), Some(0));
        assert_eq!(j["queries"][0]["fronts"][0]["remaining"].as_f64(), Some(12.0));
    }

    #[test]
    fn empty_ledger_reports_nothing() {
        let l = SlackLedger::new(&BTreeMap::new());
        assert!(l.is_empty());
        assert_eq!(l.fronts(), 0);
        assert_eq!(l.misses(), 0);
        l.verify().unwrap();
    }
}
