//! Bounded in-memory trace of tick / wavefront spans, exportable as Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` and Perfetto).
//!
//! Spans are recorded with microsecond offsets from the start of the run.
//! Each worker thread gets its own track (`tid`), so the parallel driver's
//! utilization and stragglers are visible as gaps on worker lanes; wavefront
//! spans live on a dedicated track above the workers.

use serde_json::{json, Value};

/// What a [`Span`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One subplan tick (one incremental or final execution).
    Tick,
    /// One wavefront: all ticks sharing an arrival fraction.
    Wavefront,
}

/// One recorded span. For `Tick` spans `sp` is the subplan index and
/// `num`/`den` its arrival fraction; for `Wavefront` spans `sp` is the
/// wavefront's ordinal and `num`/`den` the shared fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Tick or wavefront.
    pub kind: SpanKind,
    /// Subplan index (ticks) or wavefront ordinal (wavefronts).
    pub sp: u32,
    /// Arrival-fraction numerator.
    pub num: u32,
    /// Arrival-fraction denominator.
    pub den: u32,
    /// Dependency depth level within the wavefront (0 for wavefront spans).
    pub depth: u32,
    /// Worker thread index that ran the span (0 in the sequential driver).
    pub worker: u32,
    /// Start offset from the beginning of the run, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Work units charged during the span.
    pub work: f64,
    /// `true` iff this is the subplan's final (fraction 1) execution.
    pub is_final: bool,
}

impl Span {
    fn name(&self) -> String {
        match self.kind {
            SpanKind::Tick => {
                let suffix = if self.is_final { " final" } else { "" };
                format!("sp{} {}/{}{}", self.sp, self.num, self.den, suffix)
            }
            SpanKind::Wavefront => format!("front {} ({}/{})", self.sp, self.num, self.den),
        }
    }
}

/// Track id carrying wavefront spans; worker `w` maps to track `w + 1`.
pub const WAVEFRONT_TID: u64 = 0;

/// A bounded append-only span buffer. When full, further spans are counted
/// in [`dropped`](TraceBuffer::dropped) but not stored, so a long run cannot
/// grow the trace without bound.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBuffer {
    spans: Vec<Span>,
    capacity: usize,
    dropped: usize,
}

impl TraceBuffer {
    /// Default capacity: enough for every tick of any bench workload while
    /// bounding worst-case memory to a few MiB.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Empty buffer holding at most `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        Self { spans: Vec::new(), capacity, dropped: 0 }
    }

    /// Record a span, dropping it (counted) if the buffer is full.
    pub fn push(&mut self, span: Span) {
        if self.spans.len() < self.capacity {
            self.spans.push(span);
        } else {
            self.dropped += 1;
        }
    }

    /// Absorb another buffer's spans (used when folding per-run traces).
    pub fn extend(&mut self, other: &TraceBuffer) {
        for s in &other.spans {
            self.push(*s);
        }
        self.dropped += other.dropped;
    }

    /// Recorded spans, in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans that did not fit.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// `true` iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Export as a Chrome `trace_event` JSON document:
    /// `{"traceEvents": [...], "displayTimeUnit": "ms"}`. Every span becomes
    /// a complete (`"ph": "X"`) event with `ts`/`dur` in microseconds; each
    /// worker gets its own `tid` named via `thread_name` metadata events, and
    /// wavefront spans ride on [`WAVEFRONT_TID`].
    pub fn chrome_trace(&self) -> Value {
        let mut events: Vec<Value> = Vec::with_capacity(self.spans.len() + 8);
        let mut workers: Vec<u32> = self
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Tick)
            .map(|s| s.worker)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        workers.sort_unstable();
        if self.spans.iter().any(|s| s.kind == SpanKind::Wavefront) {
            events.push(json!({
                "ph": "M", "pid": 1, "tid": WAVEFRONT_TID, "name": "thread_name",
                "args": { "name": "wavefronts" },
            }));
        }
        for w in workers {
            events.push(json!({
                "ph": "M", "pid": 1, "tid": (w as u64) + 1, "name": "thread_name",
                "args": { "name": format!("worker {w}") },
            }));
        }
        for s in &self.spans {
            let tid = match s.kind {
                SpanKind::Tick => (s.worker as u64) + 1,
                SpanKind::Wavefront => WAVEFRONT_TID,
            };
            let cat = match s.kind {
                SpanKind::Tick => "tick",
                SpanKind::Wavefront => "wavefront",
            };
            events.push(json!({
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": s.start_us,
                "dur": s.dur_us,
                "name": s.name(),
                "cat": cat,
                "args": {
                    "sp": s.sp,
                    "frac": format!("{}/{}", s.num, s.den),
                    "depth": s.depth,
                    "worker": s.worker,
                    "work": s.work,
                    "is_final": s.is_final,
                },
            }));
        }
        json!({ "traceEvents": events, "displayTimeUnit": "ms" })
    }
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(sp: u32, worker: u32, start_us: u64, dur_us: u64) -> Span {
        Span {
            kind: SpanKind::Tick,
            sp,
            num: 1,
            den: 2,
            depth: 0,
            worker,
            start_us,
            dur_us,
            work: 10.0,
            is_final: false,
        }
    }

    #[test]
    fn capacity_bounds_the_buffer() {
        let mut t = TraceBuffer::new(2);
        for i in 0..5 {
            t.push(tick(0, 0, i * 10, 5));
        }
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn golden_chrome_trace_for_two_subplan_run() {
        // A tiny 2-subplan run: two wavefronts, two workers. Spans are built
        // by hand (real drivers stamp wall-clock durations, which are not
        // reproducible) so the exported JSON is byte-stable.
        let mut t = TraceBuffer::new(16);
        t.push(Span {
            kind: SpanKind::Wavefront,
            sp: 0,
            num: 1,
            den: 2,
            depth: 0,
            worker: 0,
            start_us: 0,
            dur_us: 30,
            work: 25.0,
            is_final: false,
        });
        t.push(tick(0, 0, 0, 10));
        t.push(tick(1, 1, 0, 25));
        t.push(Span {
            kind: SpanKind::Wavefront,
            sp: 1,
            num: 2,
            den: 2,
            depth: 0,
            worker: 0,
            start_us: 30,
            dur_us: 20,
            work: 50.0,
            is_final: true,
        });
        t.push(Span {
            kind: SpanKind::Tick,
            sp: 0,
            num: 2,
            den: 2,
            depth: 0,
            worker: 0,
            start_us: 30,
            dur_us: 18,
            work: 50.0,
            is_final: true,
        });
        let got = serde_json::to_string(&t.chrome_trace()).unwrap();
        let want = concat!(
            "{\"traceEvents\":[",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",",
            "\"args\":{\"name\":\"wavefronts\"}},",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",",
            "\"args\":{\"name\":\"worker 0\"}},",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\",",
            "\"args\":{\"name\":\"worker 1\"}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":30,",
            "\"name\":\"front 0 (1/2)\",\"cat\":\"wavefront\",",
            "\"args\":{\"sp\":0,\"frac\":\"1/2\",\"depth\":0,\"worker\":0,",
            "\"work\":25.0,\"is_final\":false}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":10,",
            "\"name\":\"sp0 1/2\",\"cat\":\"tick\",",
            "\"args\":{\"sp\":0,\"frac\":\"1/2\",\"depth\":0,\"worker\":0,",
            "\"work\":10.0,\"is_final\":false}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":0,\"dur\":25,",
            "\"name\":\"sp1 1/2\",\"cat\":\"tick\",",
            "\"args\":{\"sp\":1,\"frac\":\"1/2\",\"depth\":0,\"worker\":1,",
            "\"work\":10.0,\"is_final\":false}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":30,\"dur\":20,",
            "\"name\":\"front 1 (2/2)\",\"cat\":\"wavefront\",",
            "\"args\":{\"sp\":1,\"frac\":\"2/2\",\"depth\":0,\"worker\":0,",
            "\"work\":50.0,\"is_final\":true}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":30,\"dur\":18,",
            "\"name\":\"sp0 2/2 final\",\"cat\":\"tick\",",
            "\"args\":{\"sp\":0,\"frac\":\"2/2\",\"depth\":0,\"worker\":0,",
            "\"work\":50.0,\"is_final\":true}}",
            "],\"displayTimeUnit\":\"ms\"}",
        );
        assert_eq!(got, want);

        // And the export survives the compat parser.
        let reparsed = serde_json::from_str(&got).unwrap();
        assert_eq!(reparsed["traceEvents"][3]["ph"], "X");
        assert_eq!(reparsed["traceEvents"][3]["dur"].as_i64(), Some(30));
    }
}
