//! Bounded in-memory trace of tick / wavefront spans, exportable as Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` and Perfetto).
//!
//! Spans are recorded with microsecond offsets from the start of the run.
//! Each worker thread gets its own track (`tid`), so the parallel driver's
//! utilization and stragglers are visible as gaps on worker lanes; wavefront
//! spans live on a dedicated track above the workers.

use crate::span::{AuxKind, AuxSpan, SlackPoint, ADAPT_TID, INGEST_TID, OP_TID_BASE};
use serde_json::{json, Value};

/// What a [`Span`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One subplan tick (one incremental or final execution).
    Tick,
    /// One wavefront: all ticks sharing an arrival fraction.
    Wavefront,
}

/// One recorded span. For `Tick` spans `sp` is the subplan index and
/// `num`/`den` its arrival fraction; for `Wavefront` spans `sp` is the
/// wavefront's ordinal and `num`/`den` the shared fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Tick or wavefront.
    pub kind: SpanKind,
    /// Subplan index (ticks) or wavefront ordinal (wavefronts).
    pub sp: u32,
    /// Arrival-fraction numerator.
    pub num: u32,
    /// Arrival-fraction denominator.
    pub den: u32,
    /// Dependency depth level within the wavefront (0 for wavefront spans).
    pub depth: u32,
    /// Worker thread index that ran the span (0 in the sequential driver).
    pub worker: u32,
    /// Start offset from the beginning of the run, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Work units charged during the span.
    pub work: f64,
    /// `true` iff this is the subplan's final (fraction 1) execution.
    pub is_final: bool,
}

impl Span {
    fn name(&self) -> String {
        match self.kind {
            SpanKind::Tick => {
                let suffix = if self.is_final { " final" } else { "" };
                format!("sp{} {}/{}{}", self.sp, self.num, self.den, suffix)
            }
            SpanKind::Wavefront => format!("front {} ({}/{})", self.sp, self.num, self.den),
        }
    }
}

/// Track id carrying wavefront spans; worker `w` maps to track `w + 1`.
pub const WAVEFRONT_TID: u64 = 0;

/// A bounded append-only span buffer. When full, further spans are counted
/// in [`dropped`](TraceBuffer::dropped) but not stored, so a long run cannot
/// grow the trace without bound.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBuffer {
    spans: Vec<Span>,
    /// Auxiliary operator / ingest-poll / adapt-search spans (separate
    /// storage so the primary span layout — and its byte-golden Chrome
    /// export — is untouched when no aux spans are recorded).
    aux: Vec<AuxSpan>,
    /// Per-query slack samples, exported as Chrome counter events.
    slack: Vec<SlackPoint>,
    capacity: usize,
    dropped: usize,
}

impl TraceBuffer {
    /// Default capacity: enough for every tick of any bench workload while
    /// bounding worst-case memory to a few MiB.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Empty buffer holding at most `capacity` spans (primary and auxiliary
    /// spans each get their own `capacity` budget).
    pub fn new(capacity: usize) -> Self {
        Self { spans: Vec::new(), aux: Vec::new(), slack: Vec::new(), capacity, dropped: 0 }
    }

    /// Record a span, dropping it (counted) if the buffer is full.
    pub fn push(&mut self, span: Span) {
        if self.spans.len() < self.capacity {
            self.spans.push(span);
        } else {
            self.dropped += 1;
        }
    }

    /// Record an auxiliary span, dropping it (counted) if its budget is full.
    pub fn push_aux(&mut self, span: AuxSpan) {
        if self.aux.len() < self.capacity {
            self.aux.push(span);
        } else {
            self.dropped += 1;
        }
    }

    /// Record a per-query slack sample for the counter track.
    pub fn push_slack(&mut self, point: SlackPoint) {
        if self.slack.len() < self.capacity {
            self.slack.push(point);
        } else {
            self.dropped += 1;
        }
    }

    /// Absorb another buffer's spans (used when folding per-run traces).
    pub fn extend(&mut self, other: &TraceBuffer) {
        for s in &other.spans {
            self.push(*s);
        }
        for s in &other.aux {
            self.push_aux(*s);
        }
        for p in &other.slack {
            self.push_slack(*p);
        }
        self.dropped += other.dropped;
    }

    /// Recorded spans, in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Recorded auxiliary spans, in insertion order.
    pub fn aux_spans(&self) -> &[AuxSpan] {
        &self.aux
    }

    /// Recorded slack samples, in insertion order.
    pub fn slack_points(&self) -> &[SlackPoint] {
        &self.slack
    }

    /// Number of spans that did not fit.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// `true` iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.aux.is_empty() && self.slack.is_empty()
    }

    /// Export as a Chrome `trace_event` JSON document:
    /// `{"traceEvents": [...], "displayTimeUnit": "ms"}`. Every span becomes
    /// a complete (`"ph": "X"`) event with `ts`/`dur` in microseconds; each
    /// worker gets its own `tid` named via `thread_name` metadata events, and
    /// wavefront spans ride on [`WAVEFRONT_TID`].
    ///
    /// Auxiliary spans follow on their own tracks — operator spans on
    /// `worker N ops` ([`OP_TID_BASE`]` + N`), ingest polls on
    /// [`INGEST_TID`], adapt re-searches on [`ADAPT_TID`] — and slack
    /// samples render as counter (`"ph": "C"`) events, one `slack q{i}`
    /// counter per query with `remaining`/`consumed` series. All additions
    /// are appended after the primary events, so a buffer with no aux spans
    /// or slack points exports byte-identically to the PR-2 format.
    pub fn chrome_trace(&self) -> Value {
        let mut events: Vec<Value> = Vec::with_capacity(self.spans.len() + 8);
        let mut workers: Vec<u32> = self
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Tick)
            .map(|s| s.worker)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        workers.sort_unstable();
        if self.spans.iter().any(|s| s.kind == SpanKind::Wavefront) {
            events.push(json!({
                "ph": "M", "pid": 1, "tid": WAVEFRONT_TID, "name": "thread_name",
                "args": { "name": "wavefronts" },
            }));
        }
        for w in workers {
            events.push(json!({
                "ph": "M", "pid": 1, "tid": (w as u64) + 1, "name": "thread_name",
                "args": { "name": format!("worker {w}") },
            }));
        }
        for s in &self.spans {
            let tid = match s.kind {
                SpanKind::Tick => (s.worker as u64) + 1,
                SpanKind::Wavefront => WAVEFRONT_TID,
            };
            let cat = match s.kind {
                SpanKind::Tick => "tick",
                SpanKind::Wavefront => "wavefront",
            };
            events.push(json!({
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": s.start_us,
                "dur": s.dur_us,
                "name": s.name(),
                "cat": cat,
                "args": {
                    "sp": s.sp,
                    "frac": format!("{}/{}", s.num, s.den),
                    "depth": s.depth,
                    "worker": s.worker,
                    "work": s.work,
                    "is_final": s.is_final,
                },
            }));
        }
        // Auxiliary tracks: name each one that carries spans, then emit the
        // spans in insertion order.
        if self.aux.iter().any(|s| s.kind == AuxKind::IngestPoll) {
            events.push(json!({
                "ph": "M", "pid": 1, "tid": INGEST_TID, "name": "thread_name",
                "args": { "name": "ingest" },
            }));
        }
        if self.aux.iter().any(|s| s.kind == AuxKind::AdaptSearch) {
            events.push(json!({
                "ph": "M", "pid": 1, "tid": ADAPT_TID, "name": "thread_name",
                "args": { "name": "adapt" },
            }));
        }
        let op_workers: std::collections::BTreeSet<u32> = self
            .aux
            .iter()
            .filter(|s| matches!(s.kind, AuxKind::Operator(_)))
            .map(|s| s.worker)
            .collect();
        for w in op_workers {
            events.push(json!({
                "ph": "M", "pid": 1, "tid": OP_TID_BASE + w as u64, "name": "thread_name",
                "args": { "name": format!("worker {w} ops") },
            }));
        }
        for s in &self.aux {
            events.push(json!({
                "ph": "X",
                "pid": 1,
                "tid": s.tid(),
                "ts": s.start_us,
                "dur": s.dur_us,
                "name": s.name(),
                "cat": s.cat(),
                "args": { "sp": s.sp, "worker": s.worker, "work": s.work },
            }));
        }
        // Slack samples: one counter track per query, stepped area chart of
        // remaining slack vs consumed budget.
        for p in &self.slack {
            events.push(json!({
                "ph": "C",
                "pid": 1,
                "ts": p.ts_us,
                "name": format!("slack q{}", p.query),
                "cat": "slo",
                "args": { "remaining": p.remaining, "consumed": p.consumed },
            }));
        }
        json!({ "traceEvents": events, "displayTimeUnit": "ms" })
    }
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(sp: u32, worker: u32, start_us: u64, dur_us: u64) -> Span {
        Span {
            kind: SpanKind::Tick,
            sp,
            num: 1,
            den: 2,
            depth: 0,
            worker,
            start_us,
            dur_us,
            work: 10.0,
            is_final: false,
        }
    }

    #[test]
    fn capacity_bounds_the_buffer() {
        let mut t = TraceBuffer::new(2);
        for i in 0..5 {
            t.push(tick(0, 0, i * 10, 5));
        }
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn golden_chrome_trace_for_two_subplan_run() {
        // A tiny 2-subplan run: two wavefronts, two workers. Spans are built
        // by hand (real drivers stamp wall-clock durations, which are not
        // reproducible) so the exported JSON is byte-stable.
        let mut t = TraceBuffer::new(16);
        t.push(Span {
            kind: SpanKind::Wavefront,
            sp: 0,
            num: 1,
            den: 2,
            depth: 0,
            worker: 0,
            start_us: 0,
            dur_us: 30,
            work: 25.0,
            is_final: false,
        });
        t.push(tick(0, 0, 0, 10));
        t.push(tick(1, 1, 0, 25));
        t.push(Span {
            kind: SpanKind::Wavefront,
            sp: 1,
            num: 2,
            den: 2,
            depth: 0,
            worker: 0,
            start_us: 30,
            dur_us: 20,
            work: 50.0,
            is_final: true,
        });
        t.push(Span {
            kind: SpanKind::Tick,
            sp: 0,
            num: 2,
            den: 2,
            depth: 0,
            worker: 0,
            start_us: 30,
            dur_us: 18,
            work: 50.0,
            is_final: true,
        });
        let got = serde_json::to_string(&t.chrome_trace()).unwrap();
        let want = concat!(
            "{\"traceEvents\":[",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",",
            "\"args\":{\"name\":\"wavefronts\"}},",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",",
            "\"args\":{\"name\":\"worker 0\"}},",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\",",
            "\"args\":{\"name\":\"worker 1\"}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":30,",
            "\"name\":\"front 0 (1/2)\",\"cat\":\"wavefront\",",
            "\"args\":{\"sp\":0,\"frac\":\"1/2\",\"depth\":0,\"worker\":0,",
            "\"work\":25.0,\"is_final\":false}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":10,",
            "\"name\":\"sp0 1/2\",\"cat\":\"tick\",",
            "\"args\":{\"sp\":0,\"frac\":\"1/2\",\"depth\":0,\"worker\":0,",
            "\"work\":10.0,\"is_final\":false}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":0,\"dur\":25,",
            "\"name\":\"sp1 1/2\",\"cat\":\"tick\",",
            "\"args\":{\"sp\":1,\"frac\":\"1/2\",\"depth\":0,\"worker\":1,",
            "\"work\":10.0,\"is_final\":false}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":30,\"dur\":20,",
            "\"name\":\"front 1 (2/2)\",\"cat\":\"wavefront\",",
            "\"args\":{\"sp\":1,\"frac\":\"2/2\",\"depth\":0,\"worker\":0,",
            "\"work\":50.0,\"is_final\":true}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":30,\"dur\":18,",
            "\"name\":\"sp0 2/2 final\",\"cat\":\"tick\",",
            "\"args\":{\"sp\":0,\"frac\":\"2/2\",\"depth\":0,\"worker\":0,",
            "\"work\":50.0,\"is_final\":true}}",
            "],\"displayTimeUnit\":\"ms\"}",
        );
        assert_eq!(got, want);

        // And the export survives the compat parser.
        let reparsed = serde_json::from_str(&got).unwrap();
        assert_eq!(reparsed["traceEvents"][3]["ph"], "X");
        assert_eq!(reparsed["traceEvents"][3]["dur"].as_i64(), Some(30));
    }

    #[test]
    fn aux_spans_and_slack_points_extend_the_export() {
        use crate::span::{AuxKind, AuxSpan, SlackPoint};
        use ishare_common::OpKind;

        let mut t = TraceBuffer::new(16);
        t.push(tick(0, 1, 0, 10));
        t.push_aux(AuxSpan {
            kind: AuxKind::Operator(OpKind::Scan),
            sp: 0,
            worker: 1,
            start_us: 0,
            dur_us: 6,
            work: 7.0,
        });
        t.push_aux(AuxSpan {
            kind: AuxKind::IngestPoll,
            sp: 0,
            worker: 0,
            start_us: 0,
            dur_us: 2,
            work: 40.0,
        });
        t.push_aux(AuxSpan {
            kind: AuxKind::AdaptSearch,
            sp: 0,
            worker: 0,
            start_us: 10,
            dur_us: 1,
            work: 0.0,
        });
        t.push_slack(SlackPoint {
            query: 2,
            wavefront: 0,
            ts_us: 11,
            remaining: 90.0,
            consumed: 10.0,
        });
        let doc = t.chrome_trace();
        let events = doc["traceEvents"].as_array().unwrap();
        // Thread-name metadata appears for ingest, adapt, and the op track.
        let names: Vec<String> = events
            .iter()
            .filter(|e| e["ph"] == "M")
            .map(|e| e["args"]["name"].as_str().unwrap().to_string())
            .collect();
        assert!(names.contains(&"ingest".to_string()), "{names:?}");
        assert!(names.contains(&"adapt".to_string()), "{names:?}");
        assert!(names.contains(&"worker 1 ops".to_string()), "{names:?}");
        // Operator span rides on OP_TID_BASE + worker.
        let op = events
            .iter()
            .find(|e| e["cat"] == "operator")
            .unwrap_or_else(|| panic!("no operator event"));
        assert_eq!(op["tid"].as_i64(), Some((OP_TID_BASE + 1) as i64));
        assert_eq!(op["name"], "sp0 scan");
        // Slack point renders as a counter event with both series.
        let c = events.iter().find(|e| e["ph"] == "C").unwrap();
        assert_eq!(c["name"], "slack q2");
        assert_eq!(c["args"]["remaining"].as_f64(), Some(90.0));
        assert_eq!(c["args"]["consumed"].as_f64(), Some(10.0));

        // An empty aux/slack buffer exports no extra events (byte-stability
        // of the primary format is covered by the golden test above).
        let mut plain = TraceBuffer::new(16);
        plain.push(tick(0, 1, 0, 10));
        let plain_doc = plain.chrome_trace();
        assert!(plain_doc["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .all(|e| e["ph"] != "C" && e["cat"] != "operator"));
    }
}
