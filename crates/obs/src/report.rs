//! Per-run observability report: the per-operator × per-subplan work
//! breakdown, the metrics registry, and the span trace, bundled so a caller
//! (bench harness, example, test) gets everything from one handle.

use crate::metrics::MetricsRegistry;
use crate::prom::prometheus_text;
use crate::slack::SlackLedger;
use crate::trace::TraceBuffer;
use ishare_common::{OpKind, WorkBreakdown};
use serde_json::{json, Value};

/// Opt-in observability configuration passed to the drivers. The default is
/// everything on with a bounded trace; construct via `ObsConfig::default()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Maximum spans retained by the trace buffer (further spans are counted
    /// but dropped).
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self { trace_capacity: TraceBuffer::DEFAULT_CAPACITY }
    }
}

/// Execution counts for one subplan over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounts {
    /// Incremental (fraction < 1) executions.
    pub incremental: u64,
    /// Final (fraction = 1) executions.
    pub finals: u64,
}

impl ExecCounts {
    /// Incremental + final.
    pub fn total(&self) -> u64 {
        self.incremental + self.finals
    }
}

/// Everything observed during one driver run.
///
/// `work_by_subplan[i]` is the per-operator breakdown of subplan `i`'s work;
/// summing every cell reproduces the run's `total_work` up to float
/// re-association (the driver accumulates the flat total in charge order,
/// the breakdown regroups the same terms by kind — identical values, added
/// in a different order, so equality holds to ~1e-12 relative, asserted at
/// 1e-6 throughout the test suite).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// The run's total work, copied from the flat counter.
    pub total_work: f64,
    /// Per-subplan, per-operator-kind work.
    pub work_by_subplan: Vec<WorkBreakdown>,
    /// Per-subplan execution counts.
    pub executions_by_subplan: Vec<ExecCounts>,
    /// Named counters/gauges/histograms recorded during the run.
    pub metrics: MetricsRegistry,
    /// Tick/wavefront spans.
    pub trace: TraceBuffer,
    /// Per-query slack ledger; `None` when the run declared no `L(q)`
    /// budgets (e.g. best-effort plans with no constraints).
    pub slack: Option<SlackLedger>,
}

impl ObsReport {
    /// Global per-operator breakdown: sum over subplans.
    pub fn breakdown(&self) -> WorkBreakdown {
        let mut total = WorkBreakdown::default();
        for b in &self.work_by_subplan {
            total.add(b);
        }
        total
    }

    /// Sum of every breakdown cell; equals [`total_work`](Self::total_work)
    /// up to float re-association.
    pub fn breakdown_total(&self) -> f64 {
        self.work_by_subplan.iter().map(WorkBreakdown::sum).sum()
    }

    /// Work charged under one operator kind, across all subplans.
    pub fn kind_total(&self, kind: OpKind) -> f64 {
        self.work_by_subplan.iter().map(|b| b.get(kind)).sum()
    }

    /// Metrics snapshot plus the work breakdown, as one JSON document
    /// (what `--metrics-out` writes).
    pub fn metrics_json(&self) -> Value {
        let by_subplan: Vec<Value> = self
            .work_by_subplan
            .iter()
            .zip(&self.executions_by_subplan)
            .enumerate()
            .map(|(i, (b, e))| {
                let kinds: Vec<(String, Value)> = OpKind::ALL
                    .iter()
                    .filter(|&&k| b.get(k) != 0.0)
                    .map(|&k| (k.label().to_string(), Value::from(b.get(k))))
                    .collect();
                json!({
                    "subplan": i,
                    "work": Value::Object(kinds),
                    "work_total": b.sum(),
                    "executions": { "incremental": e.incremental, "final": e.finals },
                })
            })
            .collect();
        let global = self.breakdown();
        let global_kinds: Vec<(String, Value)> = OpKind::ALL
            .iter()
            .filter(|&&k| global.get(k) != 0.0)
            .map(|&k| (k.label().to_string(), Value::from(global.get(k))))
            .collect();
        let mut doc = json!({
            "total_work": self.total_work,
            "breakdown_total": self.breakdown_total(),
            "work_by_kind": Value::Object(global_kinds),
            "subplans": by_subplan,
            "metrics": self.metrics.snapshot(),
            "trace_spans": self.trace.spans().len(),
            "trace_dropped": self.trace.dropped(),
        });
        if let (Some(ledger), Value::Object(map)) = (&self.slack, &mut doc) {
            map.push(("slack".to_string(), ledger.to_json()));
        }
        doc
    }

    /// Chrome `trace_event` JSON (what `--trace-out` writes).
    pub fn chrome_trace(&self) -> Value {
        self.trace.chrome_trace()
    }

    /// Prometheus text exposition of the metrics registry (what
    /// `--metrics-out foo.prom` writes). The slack ledger is already folded
    /// into the registry as `slo.*` series, so this single document carries
    /// work, partition, ingest, adapt, and SLO metrics.
    pub fn prometheus(&self) -> String {
        prometheus_text(&self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_across_subplans() {
        let mut r = ObsReport::default();
        let mut b0 = WorkBreakdown::default();
        b0.0[OpKind::Scan.index()] = 3.0;
        b0.0[OpKind::Filter.index()] = 1.0;
        let mut b1 = WorkBreakdown::default();
        b1.0[OpKind::Scan.index()] = 2.0;
        r.work_by_subplan = vec![b0, b1];
        r.executions_by_subplan = vec![ExecCounts::default(); 2];
        r.total_work = 6.0;
        assert_eq!(r.kind_total(OpKind::Scan), 5.0);
        assert_eq!(r.breakdown_total(), 6.0);
        assert_eq!(r.breakdown().get(OpKind::Filter), 1.0);
    }

    #[test]
    fn metrics_json_reports_totals_and_counts() {
        let mut r = ObsReport::default();
        let mut b = WorkBreakdown::default();
        b.0[OpKind::AggUpdate.index()] = 4.0;
        r.work_by_subplan = vec![b];
        r.executions_by_subplan = vec![ExecCounts { incremental: 3, finals: 1 }];
        r.total_work = 4.0;
        let j = r.metrics_json();
        assert_eq!(j["total_work"].as_f64(), Some(4.0));
        assert_eq!(j["work_by_kind"]["agg_update"].as_f64(), Some(4.0));
        assert_eq!(j["subplans"][0]["executions"]["incremental"].as_i64(), Some(3));
        // Kinds with zero work are omitted.
        assert!(j["work_by_kind"].get("scan").is_none());
    }
}
