//! Structured auxiliary spans: the second, finer-grained layer of the span
//! model (DESIGN.md §13).
//!
//! The primary [`Span`](crate::trace::Span)s cover wavefronts and subplan
//! ticks. Aux spans refine them three ways without disturbing the primary
//! tracks (so PR-2-era trace consumers and the per-track non-overlap
//! invariant keep holding):
//!
//! * **Operator spans** subdivide one tick's wall interval proportionally to
//!   the tick's per-[`OpKind`] work breakdown — they live on a dedicated
//!   `worker N ops` track below the worker's tick track, so the operator mix
//!   of a straggler tick is visible at a glance.
//! * **Ingest poll spans** cover each per-wavefront cut of the ingest
//!   topics (the `feed` phase the tick tracks never show), on one `ingest`
//!   track; `work` carries the number of delta records delivered.
//! * **Adapt re-search spans** cover each [`AdaptController`] evaluation at
//!   a wavefront boundary on an `adapt` track; `work` is 1.0 when the
//!   evaluation installed a pace switch and 0.0 otherwise.
//!
//! [`SlackPoint`]s are not spans but counter samples: one per query per
//! wavefront boundary, exported as Chrome `ph: "C"` counter events (one
//! `slack q{i}` counter track per query) so remaining slack renders as a
//! stepped area chart above the execution tracks.
//!
//! [`AdaptController`]: ../../ishare_core/adapt/struct.AdaptController.html

use ishare_common::OpKind;

/// Track id carrying ingest poll spans.
pub const INGEST_TID: u64 = 900;
/// Track id carrying adapt re-search spans.
pub const ADAPT_TID: u64 = 901;
/// Worker `w`'s operator spans ride on track `OP_TID_BASE + w`.
pub const OP_TID_BASE: u64 = 1000;

/// What an auxiliary span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuxKind {
    /// Work of one operator kind within one tick.
    Operator(OpKind),
    /// One per-wavefront cut of the ingest topics.
    IngestPoll,
    /// One adapt-controller evaluation at a wavefront boundary.
    AdaptSearch,
}

/// One auxiliary span (see the module docs for the three kinds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuxSpan {
    /// Which kind of span.
    pub kind: AuxKind,
    /// Subplan index (operator spans) or wavefront ordinal (poll/adapt).
    pub sp: u32,
    /// Worker thread that ran the covering tick (0 for poll/adapt spans:
    /// both run on the single-threaded wavefront boundary path).
    pub worker: u32,
    /// Start offset from the beginning of the run, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Operator spans: work units charged under the kind. Poll spans: delta
    /// records delivered. Adapt spans: 1.0 iff a pace switch was installed.
    pub work: f64,
}

impl AuxSpan {
    /// Chrome track id for this span.
    pub fn tid(&self) -> u64 {
        match self.kind {
            AuxKind::Operator(_) => OP_TID_BASE + self.worker as u64,
            AuxKind::IngestPoll => INGEST_TID,
            AuxKind::AdaptSearch => ADAPT_TID,
        }
    }

    /// Chrome `cat` field.
    pub fn cat(&self) -> &'static str {
        match self.kind {
            AuxKind::Operator(_) => "operator",
            AuxKind::IngestPoll => "ingest",
            AuxKind::AdaptSearch => "adapt",
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self.kind {
            AuxKind::Operator(k) => format!("sp{} {}", self.sp, k.label()),
            AuxKind::IngestPoll => format!("poll front {}", self.sp),
            AuxKind::AdaptSearch => {
                if self.work > 0.0 {
                    format!("re-search front {} (switched)", self.sp)
                } else {
                    format!("evaluate front {}", self.sp)
                }
            }
        }
    }
}

/// One per-query slack sample at a wavefront boundary, exported as a Chrome
/// counter event on the query's `slack q{i}` counter track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackPoint {
    /// Query index (`QueryId.0`).
    pub query: u16,
    /// Wavefront ordinal the sample was taken after.
    pub wavefront: u32,
    /// Sample timestamp (end of the wavefront), microseconds from run start.
    pub ts_us: u64,
    /// Remaining slack: `max(0, L(q) − consumed)`, work units.
    pub remaining: f64,
    /// Final work charged against the budget so far, work units.
    pub consumed: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aux_span_tracks_and_names() {
        let op = AuxSpan {
            kind: AuxKind::Operator(OpKind::Scan),
            sp: 3,
            worker: 2,
            start_us: 0,
            dur_us: 5,
            work: 10.0,
        };
        assert_eq!(op.tid(), OP_TID_BASE + 2);
        assert_eq!(op.cat(), "operator");
        assert_eq!(op.name(), "sp3 scan");

        let poll = AuxSpan {
            kind: AuxKind::IngestPoll,
            sp: 1,
            worker: 0,
            start_us: 0,
            dur_us: 2,
            work: 40.0,
        };
        assert_eq!(poll.tid(), INGEST_TID);
        assert_eq!(poll.name(), "poll front 1");

        let adapt = AuxSpan {
            kind: AuxKind::AdaptSearch,
            sp: 2,
            worker: 0,
            start_us: 9,
            dur_us: 1,
            work: 1.0,
        };
        assert_eq!(adapt.tid(), ADAPT_TID);
        assert_eq!(adapt.name(), "re-search front 2 (switched)");
    }
}
