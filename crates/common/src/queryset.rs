//! Query identifiers and bitvector query sets.
//!
//! SharedDB-style shared execution (Sec. 2.3 of the paper) annotates every
//! intermediate tuple with a bitvector `B = (b1 … bn)` — one bit per query —
//! and every shared operator with the bitvector of queries sharing it.
//! [`QuerySet`] is that bitvector, packed into a `u64` (the paper's largest
//! workload is 22 TPC-H queries plus 20 predicate variants, well under 64).

use std::fmt;

/// Index of a query within a workload (bit position inside a [`QuerySet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u16);

impl QueryId {
    /// Bit position.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A set of queries, as a 64-bit bitvector.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct QuerySet(pub u64);

impl QuerySet {
    /// Maximum number of concurrent queries in one workload.
    pub const MAX_QUERIES: usize = 64;

    /// The empty set.
    pub const EMPTY: QuerySet = QuerySet(0);

    /// Set containing a single query.
    pub fn single(q: QueryId) -> Self {
        debug_assert!(q.index() < Self::MAX_QUERIES);
        QuerySet(1u64 << q.index())
    }

    /// Set containing queries `0..n`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= Self::MAX_QUERIES);
        if n == 64 {
            QuerySet(u64::MAX)
        } else {
            QuerySet((1u64 << n) - 1)
        }
    }

    /// Build from an iterator of query ids (also available through the
    /// `FromIterator` impl; this inherent method reads better at call sites
    /// that pass arrays).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(queries: impl IntoIterator<Item = QueryId>) -> Self {
        let mut s = QuerySet::EMPTY;
        for q in queries {
            s.insert(q);
        }
        s
    }

    /// `true` iff the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of queries in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Membership test.
    pub fn contains(self, q: QueryId) -> bool {
        q.index() < Self::MAX_QUERIES && self.0 & (1u64 << q.index()) != 0
    }

    /// Insert a query.
    pub fn insert(&mut self, q: QueryId) {
        debug_assert!(q.index() < Self::MAX_QUERIES);
        self.0 |= 1u64 << q.index();
    }

    /// Remove a query.
    pub fn remove(&mut self, q: QueryId) {
        self.0 &= !(1u64 << q.index());
    }

    /// Set union.
    pub fn union(self, other: QuerySet) -> QuerySet {
        QuerySet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: QuerySet) -> QuerySet {
        QuerySet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    pub fn difference(self, other: QuerySet) -> QuerySet {
        QuerySet(self.0 & !other.0)
    }

    /// `true` iff `self ⊆ other`.
    pub fn is_subset_of(self, other: QuerySet) -> bool {
        self.0 & !other.0 == 0
    }

    /// `true` iff the sets share at least one query.
    pub fn intersects(self, other: QuerySet) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterate over member query ids in increasing order.
    pub fn iter(self) -> impl Iterator<Item = QueryId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let idx = bits.trailing_zeros() as u16;
                bits &= bits - 1;
                Some(QueryId(idx))
            }
        })
    }

    /// The lowest-numbered query in the set, if any. Useful as a canonical
    /// representative when ordering partitions deterministically.
    pub fn min_query(self) -> Option<QueryId> {
        if self.0 == 0 {
            None
        } else {
            Some(QueryId(self.0.trailing_zeros() as u16))
        }
    }
}

impl fmt::Debug for QuerySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, q) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{q}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for QuerySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<QueryId> for QuerySet {
    fn from_iter<T: IntoIterator<Item = QueryId>>(iter: T) -> Self {
        QuerySet::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = QuerySet::EMPTY;
        assert!(s.is_empty());
        s.insert(QueryId(3));
        s.insert(QueryId(0));
        assert_eq!(s.len(), 2);
        assert!(s.contains(QueryId(3)));
        assert!(!s.contains(QueryId(1)));
        s.remove(QueryId(3));
        assert_eq!(s.len(), 1);
        assert_eq!(s.min_query(), Some(QueryId(0)));
    }

    #[test]
    fn set_algebra() {
        let a = QuerySet::from_iter([QueryId(0), QueryId(1), QueryId(2)]);
        let b = QuerySet::from_iter([QueryId(1), QueryId(3)]);
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersect(b), QuerySet::single(QueryId(1)));
        assert_eq!(a.difference(b), QuerySet::from_iter([QueryId(0), QueryId(2)]));
        assert!(QuerySet::single(QueryId(1)).is_subset_of(a));
        assert!(!b.is_subset_of(a));
        assert!(a.intersects(b));
        assert!(!a.intersects(QuerySet::single(QueryId(5))));
    }

    #[test]
    fn first_n_and_iter() {
        let s = QuerySet::first_n(5);
        assert_eq!(s.len(), 5);
        let ids: Vec<u16> = s.iter().map(|q| q.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(QuerySet::first_n(64).len(), 64);
        assert_eq!(QuerySet::first_n(0), QuerySet::EMPTY);
    }

    #[test]
    fn display() {
        let s = QuerySet::from_iter([QueryId(2), QueryId(5)]);
        assert_eq!(format!("{s}"), "{q2,q5}");
    }
}
