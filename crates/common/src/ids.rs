//! Identifier newtypes.

use std::fmt;

/// Identifies a base relation in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifies a node in a shared plan DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a subplan of a shared plan (Sec. 2.2 of the paper: a subtree
/// of operators shared by the same set of queries, split at operators with
/// more than one parent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubplanId(pub u32);

impl SubplanId {
    /// Array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SubplanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sp{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TableId(1).to_string(), "t1");
        assert_eq!(NodeId(2).to_string(), "n2");
        assert_eq!(SubplanId(3).to_string(), "sp3");
        assert_eq!(SubplanId(3).index(), 3);
    }
}
