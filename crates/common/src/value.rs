//! Scalar values and data types.
//!
//! iShare tuples are vectors of [`Value`]. The engine needs values to be
//! usable as hash-map keys (group-by keys, join keys), so [`Value`]
//! implements a *total* `Eq`/`Ord`/`Hash`: floats compare via their IEEE bit
//! pattern after normalising `-0.0` to `0.0` and collapsing NaNs. Analytical
//! plans in this workspace never produce NaN, so the normalisation only
//! exists to keep the invariants of the containers honest.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer (also used for TPC-H identifiers and counts).
    Int,
    /// 64-bit IEEE float (used for TPC-H decimals; exactness is not needed
    /// for the paper's workloads).
    Float,
    /// Calendar date stored as days since 1970-01-01.
    Date,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Date => "date",
            DataType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar value.
///
/// `Null` compares less than every other value and is equal to itself; this
/// gives containers a total order without a separate three-valued logic at
/// the storage layer (SQL-style NULL semantics live in `ishare-expr`).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Days since the Unix epoch.
    Date(i32),
    /// Shared immutable string (cheap to clone when rows are copied between
    /// subplan buffers).
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// The [`DataType`] of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Date(_) => Some(DataType::Date),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// `true` iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value (`Int`, `Float` and `Date` coerce), used by
    /// arithmetic and aggregation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// Integer view of the value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Date(d) => Some(*d as i64),
            _ => None,
        }
    }

    /// Boolean view of the value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view of the value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Normalised float bits used for `Eq`/`Hash` — see [`norm_f64_bits`].
    fn norm_f64_bits(f: f64) -> u64 {
        norm_f64_bits(f)
    }

    /// Rank used to order values of different types (Null < Bool < Int/Float/Date < Str).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) | Value::Date(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            // Numeric cross-type comparisons go through f64 (TPC-H decimals
            // mix with integer literals in predicates).
            (a, b) if a.type_rank() == 2 && b.type_rank() == 2 => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                x.partial_cmp(&y)
                    .unwrap_or_else(|| Self::norm_f64_bits(x).cmp(&Self::norm_f64_bits(y)))
            }
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Int, Float and Date share the numeric equivalence class, so
            // they must share a hash: hash through normalised f64 bits when
            // the value is exactly representable, otherwise the raw i64.
            Value::Int(i) => {
                state.write_u8(2);
                state.write_u64(Self::norm_f64_bits(*i as f64));
            }
            Value::Float(f) => {
                state.write_u8(2);
                state.write_u64(Self::norm_f64_bits(*f));
            }
            Value::Date(d) => {
                state.write_u8(2);
                state.write_u64(Self::norm_f64_bits(*d as f64));
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Date(d) => {
                let (y, m, day) = days_to_ymd(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

/// Normalised float bit pattern: collapses `-0.0`/`0.0` and all NaN
/// payloads. This is the payload [`Value`]'s `Hash` uses for the numeric
/// equivalence class (`Int`/`Float`/`Date`), and the encoded-key layer
/// ([`crate::key::KeyBuf`]) must agree with it word for word.
pub fn norm_f64_bits(f: f64) -> u64 {
    if f.is_nan() {
        f64::NAN.to_bits()
    } else if f == 0.0 {
        0u64
    } else {
        f.to_bits()
    }
}

/// Convert a calendar date to days since 1970-01-01 (proleptic Gregorian).
///
/// Valid for the TPC-H date range (1992–1998); used by the data generator and
/// by date literals in query predicates.
pub fn ymd_to_days(year: i32, month: u32, day: u32) -> i32 {
    // Algorithm from Howard Hinnant's `days_from_civil`.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let mp = ((month + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era as i64 * 146_097 + doe - 719_468) as i32
}

/// Inverse of [`ymd_to_days`].
pub fn days_to_ymd(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let y = if m <= 2 { y + 1 } else { y };
    (y as i32, m, d)
}

/// Parse `YYYY-MM-DD` into a [`Value::Date`]. Panics on malformed input;
/// date literals are compile-time constants in this workspace.
pub fn date(s: &str) -> Value {
    let mut it = s.split('-');
    let y: i32 = it.next().expect("year").parse().expect("year");
    let m: u32 = it.next().expect("month").parse().expect("month");
    let d: u32 = it.next().expect("day").parse().expect("day");
    Value::Date(ymd_to_days(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[(1970, 1, 1), (1992, 1, 2), (1998, 12, 31), (2000, 2, 29), (1996, 3, 1)]
        {
            let days = ymd_to_days(y, m, d);
            assert_eq!(days_to_ymd(days), (y, m, d), "date {y}-{m}-{d}");
        }
        assert_eq!(ymd_to_days(1970, 1, 1), 0);
        assert_eq!(ymd_to_days(1970, 1, 2), 1);
    }

    #[test]
    fn date_parse_display() {
        let v = date("1995-03-15");
        assert_eq!(v.to_string(), "1995-03-15");
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn negative_zero_normalised() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn null_orders_first() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::str(""));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn string_order() {
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Int(i64::MAX) < Value::str(""));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Null.as_f64(), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Date(10).as_i64(), Some(10));
    }

    #[test]
    fn data_type_display() {
        assert_eq!(DataType::Int.to_string(), "int");
        assert_eq!(DataType::Date.to_string(), "date");
        assert_eq!(Value::Date(0).data_type(), Some(DataType::Date));
        assert_eq!(Value::Null.data_type(), None);
    }
}
