//! # ishare-common
//!
//! Foundation types shared by every crate in the iShare workspace:
//!
//! * [`Value`] / [`DataType`] — the dynamically-typed scalar values that flow
//!   through the engine (iShare is an analytical engine over a small fixed
//!   type lattice: bool, i64, f64, date, string).
//! * [`QuerySet`] / [`QueryId`] — the per-tuple / per-operator bitvectors of
//!   SharedDB-style shared execution (Sec. 2.3 of the paper): one bit per
//!   participating query, at most [`QuerySet::MAX_QUERIES`] concurrent queries.
//! * [`WorkUnits`] and [`WorkCounter`] — the cost accounting used for both the
//!   *total work* and *final work* metrics of Sec. 2.1.
//! * Identifier newtypes and the crate-wide [`Error`] type.

#![warn(missing_docs)]

pub mod error;
pub mod fxhash;
pub mod ids;
pub mod interner;
pub mod key;
pub mod queryset;
pub mod value;
pub mod work;

pub use error::{Error, Result};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{NodeId, SubplanId, TableId};
pub use interner::StrInterner;
pub use key::KeyBuf;
pub use queryset::{QueryId, QuerySet};
pub use value::{date, days_to_ymd, norm_f64_bits, ymd_to_days, DataType, Value};
pub use work::{CostWeights, OpKind, WorkBreakdown, WorkCounter, WorkUnits};
