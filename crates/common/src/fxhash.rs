//! Deterministic FxHash-style hasher for engine-internal hash maps.
//!
//! `std::collections::HashMap` seeds SipHash from process randomness, so map
//! *layout* (bucket order, iteration order) differs between processes. The
//! engine never lets layout leak into results or work totals, but the flat
//! operator state of the datapath kernels keys everything by [`KeyBuf`]s of
//! `u64` words, and hashing those through randomly-seeded SipHash is both
//! slow and a standing hazard: any future code that iterates a map would
//! silently become seed-dependent. [`FxHasher`] is the fixed-seed
//! multiply-rotate hash used by rustc (firefox's "Fx" hash): two processes
//! always agree on every hash, so state layout is a pure function of the
//! operation sequence — the same guarantee `validate_replay` already checks
//! end to end.
//!
//! Fx is not DoS-resistant; it is only used for engine-internal state keyed
//! by trusted data, never for user-facing collections.
//!
//! [`KeyBuf`]: crate::key::KeyBuf

use std::hash::{BuildHasherDefault, Hasher};

/// The multiply constant from rustc's `FxHasher` (a 64-bit truncation of
/// π's digits with good avalanche behaviour under `mul`+`rotate`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fixed-seed multiply-rotate hasher (rustc's FxHash).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // The multiply spreads entropy upward only, and engine keys often
        // vary in few input bits (e.g. [`norm_f64_bits`] of small integers
        // has 40+ trailing zeros, so the product's low bits are constant
        // across keys). hashbrown derives the bucket index from the LOW bits
        // and the SIMD control byte from the TOP 7 — a rotate can feed one
        // but never both, and a constant control byte degrades every probe
        // into full key comparisons. Full xor-shift-multiply avalanche
        // (Murmur3's fmix64) makes every output bit depend on every input
        // bit for a couple of cycles per lookup.
        //
        // [`norm_f64_bits`]: crate::value::norm_f64_bits
        let mut h = self.hash;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }
}

/// Hash a slice of `u64` key words (an encoded [`KeyBuf`]) with [`FxHasher`].
///
/// This is *the* key hash of the engine: flat operator state uses it to
/// index slots, and the partition exchange uses it (via [`partition_of`]) to
/// route rows — both sides must agree on every bit, which is why it lives
/// here rather than as a private helper of either.
///
/// [`KeyBuf`]: crate::key::KeyBuf
#[inline]
pub fn hash_words(words: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for &w in words {
        h.write_u64(w);
    }
    h.finish()
}

/// The partition owning an encoded key: `hash_words(words) % partitions`.
///
/// Value-pure — equal key *values* encode to equal words (per interner), so
/// they always land in the same partition. `partitions` must be non-zero.
#[inline]
pub fn partition_of(words: &[u64], partitions: usize) -> usize {
    debug_assert!(partitions > 0);
    (hash_words(words) % partitions as u64) as usize
}

/// `BuildHasher` producing [`FxHasher`]s — zero-sized, no per-map seed.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with deterministic (seed-free) hashing.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with deterministic (seed-free) hashing.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn fx_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        // No per-instance seed: every builder hashes identically. (The
        // cross-*process* half of this guarantee is exercised end to end by
        // the validate_kernels / validate_replay smoke bins.)
        assert_eq!(fx_of(0x1234_5678_9abc_def0u64), fx_of(0x1234_5678_9abc_def0u64));
        assert_eq!(fx_of("hello"), fx_of("hello"));
        assert_eq!(fx_of(vec![1u64, 2, 3]), fx_of(vec![1u64, 2, 3]));
    }

    #[test]
    fn distinguishes_inputs() {
        assert_ne!(fx_of(1u64), fx_of(2u64));
        assert_ne!(fx_of([1u64, 2]), fx_of([2u64, 1]));
        assert_ne!(fx_of("abc"), fx_of("abd"));
    }

    #[test]
    fn hash_words_matches_manual_hasher() {
        let words = [0xdead_beefu64, 7, u64::MAX];
        let mut h = FxHasher::default();
        for &w in &words {
            h.write_u64(w);
        }
        assert_eq!(hash_words(&words), h.finish());
        // Empty key (global aggregate) hashes to a constant.
        assert_eq!(hash_words(&[]), hash_words(&[]));
        assert_ne!(hash_words(&[1, 2]), hash_words(&[2, 1]));
    }

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for n in [1usize, 2, 3, 4, 8] {
            for k in 0..64u64 {
                let p = partition_of(&[k, k ^ 0x55], n);
                assert!(p < n);
                assert_eq!(p, partition_of(&[k, k ^ 0x55], n));
            }
        }
        // One partition owns everything.
        assert_eq!(partition_of(&[0x1234], 1), 0);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&((i * 2) as u32)));
        }
    }
}
