//! Fixed-width encoded join/group keys.
//!
//! The datapath kernels key their flat operator state by [`KeyBuf`] instead
//! of `Vec<Value>`: each key column encodes to exactly two `u64` words — a
//! type tag and a payload — so hashing and equality are word compares
//! instead of `Value` enum walks and string compares.
//!
//! The encoding mirrors [`Value`]'s `Eq`/`Hash` exactly:
//!
//! | value            | tag | payload                                  |
//! |------------------|-----|------------------------------------------|
//! | `Null`           | 0   | 0                                        |
//! | `Bool(b)`        | 1   | `b as u64`                               |
//! | `Int`/`Float`/`Date` | 2 | [`norm_f64_bits`]`(v.as_f64())`       |
//! | `Str(s)`         | 3   | interner id of `s` (see [`StrInterner`]) |
//!
//! Numerics share tag 2 because `Value` puts `Int`, `Float` and `Date` in
//! one equivalence class (`Int(3) == Float(3.0)`); the payload is the same
//! normalised-bit scheme `Value::hash` uses, so two values encode to the
//! same words iff the legacy `Vec<Value>` maps would have grouped them.
//! The one documented divergence: integers with `|i| > 2^53` are not exactly
//! representable as `f64`, where `Value`'s equality is already
//! non-transitive (`Int(2^53)` ≠ `Int(2^53+1)` but both `== Float(2^53)`);
//! no fixed-width encoding can agree with a non-transitive relation, and the
//! engine's workloads (TPC-H keys, dates, decimals) stay far below 2^53.
//!
//! String payloads are per-operator interner ids, deterministic in
//! first-seen order — see [`crate::interner`] for the determinism argument.
//!
//! [`norm_f64_bits`]: crate::value::norm_f64_bits

use crate::interner::StrInterner;
use crate::value::{norm_f64_bits, Value};
use std::borrow::Borrow;

/// An encoded key: two `u64` words per key column.
///
/// Reusable as a scratch buffer — `clear` + `push_value` per column, then
/// look up state by `&[u64]` (zero-allocation probe) or clone into the table
/// on first insert.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyBuf {
    words: Vec<u64>,
}

impl KeyBuf {
    /// Empty key.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset for reuse (keeps the allocation).
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Append one key column. Strings are interned through `interner`.
    #[inline]
    pub fn push_value(&mut self, v: &Value, interner: &mut StrInterner) {
        match v {
            Value::Null => {
                self.words.push(0);
                self.words.push(0);
            }
            Value::Bool(b) => {
                self.words.push(1);
                self.words.push(*b as u64);
            }
            Value::Int(i) => {
                self.words.push(2);
                self.words.push(norm_f64_bits(*i as f64));
            }
            Value::Float(f) => {
                self.words.push(2);
                self.words.push(norm_f64_bits(*f));
            }
            Value::Date(d) => {
                self.words.push(2);
                self.words.push(norm_f64_bits(*d as f64));
            }
            Value::Str(s) => {
                self.words.push(3);
                self.words.push(interner.intern(s) as u64);
            }
        }
    }

    /// Key from already-encoded words (e.g. a probe slice being promoted to
    /// a stored state-table key).
    pub fn from_words(words: &[u64]) -> Self {
        KeyBuf { words: words.to_vec() }
    }

    /// The encoded words.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Number of encoded key columns.
    pub fn columns(&self) -> usize {
        self.words.len() / 2
    }
}

impl Borrow<[u64]> for KeyBuf {
    fn borrow(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(vals: &[Value], i: &mut StrInterner) -> KeyBuf {
        let mut k = KeyBuf::new();
        for v in vals {
            k.push_value(v, i);
        }
        k
    }

    #[test]
    fn mirrors_value_equality() {
        let mut i = StrInterner::new();
        // Int(3) == Float(3.0) == Date? (3 days) — same numeric class.
        let a = enc(&[Value::Int(3)], &mut i);
        let b = enc(&[Value::Float(3.0)], &mut i);
        let c = enc(&[Value::Date(3)], &mut i);
        assert_eq!(a, b);
        assert_eq!(a, c);
        // -0.0 normalises to 0.0.
        assert_eq!(enc(&[Value::Float(0.0)], &mut i), enc(&[Value::Float(-0.0)], &mut i));
        // Distinct types stay distinct.
        assert_ne!(enc(&[Value::Null], &mut i), enc(&[Value::Bool(false)], &mut i));
        assert_ne!(enc(&[Value::Bool(true)], &mut i), enc(&[Value::Int(1)], &mut i));
    }

    #[test]
    fn strings_encode_by_interner_id() {
        let mut i = StrInterner::new();
        let a1 = enc(&[Value::str("a")], &mut i);
        let b = enc(&[Value::str("b")], &mut i);
        let a2 = enc(&[Value::str("a")], &mut i);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1.columns(), 1);
    }

    #[test]
    fn scratch_reuse() {
        let mut i = StrInterner::new();
        let mut k = KeyBuf::new();
        k.push_value(&Value::Int(1), &mut i);
        let one = k.clone();
        k.clear();
        k.push_value(&Value::Int(2), &mut i);
        assert_ne!(k, one);
        assert_eq!(k.as_words().len(), 2);
    }

    #[test]
    fn borrow_matches_hash() {
        use crate::fxhash::FxBuildHasher;
        use std::hash::BuildHasher;
        let mut i = StrInterner::new();
        let k = enc(&[Value::Int(7), Value::str("x")], &mut i);
        let h = FxBuildHasher::default();
        let via_key = h.hash_one(&k);
        let words: &[u64] = k.borrow();
        assert_eq!(via_key, h.hash_one(words), "Borrow<[u64]> must hash identically");
    }
}
