//! The workspace-wide error type.

use std::fmt;

/// Errors surfaced by the iShare engine and optimizers.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A scalar expression was applied to values of an unsupported type,
    /// e.g. arithmetic on strings.
    TypeMismatch(String),
    /// An expression referenced a column index outside the row's arity.
    ColumnOutOfBounds {
        /// The offending column index.
        index: usize,
        /// The row's arity.
        arity: usize,
    },
    /// A name lookup (table, column, query) failed.
    NotFound(String),
    /// A plan violated a structural invariant (cycle, arity mismatch between
    /// an operator and its input, subplan query-set subsumption, …).
    InvalidPlan(String),
    /// A delta stream violated multiset semantics, e.g. a retraction of a
    /// row that was never inserted reached a stateful operator.
    InvalidDelta(String),
    /// The optimizer could not satisfy a final work constraint even at the
    /// maximum pace. Carries a human-readable description of the offending
    /// query and constraint.
    InfeasibleConstraint(String),
    /// A configuration value was out of range (zero pace, scale factor ≤ 0, …).
    InvalidConfig(String),
    /// A live query-churn operation (admission or removal at a wavefront
    /// boundary) was rejected: duplicate query id, removal of an unknown
    /// query, an admission whose state handoff has no witness query, or a
    /// churn event scheduled where none can run (e.g. the final boundary).
    Churn(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            Error::ColumnOutOfBounds { index, arity } => {
                write!(f, "column index {index} out of bounds for row arity {arity}")
            }
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            Error::InvalidDelta(m) => write!(f, "invalid delta stream: {m}"),
            Error::InfeasibleConstraint(m) => write!(f, "infeasible constraint: {m}"),
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Error::Churn(m) => write!(f, "query churn rejected: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            Error::ColumnOutOfBounds { index: 5, arity: 3 }.to_string(),
            "column index 5 out of bounds for row arity 3"
        );
        assert!(Error::TypeMismatch("x".into()).to_string().contains("type mismatch"));
        assert!(Error::InfeasibleConstraint("q1".into()).to_string().contains("infeasible"));
        assert!(Error::Churn("duplicate query 3".into()).to_string().contains("churn rejected"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&Error::NotFound("t".into()));
    }
}
