//! Deterministic string interning for encoded keys.
//!
//! [`KeyBuf`] key encoding (see [`crate::key`]) needs a fixed-width stand-in
//! for string values. A [`StrInterner`] maps each distinct string to a dense
//! `u32` id assigned in *first-intern order*. Because every operator state
//! sees a deterministic sequence of input rows (the drivers' bit-identical
//! schedule guarantee), the id assignment — and therefore every encoded key,
//! every hash, and every state layout derived from it — is a pure function
//! of the input stream: identical across processes, thread counts, and
//! kill/resume replays.
//!
//! Ids are only meaningful *within* one interner; each stateful operator
//! owns its own (a join shares one across both sides so that left and right
//! keys encode identically).
//!
//! [`KeyBuf`]: crate::key::KeyBuf

use crate::fxhash::FxHashMap;
use std::sync::Arc;

/// Interns strings to dense `u32` ids in first-seen order.
#[derive(Debug, Default, Clone)]
pub struct StrInterner {
    ids: FxHashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

impl StrInterner {
    /// Fresh empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id for `s`, interning it if unseen. Ids count up from 0 in
    /// first-intern order.
    pub fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        self.ids.insert(s.clone(), id);
        self.strings.push(s.clone());
        id
    }

    /// The string interned as `id` (panics on an id this interner never
    /// produced).
    pub fn resolve(&self, id: u32) -> &Arc<str> {
        &self.strings[id as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_seen_order() {
        let mut i = StrInterner::new();
        let a: Arc<str> = Arc::from("alpha");
        let b: Arc<str> = Arc::from("beta");
        assert_eq!(i.intern(&a), 0);
        assert_eq!(i.intern(&b), 1);
        assert_eq!(i.intern(&a), 0, "re-intern is stable");
        assert_eq!(i.len(), 2);
        assert_eq!(&**i.resolve(1), "beta");
    }

    #[test]
    fn independent_interners_assign_independently() {
        let mut x = StrInterner::new();
        let mut y = StrInterner::new();
        let a: Arc<str> = Arc::from("a");
        let b: Arc<str> = Arc::from("b");
        x.intern(&a);
        assert_eq!(x.intern(&b), 1);
        assert_eq!(y.intern(&b), 0, "ids are per-interner");
        assert!(!x.is_empty());
    }
}
