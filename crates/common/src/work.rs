//! Work accounting.
//!
//! The paper (Sec. 2.1) uses *total work* as a proxy for total execution time
//! / CPU consumption and *final work* as a proxy for query latency, both
//! "quantified based on the DBMS's cost model — for example … the number of
//! tuples processed by all operators". This module provides the unit type and
//! the counter that the execution engine increments while physically
//! processing tuples; the cost model (`ishare-cost`) produces *estimates* in
//! the same unit so that estimated and measured work are directly comparable.

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Cost-model work units (weighted tuples processed). A plain `f64` newtype
/// so that work can't be accidentally mixed with cardinalities.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct WorkUnits(pub f64);

impl WorkUnits {
    /// Zero work.
    pub const ZERO: WorkUnits = WorkUnits(0.0);

    /// The raw amount.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Saturating subtraction (work differences are clamped at zero where the
    /// paper's formulas take `max(0, …)`).
    pub fn saturating_sub(self, other: WorkUnits) -> WorkUnits {
        WorkUnits((self.0 - other.0).max(0.0))
    }

    /// `true` iff within `eps` of `other` (cost comparisons tolerate float noise).
    pub fn approx_eq(self, other: WorkUnits, eps: f64) -> bool {
        (self.0 - other.0).abs() <= eps
    }
}

impl Add for WorkUnits {
    type Output = WorkUnits;
    fn add(self, rhs: WorkUnits) -> WorkUnits {
        WorkUnits(self.0 + rhs.0)
    }
}

impl AddAssign for WorkUnits {
    fn add_assign(&mut self, rhs: WorkUnits) {
        self.0 += rhs.0;
    }
}

impl Sub for WorkUnits {
    type Output = WorkUnits;
    fn sub(self, rhs: WorkUnits) -> WorkUnits {
        WorkUnits(self.0 - rhs.0)
    }
}

impl std::iter::Sum for WorkUnits {
    fn sum<I: Iterator<Item = WorkUnits>>(iter: I) -> WorkUnits {
        WorkUnits(iter.map(|w| w.0).sum())
    }
}

impl fmt::Display for WorkUnits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}wu", self.0)
    }
}

/// Per-operator cost weights. Tuples processed by different operators cost
/// differently; these weights are the engine's crude CPU model and are shared
/// verbatim by the estimator so that estimates and measurements line up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Reading one tuple from a buffer / base delta log.
    pub scan: f64,
    /// Evaluating one select branch on one tuple.
    pub filter: f64,
    /// Computing one projection expression on one tuple.
    pub project: f64,
    /// Hashing + probing one tuple through a join (per side).
    pub join_probe: f64,
    /// Inserting one tuple into join state.
    pub join_insert: f64,
    /// Emitting one joined output tuple.
    pub join_emit: f64,
    /// Updating one aggregate accumulator with one input tuple.
    pub agg_update: f64,
    /// Emitting one aggregate output tuple (retraction or insertion).
    pub agg_emit: f64,
    /// Touching one stored value during a MIN/MAX rescan after the current
    /// extremum was deleted. Rescans are what make MIN/MAX queries
    /// non-incrementable (the paper's Q15 discussion).
    pub minmax_rescan: f64,
    /// Materialising one tuple into a subplan output buffer.
    pub materialize: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            scan: 1.0,
            filter: 1.0,
            project: 0.5,
            join_probe: 2.0,
            join_insert: 2.0,
            join_emit: 1.0,
            agg_update: 2.0,
            agg_emit: 1.0,
            minmax_rescan: 1.0,
            materialize: 1.0,
        }
    }
}

/// A mutable work counter threaded through operator execution.
///
/// Uses `Cell` so that operators holding shared references can still account
/// work without threading `&mut` through the whole operator tree.
#[derive(Debug, Default)]
pub struct WorkCounter {
    total: Cell<f64>,
}

impl WorkCounter {
    /// Fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` occurrences of an action costing `weight` each.
    pub fn charge(&self, weight: f64, n: usize) {
        self.total.set(self.total.get() + weight * n as f64);
    }

    /// Add a raw amount of work.
    pub fn charge_raw(&self, amount: f64) {
        self.total.set(self.total.get() + amount);
    }

    /// Total work recorded so far.
    pub fn total(&self) -> WorkUnits {
        WorkUnits(self.total.get())
    }

    /// Reset to zero and return the previous total (used to carve one
    /// incremental execution's work out of a long-lived counter).
    pub fn take(&self) -> WorkUnits {
        let t = self.total.get();
        self.total.set(0.0);
        WorkUnits(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = WorkUnits(3.0) + WorkUnits(4.0);
        assert_eq!(a, WorkUnits(7.0));
        assert_eq!(a - WorkUnits(2.0), WorkUnits(5.0));
        assert_eq!(WorkUnits(1.0).saturating_sub(WorkUnits(5.0)), WorkUnits::ZERO);
        let s: WorkUnits = [WorkUnits(1.0), WorkUnits(2.5)].into_iter().sum();
        assert_eq!(s, WorkUnits(3.5));
        assert!(WorkUnits(1.0).approx_eq(WorkUnits(1.0 + 1e-12), 1e-9));
    }

    #[test]
    fn counter_charges_and_takes() {
        let c = WorkCounter::new();
        c.charge(2.0, 3);
        c.charge_raw(0.5);
        assert_eq!(c.total(), WorkUnits(6.5));
        assert_eq!(c.take(), WorkUnits(6.5));
        assert_eq!(c.total(), WorkUnits::ZERO);
    }

    #[test]
    fn default_weights_positive() {
        let w = CostWeights::default();
        for v in [
            w.scan,
            w.filter,
            w.project,
            w.join_probe,
            w.join_insert,
            w.join_emit,
            w.agg_update,
            w.agg_emit,
            w.minmax_rescan,
            w.materialize,
        ] {
            assert!(v > 0.0);
        }
    }
}
