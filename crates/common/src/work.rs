//! Work accounting.
//!
//! The paper (Sec. 2.1) uses *total work* as a proxy for total execution time
//! / CPU consumption and *final work* as a proxy for query latency, both
//! "quantified based on the DBMS's cost model — for example … the number of
//! tuples processed by all operators". This module provides the unit type and
//! the counter that the execution engine increments while physically
//! processing tuples; the cost model (`ishare-cost`) produces *estimates* in
//! the same unit so that estimated and measured work are directly comparable.

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Cost-model work units (weighted tuples processed). A plain `f64` newtype
/// so that work can't be accidentally mixed with cardinalities.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct WorkUnits(pub f64);

impl WorkUnits {
    /// Zero work.
    pub const ZERO: WorkUnits = WorkUnits(0.0);

    /// The raw amount.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Saturating subtraction (work differences are clamped at zero where the
    /// paper's formulas take `max(0, …)`).
    pub fn saturating_sub(self, other: WorkUnits) -> WorkUnits {
        WorkUnits((self.0 - other.0).max(0.0))
    }

    /// `true` iff within `eps` of `other` (cost comparisons tolerate float noise).
    pub fn approx_eq(self, other: WorkUnits, eps: f64) -> bool {
        (self.0 - other.0).abs() <= eps
    }
}

impl Add for WorkUnits {
    type Output = WorkUnits;
    fn add(self, rhs: WorkUnits) -> WorkUnits {
        WorkUnits(self.0 + rhs.0)
    }
}

impl AddAssign for WorkUnits {
    fn add_assign(&mut self, rhs: WorkUnits) {
        self.0 += rhs.0;
    }
}

impl Sub for WorkUnits {
    type Output = WorkUnits;
    fn sub(self, rhs: WorkUnits) -> WorkUnits {
        WorkUnits(self.0 - rhs.0)
    }
}

impl std::iter::Sum for WorkUnits {
    fn sum<I: Iterator<Item = WorkUnits>>(iter: I) -> WorkUnits {
        WorkUnits(iter.map(|w| w.0).sum())
    }
}

impl fmt::Display for WorkUnits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}wu", self.0)
    }
}

/// Per-operator cost weights. Tuples processed by different operators cost
/// differently; these weights are the engine's crude CPU model and are shared
/// verbatim by the estimator so that estimates and measurements line up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Reading one tuple from a buffer / base delta log.
    pub scan: f64,
    /// Evaluating one select branch on one tuple.
    pub filter: f64,
    /// Computing one projection expression on one tuple.
    pub project: f64,
    /// Hashing + probing one tuple through a join (per side).
    pub join_probe: f64,
    /// Inserting one tuple into join state.
    pub join_insert: f64,
    /// Emitting one joined output tuple.
    pub join_emit: f64,
    /// Updating one aggregate accumulator with one input tuple.
    pub agg_update: f64,
    /// Emitting one aggregate output tuple (retraction or insertion).
    pub agg_emit: f64,
    /// Touching one stored value during a MIN/MAX rescan after the current
    /// extremum was deleted. Rescans are what make MIN/MAX queries
    /// non-incrementable (the paper's Q15 discussion).
    pub minmax_rescan: f64,
    /// Materialising one tuple into a subplan output buffer.
    pub materialize: f64,
}

impl CostWeights {
    /// The weight charged per occurrence of `kind`.
    pub fn of(&self, kind: OpKind) -> f64 {
        match kind {
            OpKind::Scan => self.scan,
            OpKind::Filter => self.filter,
            OpKind::Project => self.project,
            OpKind::JoinProbe => self.join_probe,
            OpKind::JoinInsert => self.join_insert,
            OpKind::JoinEmit => self.join_emit,
            OpKind::AggUpdate => self.agg_update,
            OpKind::AggEmit => self.agg_emit,
            OpKind::MinmaxRescan => self.minmax_rescan,
            OpKind::Materialize => self.materialize,
        }
    }
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            scan: 1.0,
            filter: 1.0,
            project: 0.5,
            join_probe: 2.0,
            join_insert: 2.0,
            join_emit: 1.0,
            agg_update: 2.0,
            agg_emit: 1.0,
            minmax_rescan: 1.0,
            materialize: 1.0,
        }
    }
}

/// The kind of operator action a work charge is attributed to. Mirrors the
/// fields of [`CostWeights`] one-to-one, so that every charge the engine
/// makes lands in exactly one breakdown bucket and the per-kind totals
/// provably account for all of [`WorkCounter::total`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Reading tuples from a buffer / base delta log ([`CostWeights::scan`]).
    Scan,
    /// Select-branch predicate evaluations ([`CostWeights::filter`]).
    Filter,
    /// Projection expression evaluations ([`CostWeights::project`]).
    Project,
    /// Join hash probes ([`CostWeights::join_probe`]).
    JoinProbe,
    /// Join state insertions ([`CostWeights::join_insert`]).
    JoinInsert,
    /// Joined output emissions ([`CostWeights::join_emit`]).
    JoinEmit,
    /// Aggregate accumulator updates ([`CostWeights::agg_update`]).
    AggUpdate,
    /// Aggregate output emissions ([`CostWeights::agg_emit`]).
    AggEmit,
    /// MIN/MAX rescans after extremum deletes ([`CostWeights::minmax_rescan`]).
    MinmaxRescan,
    /// Materialization into subplan output buffers ([`CostWeights::materialize`]).
    Materialize,
}

impl OpKind {
    /// Number of distinct kinds.
    pub const COUNT: usize = 10;

    /// Every kind, in breakdown-index order.
    pub const ALL: [OpKind; OpKind::COUNT] = [
        OpKind::Scan,
        OpKind::Filter,
        OpKind::Project,
        OpKind::JoinProbe,
        OpKind::JoinInsert,
        OpKind::JoinEmit,
        OpKind::AggUpdate,
        OpKind::AggEmit,
        OpKind::MinmaxRescan,
        OpKind::Materialize,
    ];

    /// Index into a [`WorkBreakdown`].
    pub fn index(self) -> usize {
        match self {
            OpKind::Scan => 0,
            OpKind::Filter => 1,
            OpKind::Project => 2,
            OpKind::JoinProbe => 3,
            OpKind::JoinInsert => 4,
            OpKind::JoinEmit => 5,
            OpKind::AggUpdate => 6,
            OpKind::AggEmit => 7,
            OpKind::MinmaxRescan => 8,
            OpKind::Materialize => 9,
        }
    }

    /// Stable snake_case label (metric names, JSON keys).
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Scan => "scan",
            OpKind::Filter => "filter",
            OpKind::Project => "project",
            OpKind::JoinProbe => "join_probe",
            OpKind::JoinInsert => "join_insert",
            OpKind::JoinEmit => "join_emit",
            OpKind::AggUpdate => "agg_update",
            OpKind::AggEmit => "agg_emit",
            OpKind::MinmaxRescan => "minmax_rescan",
            OpKind::Materialize => "materialize",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-operator-kind work totals (work units per [`OpKind`], indexed by
/// [`OpKind::index`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkBreakdown(pub [f64; OpKind::COUNT]);

impl WorkBreakdown {
    /// Work attributed to one kind.
    pub fn get(&self, kind: OpKind) -> f64 {
        self.0[kind.index()]
    }

    /// Sum over all kinds. Equal to the matching [`WorkCounter::total`] up
    /// to float re-association (the counter accumulates chronologically, the
    /// breakdown per kind), so compare with a small epsilon.
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Accumulate another breakdown in place.
    pub fn add(&mut self, other: &WorkBreakdown) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }
}

impl AddAssign for WorkBreakdown {
    fn add_assign(&mut self, rhs: WorkBreakdown) {
        self.add(&rhs);
    }
}

/// A mutable work counter threaded through operator execution.
///
/// Uses `Cell` so that operators holding shared references can still account
/// work without threading `&mut` through the whole operator tree. Every
/// charge is tagged with the [`OpKind`] it belongs to; the counter maintains
/// the chronological `total` exactly as before *and* a per-kind breakdown,
/// so observability can be layered on without perturbing the totals the
/// engine's determinism guarantees are stated over.
#[derive(Debug, Default)]
pub struct WorkCounter {
    total: Cell<f64>,
    by_kind: [Cell<f64>; OpKind::COUNT],
}

impl WorkCounter {
    /// Fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` occurrences of a `kind` action costing `weight` each.
    pub fn charge(&self, kind: OpKind, weight: f64, n: usize) {
        let amount = weight * n as f64;
        self.total.set(self.total.get() + amount);
        let cell = &self.by_kind[kind.index()];
        cell.set(cell.get() + amount);
    }

    /// Total work recorded so far.
    pub fn total(&self) -> WorkUnits {
        WorkUnits(self.total.get())
    }

    /// Work recorded so far for one kind.
    pub fn kind_total(&self, kind: OpKind) -> WorkUnits {
        WorkUnits(self.by_kind[kind.index()].get())
    }

    /// Snapshot of the per-kind breakdown.
    pub fn breakdown(&self) -> WorkBreakdown {
        let mut out = [0.0; OpKind::COUNT];
        for (o, c) in out.iter_mut().zip(self.by_kind.iter()) {
            *o = c.get();
        }
        WorkBreakdown(out)
    }

    /// Fold another counter's per-kind totals into this one, kind by kind,
    /// adding each kind's amount to both its bucket and the chronological
    /// total.
    ///
    /// This is the partition-merge step of the exchange operator: each
    /// partition charges its own private counter, and the partitions'
    /// breakdowns are absorbed into the main counter in partition-index
    /// order. With the default dyadic cost weights every charge — and hence
    /// every per-kind partial sum — is exact in f64, so absorbing per-kind
    /// instead of replaying the interleaved charge sequence yields
    /// bit-identical totals.
    pub fn absorb(&self, b: &WorkBreakdown) {
        for kind in OpKind::ALL {
            let amount = b.get(kind);
            if amount != 0.0 {
                self.total.set(self.total.get() + amount);
                let cell = &self.by_kind[kind.index()];
                cell.set(cell.get() + amount);
            }
        }
    }

    /// Reset to zero and return the previous total (used to carve one
    /// incremental execution's work out of a long-lived counter).
    pub fn take(&self) -> WorkUnits {
        let t = self.total.get();
        self.total.set(0.0);
        for c in &self.by_kind {
            c.set(0.0);
        }
        WorkUnits(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = WorkUnits(3.0) + WorkUnits(4.0);
        assert_eq!(a, WorkUnits(7.0));
        assert_eq!(a - WorkUnits(2.0), WorkUnits(5.0));
        assert_eq!(WorkUnits(1.0).saturating_sub(WorkUnits(5.0)), WorkUnits::ZERO);
        let s: WorkUnits = [WorkUnits(1.0), WorkUnits(2.5)].into_iter().sum();
        assert_eq!(s, WorkUnits(3.5));
        assert!(WorkUnits(1.0).approx_eq(WorkUnits(1.0 + 1e-12), 1e-9));
    }

    #[test]
    fn counter_charges_and_takes() {
        let c = WorkCounter::new();
        c.charge(OpKind::Scan, 2.0, 3);
        c.charge(OpKind::Filter, 0.5, 1);
        assert_eq!(c.total(), WorkUnits(6.5));
        assert_eq!(c.kind_total(OpKind::Scan), WorkUnits(6.0));
        assert_eq!(c.kind_total(OpKind::Filter), WorkUnits(0.5));
        assert_eq!(c.take(), WorkUnits(6.5));
        assert_eq!(c.total(), WorkUnits::ZERO);
        assert_eq!(c.breakdown(), WorkBreakdown::default());
    }

    #[test]
    fn breakdown_sums_to_total() {
        let c = WorkCounter::new();
        for (i, kind) in OpKind::ALL.into_iter().enumerate() {
            c.charge(kind, 0.5 + i as f64, i + 1);
        }
        let b = c.breakdown();
        assert!((b.sum() - c.total().get()).abs() < 1e-9);
        for kind in OpKind::ALL {
            assert_eq!(b.get(kind), c.kind_total(kind).get());
        }
    }

    /// The PR 2 invariant extended to the partitioned path: charges split
    /// across per-partition counters and absorbed back must reproduce the
    /// sequential counter bit for bit — per kind and in total. Dyadic
    /// weights (the engine default) make every partial sum exact.
    #[test]
    fn partitioned_breakdown_sums_exactly_to_total() {
        let w = CostWeights::default();
        // A sequential charge sequence: (kind, count) pairs as one operator
        // execution would produce them.
        let charges: Vec<(OpKind, usize)> =
            (0..200).map(|i| (OpKind::ALL[(i * 7) % OpKind::COUNT], (i * 13) % 9 + 1)).collect();
        let seq = WorkCounter::new();
        for &(kind, n) in &charges {
            seq.charge(kind, w.of(kind), n);
        }
        for parts in [1usize, 2, 4, 8] {
            // Split the same charges round-robin over per-partition
            // counters, then absorb in partition order.
            let counters: Vec<WorkCounter> = (0..parts).map(|_| WorkCounter::new()).collect();
            for (i, &(kind, n)) in charges.iter().enumerate() {
                counters[i % parts].charge(kind, w.of(kind), n);
            }
            let merged = WorkCounter::new();
            for c in &counters {
                merged.absorb(&c.breakdown());
            }
            assert_eq!(
                merged.total().get().to_bits(),
                seq.total().get().to_bits(),
                "total differs at {parts} partitions"
            );
            for kind in OpKind::ALL {
                assert_eq!(
                    merged.kind_total(kind).get().to_bits(),
                    seq.kind_total(kind).get().to_bits(),
                    "{kind} differs at {parts} partitions"
                );
            }
            let sum: f64 = OpKind::ALL.iter().map(|&k| merged.kind_total(k).get()).sum();
            assert_eq!(sum.to_bits(), merged.total().get().to_bits());
        }
    }

    #[test]
    fn opkind_index_and_labels_are_consistent() {
        for (i, kind) in OpKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert_eq!(kind.to_string(), kind.label());
        }
        let labels: std::collections::HashSet<&str> =
            OpKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), OpKind::COUNT);
    }

    #[test]
    fn breakdown_accumulates() {
        let mut a = WorkBreakdown::default();
        let mut b = WorkBreakdown::default();
        b.0[OpKind::JoinProbe.index()] = 2.0;
        a += b;
        a += b;
        assert_eq!(a.get(OpKind::JoinProbe), 4.0);
        assert_eq!(a.sum(), 4.0);
    }

    #[test]
    fn default_weights_positive() {
        let w = CostWeights::default();
        for v in [
            w.scan,
            w.filter,
            w.project,
            w.join_probe,
            w.join_insert,
            w.join_emit,
            w.agg_update,
            w.agg_emit,
            w.minmax_rescan,
            w.materialize,
        ] {
            assert!(v > 0.0);
        }
    }
}
