//! Model-based property tests: [`QuerySet`] against `BTreeSet<u16>`.

use ishare_common::{QueryId, QuerySet};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn model(ids: &[u16]) -> (QuerySet, BTreeSet<u16>) {
    let qs = QuerySet::from_iter(ids.iter().map(|&i| QueryId(i % 64)));
    let m: BTreeSet<u16> = ids.iter().map(|&i| i % 64).collect();
    (qs, m)
}

proptest! {
    #[test]
    fn set_algebra_matches_btreeset(
        a in proptest::collection::vec(0u16..64, 0..20),
        b in proptest::collection::vec(0u16..64, 0..20),
    ) {
        let (qa, ma) = model(&a);
        let (qb, mb) = model(&b);

        prop_assert_eq!(qa.len(), ma.len());
        prop_assert_eq!(qa.is_empty(), ma.is_empty());

        let union: BTreeSet<u16> = ma.union(&mb).copied().collect();
        prop_assert_eq!(
            qa.union(qb).iter().map(|q| q.0).collect::<BTreeSet<_>>(),
            union
        );
        let inter: BTreeSet<u16> = ma.intersection(&mb).copied().collect();
        prop_assert_eq!(
            qa.intersect(qb).iter().map(|q| q.0).collect::<BTreeSet<_>>(),
            inter.clone()
        );
        let diff: BTreeSet<u16> = ma.difference(&mb).copied().collect();
        prop_assert_eq!(
            qa.difference(qb).iter().map(|q| q.0).collect::<BTreeSet<_>>(),
            diff
        );
        prop_assert_eq!(qa.is_subset_of(qb), ma.is_subset(&mb));
        prop_assert_eq!(qa.intersects(qb), !inter.is_empty());
        prop_assert_eq!(qa.min_query().map(|q| q.0), ma.first().copied());
        for i in 0..64u16 {
            prop_assert_eq!(qa.contains(QueryId(i)), ma.contains(&i));
        }
    }

    #[test]
    fn insert_remove_roundtrip(ids in proptest::collection::vec(0u16..64, 0..30)) {
        let mut qs = QuerySet::EMPTY;
        let mut m = BTreeSet::new();
        for (i, &id) in ids.iter().enumerate() {
            if i % 3 == 2 {
                qs.remove(QueryId(id));
                m.remove(&id);
            } else {
                qs.insert(QueryId(id));
                m.insert(id);
            }
            prop_assert_eq!(qs.iter().map(|q| q.0).collect::<BTreeSet<_>>(), m.clone());
        }
    }
}
