//! The pre-kernel reference datapath, retained verbatim as a differential
//! oracle.
//!
//! Everything in this module is the engine's original interpreter-shaped
//! implementation: recursive [`eval`] per row, `Vec<Value>` keys through
//! SipHash maps, join state in `BTreeMap<(Row, QuerySet), i64>`, and one
//! `WorkCounter::charge` per tuple. The datapath kernels (`join`,
//! `aggregate`, `operators`) replace all of it on the hot path; this copy
//! exists so `tests/kernel_equivalence.rs` and the `validate_kernels` smoke
//! bin can run the same workload through both datapaths and assert that
//! charged work units, per-query `final_work`, and `QueryResult`s are
//! bit-identical — the invariant that makes the kernel rewrite safe.
//!
//! Selected via [`crate::executor::ExecMode::Reference`]; nothing else
//! should call into this module.

use ishare_common::{CostWeights, Error, OpKind, QuerySet, Result, Value, WorkCounter};
use ishare_expr::eval::{eval, eval_predicate};
use ishare_expr::Expr;
use ishare_plan::{AggExpr, AggFunc, SelectBranch};
use ishare_storage::{DeltaBatch, DeltaRow, Row};
use std::collections::{BTreeMap, HashMap, HashSet};

type Key = Vec<Value>;
// The inner map is ordered so that probe emission order is a pure function
// of the stored state, not of hasher seeds.
type SideMap = HashMap<Key, BTreeMap<(Row, QuerySet), i64>>;

/// Reference symmetric hash join state (legacy datapath).
#[derive(Debug, Default)]
pub struct RefJoinState {
    left: SideMap,
    right: SideMap,
    left_entries: usize,
    right_entries: usize,
}

impl RefJoinState {
    /// Fresh empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stored (row, mask) entries on the left side.
    pub fn left_size(&self) -> usize {
        self.left_entries
    }

    /// Stored (row, mask) entries on the right side.
    pub fn right_size(&self) -> usize {
        self.right_entries
    }

    /// Run one incremental execution over the two input deltas.
    pub fn execute(
        &mut self,
        left_delta: DeltaBatch,
        right_delta: DeltaBatch,
        keys: &[(Expr, Expr)],
        weights: &CostWeights,
        counter: &WorkCounter,
    ) -> Result<DeltaBatch> {
        let mut out = DeltaBatch::new();

        // ΔL ⋈ R_old
        let left_keyed = key_rows(&left_delta, keys.iter().map(|(l, _)| l))?;
        for (key, dr) in &left_keyed {
            counter.charge(OpKind::JoinProbe, weights.join_probe, 1);
            if let Some(matches) = self.right.get(key) {
                for ((rrow, rmask), rw) in matches {
                    emit(&mut out, dr, rrow, *rmask, *rw, false, weights, counter);
                }
            }
        }
        // Insert ΔL.
        for (key, dr) in &left_keyed {
            counter.charge(OpKind::JoinInsert, weights.join_insert, 1);
            insert_side(&mut self.left, &mut self.left_entries, key, dr)?;
        }
        // ΔR ⋈ L_new (covers L_old⋈ΔR and ΔL⋈ΔR).
        let right_keyed = key_rows(&right_delta, keys.iter().map(|(_, r)| r))?;
        for (key, dr) in &right_keyed {
            counter.charge(OpKind::JoinProbe, weights.join_probe, 1);
            if let Some(matches) = self.left.get(key) {
                for ((lrow, lmask), lw) in matches {
                    emit(&mut out, dr, lrow, *lmask, *lw, true, weights, counter);
                }
            }
        }
        for (key, dr) in &right_keyed {
            counter.charge(OpKind::JoinInsert, weights.join_insert, 1);
            insert_side(&mut self.right, &mut self.right_entries, key, dr)?;
        }
        Ok(out)
    }
}

fn key_rows<'a>(
    batch: &DeltaBatch,
    key_exprs: impl Iterator<Item = &'a Expr> + Clone,
) -> Result<Vec<(Key, DeltaRow)>> {
    let mut out = Vec::with_capacity(batch.len());
    'rows: for r in &batch.rows {
        let mut key = Vec::new();
        for e in key_exprs.clone() {
            let v = eval(e, r.row.values())?;
            if v.is_null() {
                continue 'rows;
            }
            key.push(v);
        }
        out.push((key, r.clone()));
    }
    Ok(out)
}

fn insert_side(side: &mut SideMap, entries: &mut usize, key: &Key, dr: &DeltaRow) -> Result<()> {
    let slot = side.entry(key.clone()).or_default();
    let e = slot.entry((dr.row.clone(), dr.mask)).or_insert(0);
    let was_zero = *e == 0;
    *e += dr.weight;
    if *e == 0 {
        slot.remove(&(dr.row.clone(), dr.mask));
        *entries -= 1;
        if slot.is_empty() {
            side.remove(key);
        }
    } else if was_zero {
        *entries += 1;
    }
    if let Some(slot) = side.get(key) {
        if let Some(w) = slot.get(&(dr.row.clone(), dr.mask)) {
            if *w < 0 {
                return Err(Error::InvalidDelta(format!(
                    "join state went negative ({w}) for row {}",
                    dr.row
                )));
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn emit(
    out: &mut DeltaBatch,
    delta: &DeltaRow,
    stored_row: &Row,
    stored_mask: QuerySet,
    stored_weight: i64,
    delta_is_right: bool,
    weights: &CostWeights,
    counter: &WorkCounter,
) {
    let mask = delta.mask.intersect(stored_mask);
    if mask.is_empty() || stored_weight == 0 {
        return;
    }
    counter.charge(OpKind::JoinEmit, weights.join_emit, 1);
    let row =
        if delta_is_right { stored_row.concat(&delta.row) } else { delta.row.concat(stored_row) };
    out.push(DeltaRow { row, weight: delta.weight * stored_weight, mask });
}

/// Reference accumulator (legacy datapath): MIN/MAX multisets in SipHash
/// maps.
#[derive(Debug, Clone)]
enum RefAccumulator {
    Sum { int: bool, sum_i: i64, sum_f: f64, nonnull: i64 },
    Count { count: i64 },
    Avg { sum: f64, count: i64 },
    MinMax { min: bool, values: HashMap<Value, i64>, cached: Option<Value>, arrived: i64 },
}

impl RefAccumulator {
    fn new(func: AggFunc, int: bool) -> RefAccumulator {
        match func {
            AggFunc::Sum => RefAccumulator::Sum { int, sum_i: 0, sum_f: 0.0, nonnull: 0 },
            AggFunc::Count => RefAccumulator::Count { count: 0 },
            AggFunc::Avg => RefAccumulator::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => RefAccumulator::MinMax {
                min: true,
                values: HashMap::new(),
                cached: None,
                arrived: 0,
            },
            AggFunc::Max => RefAccumulator::MinMax {
                min: false,
                values: HashMap::new(),
                cached: None,
                arrived: 0,
            },
        }
    }

    fn update(
        &mut self,
        v: &Value,
        w: i64,
        weights: &CostWeights,
        counter: &WorkCounter,
    ) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        match self {
            RefAccumulator::Sum { int, sum_i, sum_f, nonnull } => {
                if *int {
                    let x = v.as_i64().ok_or_else(|| type_err("sum", v))?;
                    *sum_i += x * w;
                } else {
                    let x = v.as_f64().ok_or_else(|| type_err("sum", v))?;
                    *sum_f += x * w as f64;
                }
                *nonnull += w;
            }
            RefAccumulator::Count { count } => *count += w,
            RefAccumulator::Avg { sum, count } => {
                let x = v.as_f64().ok_or_else(|| type_err("avg", v))?;
                *sum += x * w as f64;
                *count += w;
            }
            RefAccumulator::MinMax { min, values, cached, arrived } => {
                let entry = values.entry(v.clone()).or_insert(0);
                *entry += w;
                let now = *entry;
                if now == 0 {
                    values.remove(v);
                }
                if now < 0 {
                    return Err(Error::InvalidDelta(format!(
                        "MIN/MAX multiset went negative for value {v}"
                    )));
                }
                if w > 0 {
                    *arrived += w;
                }
                if w > 0 && now > 0 {
                    let better = match cached {
                        None => true,
                        Some(c) => {
                            if *min {
                                v < c
                            } else {
                                v > c
                            }
                        }
                    };
                    if better {
                        *cached = Some(v.clone());
                    }
                } else if now == 0 && cached.as_ref() == Some(v) {
                    counter.charge(
                        OpKind::MinmaxRescan,
                        weights.minmax_rescan,
                        (*arrived).max(0) as usize,
                    );
                    *cached = if *min {
                        values.keys().min().cloned()
                    } else {
                        values.keys().max().cloned()
                    };
                }
            }
        }
        Ok(())
    }

    fn value(&self) -> Value {
        match self {
            RefAccumulator::Sum { int, sum_i, sum_f, nonnull } => {
                if *nonnull == 0 {
                    Value::Null
                } else if *int {
                    Value::Int(*sum_i)
                } else {
                    Value::Float(*sum_f)
                }
            }
            RefAccumulator::Count { count } => Value::Int(*count),
            RefAccumulator::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum / *count as f64)
                }
            }
            RefAccumulator::MinMax { cached, .. } => cached.clone().unwrap_or(Value::Null),
        }
    }
}

fn type_err(what: &str, v: &Value) -> Error {
    Error::TypeMismatch(format!("{what} over non-numeric value {v}"))
}

#[derive(Debug, Clone)]
struct ClassState {
    mask: QuerySet,
    rows: i64,
    accums: Vec<RefAccumulator>,
}

#[derive(Debug, Default)]
struct GroupState {
    classes: Vec<ClassState>,
    emitted: Vec<(QuerySet, Row)>,
}

/// Reference aggregate state (legacy datapath).
#[derive(Debug, Default)]
pub struct RefAggState {
    groups: HashMap<Vec<Value>, GroupState>,
}

impl RefAggState {
    /// Fresh empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Run one incremental execution (see the kernel `AggState` for the
    /// semantics; this is the original tuple-at-a-time implementation).
    pub fn execute(
        &mut self,
        input: DeltaBatch,
        group_by: &[(Expr, String)],
        aggs: &[AggExpr],
        agg_int: &[bool],
        weights: &CostWeights,
        counter: &WorkCounter,
    ) -> Result<DeltaBatch> {
        let mut touched: Vec<Vec<Value>> = Vec::new();
        let mut touched_set: HashSet<Vec<Value>> = HashSet::new();
        for dr in &input.rows {
            counter.charge(OpKind::AggUpdate, weights.agg_update, aggs.len().max(1));
            let mut key = Vec::with_capacity(group_by.len());
            for (e, _) in group_by {
                key.push(eval(e, dr.row.values())?);
            }
            let group = self.groups.entry(key.clone()).or_default();
            if touched_set.insert(key.clone()) {
                touched.push(key);
            }
            refine_classes(group, dr.mask, aggs, agg_int);
            for class in &mut group.classes {
                if class.mask.is_subset_of(dr.mask) {
                    class.rows += dr.weight;
                    for (acc, agg) in class.accums.iter_mut().zip(aggs) {
                        let v = eval(&agg.arg, dr.row.values())?;
                        acc.update(&v, dr.weight, weights, counter)?;
                    }
                }
            }
        }

        let mut out = DeltaBatch::new();
        for key in touched {
            let group = self.groups.get_mut(&key).expect("touched group exists");
            for class in &group.classes {
                if class.rows < 0 {
                    return Err(Error::InvalidDelta(format!(
                        "group {key:?} class {} retracted below zero",
                        class.mask
                    )));
                }
            }
            let new_pairs: Vec<(QuerySet, Row)> = group
                .classes
                .iter()
                .filter(|c| c.rows > 0)
                .map(|c| {
                    let mut vals = key.clone();
                    vals.extend(c.accums.iter().map(|a| a.value()));
                    (c.mask, Row::new(vals))
                })
                .collect();

            let mut diff: Vec<((QuerySet, Row), i64)> = Vec::new();
            let mut bump =
                |pair: (QuerySet, Row), delta: i64| match diff.iter_mut().find(|(p, _)| *p == pair)
                {
                    Some((_, w)) => *w += delta,
                    None => diff.push((pair, delta)),
                };
            for (m, r) in &group.emitted {
                bump((*m, r.clone()), -1);
            }
            for (m, r) in &new_pairs {
                bump((*m, r.clone()), 1);
            }
            for ((mask, row), w) in diff {
                if w != 0 {
                    counter.charge(OpKind::AggEmit, weights.agg_emit, w.unsigned_abs() as usize);
                    out.push(DeltaRow { row, weight: w, mask });
                }
            }
            group.emitted = new_pairs;
            group.classes.retain(|c| c.rows > 0);
            if group.classes.is_empty() {
                self.groups.remove(&key);
            }
        }
        Ok(out)
    }
}

fn refine_classes(group: &mut GroupState, mask: QuerySet, aggs: &[AggExpr], agg_int: &[bool]) {
    let mut covered = QuerySet::EMPTY;
    let mut splits = Vec::new();
    for class in &mut group.classes {
        let inter = class.mask.intersect(mask);
        covered = covered.union(inter);
        if !inter.is_empty() && inter != class.mask {
            let outside = class.mask.difference(mask);
            let split = ClassState { mask: inter, rows: class.rows, accums: class.accums.clone() };
            class.mask = outside;
            splits.push(split);
        }
    }
    group.classes.extend(splits);
    let leftover = mask.difference(covered);
    if !leftover.is_empty() {
        group.classes.push(ClassState {
            mask: leftover,
            rows: 0,
            accums: aggs
                .iter()
                .zip(agg_int)
                .map(|(a, &int)| RefAccumulator::new(a.func, int))
                .collect(),
        });
    }
}

/// Reference marking select (legacy per-tuple charging and recursive eval).
pub fn ref_apply_select(
    batch: DeltaBatch,
    branches: &[SelectBranch],
    weights: &CostWeights,
    counter: &WorkCounter,
) -> Result<DeltaBatch> {
    let mut out = DeltaBatch::new();
    for r in batch.rows {
        let mut mask = QuerySet::EMPTY;
        for b in branches {
            let bits = b.queries.intersect(r.mask);
            if bits.is_empty() {
                continue;
            }
            counter.charge(OpKind::Filter, weights.filter, 1);
            if b.predicate.is_true_lit() || eval_predicate(&b.predicate, r.row.values())? {
                mask = mask.union(bits);
            }
        }
        if !mask.is_empty() {
            out.push(DeltaRow { row: r.row, weight: r.weight, mask });
        }
    }
    Ok(out)
}

/// Reference projection (legacy per-tuple charging and recursive eval).
pub fn ref_apply_project(
    batch: DeltaBatch,
    exprs: &[(Expr, String)],
    weights: &CostWeights,
    counter: &WorkCounter,
) -> Result<DeltaBatch> {
    let mut out = DeltaBatch::new();
    for r in batch.rows {
        counter.charge(OpKind::Project, weights.project, exprs.len());
        let mut vals = Vec::with_capacity(exprs.len());
        for (e, _) in exprs {
            vals.push(eval(e, r.row.values())?);
        }
        out.push(DeltaRow { row: Row::new(vals), weight: r.weight, mask: r.mask });
    }
    Ok(out)
}
