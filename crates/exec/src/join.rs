//! Incremental shared symmetric hash join.
//!
//! State is kept for both sides as `key → {(row, mask) → weight}`. One
//! incremental execution processes the left delta against the *old* right
//! state, inserts the left delta, then processes the right delta against the
//! *updated* left state — covering `ΔL⋈R + L⋈ΔR + ΔL⋈ΔR` exactly once.
//!
//! Output masks are the intersection of the joined tuples' masks (a joined
//! row is valid for a query iff both inputs are); empty intersections are
//! dropped before emission.
//!
//! Rows with a NULL join key never match and are not stored (SQL inner
//! equi-join semantics).

use ishare_common::{CostWeights, Error, OpKind, Result, Value, WorkCounter};
use ishare_expr::eval::eval;
use ishare_expr::Expr;
use ishare_storage::{DeltaBatch, DeltaRow, Row};
use std::collections::{BTreeMap, HashMap};

type Key = Vec<Value>;
// The inner map is ordered so that probe emission order is a pure function
// of the stored state, not of hasher seeds — executions must be
// reproducible for the parallel driver's bit-identical guarantee.
type SideMap = HashMap<Key, BTreeMap<(Row, ishare_common::QuerySet), i64>>;

/// Persistent state of one join operator across incremental executions.
#[derive(Debug, Default)]
pub struct JoinState {
    left: SideMap,
    right: SideMap,
    /// Total stored entries per side, for diagnostics and state-size stats.
    left_entries: usize,
    right_entries: usize,
}

impl JoinState {
    /// Fresh empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stored (row, mask) entries on the left side.
    pub fn left_size(&self) -> usize {
        self.left_entries
    }

    /// Stored (row, mask) entries on the right side.
    pub fn right_size(&self) -> usize {
        self.right_entries
    }

    /// Run one incremental execution over the two input deltas.
    pub fn execute(
        &mut self,
        left_delta: DeltaBatch,
        right_delta: DeltaBatch,
        keys: &[(Expr, Expr)],
        weights: &CostWeights,
        counter: &WorkCounter,
    ) -> Result<DeltaBatch> {
        let mut out = DeltaBatch::new();

        // ΔL ⋈ R_old
        let left_keyed = key_rows(&left_delta, keys.iter().map(|(l, _)| l))?;
        for (key, dr) in &left_keyed {
            counter.charge(OpKind::JoinProbe, weights.join_probe, 1);
            if let Some(matches) = self.right.get(key) {
                for ((rrow, rmask), rw) in matches {
                    emit(&mut out, dr, rrow, *rmask, *rw, false, weights, counter);
                }
            }
        }
        // Insert ΔL.
        for (key, dr) in &left_keyed {
            counter.charge(OpKind::JoinInsert, weights.join_insert, 1);
            insert_side(&mut self.left, &mut self.left_entries, key, dr)?;
        }
        // ΔR ⋈ L_new (covers L_old⋈ΔR and ΔL⋈ΔR).
        let right_keyed = key_rows(&right_delta, keys.iter().map(|(_, r)| r))?;
        for (key, dr) in &right_keyed {
            counter.charge(OpKind::JoinProbe, weights.join_probe, 1);
            if let Some(matches) = self.left.get(key) {
                for ((lrow, lmask), lw) in matches {
                    emit(&mut out, dr, lrow, *lmask, *lw, true, weights, counter);
                }
            }
        }
        for (key, dr) in &right_keyed {
            counter.charge(OpKind::JoinInsert, weights.join_insert, 1);
            insert_side(&mut self.right, &mut self.right_entries, key, dr)?;
        }
        Ok(out)
    }
}

/// Evaluate join keys for every row; rows with NULL keys are silently
/// excluded (they can never join).
fn key_rows<'a>(
    batch: &DeltaBatch,
    key_exprs: impl Iterator<Item = &'a Expr> + Clone,
) -> Result<Vec<(Key, DeltaRow)>> {
    let mut out = Vec::with_capacity(batch.len());
    'rows: for r in &batch.rows {
        let mut key = Vec::new();
        for e in key_exprs.clone() {
            let v = eval(e, r.row.values())?;
            if v.is_null() {
                continue 'rows;
            }
            key.push(v);
        }
        out.push((key, r.clone()));
    }
    Ok(out)
}

fn insert_side(side: &mut SideMap, entries: &mut usize, key: &Key, dr: &DeltaRow) -> Result<()> {
    let slot = side.entry(key.clone()).or_default();
    let e = slot.entry((dr.row.clone(), dr.mask)).or_insert(0);
    let was_zero = *e == 0;
    *e += dr.weight;
    if *e == 0 {
        slot.remove(&(dr.row.clone(), dr.mask));
        *entries -= 1;
        if slot.is_empty() {
            side.remove(key);
        }
    } else if was_zero {
        *entries += 1;
    }
    if let Some(slot) = side.get(key) {
        if let Some(w) = slot.get(&(dr.row.clone(), dr.mask)) {
            if *w < 0 {
                return Err(Error::InvalidDelta(format!(
                    "join state went negative ({w}) for row {}",
                    dr.row
                )));
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn emit(
    out: &mut DeltaBatch,
    delta: &DeltaRow,
    stored_row: &Row,
    stored_mask: ishare_common::QuerySet,
    stored_weight: i64,
    delta_is_right: bool,
    weights: &CostWeights,
    counter: &WorkCounter,
) {
    let mask = delta.mask.intersect(stored_mask);
    if mask.is_empty() || stored_weight == 0 {
        return;
    }
    counter.charge(OpKind::JoinEmit, weights.join_emit, 1);
    let row =
        if delta_is_right { stored_row.concat(&delta.row) } else { delta.row.concat(stored_row) };
    out.push(DeltaRow { row, weight: delta.weight * stored_weight, mask });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{QueryId, QuerySet};
    use ishare_storage::consolidate;

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    fn r2(a: i64, b: i64) -> Row {
        Row::new(vec![Value::Int(a), Value::Int(b)])
    }

    fn dr(a: i64, b: i64, w: i64, m: &[u16]) -> DeltaRow {
        DeltaRow { row: r2(a, b), weight: w, mask: qs(m) }
    }

    fn keys() -> Vec<(Expr, Expr)> {
        vec![(Expr::col(0), Expr::col(0))]
    }

    fn run(st: &mut JoinState, l: Vec<DeltaRow>, r: Vec<DeltaRow>) -> DeltaBatch {
        let c = WorkCounter::new();
        st.execute(
            DeltaBatch::from_rows(l),
            DeltaBatch::from_rows(r),
            &keys(),
            &CostWeights::default(),
            &c,
        )
        .unwrap()
    }

    #[test]
    fn matches_within_one_batch() {
        let mut st = JoinState::new();
        let out = run(&mut st, vec![dr(1, 10, 1, &[0])], vec![dr(1, 20, 1, &[0])]);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0].row.values().len(), 4);
        assert_eq!(out.rows[0].weight, 1);
        assert_eq!(st.left_size(), 1);
        assert_eq!(st.right_size(), 1);
    }

    #[test]
    fn matches_across_batches() {
        let mut st = JoinState::new();
        let out1 = run(&mut st, vec![dr(1, 10, 1, &[0])], vec![]);
        assert!(out1.is_empty());
        let out2 = run(&mut st, vec![], vec![dr(1, 20, 1, &[0])]);
        assert_eq!(out2.len(), 1);
        // No duplicate emission for the same pair.
        let out3 = run(&mut st, vec![], vec![]);
        assert!(out3.is_empty());
    }

    #[test]
    fn incremental_equals_batch() {
        // Join the same data in one batch vs three batches; consolidated
        // outputs must match.
        let l = vec![dr(1, 10, 1, &[0]), dr(1, 11, 1, &[0]), dr(2, 12, 1, &[0])];
        let r = vec![dr(1, 20, 1, &[0]), dr(2, 21, 1, &[0]), dr(3, 22, 1, &[0])];

        let mut all = JoinState::new();
        let big = run(&mut all, l.clone(), r.clone());

        let mut inc = JoinState::new();
        let mut acc = Vec::new();
        acc.extend(run(&mut inc, vec![l[0].clone()], vec![r[2].clone()]).rows);
        acc.extend(run(&mut inc, vec![l[1].clone(), l[2].clone()], vec![]).rows);
        acc.extend(run(&mut inc, vec![], vec![r[0].clone(), r[1].clone()]).rows);

        assert_eq!(consolidate(big.rows), consolidate(acc));
    }

    #[test]
    fn deletes_retract_matches() {
        let mut st = JoinState::new();
        run(&mut st, vec![dr(1, 10, 1, &[0])], vec![dr(1, 20, 1, &[0])]);
        // Delete the left row: the joined row must be retracted.
        let out = run(&mut st, vec![dr(1, 10, -1, &[0])], vec![]);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0].weight, -1);
        assert_eq!(st.left_size(), 0);
    }

    #[test]
    fn masks_intersect() {
        let mut st = JoinState::new();
        let out = run(&mut st, vec![dr(1, 10, 1, &[0, 1])], vec![dr(1, 20, 1, &[1, 2])]);
        assert_eq!(out.rows[0].mask, qs(&[1]));
        // Disjoint masks produce nothing.
        let out = run(&mut st, vec![dr(2, 10, 1, &[0])], vec![dr(2, 20, 1, &[1])]);
        assert!(out.is_empty());
    }

    #[test]
    fn null_keys_never_match() {
        let mut st = JoinState::new();
        let null_row =
            DeltaRow { row: Row::new(vec![Value::Null, Value::Int(1)]), weight: 1, mask: qs(&[0]) };
        let out = run(&mut st, vec![null_row.clone()], vec![null_row]);
        assert!(out.is_empty());
        assert_eq!(st.left_size(), 0, "NULL-keyed rows are not stored");
    }

    #[test]
    fn weight_multiplication() {
        let mut st = JoinState::new();
        // Two identical left rows (weight 2 consolidated).
        let out = run(&mut st, vec![dr(1, 10, 2, &[0])], vec![dr(1, 20, 3, &[0])]);
        assert_eq!(out.rows[0].weight, 6);
    }

    #[test]
    fn over_retraction_is_error() {
        let mut st = JoinState::new();
        let c = WorkCounter::new();
        let res = st.execute(
            DeltaBatch::from_rows(vec![dr(1, 10, -1, &[0])]),
            DeltaBatch::new(),
            &keys(),
            &CostWeights::default(),
            &c,
        );
        assert!(matches!(res, Err(Error::InvalidDelta(_))));
    }
}
