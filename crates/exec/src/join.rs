//! Incremental shared symmetric hash join — datapath-kernel implementation.
//!
//! State is kept for both sides as `encoded key → [(row, mask, weight)]`.
//! One incremental execution processes the left delta against the *old*
//! right state, inserts the left delta, then processes the right delta
//! against the *updated* left state — covering `ΔL⋈R + L⋈ΔR + ΔL⋈ΔR`
//! exactly once.
//!
//! Kernel datapath vs. the reference implementation
//! ([`crate::reference::RefJoinState`]):
//!
//! * Keys are [`KeyBuf`]-encoded (u64 words, interned strings) and hashed
//!   with FxHash into a [`FlatTable`] — no `Vec<Value>` hashing, no SipHash,
//!   and probes reuse one scratch buffer. Both sides share one interner so
//!   left and right keys encode identically.
//! * Per-key entries are a `Vec` kept **sorted by `(row, mask)`** — the same
//!   order the reference's `BTreeMap` iterates in. This is load-bearing:
//!   emission order feeds downstream float aggregation and MIN/MAX rescan
//!   triggering, so it must be a pure function of the stored state for the
//!   work totals to stay bit-identical. (The *outer* key table is
//!   insertion-ordered and never iterated.)
//! * Work charges are coalesced per (OpKind, batch). The default cost
//!   weights are dyadic rationals, so `Σ w·1` and `w·n` produce the same
//!   f64 bit pattern at any grouping.
//!
//! Output masks are the intersection of the joined tuples' masks; empty
//! intersections are dropped before emission. Rows with a NULL join key
//! never match and are not stored (SQL inner equi-join semantics).

use crate::flat::FlatTable;
use ishare_common::{
    CostWeights, Error, KeyBuf, OpKind, QueryId, QuerySet, Result, StrInterner, WorkCounter,
};
use ishare_expr::compile::CompiledScalar;
use ishare_expr::Expr;
use ishare_storage::{DeltaBatch, DeltaRow, Row};

/// One stored join-side entry: `(row, mask, net weight)`, kept sorted by
/// `(row, mask)` within its key slot.
type Entry = (Row, QuerySet, i64);

/// A key slot's entries. Most keys hold exactly one `(row, mask)` pair
/// (e.g. a primary-key join side), so the single-entry case lives inline in
/// the slot — no per-key `Vec` allocation to create, chase, or free. Slots
/// spill to a sorted `Vec` only on the second distinct pair.
#[derive(Debug)]
enum EntryList {
    /// Transient: a freshly created slot the caller fills immediately.
    Empty,
    One(Entry),
    Many(Vec<Entry>),
}

impl EntryList {
    /// Entries in `(row, mask)` order — the emission order contract.
    #[inline]
    fn as_slice(&self) -> &[Entry] {
        match self {
            EntryList::Empty => &[],
            EntryList::One(e) => std::slice::from_ref(e),
            EntryList::Many(es) => es,
        }
    }
}

/// Compiled join key pairs (left expr, right expr per key column).
#[derive(Debug, Clone)]
pub struct JoinKeys {
    pairs: Vec<(CompiledScalar, CompiledScalar)>,
}

impl JoinKeys {
    /// Lower the planner's `(left, right)` key expression pairs.
    pub fn compile(keys: &[(Expr, Expr)]) -> JoinKeys {
        JoinKeys {
            pairs: keys
                .iter()
                .map(|(l, r)| (CompiledScalar::compile(l), CompiledScalar::compile(r)))
                .collect(),
        }
    }

    pub(crate) fn side(&self, right: bool) -> impl Iterator<Item = &CompiledScalar> + Clone {
        self.pairs.iter().map(move |(l, r)| if right { r } else { l })
    }

    /// Words per encoded key (both sides of every pair).
    pub(crate) fn stride(&self) -> usize {
        2 * self.pairs.len()
    }

    /// Partition-key extractor for one side: the exchange routes each side's
    /// rows by the *same* compiled key scalars the join probes with, so a
    /// left row and its matching right rows always share a partition.
    pub fn extractor(&self, right: bool) -> ishare_expr::KeyExtractor {
        ishare_expr::KeyExtractor::new(self.side(right).cloned().collect())
    }
}

/// Per-input-row emission counts of one join execution: `left[i]` /
/// `right[i]` is how many output rows the `i`-th left / right delta row
/// produced when probing (NULL-keyed rows produce 0). Since an execution
/// emits all left-probe output before any right-probe output, and within a
/// phase strictly in batch-row order, these counts let the partition
/// exchange splice per-partition outputs back into the exact sequential
/// emission order.
#[derive(Debug, Default)]
pub struct JoinTrace {
    /// Emissions per left delta row, in batch order.
    pub left: Vec<u32>,
    /// Emissions per right delta row, in batch order.
    pub right: Vec<u32>,
}

/// Persistent state of one join operator across incremental executions.
#[derive(Debug, Default)]
pub struct JoinState {
    left: FlatTable<EntryList>,
    right: FlatTable<EntryList>,
    /// Shared by both sides: left and right keys must encode identically.
    interner: StrInterner,
    scratch: KeyBuf,
    /// Total stored entries per side, for diagnostics and state-size stats.
    left_entries: usize,
    right_entries: usize,
}

impl JoinState {
    /// Fresh empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stored (row, mask) entries on the left side.
    pub fn left_size(&self) -> usize {
        self.left_entries
    }

    /// Stored (row, mask) entries on the right side.
    pub fn right_size(&self) -> usize {
        self.right_entries
    }

    /// Run one incremental execution over the two input deltas.
    pub fn execute(
        &mut self,
        left_delta: DeltaBatch,
        right_delta: DeltaBatch,
        keys: &JoinKeys,
        weights: &CostWeights,
        counter: &WorkCounter,
    ) -> Result<DeltaBatch> {
        self.execute_traced(left_delta, right_delta, keys, weights, counter, None)
    }

    /// [`Self::execute`] that additionally records per-input-row emission
    /// counts into `trace` (cleared and resized to the batch lengths first).
    /// The traced and untraced paths are byte-for-byte the same computation.
    pub fn execute_traced(
        &mut self,
        left_delta: DeltaBatch,
        right_delta: DeltaBatch,
        keys: &JoinKeys,
        weights: &CostWeights,
        counter: &WorkCounter,
        trace: Option<&mut JoinTrace>,
    ) -> Result<DeltaBatch> {
        // Both sides' keys are encoded up front. This is safe because
        // `insert_side` never touches the interner: encoding the right keys
        // before the left inserts evolves the interner identically to
        // encoding them after (the original interleaving). Only the point at
        // which a right-side key *error* surfaces moves — acceptable
        // error-path divergence, as with the partition exchange.
        let stride = keys.stride();
        let left_keyed =
            key_rows(&left_delta, keys.side(false), stride, &mut self.interner, &mut self.scratch)?;
        let right_keyed =
            key_rows(&right_delta, keys.side(true), stride, &mut self.interner, &mut self.scratch)?;
        self.execute_with_keys(left_delta, left_keyed, right_delta, right_keyed, weights, counter, trace)
    }

    /// Columnar-input execution for `ExecMode::Vectorized`: keys are encoded
    /// straight from the batch's typed columns when every key scalar is a
    /// bare column reference (the common case), skipping per-row
    /// `Arc<[Value]>` traversal; anything fancier falls back to row-keying
    /// the materialized batch. Probe/insert/emit share
    /// [`Self::execute_traced`]'s body, so order, weights, masks, and
    /// charges are bit-identical.
    pub fn execute_columnar(
        &mut self,
        left: crate::vectorized::ColsView<'_>,
        right: crate::vectorized::ColsView<'_>,
        keys: &JoinKeys,
        weights: &CostWeights,
        counter: &WorkCounter,
    ) -> Result<DeltaBatch> {
        let stride = keys.stride();
        let left_rows = left.to_rows();
        let right_rows = right.to_rows();
        let left_keyed = key_rows_columnar(
            &left,
            &left_rows,
            keys.side(false),
            stride,
            &mut self.interner,
            &mut self.scratch,
        )?;
        let right_keyed = key_rows_columnar(
            &right,
            &right_rows,
            keys.side(true),
            stride,
            &mut self.interner,
            &mut self.scratch,
        )?;
        self.execute_with_keys(left_rows, left_keyed, right_rows, right_keyed, weights, counter, None)
    }

    /// The probe → insert-left → probe → insert-right → emit body shared by
    /// the row and columnar entry points. `left_keyed`/`right_keyed` index
    /// into their respective delta batches.
    #[allow(clippy::too_many_arguments)]
    fn execute_with_keys(
        &mut self,
        left_delta: DeltaBatch,
        left_keyed: KeyedRows,
        right_delta: DeltaBatch,
        right_keyed: KeyedRows,
        weights: &CostWeights,
        counter: &WorkCounter,
        mut trace: Option<&mut JoinTrace>,
    ) -> Result<DeltaBatch> {
        if let Some(t) = trace.as_deref_mut() {
            t.left.clear();
            t.left.resize(left_delta.len(), 0);
            t.right.clear();
            t.right.resize(right_delta.len(), 0);
        }
        let mut out = DeltaBatch::new();
        let mut emits = 0usize;

        // ΔL ⋈ R_old
        counter.charge(OpKind::JoinProbe, weights.join_probe, left_keyed.len());
        for j in 0..left_keyed.len() {
            let before = out.len();
            if let Some(entries) = self.right.get(left_keyed.key(j)) {
                emit_matches(&mut out, left_keyed.row(&left_delta, j), entries, false, &mut emits);
            }
            if let Some(t) = trace.as_deref_mut() {
                t.left[left_keyed.rows[j] as usize] = (out.len() - before) as u32;
            }
        }
        // Insert ΔL.
        counter.charge(OpKind::JoinInsert, weights.join_insert, left_keyed.len());
        for j in 0..left_keyed.len() {
            insert_side(
                &mut self.left,
                &mut self.left_entries,
                left_keyed.key(j),
                left_keyed.row(&left_delta, j),
            )?;
        }
        // ΔR ⋈ L_new (covers L_old⋈ΔR and ΔL⋈ΔR).
        counter.charge(OpKind::JoinProbe, weights.join_probe, right_keyed.len());
        for j in 0..right_keyed.len() {
            let before = out.len();
            if let Some(entries) = self.left.get(right_keyed.key(j)) {
                emit_matches(&mut out, right_keyed.row(&right_delta, j), entries, true, &mut emits);
            }
            if let Some(t) = trace.as_deref_mut() {
                t.right[right_keyed.rows[j] as usize] = (out.len() - before) as u32;
            }
        }
        counter.charge(OpKind::JoinInsert, weights.join_insert, right_keyed.len());
        for j in 0..right_keyed.len() {
            insert_side(
                &mut self.right,
                &mut self.right_entries,
                right_keyed.key(j),
                right_keyed.row(&right_delta, j),
            )?;
        }
        counter.charge(OpKind::JoinEmit, weights.join_emit, emits);
        self.left.maybe_compact();
        self.right.maybe_compact();
        Ok(out)
    }

    /// Query admission: add `q_new`'s bit to every stored entry whose mask
    /// contains the witness `q_ref` (those are exactly the tuples `q_new`
    /// would have stored had it run from the start). Entry lists are
    /// re-sorted because masks participate in the `(row, mask)` order;
    /// `q_new` is a fresh bit, so widening never makes two entries equal.
    pub fn widen_query(&mut self, q_ref: QueryId, q_new: QueryId) {
        for table in [&mut self.left, &mut self.right] {
            for id in table.live_ids() {
                let slot = table.get_by_id_mut(id).expect("live slot");
                match slot {
                    EntryList::Empty => {}
                    EntryList::One((_, m, _)) => {
                        if m.contains(q_ref) {
                            m.insert(q_new);
                        }
                    }
                    EntryList::Many(es) => {
                        let mut widened = false;
                        for (_, m, _) in es.iter_mut() {
                            if m.contains(q_ref) {
                                m.insert(q_new);
                                widened = true;
                            }
                        }
                        if widened {
                            es.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
                        }
                    }
                }
            }
        }
    }

    /// Query removal: clear `q`'s bit from every stored entry, dropping
    /// entries whose mask goes empty and merging entries that become equal
    /// in `(row, mask)` (their net weights add; both are positive, so the
    /// merge never cancels to zero). Returns the number of entries freed.
    pub fn retire_query(&mut self, q: QueryId) -> usize {
        let mut reclaimed = 0usize;
        for (table, entries) in
            [(&mut self.left, &mut self.left_entries), (&mut self.right, &mut self.right_entries)]
        {
            for id in table.live_ids() {
                let slot = table.get_by_id_mut(id).expect("live slot");
                let mut es: Vec<Entry> = match std::mem::replace(slot, EntryList::Empty) {
                    EntryList::Empty => Vec::new(),
                    EntryList::One(e) => vec![e],
                    EntryList::Many(es) => es,
                };
                let before = es.len();
                for (_, m, _) in es.iter_mut() {
                    m.remove(q);
                }
                es.retain(|(_, m, _)| !m.is_empty());
                es.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
                es.dedup_by(|dup, keep| {
                    if dup.0 == keep.0 && dup.1 == keep.1 {
                        keep.2 += dup.2;
                        true
                    } else {
                        false
                    }
                });
                reclaimed += before - es.len();
                *entries -= before - es.len();
                if es.is_empty() {
                    table.remove_id(id);
                } else if es.len() == 1 {
                    *table.get_by_id_mut(id).expect("live slot") =
                        EntryList::One(es.pop().expect("one entry"));
                } else {
                    *table.get_by_id_mut(id).expect("live slot") = EntryList::Many(es);
                }
            }
            table.maybe_compact();
        }
        reclaimed
    }

    /// State handoff for admission: the join output `q_ref` has netted so
    /// far, i.e. the per-key cross product of stored left × right entries
    /// whose masks both contain the witness, re-masked to `{q_new}`.
    /// Unconsolidated and in storage order — the caller consolidates (and
    /// thereby becomes partition-count independent).
    pub fn snapshot_product(&self, q_ref: QueryId, q_new: QueryId) -> Vec<DeltaRow> {
        let mut out = Vec::new();
        for lid in self.left.live_ids() {
            let (key, lentries) = self.left.get_by_id_with_key(lid).expect("live slot");
            let Some(rentries) = self.right.get(key) else { continue };
            for (lrow, lmask, lw) in lentries.as_slice() {
                if !lmask.contains(q_ref) {
                    continue;
                }
                for (rrow, rmask, rw) in rentries.as_slice() {
                    if !rmask.contains(q_ref) {
                        continue;
                    }
                    out.push(DeltaRow {
                        row: lrow.concat(rrow),
                        weight: lw * rw,
                        mask: QuerySet::single(q_new),
                    });
                }
            }
        }
        out
    }
}

/// One side's encoded join keys, packed into a single `u64` arena with a
/// fixed `stride` (words per key) — one allocation per batch instead of one
/// `KeyBuf` per row.
struct KeyedRows {
    arena: Vec<u64>,
    stride: usize,
    /// Indices of the kept (non-NULL-keyed) rows in the source batch.
    rows: Vec<u32>,
}

impl KeyedRows {
    fn len(&self) -> usize {
        self.rows.len()
    }

    /// Encoded key words of the `j`-th kept row.
    #[inline]
    fn key(&self, j: usize) -> &[u64] {
        &self.arena[j * self.stride..(j + 1) * self.stride]
    }

    /// The `j`-th kept row of its source batch.
    #[inline]
    fn row<'a>(&self, batch: &'a DeltaBatch, j: usize) -> &'a DeltaRow {
        &batch.rows[self.rows[j] as usize]
    }
}

/// Encode join keys for every row; rows with NULL keys are silently excluded
/// (they can never join).
fn key_rows<'a>(
    batch: &DeltaBatch,
    key_scalars: impl Iterator<Item = &'a CompiledScalar> + Clone,
    stride: usize,
    interner: &mut StrInterner,
    scratch: &mut KeyBuf,
) -> Result<KeyedRows> {
    let mut out = KeyedRows {
        arena: Vec::with_capacity(batch.len() * stride),
        stride,
        rows: Vec::with_capacity(batch.len()),
    };
    'rows: for (i, r) in batch.rows.iter().enumerate() {
        scratch.clear();
        for k in key_scalars.clone() {
            match k.eval_ref(r.row.values())? {
                Ok(v) => {
                    if v.is_null() {
                        continue 'rows;
                    }
                    scratch.push_value(v, interner);
                }
                Err(v) => {
                    if v.is_null() {
                        continue 'rows;
                    }
                    scratch.push_value(&v, interner);
                }
            }
        }
        out.arena.extend_from_slice(scratch.as_words());
        out.rows.push(i as u32);
    }
    Ok(out)
}

/// Columnar key encoding: when every key scalar is a bare in-bounds column,
/// keys are read straight from the typed columns of the selected rows —
/// `KeyBuf::push_value` sees the same `Value`s the row path's `eval_ref`
/// produces, so the encoded words (and interner evolution) are identical.
/// Returned row indices refer to `materialized` (selection order), which is
/// the batch [`JoinState::execute_with_keys`] later indexes.
fn key_rows_columnar<'a>(
    view: &crate::vectorized::ColsView<'_>,
    materialized: &DeltaBatch,
    key_scalars: impl Iterator<Item = &'a CompiledScalar> + Clone,
    stride: usize,
    interner: &mut StrInterner,
    scratch: &mut KeyBuf,
) -> Result<KeyedRows> {
    let cols: Option<Vec<usize>> =
        key_scalars.clone().map(|s| s.as_col().filter(|&c| c < view.batch.arity())).collect();
    let Some(cols) = cols else {
        // Computed or out-of-bounds key expression: row-path fallback
        // (including its error behavior).
        return key_rows(materialized, key_scalars, stride, interner, scratch);
    };
    let mut out = KeyedRows {
        arena: Vec::with_capacity(view.len() * stride),
        stride,
        rows: Vec::with_capacity(view.len()),
    };
    'rows: for (j, &i) in view.sel.iter().enumerate() {
        scratch.clear();
        for &c in &cols {
            let col = &view.batch.columns[c];
            if col.is_null_at(i as usize) {
                continue 'rows; // NULL keys never join
            }
            scratch.push_value(&col.value_at(i as usize), interner);
        }
        out.arena.extend_from_slice(scratch.as_words());
        out.rows.push(j as u32);
    }
    Ok(out)
}

fn negative_state(w: i64, row: &Row) -> Error {
    Error::InvalidDelta(format!("join state went negative ({w}) for row {row}"))
}

fn insert_side(
    table: &mut FlatTable<EntryList>,
    entries: &mut usize,
    key: &[u64],
    dr: &DeltaRow,
) -> Result<()> {
    if dr.weight == 0 {
        // A zero-weight delta is a no-op on the stored multiset (engine
        // streams never carry one; operators drop zero weights).
        return Ok(());
    }
    let id = table.id_or_insert_with(key, || EntryList::Empty);
    let slot = table.get_by_id_mut(id).expect("live slot");
    match slot {
        EntryList::Empty => {
            if dr.weight < 0 {
                return Err(negative_state(dr.weight, &dr.row));
            }
            *slot = EntryList::One((dr.row.clone(), dr.mask, dr.weight));
            *entries += 1;
        }
        EntryList::One((r, m, w)) => {
            match (*r).cmp(&dr.row).then((*m).cmp(&dr.mask)) {
                std::cmp::Ordering::Equal => {
                    *w += dr.weight;
                    let w = *w;
                    if w == 0 {
                        *entries -= 1;
                        table.remove_id(id);
                    } else if w < 0 {
                        return Err(negative_state(w, &dr.row));
                    }
                }
                ord => {
                    if dr.weight < 0 {
                        return Err(negative_state(dr.weight, &dr.row));
                    }
                    let new = (dr.row.clone(), dr.mask, dr.weight);
                    let old = std::mem::replace(slot, EntryList::Empty);
                    let old = match old {
                        EntryList::One(e) => e,
                        _ => unreachable!("matched One"),
                    };
                    // `ord` compares stored vs new: Less keeps the stored
                    // entry first, Greater puts the new entry first.
                    *slot = EntryList::Many(if ord == std::cmp::Ordering::Less {
                        vec![old, new]
                    } else {
                        vec![new, old]
                    });
                    *entries += 1;
                }
            }
        }
        EntryList::Many(es) => {
            match es.binary_search_by(|(r, m, _)| r.cmp(&dr.row).then(m.cmp(&dr.mask))) {
                Ok(pos) => {
                    es[pos].2 += dr.weight;
                    let w = es[pos].2;
                    if w == 0 {
                        es.remove(pos);
                        *entries -= 1;
                        if es.is_empty() {
                            table.remove_id(id);
                        }
                    } else if w < 0 {
                        return Err(negative_state(w, &dr.row));
                    }
                }
                Err(pos) => {
                    es.insert(pos, (dr.row.clone(), dr.mask, dr.weight));
                    *entries += 1;
                    if dr.weight < 0 {
                        return Err(negative_state(dr.weight, &dr.row));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Emit the join of one delta row against a key slot's stored entries, in
/// the slot's `(row, mask)` order.
fn emit_matches(
    out: &mut DeltaBatch,
    delta: &DeltaRow,
    entries: &EntryList,
    delta_is_right: bool,
    emits: &mut usize,
) {
    for (srow, smask, sweight) in entries.as_slice() {
        let mask = delta.mask.intersect(*smask);
        if mask.is_empty() || *sweight == 0 {
            continue;
        }
        *emits += 1;
        let row = if delta_is_right { srow.concat(&delta.row) } else { delta.row.concat(srow) };
        out.push(DeltaRow { row, weight: delta.weight * sweight, mask });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{QueryId, Value};
    use ishare_storage::consolidate;

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    fn r2(a: i64, b: i64) -> Row {
        Row::new(vec![Value::Int(a), Value::Int(b)])
    }

    fn dr(a: i64, b: i64, w: i64, m: &[u16]) -> DeltaRow {
        DeltaRow { row: r2(a, b), weight: w, mask: qs(m) }
    }

    fn keys() -> JoinKeys {
        JoinKeys::compile(&[(Expr::col(0), Expr::col(0))])
    }

    fn run(st: &mut JoinState, l: Vec<DeltaRow>, r: Vec<DeltaRow>) -> DeltaBatch {
        let c = WorkCounter::new();
        st.execute(
            DeltaBatch::from_rows(l),
            DeltaBatch::from_rows(r),
            &keys(),
            &CostWeights::default(),
            &c,
        )
        .unwrap()
    }

    #[test]
    fn matches_within_one_batch() {
        let mut st = JoinState::new();
        let out = run(&mut st, vec![dr(1, 10, 1, &[0])], vec![dr(1, 20, 1, &[0])]);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0].row.values().len(), 4);
        assert_eq!(out.rows[0].weight, 1);
        assert_eq!(st.left_size(), 1);
        assert_eq!(st.right_size(), 1);
    }

    #[test]
    fn matches_across_batches() {
        let mut st = JoinState::new();
        let out1 = run(&mut st, vec![dr(1, 10, 1, &[0])], vec![]);
        assert!(out1.is_empty());
        let out2 = run(&mut st, vec![], vec![dr(1, 20, 1, &[0])]);
        assert_eq!(out2.len(), 1);
        // No duplicate emission for the same pair.
        let out3 = run(&mut st, vec![], vec![]);
        assert!(out3.is_empty());
    }

    #[test]
    fn incremental_equals_batch() {
        // Join the same data in one batch vs three batches; consolidated
        // outputs must match.
        let l = vec![dr(1, 10, 1, &[0]), dr(1, 11, 1, &[0]), dr(2, 12, 1, &[0])];
        let r = vec![dr(1, 20, 1, &[0]), dr(2, 21, 1, &[0]), dr(3, 22, 1, &[0])];

        let mut all = JoinState::new();
        let big = run(&mut all, l.clone(), r.clone());

        let mut inc = JoinState::new();
        let mut acc = Vec::new();
        acc.extend(run(&mut inc, vec![l[0].clone()], vec![r[2].clone()]).rows);
        acc.extend(run(&mut inc, vec![l[1].clone(), l[2].clone()], vec![]).rows);
        acc.extend(run(&mut inc, vec![], vec![r[0].clone(), r[1].clone()]).rows);

        assert_eq!(consolidate(big.rows), consolidate(acc));
    }

    #[test]
    fn deletes_retract_matches() {
        let mut st = JoinState::new();
        run(&mut st, vec![dr(1, 10, 1, &[0])], vec![dr(1, 20, 1, &[0])]);
        // Delete the left row: the joined row must be retracted.
        let out = run(&mut st, vec![dr(1, 10, -1, &[0])], vec![]);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0].weight, -1);
        assert_eq!(st.left_size(), 0);
    }

    #[test]
    fn masks_intersect() {
        let mut st = JoinState::new();
        let out = run(&mut st, vec![dr(1, 10, 1, &[0, 1])], vec![dr(1, 20, 1, &[1, 2])]);
        assert_eq!(out.rows[0].mask, qs(&[1]));
        // Disjoint masks produce nothing.
        let out = run(&mut st, vec![dr(2, 10, 1, &[0])], vec![dr(2, 20, 1, &[1])]);
        assert!(out.is_empty());
    }

    #[test]
    fn null_keys_never_match() {
        let mut st = JoinState::new();
        let null_row =
            DeltaRow { row: Row::new(vec![Value::Null, Value::Int(1)]), weight: 1, mask: qs(&[0]) };
        let out = run(&mut st, vec![null_row.clone()], vec![null_row]);
        assert!(out.is_empty());
        assert_eq!(st.left_size(), 0, "NULL-keyed rows are not stored");
    }

    #[test]
    fn weight_multiplication() {
        let mut st = JoinState::new();
        // Two identical left rows (weight 2 consolidated).
        let out = run(&mut st, vec![dr(1, 10, 2, &[0])], vec![dr(1, 20, 3, &[0])]);
        assert_eq!(out.rows[0].weight, 6);
    }

    #[test]
    fn over_retraction_is_error() {
        let mut st = JoinState::new();
        let c = WorkCounter::new();
        let res = st.execute(
            DeltaBatch::from_rows(vec![dr(1, 10, -1, &[0])]),
            DeltaBatch::new(),
            &keys(),
            &CostWeights::default(),
            &c,
        );
        assert!(matches!(res, Err(Error::InvalidDelta(_))));
    }

    #[test]
    fn string_keys_join_via_interner() {
        let mut st = JoinState::new();
        let keys = JoinKeys::compile(&[(Expr::col(0), Expr::col(0))]);
        let srow = |s: &str, v: i64, m: &[u16]| DeltaRow {
            row: Row::new(vec![Value::str(s), Value::Int(v)]),
            weight: 1,
            mask: qs(m),
        };
        let c = WorkCounter::new();
        let out = st
            .execute(
                DeltaBatch::from_rows(vec![srow("a", 1, &[0]), srow("b", 2, &[0])]),
                DeltaBatch::from_rows(vec![srow("b", 3, &[0]), srow("c", 4, &[0])]),
                &keys,
                &CostWeights::default(),
                &c,
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0].row.get(0), &Value::str("b"));
    }

    #[test]
    fn widen_retire_snapshot_roundtrip() {
        let mut st = JoinState::new();
        // q0 and q1 share the stored rows; key 2 is q1-private.
        run(
            &mut st,
            vec![dr(1, 10, 1, &[0, 1]), dr(2, 11, 1, &[1])],
            vec![dr(1, 20, 1, &[0, 1]), dr(2, 21, 1, &[1])],
        );
        // Snapshot for a new query q2 witnessed by q0: only key 1's product.
        let snap = st.snapshot_product(QueryId(0), QueryId(2));
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].weight, 1);
        assert_eq!(snap[0].mask, qs(&[2]));
        assert_eq!(snap[0].row.values().len(), 4);

        // Widen q0 → q2, then a new right row on key 1 joins for q2 too.
        st.widen_query(QueryId(0), QueryId(2));
        let out = run(&mut st, vec![], vec![dr(1, 22, 1, &[0, 1, 2])]);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0].mask, qs(&[0, 1, 2]));

        // Retire q1: its private key-2 entries are freed; shared entries
        // survive with the bit cleared.
        let freed = st.retire_query(QueryId(1));
        assert_eq!(freed, 2, "key 2's left+right entries are q1-private");
        assert_eq!(st.left_size(), 1);
        let out = run(&mut st, vec![dr(2, 30, 1, &[0])], vec![]);
        assert!(out.is_empty(), "retired state no longer matches");
        let out = run(&mut st, vec![dr(1, 30, 1, &[0, 2])], vec![]);
        assert_eq!(out.len(), 2, "both right rows on key 1 survive");
        for r in &out.rows {
            assert!(!r.mask.contains(QueryId(1)));
        }
    }

    #[test]
    fn retire_merges_entries_left_equal() {
        // Same row stored under masks {0} and {0,1}: retiring q1 makes them
        // equal and they must merge, summing weights.
        let mut st = JoinState::new();
        run(&mut st, vec![dr(1, 10, 1, &[0]), dr(1, 10, 1, &[0, 1])], vec![]);
        assert_eq!(st.left_size(), 2);
        let freed = st.retire_query(QueryId(1));
        assert_eq!(freed, 1);
        assert_eq!(st.left_size(), 1);
        let out = run(&mut st, vec![], vec![dr(1, 20, 1, &[0])]);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0].weight, 2, "merged entry weight is the sum");
    }

    #[test]
    fn emission_order_matches_reference() {
        // Bit-identity depends on the kernel emitting probe matches in the
        // reference's BTreeMap (row, mask) order. Store several rows under
        // one key in scrambled arrival order, then probe once.
        use crate::reference::RefJoinState;
        let stored = vec![
            dr(1, 30, 1, &[0]),
            dr(1, 10, 1, &[1]),
            dr(1, 20, 1, &[0, 1]),
            dr(1, 10, 1, &[0]), // same row, different mask
        ];
        let probe = vec![dr(1, 99, 1, &[0, 1])];

        let mut kern = JoinState::new();
        run(&mut kern, vec![], stored.clone());
        let kout = run(&mut kern, probe.clone(), vec![]);

        let mut refr = RefJoinState::new();
        let c = WorkCounter::new();
        let w = CostWeights::default();
        let ekeys = vec![(Expr::col(0), Expr::col(0))];
        refr.execute(DeltaBatch::new(), DeltaBatch::from_rows(stored), &ekeys, &w, &c).unwrap();
        let rout =
            refr.execute(DeltaBatch::from_rows(probe), DeltaBatch::new(), &ekeys, &w, &c).unwrap();

        assert_eq!(kout.rows, rout.rows, "emission order must match the reference exactly");
    }
}
