//! Stateless operators: input narrowing, marking select, project — kernel
//! implementations over pre-compiled expressions.
//!
//! Vs. [`crate::reference`]: predicates and projections are lowered once at
//! plan setup ([`CompiledPredicate`] / [`CompiledProjection`]) instead of
//! walking `Expr` trees per row, and `Filter`/`Project` work is charged once
//! per batch with the exact unit count the reference charges tuple-at-a-time
//! (bit-identical totals — the default weights are dyadic rationals).

use ishare_common::{CostWeights, OpKind, QuerySet, Result, WorkCounter};
use ishare_expr::compile::{CompiledPredicate, CompiledProjection};
use ishare_plan::SelectBranch;
use ishare_storage::{DeltaBatch, DeltaRow, Row};

/// Narrow an input batch to a subplan's query set (the σ_filter at a subplan
/// boundary, Fig. 2): each row's mask is intersected with `queries` and rows
/// left with an empty mask are dropped.
pub fn narrow_input(
    batch: &DeltaBatch,
    queries: QuerySet,
    weights: &CostWeights,
    counter: &WorkCounter,
) -> DeltaBatch {
    counter.charge(OpKind::Scan, weights.scan, batch.len());
    batch
        .rows
        .iter()
        .filter_map(|r| {
            let mask = r.mask.intersect(queries);
            if mask.is_empty() {
                None
            } else {
                Some(DeltaRow { row: r.row.clone(), weight: r.weight, mask })
            }
        })
        .collect()
}

/// Shared marking select (σ*): each branch's predicate is evaluated only for
/// rows carrying that branch's query bits; failing a branch clears those
/// bits. A row survives iff some query still wants it.
///
/// `compiled` is the branch predicates lowered 1:1 by the executor at setup.
/// Work is charged per evaluated (row, branch) pair — the same count the
/// reference charges one tuple at a time (a `TRUE` branch counts as
/// evaluated, matching the reference's charge-then-bypass).
pub fn apply_select(
    batch: DeltaBatch,
    branches: &[SelectBranch],
    compiled: &[CompiledPredicate],
    weights: &CostWeights,
    counter: &WorkCounter,
) -> Result<DeltaBatch> {
    debug_assert_eq!(branches.len(), compiled.len());
    let mut out = DeltaBatch::new();
    let mut evals = 0usize;
    for r in batch.rows {
        let mut mask = QuerySet::EMPTY;
        for (b, p) in branches.iter().zip(compiled) {
            let bits = b.queries.intersect(r.mask);
            if bits.is_empty() {
                continue;
            }
            evals += 1;
            if p.matches(r.row.values())? {
                mask = mask.union(bits);
            }
        }
        if !mask.is_empty() {
            out.push(DeltaRow { row: r.row, weight: r.weight, mask });
        }
    }
    counter.charge(OpKind::Filter, weights.filter, evals);
    Ok(out)
}

/// Merged projection: computes the union expression list for every row.
///
/// Identity projections (every expression is `col(i)` in input order over
/// the full arity) pass rows through without rebuilding them — the common
/// shape after plan merging, and the reason projection drops out of profiles
/// entirely in the kernel datapath.
pub fn apply_project(
    batch: DeltaBatch,
    proj: &CompiledProjection,
    weights: &CostWeights,
    counter: &WorkCounter,
) -> Result<DeltaBatch> {
    counter.charge(OpKind::Project, weights.project, proj.arity() * batch.len());
    let mut out = DeltaBatch::new();
    for r in batch.rows {
        let row = if proj.is_identity_for(r.row.arity()) {
            r.row
        } else {
            Row::new(proj.project(r.row.values())?)
        };
        out.push(DeltaRow { row, weight: r.weight, mask: r.mask });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{QueryId, Value};
    use ishare_expr::Expr;

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    fn row(v: i64) -> Row {
        Row::new(vec![Value::Int(v)])
    }

    fn batch(rows: &[(i64, i64, &[u16])]) -> DeltaBatch {
        rows.iter().map(|&(v, w, m)| DeltaRow { row: row(v), weight: w, mask: qs(m) }).collect()
    }

    fn compile_preds(branches: &[SelectBranch]) -> Vec<CompiledPredicate> {
        branches.iter().map(|b| CompiledPredicate::compile(&b.predicate)).collect()
    }

    fn select(
        b: DeltaBatch,
        branches: &[SelectBranch],
        w: &CostWeights,
        c: &WorkCounter,
    ) -> Result<DeltaBatch> {
        apply_select(b, branches, &compile_preds(branches), w, c)
    }

    #[test]
    fn narrowing_drops_and_intersects() {
        let c = WorkCounter::new();
        let w = CostWeights::default();
        let b = batch(&[(1, 1, &[0, 1]), (2, 1, &[1]), (3, -1, &[2])]);
        let out = narrow_input(&b, qs(&[0, 2]), &w, &c);
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows[0].mask, qs(&[0]));
        assert_eq!(out.rows[1].mask, qs(&[2]));
        assert_eq!(out.rows[1].weight, -1);
        assert_eq!(c.total().get(), 3.0 * w.scan);
    }

    #[test]
    fn marking_select_clears_bits_not_rows() {
        let c = WorkCounter::new();
        let w = CostWeights::default();
        // q0: pass-through; q1: v > 5.
        let branches = vec![
            SelectBranch { queries: qs(&[0]), predicate: Expr::true_lit() },
            SelectBranch { queries: qs(&[1]), predicate: Expr::col(0).gt(Expr::lit(5i64)) },
        ];
        let out = select(batch(&[(3, 1, &[0, 1]), (9, 1, &[0, 1])]), &branches, &w, &c).unwrap();
        assert_eq!(out.len(), 2);
        // Row 3 fails q1's predicate: keeps only q0's bit (marked, not dropped).
        assert_eq!(out.rows[0].mask, qs(&[0]));
        assert_eq!(out.rows[1].mask, qs(&[0, 1]));
    }

    #[test]
    fn select_drops_fully_filtered_rows() {
        let c = WorkCounter::new();
        let w = CostWeights::default();
        let branches =
            vec![SelectBranch { queries: qs(&[1]), predicate: Expr::col(0).gt(Expr::lit(5i64)) }];
        let out = select(batch(&[(3, 1, &[1])]), &branches, &w, &c).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn select_skips_branches_not_in_mask() {
        let c = WorkCounter::new();
        let w = CostWeights::default();
        let branches = vec![
            SelectBranch { queries: qs(&[0]), predicate: Expr::true_lit() },
            SelectBranch { queries: qs(&[1]), predicate: Expr::true_lit() },
        ];
        // Row only valid for q0 — q1's branch must not be charged.
        let _ = select(batch(&[(1, 1, &[0])]), &branches, &w, &c).unwrap();
        assert_eq!(c.total().get(), w.filter);
    }

    #[test]
    fn project_computes_and_preserves_weight() {
        let c = WorkCounter::new();
        let w = CostWeights::default();
        let exprs = vec![Expr::col(0).mul(Expr::lit(2i64)), Expr::lit(7i64)];
        let proj = CompiledProjection::compile(&exprs);
        let out = apply_project(batch(&[(4, -2, &[0])]), &proj, &w, &c).unwrap();
        assert_eq!(out.rows[0].row.values(), &[Value::Int(8), Value::Int(7)]);
        assert_eq!(out.rows[0].weight, -2);
        assert_eq!(c.total().get(), 2.0 * w.project);
    }

    #[test]
    fn identity_projection_passes_rows_through() {
        let c = WorkCounter::new();
        let w = CostWeights::default();
        let proj = CompiledProjection::compile(&[Expr::col(0)]);
        let out = apply_project(batch(&[(4, 1, &[0])]), &proj, &w, &c).unwrap();
        assert_eq!(out.rows[0].row.values(), &[Value::Int(4)]);
        // Charged the same as the computing path: unit count is arity × rows.
        assert_eq!(c.total().get(), w.project);
    }

    #[test]
    fn select_treats_retractions_like_insertions() {
        // A HAVING-style select above an aggregate sees retract/insert
        // pairs; the predicate must apply identically to both signs so the
        // downstream state stays consistent.
        let c = WorkCounter::new();
        let w = CostWeights::default();
        let branches =
            vec![SelectBranch { queries: qs(&[0]), predicate: Expr::col(0).gt(Expr::lit(5i64)) }];
        let out = select(batch(&[(9, 1, &[0]), (9, -1, &[0]), (3, -1, &[0])]), &branches, &w, &c)
            .unwrap();
        // 9 passes with both signs; 3 fails with both signs.
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows[0].weight, 1);
        assert_eq!(out.rows[1].weight, -1);
    }

    #[test]
    fn select_error_propagates() {
        let c = WorkCounter::new();
        let w = CostWeights::default();
        let branches = vec![SelectBranch {
            queries: qs(&[0]),
            predicate: Expr::col(5).gt(Expr::lit(1i64)), // out of bounds
        }];
        assert!(select(batch(&[(1, 1, &[0])]), &branches, &w, &c).is_err());
    }
}
