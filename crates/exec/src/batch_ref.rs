//! Naive single-query batch reference executor.
//!
//! Completely independent of the incremental shared engine: evaluates a
//! [`LogicalPlan`] over full base-table contents with plain multiset
//! operators (no deltas, no masks, no shared state). The test suites use it
//! as ground truth — every approach (any pace configuration, shared or not,
//! decomposed or not) must produce final query results identical to this.

use crate::aggregate::Accumulator;
use ishare_common::{DataType, Error, Result, TableId, Value, WorkCounter};
use ishare_expr::eval::{eval, eval_predicate};
use ishare_plan::LogicalPlan;
use ishare_storage::{Catalog, Row};
use std::collections::HashMap;

/// A multiset of output rows (row → multiplicity).
pub type RowMultiset = HashMap<Row, i64>;

/// Evaluate `plan` over `data` (full contents per base table).
pub fn run_logical(
    plan: &LogicalPlan,
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<Row>>,
) -> Result<RowMultiset> {
    let rows = eval_plan(plan, catalog, data)?;
    let mut out = RowMultiset::new();
    for r in rows {
        *out.entry(r).or_insert(0) += 1;
    }
    out.retain(|_, w| *w != 0);
    Ok(out)
}

fn eval_plan(
    plan: &LogicalPlan,
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<Row>>,
) -> Result<Vec<Row>> {
    match plan {
        LogicalPlan::Scan { table } => Ok(data.get(table).cloned().unwrap_or_default()),
        LogicalPlan::Select { input, predicate } => {
            let rows = eval_plan(input, catalog, data)?;
            let mut out = Vec::new();
            for r in rows {
                if eval_predicate(predicate, r.values())? {
                    out.push(r);
                }
            }
            Ok(out)
        }
        LogicalPlan::Project { input, exprs } => {
            let rows = eval_plan(input, catalog, data)?;
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                let mut vals = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    vals.push(eval(e, r.values())?);
                }
                out.push(Row::new(vals));
            }
            Ok(out)
        }
        LogicalPlan::Join { left, right, keys } => {
            let lrows = eval_plan(left, catalog, data)?;
            let rrows = eval_plan(right, catalog, data)?;
            // Hash the right side.
            let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
            'right: for r in &rrows {
                let mut key = Vec::with_capacity(keys.len());
                for (_, rk) in keys {
                    let v = eval(rk, r.values())?;
                    if v.is_null() {
                        continue 'right;
                    }
                    key.push(v);
                }
                table.entry(key).or_default().push(r);
            }
            let mut out = Vec::new();
            'left: for l in &lrows {
                let mut key = Vec::with_capacity(keys.len());
                for (lk, _) in keys {
                    let v = eval(lk, l.values())?;
                    if v.is_null() {
                        continue 'left;
                    }
                    key.push(v);
                }
                if let Some(matches) = table.get(&key) {
                    for r in matches {
                        out.push(l.concat(r));
                    }
                }
            }
            Ok(out)
        }
        LogicalPlan::Aggregate { input, group_by, aggs } => {
            let in_schema = input.schema(catalog)?;
            let rows = eval_plan(input, catalog, data)?;
            let counter = WorkCounter::new(); // reference executor: work discarded
            let weights = ishare_common::CostWeights::default();
            let mut int_flags = Vec::with_capacity(aggs.len());
            for a in aggs {
                let ty = ishare_expr::typecheck::infer_type(&a.arg, &in_schema)?;
                int_flags.push(ty == DataType::Int);
            }
            let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
            let mut order: Vec<Vec<Value>> = Vec::new();
            for r in &rows {
                let mut key = Vec::with_capacity(group_by.len());
                for (e, _) in group_by {
                    key.push(eval(e, r.values())?);
                }
                let accs = groups.entry(key.clone()).or_insert_with(|| {
                    order.push(key.clone());
                    aggs.iter()
                        .zip(&int_flags)
                        .map(|(a, &int)| Accumulator::new(a.func, int))
                        .collect()
                });
                for (acc, a) in accs.iter_mut().zip(aggs) {
                    let v = eval(&a.arg, r.values())?;
                    acc.update(&v, 1, &weights, &counter)?;
                }
            }
            let mut out = Vec::with_capacity(groups.len());
            for key in order {
                let accs = groups
                    .get(&key)
                    .ok_or_else(|| Error::InvalidPlan("aggregate group vanished".into()))?;
                let mut vals = key.clone();
                vals.extend(accs.iter().map(|a| a.value()));
                out.push(Row::new(vals));
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_expr::Expr;
    use ishare_plan::{AggExpr, AggFunc, PlanBuilder};
    use ishare_storage::{Field, Schema, TableStats};

    fn setup() -> (Catalog, HashMap<TableId, Vec<Row>>) {
        let mut c = Catalog::new();
        let orders = c
            .add_table(
                "orders",
                Schema::new(vec![
                    Field::new("o_cust", DataType::Int),
                    Field::new("o_total", DataType::Int),
                ]),
                TableStats::unknown(4.0, 2),
            )
            .unwrap();
        let cust = c
            .add_table(
                "customer",
                Schema::new(vec![
                    Field::new("c_id", DataType::Int),
                    Field::new("c_name", DataType::Str),
                ]),
                TableStats::unknown(2.0, 2),
            )
            .unwrap();
        let mut data = HashMap::new();
        data.insert(
            orders,
            vec![
                Row::new(vec![Value::Int(1), Value::Int(10)]),
                Row::new(vec![Value::Int(1), Value::Int(20)]),
                Row::new(vec![Value::Int(2), Value::Int(5)]),
                Row::new(vec![Value::Int(3), Value::Int(7)]), // no matching customer
            ],
        );
        data.insert(
            cust,
            vec![
                Row::new(vec![Value::Int(1), Value::str("ann")]),
                Row::new(vec![Value::Int(2), Value::str("bob")]),
            ],
        );
        (c, data)
    }

    #[test]
    fn join_aggregate_reference() {
        let (c, data) = setup();
        let plan = PlanBuilder::scan(&c, "orders")
            .unwrap()
            .join(PlanBuilder::scan(&c, "customer").unwrap(), &[("o_cust", "c_id")])
            .unwrap()
            .aggregate(&["c_name"], |x| Ok(vec![x.sum("o_total", "t")?]))
            .unwrap()
            .build();
        let out = run_logical(&plan, &c, &data).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[&Row::new(vec![Value::str("ann"), Value::Int(30)])], 1);
        assert_eq!(out[&Row::new(vec![Value::str("bob"), Value::Int(5)])], 1);
    }

    #[test]
    fn select_and_project_reference() {
        let (c, data) = setup();
        let plan = PlanBuilder::scan(&c, "orders")
            .unwrap()
            .select(|x| Ok(x.col("o_total")?.ge(Expr::lit(10i64))))
            .unwrap()
            .project(|x| Ok(vec![(x.col("o_cust")?, "c".into())]))
            .unwrap()
            .build();
        let out = run_logical(&plan, &c, &data).unwrap();
        // Two rows for customer 1 survive (multiset multiplicity 2).
        assert_eq!(out[&Row::new(vec![Value::Int(1)])], 2);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn global_aggregate_reference() {
        let (c, data) = setup();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(PlanBuilder::scan(&c, "orders").unwrap().build()),
            group_by: vec![],
            aggs: vec![AggExpr::count_star("n"), AggExpr::new(AggFunc::Max, Expr::col(1), "mx")],
        };
        let out = run_logical(&plan, &c, &data).unwrap();
        assert_eq!(out.len(), 1);
        let row = out.keys().next().unwrap();
        assert_eq!(row.values(), &[Value::Int(4), Value::Int(20)]);
    }

    #[test]
    fn missing_table_is_empty() {
        let (c, _) = setup();
        let plan = PlanBuilder::scan(&c, "orders").unwrap().build();
        let out = run_logical(&plan, &c, &HashMap::new()).unwrap();
        assert!(out.is_empty());
    }
}
