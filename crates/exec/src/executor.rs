//! The subplan executor: runs one subplan's operator tree over one
//! incremental input batch, keeping join/aggregate state alive across
//! executions.
//!
//! The paced driver (`ishare-stream`) owns the buffers; for each incremental
//! execution it pulls the new deltas for every leaf of the tree and hands
//! them to [`SubplanExecutor::execute`], which returns the subplan's output
//! delta (to be materialized into the subplan's buffer, or consumed as final
//! query results).
//!
//! Two interchangeable datapaths implement the operators ([`ExecMode`]):
//! the default [`ExecMode::Kernels`] datapath (encoded keys, compiled
//! expressions, flat state — `join`, `aggregate`, `operators`) and the
//! original [`ExecMode::Reference`] datapath (`reference`), kept as a
//! differential oracle. Both must produce bit-identical outputs and charged
//! work on every input — `tests/kernel_equivalence.rs` and the
//! `validate_kernels` smoke bin enforce it.

use crate::aggregate::{AggSpec, AggState};
use crate::join::{JoinKeys, JoinState};
use crate::operators::{apply_project, apply_select, narrow_input};
use crate::partition::{PartitionStat, PartitionedAgg, PartitionedJoin};
use crate::reference::{ref_apply_project, ref_apply_select, RefAggState, RefJoinState};
use ishare_common::{CostWeights, DataType, Error, QuerySet, Result, SubplanId, WorkCounter};
use ishare_expr::compile::{CompiledPredicate, CompiledProjection};
use ishare_plan::{InputSource, OpTree, Subplan, TreeOp};
use ishare_storage::{Catalog, DeltaBatch, Schema};
use std::collections::HashMap;

/// Which datapath a [`SubplanExecutor`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The optimized datapath: encoded keys, compiled expressions, flat
    /// operator state, batched work charges.
    #[default]
    Kernels,
    /// The original interpreter-shaped datapath, retained verbatim as a
    /// differential oracle ([`crate::reference`]). Results and charged work
    /// are bit-identical to [`ExecMode::Kernels`]; only wall-clock differs.
    Reference,
}

/// How a [`SubplanExecutor`] is built: which datapath, and whether stateful
/// operators hash-partition their state behind an exchange
/// ([`crate::partition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// The datapath. [`ExecMode::Reference`] ignores the partition fields —
    /// the reference datapath stays the unpartitioned differential oracle at
    /// every requested partition count.
    pub mode: ExecMode,
    /// Hash partitions for join/aggregate state. `0` or `1` = unpartitioned
    /// (plain [`JoinState`]/[`AggState`], exactly as before).
    pub partitions: usize,
    /// Worker threads fanning one partitioned operator's partitions out
    /// (scoped threads per execution). `0` or `1` = run partitions inline.
    /// Purely a wall-clock knob — results and charges are thread-count
    /// independent.
    pub partition_threads: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { mode: ExecMode::default(), partitions: 1, partition_threads: 1 }
    }
}

impl ExecOptions {
    /// Options for `mode` with unpartitioned state.
    pub fn with_mode(mode: ExecMode) -> ExecOptions {
        ExecOptions { mode, ..ExecOptions::default() }
    }

    /// `true` iff stateful operators should be partitioned.
    fn partitioned(&self) -> bool {
        self.mode == ExecMode::Kernels && self.partitions > 1
    }
}

/// Stateful-operator state, keyed by tree path.
#[derive(Debug)]
enum OpState {
    Join(JoinState),
    Agg(AggState),
    PartJoin(PartitionedJoin),
    PartAgg(PartitionedAgg),
    RefJoin(RefJoinState),
    RefAgg(RefAggState),
}

/// Expression kernels lowered once at executor construction, keyed by tree
/// path. Empty in [`ExecMode::Reference`] (the reference datapath walks the
/// plan's `Expr` trees directly).
#[derive(Debug, Default)]
struct CompiledOps {
    selects: HashMap<Vec<usize>, Vec<CompiledPredicate>>,
    projects: HashMap<Vec<usize>, CompiledProjection>,
    join_keys: HashMap<Vec<usize>, JoinKeys>,
    agg_specs: HashMap<Vec<usize>, AggSpec>,
}

/// Executes one subplan incrementally, holding its operator state.
#[derive(Debug)]
pub struct SubplanExecutor {
    subplan: Subplan,
    weights: CostWeights,
    options: ExecOptions,
    /// Per-aggregate-node flags: is each aggregate argument integer-typed?
    agg_int: HashMap<Vec<usize>, Vec<bool>>,
    states: HashMap<Vec<usize>, OpState>,
    compiled: CompiledOps,
}

impl SubplanExecutor {
    /// Build an executor for `subplan` on the default (kernel) datapath.
    /// `child_schemas` must contain the output schema of every child subplan
    /// referenced by the tree (see [`ishare_plan::SharedPlan::schemas`]).
    pub fn new(
        subplan: &Subplan,
        catalog: &Catalog,
        child_schemas: &HashMap<SubplanId, Schema>,
        weights: CostWeights,
    ) -> Result<Self> {
        Self::new_with_mode(subplan, catalog, child_schemas, weights, ExecMode::default())
    }

    /// Build an executor on an explicit datapath (unpartitioned state).
    pub fn new_with_mode(
        subplan: &Subplan,
        catalog: &Catalog,
        child_schemas: &HashMap<SubplanId, Schema>,
        weights: CostWeights,
        mode: ExecMode,
    ) -> Result<Self> {
        Self::new_with_options(
            subplan,
            catalog,
            child_schemas,
            weights,
            ExecOptions::with_mode(mode),
        )
    }

    /// Build an executor with full [`ExecOptions`] — datapath plus
    /// state-partitioning configuration.
    pub fn new_with_options(
        subplan: &Subplan,
        catalog: &Catalog,
        child_schemas: &HashMap<SubplanId, Schema>,
        weights: CostWeights,
        options: ExecOptions,
    ) -> Result<Self> {
        let mut agg_int = HashMap::new();
        let mut states = HashMap::new();
        let mut compiled = CompiledOps::default();
        init_states(
            &subplan.root,
            &mut Vec::new(),
            catalog,
            child_schemas,
            options,
            &mut agg_int,
            &mut states,
            &mut compiled,
        )?;
        Ok(SubplanExecutor {
            subplan: subplan.clone(),
            weights,
            options,
            agg_int,
            states,
            compiled,
        })
    }

    /// The executed subplan.
    pub fn subplan(&self) -> &Subplan {
        &self.subplan
    }

    /// The datapath this executor runs.
    pub fn mode(&self) -> ExecMode {
        self.options.mode
    }

    /// The full build options.
    pub fn options(&self) -> ExecOptions {
        self.options
    }

    /// Per-partition cumulative load, summed over this subplan's partitioned
    /// operators: entry `p` is the rows routed to and work charged by
    /// partition `p`. Empty when no operator is partitioned.
    pub fn partition_stats(&self) -> Vec<PartitionStat> {
        let mut acc: Vec<PartitionStat> = Vec::new();
        let mut fold = |stats: &[PartitionStat]| {
            if acc.len() < stats.len() {
                acc.resize(stats.len(), PartitionStat::default());
            }
            for (a, s) in acc.iter_mut().zip(stats) {
                a.rows += s.rows;
                a.work += s.work;
            }
        };
        // Deterministic order: sort by tree path (HashMap iteration order is
        // seed-free here but sorting keeps the fold order obvious).
        let mut paths: Vec<&Vec<usize>> = self.states.keys().collect();
        paths.sort();
        for path in paths {
            match &self.states[path] {
                OpState::PartJoin(pj) => fold(pj.stats()),
                OpState::PartAgg(pa) => fold(pa.stats()),
                _ => {}
            }
        }
        acc
    }

    /// All leaves of the tree with their tree paths, in pre-order. The
    /// driver registers one buffer consumer per leaf (a self-join reads the
    /// same source through two leaves, each with its own cursor).
    pub fn leaf_paths(&self) -> Vec<(Vec<usize>, InputSource)> {
        let mut out = Vec::new();
        fn go(t: &OpTree, path: &mut Vec<usize>, out: &mut Vec<(Vec<usize>, InputSource)>) {
            if let TreeOp::Input(src) = &t.op {
                out.push((path.clone(), *src));
            }
            for (i, child) in t.inputs.iter().enumerate() {
                path.push(i);
                go(child, path, out);
                path.pop();
            }
        }
        go(&self.subplan.root, &mut Vec::new(), &mut out);
        out
    }

    /// Run one incremental execution. `inputs` maps leaf paths to the new
    /// deltas pulled from the corresponding buffers; missing entries mean no
    /// new data for that leaf. Returns the subplan's output delta.
    pub fn execute(
        &mut self,
        inputs: &mut HashMap<Vec<usize>, DeltaBatch>,
        counter: &WorkCounter,
    ) -> Result<DeltaBatch> {
        // `exec_node` borrows the tree and the mutable operator state from
        // disjoint fields, so the tree is walked in place — no per-execution
        // clone of the operator tree and its expression nodes.
        exec_node(
            &self.subplan.root,
            &mut Vec::new(),
            inputs,
            counter,
            self.options.mode,
            self.subplan.queries,
            &self.weights,
            &self.agg_int,
            &mut self.states,
            &self.compiled,
        )
    }

    /// The queries this subplan serves.
    pub fn queries(&self) -> QuerySet {
        self.subplan.queries
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_node(
    t: &OpTree,
    path: &mut Vec<usize>,
    inputs: &mut HashMap<Vec<usize>, DeltaBatch>,
    counter: &WorkCounter,
    mode: ExecMode,
    queries: QuerySet,
    weights: &CostWeights,
    agg_int: &HashMap<Vec<usize>, Vec<bool>>,
    states: &mut HashMap<Vec<usize>, OpState>,
    compiled: &CompiledOps,
) -> Result<DeltaBatch> {
    let child = |i: usize,
                 inputs: &mut HashMap<Vec<usize>, DeltaBatch>,
                 path: &mut Vec<usize>,
                 states: &mut HashMap<Vec<usize>, OpState>|
     -> Result<DeltaBatch> {
        path.push(i);
        let out = exec_node(
            &t.inputs[i],
            path,
            inputs,
            counter,
            mode,
            queries,
            weights,
            agg_int,
            states,
            compiled,
        );
        path.pop();
        out
    };
    match &t.op {
        TreeOp::Input(_) => {
            let batch = inputs.remove(path.as_slice()).unwrap_or_default();
            Ok(narrow_input(&batch, queries, weights, counter))
        }
        TreeOp::Select { branches } => {
            let input = child(0, inputs, path, states)?;
            match mode {
                ExecMode::Kernels => {
                    let preds = compiled.selects.get(path.as_slice()).ok_or_else(|| {
                        Error::InvalidPlan(format!("missing compiled select at path {path:?}"))
                    })?;
                    apply_select(input, branches, preds, weights, counter)
                }
                ExecMode::Reference => ref_apply_select(input, branches, weights, counter),
            }
        }
        TreeOp::Project { exprs } => {
            let input = child(0, inputs, path, states)?;
            match mode {
                ExecMode::Kernels => {
                    let proj = compiled.projects.get(path.as_slice()).ok_or_else(|| {
                        Error::InvalidPlan(format!("missing compiled project at path {path:?}"))
                    })?;
                    apply_project(input, proj, weights, counter)
                }
                ExecMode::Reference => ref_apply_project(input, exprs, weights, counter),
            }
        }
        TreeOp::Join { keys } => {
            let left = child(0, inputs, path, states)?;
            let right = child(1, inputs, path, states)?;
            match states.get_mut(path.as_slice()) {
                Some(OpState::Join(js)) => {
                    let ckeys = compiled.join_keys.get(path.as_slice()).ok_or_else(|| {
                        Error::InvalidPlan(format!("missing compiled join keys at path {path:?}"))
                    })?;
                    js.execute(left, right, ckeys, weights, counter)
                }
                Some(OpState::PartJoin(pj)) => {
                    let ckeys = compiled.join_keys.get(path.as_slice()).ok_or_else(|| {
                        Error::InvalidPlan(format!("missing compiled join keys at path {path:?}"))
                    })?;
                    pj.execute(left, right, ckeys, weights, counter)
                }
                Some(OpState::RefJoin(js)) => js.execute(left, right, keys, weights, counter),
                _ => Err(Error::InvalidPlan(format!("missing join state at path {path:?}"))),
            }
        }
        TreeOp::Aggregate { group_by, aggs } => {
            let input = child(0, inputs, path, states)?;
            let int_flags = agg_int.get(path.as_slice());
            let fallback;
            let int_flags = match int_flags {
                Some(f) => f.as_slice(),
                None => {
                    fallback = vec![false; aggs.len()];
                    fallback.as_slice()
                }
            };
            match states.get_mut(path.as_slice()) {
                Some(OpState::Agg(st)) => {
                    let spec = compiled.agg_specs.get(path.as_slice()).ok_or_else(|| {
                        Error::InvalidPlan(format!("missing compiled aggregate at path {path:?}"))
                    })?;
                    st.execute(input, spec, int_flags, weights, counter)
                }
                Some(OpState::PartAgg(pa)) => {
                    let spec = compiled.agg_specs.get(path.as_slice()).ok_or_else(|| {
                        Error::InvalidPlan(format!("missing compiled aggregate at path {path:?}"))
                    })?;
                    pa.execute(input, spec, int_flags, weights, counter)
                }
                Some(OpState::RefAgg(st)) => {
                    st.execute(input, group_by, aggs, int_flags, weights, counter)
                }
                _ => Err(Error::InvalidPlan(format!("missing aggregate state at path {path:?}"))),
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn init_states(
    t: &OpTree,
    path: &mut Vec<usize>,
    catalog: &Catalog,
    child_schemas: &HashMap<SubplanId, Schema>,
    options: ExecOptions,
    agg_int: &mut HashMap<Vec<usize>, Vec<bool>>,
    states: &mut HashMap<Vec<usize>, OpState>,
    compiled: &mut CompiledOps,
) -> Result<()> {
    let mode = options.mode;
    match &t.op {
        TreeOp::Join { keys } => match mode {
            ExecMode::Kernels => {
                let ckeys = JoinKeys::compile(keys);
                let state = if options.partitioned() {
                    OpState::PartJoin(PartitionedJoin::new(
                        options.partitions,
                        options.partition_threads,
                        &ckeys,
                    ))
                } else {
                    OpState::Join(JoinState::new())
                };
                compiled.join_keys.insert(path.clone(), ckeys);
                states.insert(path.clone(), state);
            }
            ExecMode::Reference => {
                states.insert(path.clone(), OpState::RefJoin(RefJoinState::new()));
            }
        },
        TreeOp::Aggregate { group_by, aggs } => {
            let in_schema = t.inputs[0].schema(catalog, child_schemas)?;
            let mut flags = Vec::with_capacity(aggs.len());
            for a in aggs {
                let ty = ishare_expr::typecheck::infer_type(&a.arg, &in_schema)?;
                flags.push(ty == DataType::Int);
            }
            agg_int.insert(path.clone(), flags);
            match mode {
                ExecMode::Kernels => {
                    let spec = AggSpec::compile(group_by, aggs);
                    let state = if options.partitioned() {
                        OpState::PartAgg(PartitionedAgg::new(
                            options.partitions,
                            options.partition_threads,
                            &spec,
                        ))
                    } else {
                        OpState::Agg(AggState::new())
                    };
                    compiled.agg_specs.insert(path.clone(), spec);
                    states.insert(path.clone(), state);
                }
                ExecMode::Reference => {
                    states.insert(path.clone(), OpState::RefAgg(RefAggState::new()));
                }
            }
        }
        TreeOp::Select { branches } => {
            if mode == ExecMode::Kernels {
                compiled.selects.insert(
                    path.clone(),
                    branches.iter().map(|b| CompiledPredicate::compile(&b.predicate)).collect(),
                );
            }
        }
        TreeOp::Project { exprs } => {
            if mode == ExecMode::Kernels {
                let list: Vec<_> = exprs.iter().map(|(e, _)| e.clone()).collect();
                compiled.projects.insert(path.clone(), CompiledProjection::compile(&list));
            }
        }
        TreeOp::Input(_) => {}
    }
    for (i, child) in t.inputs.iter().enumerate() {
        path.push(i);
        init_states(child, path, catalog, child_schemas, options, agg_int, states, compiled)?;
    }
    path.pop();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{QueryId, Value};
    use ishare_expr::Expr;
    use ishare_plan::{AggExpr, AggFunc, SelectBranch};
    use ishare_storage::{consolidate, DeltaRow, Field, Row, TableStats};

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats::unknown(100.0, 2),
        )
        .unwrap();
        c.add_table(
            "u",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("w", DataType::Int)]),
            TableStats::unknown(100.0, 2),
        )
        .unwrap();
        c
    }

    /// select(v>2 for q1; all for q0) -> join(t,u on k) -> agg sum(w) by t.k
    fn sample_subplan(c: &Catalog) -> Subplan {
        let t = c.table_by_name("t").unwrap().id;
        let u = c.table_by_name("u").unwrap().id;
        let tree = OpTree::node(
            TreeOp::Aggregate {
                group_by: vec![(Expr::col(0), "k".into())],
                aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(3), "sw")],
            },
            vec![OpTree::node(
                TreeOp::Join { keys: vec![(Expr::col(0), Expr::col(0))] },
                vec![
                    OpTree::node(
                        TreeOp::Select {
                            branches: vec![
                                SelectBranch { queries: qs(&[0]), predicate: Expr::true_lit() },
                                SelectBranch {
                                    queries: qs(&[1]),
                                    predicate: Expr::col(1).gt(Expr::lit(2i64)),
                                },
                            ],
                        },
                        vec![OpTree::input(InputSource::Base(t))],
                    ),
                    OpTree::input(InputSource::Base(u)),
                ],
            )],
        );
        Subplan { id: SubplanId(0), root: tree, queries: qs(&[0, 1]), output_queries: qs(&[0, 1]) }
    }

    fn t_row(k: i64, v: i64) -> DeltaRow {
        DeltaRow { row: Row::new(vec![Value::Int(k), Value::Int(v)]), weight: 1, mask: qs(&[0, 1]) }
    }

    #[test]
    fn end_to_end_one_batch() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let mut ex =
            SubplanExecutor::new(&sp, &c, &HashMap::new(), CostWeights::default()).unwrap();
        assert_eq!(ex.mode(), ExecMode::Kernels, "kernels are the default datapath");
        let leaves = ex.leaf_paths();
        assert_eq!(leaves.len(), 2);
        let counter = WorkCounter::new();
        let mut inputs = HashMap::new();
        // t rows: (1, v=1) fails q1's filter; (1, v=5) passes both.
        inputs.insert(leaves[0].0.clone(), DeltaBatch::from_rows(vec![t_row(1, 1), t_row(1, 5)]));
        inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(vec![t_row(1, 100)]));
        let out = ex.execute(&mut inputs, &counter).unwrap();
        let cons = consolidate(out.rows);
        // q0 joined both t rows with u's row: sum = 200 (two matches × 100).
        // q1 joined only (1,5): sum = 100.
        assert_eq!(cons[&(Row::new(vec![Value::Int(1), Value::Int(200)]), qs(&[0]))], 1);
        assert_eq!(cons[&(Row::new(vec![Value::Int(1), Value::Int(100)]), qs(&[1]))], 1);
        assert!(counter.total().get() > 0.0);
    }

    #[test]
    fn incremental_matches_single_batch() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let weights = CostWeights::default();
        let counter = WorkCounter::new();

        let t_rows = vec![t_row(1, 1), t_row(1, 5), t_row(2, 9), t_row(2, 2)];
        let u_rows = vec![t_row(1, 10), t_row(2, 20), t_row(2, 30)];

        // One batch.
        let mut big = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
        let leaves = big.leaf_paths();
        let mut inputs = HashMap::new();
        inputs.insert(leaves[0].0.clone(), DeltaBatch::from_rows(t_rows.clone()));
        inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(u_rows.clone()));
        let batch_out = big.execute(&mut inputs, &counter).unwrap();

        // Four incremental executions with interleaved arrivals.
        let mut inc = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
        let mut acc = Vec::new();
        let steps: Vec<(Vec<DeltaRow>, Vec<DeltaRow>)> = vec![
            (vec![t_rows[0].clone()], vec![]),
            (vec![t_rows[1].clone(), t_rows[2].clone()], vec![u_rows[0].clone()]),
            (vec![], vec![u_rows[1].clone()]),
            (vec![t_rows[3].clone()], vec![u_rows[2].clone()]),
        ];
        for (ts, us) in steps {
            let mut inputs = HashMap::new();
            inputs.insert(leaves[0].0.clone(), DeltaBatch::from_rows(ts));
            inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(us));
            acc.extend(inc.execute(&mut inputs, &counter).unwrap().rows);
        }
        assert_eq!(consolidate(batch_out.rows), consolidate(acc));
    }

    #[test]
    fn eager_execution_costs_more() {
        // The paper's Fig. 1: more executions over the same data = more
        // total work, because aggregates retract and reinsert.
        let c = catalog();
        let sp = sample_subplan(&c);
        let weights = CostWeights::default();

        let t_rows: Vec<DeltaRow> = (0..40).map(|i| t_row(i % 4, i)).collect();
        let u_rows: Vec<DeltaRow> = (0..4).map(|k| t_row(k, 100)).collect();

        let work_of = |chunks: usize| {
            let mut ex = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
            let leaves = ex.leaf_paths();
            let counter = WorkCounter::new();
            let chunk = t_rows.len() / chunks;
            for i in 0..chunks {
                let mut inputs = HashMap::new();
                inputs.insert(
                    leaves[0].0.clone(),
                    DeltaBatch::from_rows(t_rows[i * chunk..(i + 1) * chunk].to_vec()),
                );
                if i == 0 {
                    inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(u_rows.clone()));
                }
                ex.execute(&mut inputs, &counter).unwrap();
            }
            counter.total().get()
        };
        let lazy = work_of(1);
        let eager = work_of(10);
        assert!(
            eager > lazy * 1.2,
            "eager ({eager}) must cost meaningfully more than lazy ({lazy})"
        );
    }

    #[test]
    fn missing_inputs_are_empty() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let mut ex =
            SubplanExecutor::new(&sp, &c, &HashMap::new(), CostWeights::default()).unwrap();
        let counter = WorkCounter::new();
        let out = ex.execute(&mut HashMap::new(), &counter).unwrap();
        assert!(out.is_empty());
        assert_eq!(ex.queries(), qs(&[0, 1]));
    }

    /// The partition exchange must be invisible: same output rows in the
    /// same order and bit-identical charges at every partition/thread
    /// count, across incremental executions with inserts and deletes —
    /// through a join AND an aggregate (different partition keys).
    #[test]
    fn partitioned_state_matches_unpartitioned_bitwise() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let weights = CostWeights::default();
        let steps: Vec<(Vec<DeltaRow>, Vec<DeltaRow>)> = vec![
            (vec![t_row(1, 1), t_row(2, 5), t_row(3, 8)], vec![t_row(1, 100), t_row(2, 50)]),
            (vec![t_row(4, 9), t_row(1, 3)], vec![t_row(3, 20), t_row(4, 7), t_row(1, 7)]),
            (
                vec![DeltaRow {
                    row: Row::new(vec![Value::Int(1), Value::Int(1)]),
                    weight: -1,
                    mask: qs(&[0, 1]),
                }],
                vec![],
            ),
            (vec![t_row(2, 4), t_row(5, 6)], vec![t_row(5, 11)]),
        ];
        let run = |options: ExecOptions| {
            let mut ex =
                SubplanExecutor::new_with_options(&sp, &c, &HashMap::new(), weights, options)
                    .unwrap();
            let leaves = ex.leaf_paths();
            let counter = WorkCounter::new();
            let mut outs = Vec::new();
            for (ts, us) in &steps {
                let mut inputs = HashMap::new();
                inputs.insert(leaves[0].0.clone(), DeltaBatch::from_rows(ts.clone()));
                inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(us.clone()));
                outs.push(ex.execute(&mut inputs, &counter).unwrap().rows);
            }
            (outs, counter.total().get(), counter.breakdown(), ex.partition_stats())
        };
        let (base_outs, base_total, base_breakdown, base_stats) = run(ExecOptions::default());
        assert!(base_stats.is_empty(), "unpartitioned executor reports no partition stats");
        for partitions in [2usize, 4, 8] {
            for threads in [1usize, 2] {
                let opts =
                    ExecOptions { mode: ExecMode::Kernels, partitions, partition_threads: threads };
                let (outs, total, breakdown, stats) = run(opts);
                assert_eq!(
                    outs, base_outs,
                    "outputs differ at {partitions} partitions, {threads} threads"
                );
                assert_eq!(
                    total.to_bits(),
                    base_total.to_bits(),
                    "total work differs at {partitions} partitions, {threads} threads"
                );
                for kind in ishare_common::OpKind::ALL {
                    assert_eq!(
                        breakdown.get(kind).to_bits(),
                        base_breakdown.get(kind).to_bits(),
                        "{kind} charges differ at {partitions} partitions"
                    );
                }
                assert_eq!(stats.len(), partitions);
                let routed: u64 = stats.iter().map(|s| s.rows).sum();
                assert!(routed > 0, "exchange must have routed rows");
                let split: f64 = stats.iter().map(|s| s.work).sum();
                assert!(split > 0.0, "partitions must have charged work");
            }
        }
    }

    /// The two datapaths must agree bit-for-bit: same output rows in the
    /// same order, same charged work to the last f64 bit, across multiple
    /// incremental executions with inserts and deletes.
    #[test]
    fn reference_mode_matches_kernels_bitwise() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let weights = CostWeights::default();

        let mut kern = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
        let mut refr =
            SubplanExecutor::new_with_mode(&sp, &c, &HashMap::new(), weights, ExecMode::Reference)
                .unwrap();
        let leaves = kern.leaf_paths();
        let kc = WorkCounter::new();
        let rc = WorkCounter::new();

        let steps: Vec<(Vec<DeltaRow>, Vec<DeltaRow>)> = vec![
            (vec![t_row(1, 1), t_row(1, 5)], vec![t_row(1, 100)]),
            (vec![t_row(2, 9)], vec![t_row(2, 20), t_row(1, 7)]),
            (
                vec![DeltaRow {
                    row: Row::new(vec![Value::Int(1), Value::Int(5)]),
                    weight: -1,
                    mask: qs(&[0, 1]),
                }],
                vec![],
            ),
        ];
        for (ts, us) in steps {
            let mut ki = HashMap::new();
            ki.insert(leaves[0].0.clone(), DeltaBatch::from_rows(ts.clone()));
            ki.insert(leaves[1].0.clone(), DeltaBatch::from_rows(us.clone()));
            let mut ri = HashMap::new();
            ri.insert(leaves[0].0.clone(), DeltaBatch::from_rows(ts));
            ri.insert(leaves[1].0.clone(), DeltaBatch::from_rows(us));
            let kout = kern.execute(&mut ki, &kc).unwrap();
            let rout = refr.execute(&mut ri, &rc).unwrap();
            assert_eq!(kout.rows, rout.rows, "outputs must match in order");
            assert_eq!(kc.total().get().to_bits(), rc.total().get().to_bits());
        }
    }
}
