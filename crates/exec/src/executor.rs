//! The subplan executor: runs one subplan's operator tree over one
//! incremental input batch, keeping join/aggregate state alive across
//! executions.
//!
//! The paced driver (`ishare-stream`) owns the buffers; for each incremental
//! execution it pulls the new deltas for every leaf of the tree and hands
//! them to [`SubplanExecutor::execute`], which returns the subplan's output
//! delta (to be materialized into the subplan's buffer, or consumed as final
//! query results).
//!
//! Two interchangeable datapaths implement the operators ([`ExecMode`]):
//! the default [`ExecMode::Kernels`] datapath (encoded keys, compiled
//! expressions, flat state — `join`, `aggregate`, `operators`) and the
//! original [`ExecMode::Reference`] datapath (`reference`), kept as a
//! differential oracle. Both must produce bit-identical outputs and charged
//! work on every input — `tests/kernel_equivalence.rs` and the
//! `validate_kernels` smoke bin enforce it.

use crate::aggregate::{AggSpec, AggState};
use crate::join::{JoinKeys, JoinState};
use crate::operators::{apply_project, apply_select, narrow_input};
use crate::partition::{PartitionStat, PartitionedAgg, PartitionedJoin};
use crate::reference::{ref_apply_project, ref_apply_select, RefAggState, RefJoinState};
use crate::vectorized::{
    narrow_columnar, project_columnar, select_columnar, BatchStats, ColsView, VecDelta,
};
use ishare_common::{
    CostWeights, DataType, Error, QueryId, QuerySet, Result, SubplanId, WorkCounter,
};
use ishare_expr::compile::{CompiledPredicate, CompiledProjection};
use ishare_plan::{InputSource, OpTree, Subplan, TreeOp};
use ishare_storage::{Catalog, DeltaBatch, DeltaRow, Schema};
use std::collections::HashMap;

/// Which datapath a [`SubplanExecutor`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The optimized datapath: encoded keys, compiled expressions, flat
    /// operator state, batched work charges.
    #[default]
    Kernels,
    /// The original interpreter-shaped datapath, retained verbatim as a
    /// differential oracle ([`crate::reference`]). Results and charged work
    /// are bit-identical to [`ExecMode::Kernels`]; only wall-clock differs.
    Reference,
    /// The columnar batch-at-a-time datapath ([`crate::vectorized`]): inputs
    /// are narrowed into SoA [`ColumnarBatch`]es once per execution,
    /// select/project run as selection-vector kernels over typed columns,
    /// and join/aggregate consume the columnar view directly (encoding keys
    /// straight from columns). Shares all stateful-operator state layouts
    /// (and the partition exchange) with [`ExecMode::Kernels`]; results and
    /// charged work are bit-identical to both other modes.
    ///
    /// [`ColumnarBatch`]: ishare_storage::ColumnarBatch
    Vectorized,
}

/// How a [`SubplanExecutor`] is built: which datapath, and whether stateful
/// operators hash-partition their state behind an exchange
/// ([`crate::partition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// The datapath. [`ExecMode::Reference`] ignores the partition fields —
    /// the reference datapath stays the unpartitioned differential oracle at
    /// every requested partition count.
    pub mode: ExecMode,
    /// Hash partitions for join/aggregate state. `0` or `1` = unpartitioned
    /// (plain [`JoinState`]/[`AggState`], exactly as before).
    pub partitions: usize,
    /// Worker threads fanning one partitioned operator's partitions out
    /// (scoped threads per execution). `0` or `1` = run partitions inline.
    /// Purely a wall-clock knob — results and charges are thread-count
    /// independent.
    pub partition_threads: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { mode: ExecMode::default(), partitions: 1, partition_threads: 1 }
    }
}

impl ExecOptions {
    /// Options for `mode` with unpartitioned state.
    pub fn with_mode(mode: ExecMode) -> ExecOptions {
        ExecOptions { mode, ..ExecOptions::default() }
    }

    /// `true` iff stateful operators should be partitioned.
    fn partitioned(&self) -> bool {
        self.mode != ExecMode::Reference && self.partitions > 1
    }
}

/// Stateful-operator state, keyed by tree path.
#[derive(Debug)]
enum OpState {
    Join(JoinState),
    Agg(AggState),
    PartJoin(PartitionedJoin),
    PartAgg(PartitionedAgg),
    RefJoin(RefJoinState),
    RefAgg(RefAggState),
}

/// Expression kernels lowered once at executor construction, keyed by tree
/// path. Empty in [`ExecMode::Reference`] (the reference datapath walks the
/// plan's `Expr` trees directly).
#[derive(Debug, Default)]
struct CompiledOps {
    selects: HashMap<Vec<usize>, Vec<CompiledPredicate>>,
    projects: HashMap<Vec<usize>, CompiledProjection>,
    join_keys: HashMap<Vec<usize>, JoinKeys>,
    agg_specs: HashMap<Vec<usize>, AggSpec>,
}

/// Opaque transplantable operator state of one executor, keyed by tree
/// path. Produced by [`SubplanExecutor::take_state_bundle`] and consumed by
/// [`SubplanExecutor::install_state_bundle`] when query churn re-cuts the
/// shared plan: a surviving subplan hands its join/aggregate state to its
/// successor executor instead of replaying history.
/// [`StateBundle::extract_prefix`] supports subplan *splits* — the state
/// under a forced-cut path moves to the new child subplan with paths
/// re-rooted at the cut, while the remainder stays with the parent (whose
/// paths are unchanged: the cut node becomes an `Input` leaf in place).
#[derive(Debug, Default)]
pub struct StateBundle {
    states: HashMap<Vec<usize>, OpState>,
}

impl StateBundle {
    /// Number of stateful-operator states carried.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` iff no state is carried.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Remove every state whose tree path starts with `prefix` and return
    /// it as a new bundle with the prefix stripped (re-rooted at the cut
    /// node). States not under `prefix` stay in `self`.
    pub fn extract_prefix(&mut self, prefix: &[usize]) -> StateBundle {
        // `retain` cannot move values out, so drain the map and rebuild
        // `self` while peeling off the prefixed entries.
        let mut kept = HashMap::new();
        let mut out = HashMap::new();
        for (path, st) in std::mem::take(&mut self.states) {
            if path.starts_with(prefix) {
                out.insert(path[prefix.len()..].to_vec(), st);
            } else {
                kept.insert(path, st);
            }
        }
        self.states = kept;
        StateBundle { states: out }
    }
}

/// Executes one subplan incrementally, holding its operator state.
#[derive(Debug)]
pub struct SubplanExecutor {
    subplan: Subplan,
    weights: CostWeights,
    options: ExecOptions,
    /// Per-aggregate-node flags: is each aggregate argument integer-typed?
    agg_int: HashMap<Vec<usize>, Vec<bool>>,
    states: HashMap<Vec<usize>, OpState>,
    compiled: CompiledOps,
    /// Cumulative vectorized batch/selection statistics (only advanced in
    /// [`ExecMode::Vectorized`]; stays zero otherwise).
    batch_stats: BatchStats,
}

impl SubplanExecutor {
    /// Build an executor for `subplan` on the default (kernel) datapath.
    /// `child_schemas` must contain the output schema of every child subplan
    /// referenced by the tree (see [`ishare_plan::SharedPlan::schemas`]).
    pub fn new(
        subplan: &Subplan,
        catalog: &Catalog,
        child_schemas: &HashMap<SubplanId, Schema>,
        weights: CostWeights,
    ) -> Result<Self> {
        Self::new_with_mode(subplan, catalog, child_schemas, weights, ExecMode::default())
    }

    /// Build an executor on an explicit datapath (unpartitioned state).
    pub fn new_with_mode(
        subplan: &Subplan,
        catalog: &Catalog,
        child_schemas: &HashMap<SubplanId, Schema>,
        weights: CostWeights,
        mode: ExecMode,
    ) -> Result<Self> {
        Self::new_with_options(
            subplan,
            catalog,
            child_schemas,
            weights,
            ExecOptions::with_mode(mode),
        )
    }

    /// Build an executor with full [`ExecOptions`] — datapath plus
    /// state-partitioning configuration.
    pub fn new_with_options(
        subplan: &Subplan,
        catalog: &Catalog,
        child_schemas: &HashMap<SubplanId, Schema>,
        weights: CostWeights,
        options: ExecOptions,
    ) -> Result<Self> {
        let mut agg_int = HashMap::new();
        let mut states = HashMap::new();
        let mut compiled = CompiledOps::default();
        init_states(
            &subplan.root,
            &mut Vec::new(),
            catalog,
            child_schemas,
            options,
            &mut agg_int,
            &mut states,
            &mut compiled,
        )?;
        Ok(SubplanExecutor {
            subplan: subplan.clone(),
            weights,
            options,
            agg_int,
            states,
            compiled,
            batch_stats: BatchStats::default(),
        })
    }

    /// The executed subplan.
    pub fn subplan(&self) -> &Subplan {
        &self.subplan
    }

    /// The datapath this executor runs.
    pub fn mode(&self) -> ExecMode {
        self.options.mode
    }

    /// The full build options.
    pub fn options(&self) -> ExecOptions {
        self.options
    }

    /// Per-partition cumulative load, summed over this subplan's partitioned
    /// operators: entry `p` is the rows routed to and work charged by
    /// partition `p`. Empty when no operator is partitioned.
    pub fn partition_stats(&self) -> Vec<PartitionStat> {
        let mut acc: Vec<PartitionStat> = Vec::new();
        let mut fold = |stats: &[PartitionStat]| {
            if acc.len() < stats.len() {
                acc.resize(stats.len(), PartitionStat::default());
            }
            for (a, s) in acc.iter_mut().zip(stats) {
                a.rows += s.rows;
                a.work += s.work;
            }
        };
        // Deterministic order: sort by tree path (HashMap iteration order is
        // seed-free here but sorting keeps the fold order obvious).
        let mut paths: Vec<&Vec<usize>> = self.states.keys().collect();
        paths.sort();
        for path in paths {
            match &self.states[path] {
                OpState::PartJoin(pj) => fold(pj.stats()),
                OpState::PartAgg(pa) => fold(pa.stats()),
                _ => {}
            }
        }
        acc
    }

    /// All leaves of the tree with their tree paths, in pre-order. The
    /// driver registers one buffer consumer per leaf (a self-join reads the
    /// same source through two leaves, each with its own cursor).
    pub fn leaf_paths(&self) -> Vec<(Vec<usize>, InputSource)> {
        let mut out = Vec::new();
        fn go(t: &OpTree, path: &mut Vec<usize>, out: &mut Vec<(Vec<usize>, InputSource)>) {
            if let TreeOp::Input(src) = &t.op {
                out.push((path.clone(), *src));
            }
            for (i, child) in t.inputs.iter().enumerate() {
                path.push(i);
                go(child, path, out);
                path.pop();
            }
        }
        go(&self.subplan.root, &mut Vec::new(), &mut out);
        out
    }

    /// Run one incremental execution. `inputs` maps leaf paths to the new
    /// deltas pulled from the corresponding buffers; missing entries mean no
    /// new data for that leaf. Returns the subplan's output delta.
    pub fn execute(
        &mut self,
        inputs: &mut HashMap<Vec<usize>, DeltaBatch>,
        counter: &WorkCounter,
    ) -> Result<DeltaBatch> {
        // `exec_node` borrows the tree and the mutable operator state from
        // disjoint fields, so the tree is walked in place — no per-execution
        // clone of the operator tree and its expression nodes.
        if self.options.mode == ExecMode::Vectorized {
            // The root reads no columns itself: its output materializes
            // through backing rows, so the needed-column descent starts
            // empty and accumulates reads op by op on the way down.
            return exec_node_vec(
                &self.subplan.root,
                &mut Vec::new(),
                inputs,
                counter,
                self.subplan.queries,
                &self.weights,
                &self.agg_int,
                &mut self.states,
                &self.compiled,
                &mut self.batch_stats,
                &[],
            )
            .map(VecDelta::into_rows);
        }
        exec_node(
            &self.subplan.root,
            &mut Vec::new(),
            inputs,
            counter,
            self.options.mode,
            self.subplan.queries,
            &self.weights,
            &self.agg_int,
            &mut self.states,
            &self.compiled,
        )
    }

    /// Cumulative vectorized batch statistics (input batch fill, select
    /// selectivity) — all zeros unless running [`ExecMode::Vectorized`].
    pub fn batch_stats(&self) -> BatchStats {
        self.batch_stats
    }

    /// The queries this subplan serves.
    pub fn queries(&self) -> QuerySet {
        self.subplan.queries
    }

    /// Total stored state entries across this subplan's stateful operators:
    /// join (row, mask) entries on both sides plus aggregate classes and
    /// outstanding emitted pairs. Feeds the churn reclaimed-rows accounting.
    pub fn state_rows(&self) -> usize {
        self.states
            .values()
            .map(|s| match s {
                OpState::Join(j) => j.left_size() + j.right_size(),
                OpState::PartJoin(p) => p.left_size() + p.right_size(),
                OpState::Agg(a) => a.state_size(),
                OpState::PartAgg(p) => p.state_size(),
                OpState::RefJoin(_) | OpState::RefAgg(_) => 0,
            })
            .sum()
    }

    /// Swap this subplan description (and its lowered kernels) for a
    /// structurally identical successor produced by a churn re-cut, keeping
    /// all operator state in place. "Structurally identical" means the same
    /// tree shape with stateful operators at the same paths — only select
    /// branch membership, the query sets, and expression lists may differ
    /// (e.g. an admitted query joined an existing predicate branch, or a
    /// removed query's branch disappeared). Rejects shape changes with
    /// [`Error::Churn`]; splits must go through [`Self::take_state_bundle`]
    /// instead.
    pub fn refresh_subplan(
        &mut self,
        subplan: &Subplan,
        catalog: &Catalog,
        child_schemas: &HashMap<SubplanId, Schema>,
    ) -> Result<()> {
        let mut agg_int = HashMap::new();
        let mut fresh_states = HashMap::new();
        let mut compiled = CompiledOps::default();
        init_states(
            &subplan.root,
            &mut Vec::new(),
            catalog,
            child_schemas,
            self.options,
            &mut agg_int,
            &mut fresh_states,
            &mut compiled,
        )?;
        if fresh_states.len() != self.states.len()
            || fresh_states.iter().any(|(path, st)| {
                self.states
                    .get(path)
                    .is_none_or(|old| std::mem::discriminant(old) != std::mem::discriminant(st))
            })
        {
            return Err(Error::Churn(format!(
                "subplan {:?} changed shape across re-cut; state cannot be kept in place",
                subplan.id
            )));
        }
        self.subplan = subplan.clone();
        self.agg_int = agg_int;
        self.compiled = compiled;
        Ok(())
    }

    /// Move all operator state out for transplant into successor executors
    /// (see [`StateBundle`]). This executor is left with fresh empty state —
    /// it stays runnable but has forgotten its history, so callers normally
    /// drop it afterwards. [`Error::Churn`] in [`ExecMode::Reference`]: the
    /// oracle datapath does not support state surgery.
    pub fn take_state_bundle(&mut self) -> Result<StateBundle> {
        if self.options.mode == ExecMode::Reference {
            return Err(churn_unsupported());
        }
        let states = std::mem::take(&mut self.states);
        for (path, keys) in &self.compiled.join_keys {
            let st = if self.options.partitioned() {
                OpState::PartJoin(PartitionedJoin::new(
                    self.options.partitions,
                    self.options.partition_threads,
                    keys,
                ))
            } else {
                OpState::Join(JoinState::new())
            };
            self.states.insert(path.clone(), st);
        }
        for (path, spec) in &self.compiled.agg_specs {
            let st = if self.options.partitioned() {
                OpState::PartAgg(PartitionedAgg::new(
                    self.options.partitions,
                    self.options.partition_threads,
                    spec,
                ))
            } else {
                OpState::Agg(AggState::new())
            };
            self.states.insert(path.clone(), st);
        }
        Ok(StateBundle { states })
    }

    /// Install transplanted operator state at matching tree paths, replacing
    /// this executor's (fresh) state there. Every carried path must exist in
    /// this executor with the same operator variant; paths this bundle does
    /// not carry keep their fresh empty state (new private operators of an
    /// admitted query start cold by design). [`Error::Churn`] on unknown
    /// paths, variant mismatches, or in [`ExecMode::Reference`].
    pub fn install_state_bundle(&mut self, bundle: StateBundle) -> Result<()> {
        if self.options.mode == ExecMode::Reference {
            return Err(churn_unsupported());
        }
        for (path, st) in bundle.states {
            match self.states.get_mut(&path) {
                Some(slot) if std::mem::discriminant(slot) == std::mem::discriminant(&st) => {
                    *slot = st;
                }
                Some(_) => {
                    return Err(Error::Churn(format!(
                        "transplanted state at path {path:?} has a different operator variant"
                    )));
                }
                None => {
                    return Err(Error::Churn(format!(
                        "transplanted state at path {path:?} has no stateful operator here"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Widen every stored state entry visible to `q_ref` with `q_new`'s bit,
    /// across all stateful operators. Called on surviving shared subplans
    /// when an admitted query reuses them: history the witness query `q_ref`
    /// can see becomes visible to `q_new` without replay. `q_new` must be a
    /// fresh bit (the sharer guarantees it), which makes widening injective —
    /// no two distinct masks become equal. [`Error::Churn`] in
    /// [`ExecMode::Reference`].
    pub fn widen_query(&mut self, q_ref: QueryId, q_new: QueryId) -> Result<()> {
        if self.options.mode == ExecMode::Reference {
            return Err(churn_unsupported());
        }
        for st in self.states.values_mut() {
            match st {
                OpState::Join(j) => j.widen_query(q_ref, q_new),
                OpState::PartJoin(p) => p.widen_query(q_ref, q_new),
                OpState::Agg(a) => a.widen_query(q_ref, q_new),
                OpState::PartAgg(p) => p.widen_query(q_ref, q_new),
                OpState::RefJoin(_) | OpState::RefAgg(_) => return Err(churn_unsupported()),
            }
        }
        Ok(())
    }

    /// Remove `q` from every stored state entry and GC entries whose mask
    /// goes empty, across all stateful operators. Returns the number of
    /// state entries reclaimed. Called on surviving subplans when a query is
    /// removed. [`Error::Churn`] in [`ExecMode::Reference`].
    pub fn retire_query(&mut self, q: QueryId) -> Result<usize> {
        if self.options.mode == ExecMode::Reference {
            return Err(churn_unsupported());
        }
        let mut reclaimed = 0usize;
        for st in self.states.values_mut() {
            reclaimed += match st {
                OpState::Join(j) => j.retire_query(q),
                OpState::PartJoin(p) => p.retire_query(q),
                OpState::Agg(a) => a.retire_query(q),
                OpState::PartAgg(p) => p.retire_query(q),
                OpState::RefJoin(_) | OpState::RefAgg(_) => return Err(churn_unsupported()),
            };
        }
        Ok(reclaimed)
    }

    /// The leaves the snapshot walk of [`Self::snapshot_output`] will read
    /// history from: leaves reachable from the root without crossing a
    /// stateful operator. Empty when a join/aggregate roots the spine (its
    /// state already nets everything below it); at most one entry otherwise,
    /// because stateless operators are unary.
    pub fn snapshot_leaf_dependencies(&self) -> Vec<(Vec<usize>, InputSource)> {
        let mut out = Vec::new();
        let mut t = &self.subplan.root;
        let mut path = Vec::new();
        loop {
            match &t.op {
                TreeOp::Input(src) => {
                    out.push((path.clone(), *src));
                    break;
                }
                TreeOp::Select { .. } | TreeOp::Project { .. } => {
                    path.push(0);
                    t = &t.inputs[0];
                }
                TreeOp::Join { .. } | TreeOp::Aggregate { .. } => break,
            }
        }
        out
    }

    /// Reconstruct this subplan's *net historical output* as seen by the
    /// witness query `q_ref`, re-masked to the admitted query `q_new` —
    /// the state handoff that lets a new query sharing this subplan skip
    /// replaying history.
    ///
    /// The walk descends the root spine to the topmost stateful operator and
    /// snapshots it — an aggregate's outstanding emitted pairs
    /// ([`AggState::snapshot_emitted`]) or a join's stored cross product
    /// ([`crate::join::JoinState::snapshot_product`]) — then re-runs the
    /// stateless operators *above* it over the snapshot with the normal
    /// kernels (charging `counter` as usual). Everything *below* the
    /// stateful operator is already netted into its state. If the spine is
    /// fully stateless, the history of its single leaf must be supplied in
    /// `leaf_history` (keyed by leaf path; see
    /// [`Self::snapshot_leaf_dependencies`]); witness-masked leaf rows are
    /// re-masked to `q_new` and pushed through the spine.
    ///
    /// Stateful-operator snapshots are canonicalized (sorted by encoded row,
    /// equal rows merged, zero weights dropped) before the spine re-run, so
    /// the result is independent of partition count and state insertion
    /// order. The caller must have [`Self::refresh_subplan`]-ed this
    /// executor first so `q_new` is in the subplan's query set and select
    /// branches. [`Error::Churn`] in [`ExecMode::Reference`].
    pub fn snapshot_output(
        &self,
        q_ref: QueryId,
        q_new: QueryId,
        leaf_history: &mut HashMap<Vec<usize>, DeltaBatch>,
        counter: &WorkCounter,
    ) -> Result<DeltaBatch> {
        if self.options.mode == ExecMode::Reference {
            return Err(churn_unsupported());
        }
        self.snap_node(&self.subplan.root, &mut Vec::new(), q_ref, q_new, leaf_history, counter)
    }

    fn snap_node(
        &self,
        t: &OpTree,
        path: &mut Vec<usize>,
        q_ref: QueryId,
        q_new: QueryId,
        leaf_history: &mut HashMap<Vec<usize>, DeltaBatch>,
        counter: &WorkCounter,
    ) -> Result<DeltaBatch> {
        match &t.op {
            TreeOp::Join { .. } => {
                let rows = match self.states.get(path.as_slice()) {
                    Some(OpState::Join(j)) => j.snapshot_product(q_ref, q_new),
                    Some(OpState::PartJoin(p)) => p.snapshot_product(q_ref, q_new),
                    Some(OpState::RefJoin(_)) | Some(OpState::RefAgg(_)) => {
                        return Err(churn_unsupported())
                    }
                    _ => {
                        return Err(Error::InvalidPlan(format!(
                            "missing join state at path {path:?}"
                        )))
                    }
                };
                Ok(DeltaBatch::from_rows(consolidate_snapshot(rows)))
            }
            TreeOp::Aggregate { .. } => {
                let rows = match self.states.get(path.as_slice()) {
                    Some(OpState::Agg(a)) => a.snapshot_emitted(q_ref, q_new),
                    Some(OpState::PartAgg(p)) => p.snapshot_emitted(q_ref, q_new),
                    Some(OpState::RefJoin(_)) | Some(OpState::RefAgg(_)) => {
                        return Err(churn_unsupported())
                    }
                    _ => {
                        return Err(Error::InvalidPlan(format!(
                            "missing aggregate state at path {path:?}"
                        )))
                    }
                };
                Ok(DeltaBatch::from_rows(consolidate_snapshot(rows)))
            }
            TreeOp::Select { branches } => {
                path.push(0);
                let input = self.snap_node(&t.inputs[0], path, q_ref, q_new, leaf_history, counter);
                path.pop();
                let preds = self.compiled.selects.get(path.as_slice()).ok_or_else(|| {
                    Error::InvalidPlan(format!("missing compiled select at path {path:?}"))
                })?;
                apply_select(input?, branches, preds, &self.weights, counter)
            }
            TreeOp::Project { .. } => {
                path.push(0);
                let input = self.snap_node(&t.inputs[0], path, q_ref, q_new, leaf_history, counter);
                path.pop();
                let proj = self.compiled.projects.get(path.as_slice()).ok_or_else(|| {
                    Error::InvalidPlan(format!("missing compiled project at path {path:?}"))
                })?;
                apply_project(input?, proj, &self.weights, counter)
            }
            TreeOp::Input(_) => {
                let batch = leaf_history.remove(path.as_slice()).unwrap_or_default();
                let mut witnessed = DeltaBatch::new();
                for dr in batch.rows {
                    if dr.mask.contains(q_ref) {
                        witnessed.push(DeltaRow {
                            row: dr.row,
                            weight: dr.weight,
                            mask: QuerySet::single(q_new),
                        });
                    }
                }
                Ok(narrow_input(&witnessed, self.subplan.queries, &self.weights, counter))
            }
        }
    }
}

fn churn_unsupported() -> Error {
    Error::Churn("reference-mode executors do not support state surgery".into())
}

/// Canonicalize a state snapshot: sort by (row, mask), merge equal entries
/// by summing weights, drop zeros. Makes the snapshot a pure function of
/// the stored state *set*, independent of partition count and insertion
/// order.
fn consolidate_snapshot(mut rows: Vec<DeltaRow>) -> Vec<DeltaRow> {
    rows.sort_by(|a, b| a.row.cmp(&b.row).then_with(|| a.mask.cmp(&b.mask)));
    let mut out: Vec<DeltaRow> = Vec::with_capacity(rows.len());
    for dr in rows {
        match out.last_mut() {
            Some(last) if last.row == dr.row && last.mask == dr.mask => last.weight += dr.weight,
            _ => out.push(dr),
        }
    }
    out.retain(|dr| dr.weight != 0);
    out
}

#[allow(clippy::too_many_arguments)]
fn exec_node(
    t: &OpTree,
    path: &mut Vec<usize>,
    inputs: &mut HashMap<Vec<usize>, DeltaBatch>,
    counter: &WorkCounter,
    mode: ExecMode,
    queries: QuerySet,
    weights: &CostWeights,
    agg_int: &HashMap<Vec<usize>, Vec<bool>>,
    states: &mut HashMap<Vec<usize>, OpState>,
    compiled: &CompiledOps,
) -> Result<DeltaBatch> {
    let child = |i: usize,
                 inputs: &mut HashMap<Vec<usize>, DeltaBatch>,
                 path: &mut Vec<usize>,
                 states: &mut HashMap<Vec<usize>, OpState>|
     -> Result<DeltaBatch> {
        path.push(i);
        let out = exec_node(
            &t.inputs[i],
            path,
            inputs,
            counter,
            mode,
            queries,
            weights,
            agg_int,
            states,
            compiled,
        );
        path.pop();
        out
    };
    match &t.op {
        TreeOp::Input(_) => {
            let batch = inputs.remove(path.as_slice()).unwrap_or_default();
            Ok(narrow_input(&batch, queries, weights, counter))
        }
        TreeOp::Select { branches } => {
            let input = child(0, inputs, path, states)?;
            match mode {
                ExecMode::Reference => ref_apply_select(input, branches, weights, counter),
                _ => {
                    let preds = compiled.selects.get(path.as_slice()).ok_or_else(|| {
                        Error::InvalidPlan(format!("missing compiled select at path {path:?}"))
                    })?;
                    apply_select(input, branches, preds, weights, counter)
                }
            }
        }
        TreeOp::Project { exprs } => {
            let input = child(0, inputs, path, states)?;
            match mode {
                ExecMode::Reference => ref_apply_project(input, exprs, weights, counter),
                _ => {
                    let proj = compiled.projects.get(path.as_slice()).ok_or_else(|| {
                        Error::InvalidPlan(format!("missing compiled project at path {path:?}"))
                    })?;
                    apply_project(input, proj, weights, counter)
                }
            }
        }
        TreeOp::Join { keys } => {
            let left = child(0, inputs, path, states)?;
            let right = child(1, inputs, path, states)?;
            match states.get_mut(path.as_slice()) {
                Some(OpState::Join(js)) => {
                    let ckeys = compiled.join_keys.get(path.as_slice()).ok_or_else(|| {
                        Error::InvalidPlan(format!("missing compiled join keys at path {path:?}"))
                    })?;
                    js.execute(left, right, ckeys, weights, counter)
                }
                Some(OpState::PartJoin(pj)) => {
                    let ckeys = compiled.join_keys.get(path.as_slice()).ok_or_else(|| {
                        Error::InvalidPlan(format!("missing compiled join keys at path {path:?}"))
                    })?;
                    pj.execute(left, right, ckeys, weights, counter)
                }
                Some(OpState::RefJoin(js)) => js.execute(left, right, keys, weights, counter),
                _ => Err(Error::InvalidPlan(format!("missing join state at path {path:?}"))),
            }
        }
        TreeOp::Aggregate { group_by, aggs } => {
            let input = child(0, inputs, path, states)?;
            let int_flags = agg_int.get(path.as_slice());
            let fallback;
            let int_flags = match int_flags {
                Some(f) => f.as_slice(),
                None => {
                    fallback = vec![false; aggs.len()];
                    fallback.as_slice()
                }
            };
            match states.get_mut(path.as_slice()) {
                Some(OpState::Agg(st)) => {
                    let spec = compiled.agg_specs.get(path.as_slice()).ok_or_else(|| {
                        Error::InvalidPlan(format!("missing compiled aggregate at path {path:?}"))
                    })?;
                    st.execute(input, spec, int_flags, weights, counter)
                }
                Some(OpState::PartAgg(pa)) => {
                    let spec = compiled.agg_specs.get(path.as_slice()).ok_or_else(|| {
                        Error::InvalidPlan(format!("missing compiled aggregate at path {path:?}"))
                    })?;
                    pa.execute(input, spec, int_flags, weights, counter)
                }
                Some(OpState::RefAgg(st)) => {
                    st.execute(input, group_by, aggs, int_flags, weights, counter)
                }
                _ => Err(Error::InvalidPlan(format!("missing aggregate state at path {path:?}"))),
            }
        }
    }
}

/// Union a base needed-column set with additional reads, sorted and
/// deduplicated (indices past a batch's arity are ignored downstream).
fn union_cols(base: &[usize], extra: impl IntoIterator<Item = usize>) -> Vec<usize> {
    let mut v: Vec<usize> = base.to_vec();
    v.extend(extra);
    v.sort_unstable();
    v.dedup();
    v
}

/// The vectorized twin of `exec_node`: carries a [`VecDelta`] between
/// operators instead of a row batch. Scans, selects, and projects stay
/// columnar (selection vectors, no survivor materialization); joins and
/// aggregates consume the columnar view directly when unpartitioned — the
/// partition exchange routes row batches, so partitioned operators (and any
/// ragged fallback) materialize first. Stateful operators always produce
/// row outputs, which downstream vectorized operators handle via
/// [`VecDelta::Rows`].
///
/// `needed` is the late-materialization contract between a node and its
/// parent: the columns of this node's *output* batch the parent will read
/// columnar. Each arm unions in its own columnar reads (predicate fast-path
/// columns, bare projection outputs, join key / aggregate group-arg
/// columns) before recursing — schema-preserving selects pass the parent's
/// set through, schema-changing ops start their children fresh — so the
/// `Input` arm converts exactly the columns some kernel above will touch.
/// Sentinel `needed` set: the parent consumes rows directly and no operator
/// in between reads columns, so the `Input` arm skips columnarization
/// entirely (a bare scan feeding a join would otherwise pay the
/// prune + backing + re-materialize detour just to save key-encode
/// dispatch — a net loss).
const NEEDED_ROWS: &[usize] = &[usize::MAX];

#[allow(clippy::too_many_arguments)]
fn exec_node_vec(
    t: &OpTree,
    path: &mut Vec<usize>,
    inputs: &mut HashMap<Vec<usize>, DeltaBatch>,
    counter: &WorkCounter,
    queries: QuerySet,
    weights: &CostWeights,
    agg_int: &HashMap<Vec<usize>, Vec<bool>>,
    states: &mut HashMap<Vec<usize>, OpState>,
    compiled: &CompiledOps,
    stats: &mut BatchStats,
    needed: &[usize],
) -> Result<VecDelta> {
    let child = |i: usize,
                 inputs: &mut HashMap<Vec<usize>, DeltaBatch>,
                 path: &mut Vec<usize>,
                 states: &mut HashMap<Vec<usize>, OpState>,
                 stats: &mut BatchStats,
                 needed: &[usize]|
     -> Result<VecDelta> {
        path.push(i);
        let out = exec_node_vec(
            &t.inputs[i],
            path,
            inputs,
            counter,
            queries,
            weights,
            agg_int,
            states,
            compiled,
            stats,
            needed,
        );
        path.pop();
        out
    };
    match &t.op {
        TreeOp::Input(_) => {
            let batch = inputs.remove(path.as_slice());
            if let Some(b) = &batch {
                stats.batches += 1;
                stats.rows += b.len() as u64;
            }
            let batch = batch.unwrap_or_default();
            // An empty `needed` set means no operator above reads a typed
            // column — every consumer works over (backing) rows or takes a
            // row fallback — so the columnar detour is at best break-even
            // and at worst doubles row materialization. Produce rows. Tiny
            // (churn-era) batches likewise can't amortize the columnar
            // setup allocations, so they stay rows too; every vectorized
            // operator handles `VecDelta::Rows` via its kernel fallback, so
            // the per-batch choice never affects results or charges.
            const MIN_COLUMNAR_BATCH: usize = 32;
            if needed == NEEDED_ROWS || needed.is_empty() || batch.len() < MIN_COLUMNAR_BATCH {
                return Ok(VecDelta::Rows(narrow_input(&batch, queries, weights, counter)));
            }
            Ok(narrow_columnar(&batch, queries, needed, weights, counter))
        }
        TreeOp::Select { branches } => {
            let preds = compiled.selects.get(path.as_slice()).ok_or_else(|| {
                Error::InvalidPlan(format!("missing compiled select at path {path:?}"))
            })?;
            // Selects pass the batch through unchanged, so the parent's
            // needed set still applies below — plus our own fast-path reads.
            let child_needed =
                union_cols(needed, preds.iter().filter_map(|p| p.fast_path_col()));
            let input = child(0, inputs, path, states, stats, &child_needed)?;
            let columnar = matches!(input, VecDelta::Cols { .. });
            let scanned = input.len();
            let out = select_columnar(input, branches, preds, weights, counter)?;
            if columnar {
                stats.scanned += scanned as u64;
                stats.kept += out.len() as u64;
            }
            Ok(out)
        }
        TreeOp::Project { .. } => {
            let proj = compiled.projects.get(path.as_slice()).ok_or_else(|| {
                Error::InvalidPlan(format!("missing compiled project at path {path:?}"))
            })?;
            // A non-identity projection emits a fresh batch, so the parent's
            // needed set refers to *our* output — but whether the runtime
            // identity fast path fires depends on the batch arity, so keep
            // the union: covers the pass-through case, and at worst
            // materializes a few extra columns for the rebuilt one.
            let child_needed = union_cols(needed, proj.input_cols());
            let input = child(0, inputs, path, states, stats, &child_needed)?;
            project_columnar(input, proj, weights, counter)
        }
        TreeOp::Join { .. } => {
            let ckeys = compiled.join_keys.get(path.as_slice()).ok_or_else(|| {
                Error::InvalidPlan(format!("missing compiled join keys at path {path:?}"))
            })?;
            // Join output is rows (materialized via backing), so the
            // parent's needed set ends here; each side needs its key
            // columns, and only when every key is a bare column — the same
            // eligibility test `execute_columnar` applies (a general key
            // falls back to encoding from materialized rows).
            let lneed: Vec<usize> =
                ckeys.side(false).map(|s| s.as_col()).collect::<Option<_>>().unwrap_or_default();
            let rneed: Vec<usize> =
                ckeys.side(true).map(|s| s.as_col()).collect::<Option<_>>().unwrap_or_default();
            // A bare scan feeding a join gains nothing from the columnar
            // detour (the join materializes rows anyway) — ask for rows.
            let lneed: &[usize] =
                if matches!(t.inputs[0].op, TreeOp::Input(_)) { NEEDED_ROWS } else { &lneed };
            let rneed: &[usize] =
                if matches!(t.inputs[1].op, TreeOp::Input(_)) { NEEDED_ROWS } else { &rneed };
            let left = child(0, inputs, path, states, stats, lneed)?;
            let right = child(1, inputs, path, states, stats, rneed)?;
            match states.get_mut(path.as_slice()) {
                Some(OpState::Join(js)) => match (left, right) {
                    (
                        VecDelta::Cols { batch: lb, sel: ls, masks: lm },
                        VecDelta::Cols { batch: rb, sel: rs, masks: rm },
                    ) => js
                        .execute_columnar(
                            ColsView { batch: &lb, sel: &ls, masks: &lm },
                            ColsView { batch: &rb, sel: &rs, masks: &rm },
                            ckeys,
                            weights,
                            counter,
                        )
                        .map(VecDelta::Rows),
                    (l, r) => js
                        .execute(l.into_rows(), r.into_rows(), ckeys, weights, counter)
                        .map(VecDelta::Rows),
                },
                Some(OpState::PartJoin(pj)) => pj
                    .execute(left.into_rows(), right.into_rows(), ckeys, weights, counter)
                    .map(VecDelta::Rows),
                _ => Err(Error::InvalidPlan(format!("missing join state at path {path:?}"))),
            }
        }
        TreeOp::Aggregate { aggs, .. } => {
            let spec = compiled.agg_specs.get(path.as_slice()).ok_or_else(|| {
                Error::InvalidPlan(format!("missing compiled aggregate at path {path:?}"))
            })?;
            // Aggregate output is rows; the child needs exactly the bare
            // group/arg columns — computed scalars read backing rows.
            let child_needed = spec.columnar_cols();
            let input = child(0, inputs, path, states, stats, &child_needed)?;
            let int_flags = agg_int.get(path.as_slice());
            let fallback;
            let int_flags = match int_flags {
                Some(f) => f.as_slice(),
                None => {
                    fallback = vec![false; aggs.len()];
                    fallback.as_slice()
                }
            };
            match states.get_mut(path.as_slice()) {
                Some(OpState::Agg(st)) => match input {
                    VecDelta::Cols { batch, sel, masks } => st
                        .execute_columnar(
                            ColsView { batch: &batch, sel: &sel, masks: &masks },
                            spec,
                            int_flags,
                            weights,
                            counter,
                        )
                        .map(VecDelta::Rows),
                    VecDelta::Rows(b) => {
                        st.execute(b, spec, int_flags, weights, counter).map(VecDelta::Rows)
                    }
                },
                Some(OpState::PartAgg(pa)) => pa
                    .execute(input.into_rows(), spec, int_flags, weights, counter)
                    .map(VecDelta::Rows),
                _ => Err(Error::InvalidPlan(format!("missing aggregate state at path {path:?}"))),
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn init_states(
    t: &OpTree,
    path: &mut Vec<usize>,
    catalog: &Catalog,
    child_schemas: &HashMap<SubplanId, Schema>,
    options: ExecOptions,
    agg_int: &mut HashMap<Vec<usize>, Vec<bool>>,
    states: &mut HashMap<Vec<usize>, OpState>,
    compiled: &mut CompiledOps,
) -> Result<()> {
    let mode = options.mode;
    match &t.op {
        TreeOp::Join { keys } => match mode {
            ExecMode::Reference => {
                states.insert(path.clone(), OpState::RefJoin(RefJoinState::new()));
            }
            _ => {
                let ckeys = JoinKeys::compile(keys);
                let state = if options.partitioned() {
                    OpState::PartJoin(PartitionedJoin::new(
                        options.partitions,
                        options.partition_threads,
                        &ckeys,
                    ))
                } else {
                    OpState::Join(JoinState::new())
                };
                compiled.join_keys.insert(path.clone(), ckeys);
                states.insert(path.clone(), state);
            }
        },
        TreeOp::Aggregate { group_by, aggs } => {
            let in_schema = t.inputs[0].schema(catalog, child_schemas)?;
            let mut flags = Vec::with_capacity(aggs.len());
            for a in aggs {
                let ty = ishare_expr::typecheck::infer_type(&a.arg, &in_schema)?;
                flags.push(ty == DataType::Int);
            }
            agg_int.insert(path.clone(), flags);
            match mode {
                ExecMode::Reference => {
                    states.insert(path.clone(), OpState::RefAgg(RefAggState::new()));
                }
                _ => {
                    let spec = AggSpec::compile(group_by, aggs);
                    let state = if options.partitioned() {
                        OpState::PartAgg(PartitionedAgg::new(
                            options.partitions,
                            options.partition_threads,
                            &spec,
                        ))
                    } else {
                        OpState::Agg(AggState::new())
                    };
                    compiled.agg_specs.insert(path.clone(), spec);
                    states.insert(path.clone(), state);
                }
            }
        }
        TreeOp::Select { branches } => {
            if mode != ExecMode::Reference {
                compiled.selects.insert(
                    path.clone(),
                    branches.iter().map(|b| CompiledPredicate::compile(&b.predicate)).collect(),
                );
            }
        }
        TreeOp::Project { exprs } => {
            if mode != ExecMode::Reference {
                let list: Vec<_> = exprs.iter().map(|(e, _)| e.clone()).collect();
                compiled.projects.insert(path.clone(), CompiledProjection::compile(&list));
            }
        }
        TreeOp::Input(_) => {}
    }
    for (i, child) in t.inputs.iter().enumerate() {
        path.push(i);
        init_states(child, path, catalog, child_schemas, options, agg_int, states, compiled)?;
    }
    path.pop();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{QueryId, Value};
    use ishare_expr::Expr;
    use ishare_plan::{AggExpr, AggFunc, SelectBranch};
    use ishare_storage::{consolidate, DeltaRow, Field, Row, TableStats};

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats::unknown(100.0, 2),
        )
        .unwrap();
        c.add_table(
            "u",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("w", DataType::Int)]),
            TableStats::unknown(100.0, 2),
        )
        .unwrap();
        c
    }

    /// select(v>2 for q1; all for q0) -> join(t,u on k) -> agg sum(w) by t.k
    fn sample_subplan(c: &Catalog) -> Subplan {
        let t = c.table_by_name("t").unwrap().id;
        let u = c.table_by_name("u").unwrap().id;
        let tree = OpTree::node(
            TreeOp::Aggregate {
                group_by: vec![(Expr::col(0), "k".into())],
                aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(3), "sw")],
            },
            vec![OpTree::node(
                TreeOp::Join { keys: vec![(Expr::col(0), Expr::col(0))] },
                vec![
                    OpTree::node(
                        TreeOp::Select {
                            branches: vec![
                                SelectBranch { queries: qs(&[0]), predicate: Expr::true_lit() },
                                SelectBranch {
                                    queries: qs(&[1]),
                                    predicate: Expr::col(1).gt(Expr::lit(2i64)),
                                },
                            ],
                        },
                        vec![OpTree::input(InputSource::Base(t))],
                    ),
                    OpTree::input(InputSource::Base(u)),
                ],
            )],
        );
        Subplan { id: SubplanId(0), root: tree, queries: qs(&[0, 1]), output_queries: qs(&[0, 1]) }
    }

    fn t_row(k: i64, v: i64) -> DeltaRow {
        DeltaRow { row: Row::new(vec![Value::Int(k), Value::Int(v)]), weight: 1, mask: qs(&[0, 1]) }
    }

    #[test]
    fn end_to_end_one_batch() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let mut ex =
            SubplanExecutor::new(&sp, &c, &HashMap::new(), CostWeights::default()).unwrap();
        assert_eq!(ex.mode(), ExecMode::Kernels, "kernels are the default datapath");
        let leaves = ex.leaf_paths();
        assert_eq!(leaves.len(), 2);
        let counter = WorkCounter::new();
        let mut inputs = HashMap::new();
        // t rows: (1, v=1) fails q1's filter; (1, v=5) passes both.
        inputs.insert(leaves[0].0.clone(), DeltaBatch::from_rows(vec![t_row(1, 1), t_row(1, 5)]));
        inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(vec![t_row(1, 100)]));
        let out = ex.execute(&mut inputs, &counter).unwrap();
        let cons = consolidate(out.rows);
        // q0 joined both t rows with u's row: sum = 200 (two matches × 100).
        // q1 joined only (1,5): sum = 100.
        assert_eq!(cons[&(Row::new(vec![Value::Int(1), Value::Int(200)]), qs(&[0]))], 1);
        assert_eq!(cons[&(Row::new(vec![Value::Int(1), Value::Int(100)]), qs(&[1]))], 1);
        assert!(counter.total().get() > 0.0);
    }

    #[test]
    fn incremental_matches_single_batch() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let weights = CostWeights::default();
        let counter = WorkCounter::new();

        let t_rows = vec![t_row(1, 1), t_row(1, 5), t_row(2, 9), t_row(2, 2)];
        let u_rows = vec![t_row(1, 10), t_row(2, 20), t_row(2, 30)];

        // One batch.
        let mut big = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
        let leaves = big.leaf_paths();
        let mut inputs = HashMap::new();
        inputs.insert(leaves[0].0.clone(), DeltaBatch::from_rows(t_rows.clone()));
        inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(u_rows.clone()));
        let batch_out = big.execute(&mut inputs, &counter).unwrap();

        // Four incremental executions with interleaved arrivals.
        let mut inc = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
        let mut acc = Vec::new();
        let steps: Vec<(Vec<DeltaRow>, Vec<DeltaRow>)> = vec![
            (vec![t_rows[0].clone()], vec![]),
            (vec![t_rows[1].clone(), t_rows[2].clone()], vec![u_rows[0].clone()]),
            (vec![], vec![u_rows[1].clone()]),
            (vec![t_rows[3].clone()], vec![u_rows[2].clone()]),
        ];
        for (ts, us) in steps {
            let mut inputs = HashMap::new();
            inputs.insert(leaves[0].0.clone(), DeltaBatch::from_rows(ts));
            inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(us));
            acc.extend(inc.execute(&mut inputs, &counter).unwrap().rows);
        }
        assert_eq!(consolidate(batch_out.rows), consolidate(acc));
    }

    #[test]
    fn eager_execution_costs_more() {
        // The paper's Fig. 1: more executions over the same data = more
        // total work, because aggregates retract and reinsert.
        let c = catalog();
        let sp = sample_subplan(&c);
        let weights = CostWeights::default();

        let t_rows: Vec<DeltaRow> = (0..40).map(|i| t_row(i % 4, i)).collect();
        let u_rows: Vec<DeltaRow> = (0..4).map(|k| t_row(k, 100)).collect();

        let work_of = |chunks: usize| {
            let mut ex = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
            let leaves = ex.leaf_paths();
            let counter = WorkCounter::new();
            let chunk = t_rows.len() / chunks;
            for i in 0..chunks {
                let mut inputs = HashMap::new();
                inputs.insert(
                    leaves[0].0.clone(),
                    DeltaBatch::from_rows(t_rows[i * chunk..(i + 1) * chunk].to_vec()),
                );
                if i == 0 {
                    inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(u_rows.clone()));
                }
                ex.execute(&mut inputs, &counter).unwrap();
            }
            counter.total().get()
        };
        let lazy = work_of(1);
        let eager = work_of(10);
        assert!(
            eager > lazy * 1.2,
            "eager ({eager}) must cost meaningfully more than lazy ({lazy})"
        );
    }

    #[test]
    fn missing_inputs_are_empty() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let mut ex =
            SubplanExecutor::new(&sp, &c, &HashMap::new(), CostWeights::default()).unwrap();
        let counter = WorkCounter::new();
        let out = ex.execute(&mut HashMap::new(), &counter).unwrap();
        assert!(out.is_empty());
        assert_eq!(ex.queries(), qs(&[0, 1]));
    }

    /// The partition exchange must be invisible: same output rows in the
    /// same order and bit-identical charges at every partition/thread
    /// count, across incremental executions with inserts and deletes —
    /// through a join AND an aggregate (different partition keys).
    #[test]
    fn partitioned_state_matches_unpartitioned_bitwise() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let weights = CostWeights::default();
        let steps: Vec<(Vec<DeltaRow>, Vec<DeltaRow>)> = vec![
            (vec![t_row(1, 1), t_row(2, 5), t_row(3, 8)], vec![t_row(1, 100), t_row(2, 50)]),
            (vec![t_row(4, 9), t_row(1, 3)], vec![t_row(3, 20), t_row(4, 7), t_row(1, 7)]),
            (
                vec![DeltaRow {
                    row: Row::new(vec![Value::Int(1), Value::Int(1)]),
                    weight: -1,
                    mask: qs(&[0, 1]),
                }],
                vec![],
            ),
            (vec![t_row(2, 4), t_row(5, 6)], vec![t_row(5, 11)]),
        ];
        let run = |options: ExecOptions| {
            let mut ex =
                SubplanExecutor::new_with_options(&sp, &c, &HashMap::new(), weights, options)
                    .unwrap();
            let leaves = ex.leaf_paths();
            let counter = WorkCounter::new();
            let mut outs = Vec::new();
            for (ts, us) in &steps {
                let mut inputs = HashMap::new();
                inputs.insert(leaves[0].0.clone(), DeltaBatch::from_rows(ts.clone()));
                inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(us.clone()));
                outs.push(ex.execute(&mut inputs, &counter).unwrap().rows);
            }
            (outs, counter.total().get(), counter.breakdown(), ex.partition_stats())
        };
        let (base_outs, base_total, base_breakdown, base_stats) = run(ExecOptions::default());
        assert!(base_stats.is_empty(), "unpartitioned executor reports no partition stats");
        for partitions in [2usize, 4, 8] {
            for threads in [1usize, 2] {
                let opts =
                    ExecOptions { mode: ExecMode::Kernels, partitions, partition_threads: threads };
                let (outs, total, breakdown, stats) = run(opts);
                assert_eq!(
                    outs, base_outs,
                    "outputs differ at {partitions} partitions, {threads} threads"
                );
                assert_eq!(
                    total.to_bits(),
                    base_total.to_bits(),
                    "total work differs at {partitions} partitions, {threads} threads"
                );
                for kind in ishare_common::OpKind::ALL {
                    assert_eq!(
                        breakdown.get(kind).to_bits(),
                        base_breakdown.get(kind).to_bits(),
                        "{kind} charges differ at {partitions} partitions"
                    );
                }
                assert_eq!(stats.len(), partitions);
                let routed: u64 = stats.iter().map(|s| s.rows).sum();
                assert!(routed > 0, "exchange must have routed rows");
                let split: f64 = stats.iter().map(|s| s.work).sum();
                assert!(split > 0.0, "partitions must have charged work");
            }
        }
    }

    /// The aggregate-rooted snapshot must equal the witness query's net
    /// accumulated output, re-masked to the admitted query.
    #[test]
    fn snapshot_output_matches_witness_history() {
        let c = catalog();
        let mut sp = sample_subplan(&c);
        let mut ex =
            SubplanExecutor::new(&sp, &c, &HashMap::new(), CostWeights::default()).unwrap();
        let leaves = ex.leaf_paths();
        let counter = WorkCounter::new();
        let mut acc = Vec::new();
        let steps: Vec<(Vec<DeltaRow>, Vec<DeltaRow>)> = vec![
            (vec![t_row(1, 1), t_row(1, 5), t_row(2, 9)], vec![t_row(1, 100)]),
            (vec![t_row(2, 3)], vec![t_row(2, 20), t_row(1, 7)]),
        ];
        for (ts, us) in steps {
            let mut inputs = HashMap::new();
            inputs.insert(leaves[0].0.clone(), DeltaBatch::from_rows(ts));
            inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(us));
            acc.extend(ex.execute(&mut inputs, &counter).unwrap().rows);
        }
        // Admit q2 with q0 as witness: widen the subplan description, then
        // snapshot. The agg roots the spine, so no leaf history is needed.
        sp.queries = qs(&[0, 1, 2]);
        ex.refresh_subplan(&sp, &c, &HashMap::new()).unwrap();
        assert!(ex.snapshot_leaf_dependencies().is_empty());
        let snap =
            ex.snapshot_output(QueryId(0), QueryId(2), &mut HashMap::new(), &counter).unwrap();
        // Expected: net history visible to q0, re-masked to {q2}.
        let mut expected = HashMap::new();
        for dr in acc {
            if dr.mask.contains(QueryId(0)) {
                *expected.entry(dr.row).or_insert(0i64) += dr.weight;
            }
        }
        expected.retain(|_, w| *w != 0);
        let got: HashMap<Row, i64> = snap
            .rows
            .iter()
            .map(|dr| {
                assert_eq!(dr.mask, qs(&[2]));
                (dr.row.clone(), dr.weight)
            })
            .collect();
        assert_eq!(got, expected);
        assert!(!got.is_empty());
        assert!(ex.state_rows() > 0);
    }

    /// A fully stateless subplan snapshots by pushing witness-masked leaf
    /// history through its own kernels.
    #[test]
    fn stateless_snapshot_replays_leaf_history() {
        let c = catalog();
        let t = c.table_by_name("t").unwrap().id;
        // Post-admission shape: q2 joined q0's (always-true) branch.
        let tree = OpTree::node(
            TreeOp::Select {
                branches: vec![
                    SelectBranch { queries: qs(&[0, 2]), predicate: Expr::true_lit() },
                    SelectBranch { queries: qs(&[1]), predicate: Expr::col(1).gt(Expr::lit(2i64)) },
                ],
            },
            vec![OpTree::input(InputSource::Base(t))],
        );
        let sp = Subplan {
            id: SubplanId(0),
            root: tree,
            queries: qs(&[0, 1, 2]),
            output_queries: qs(&[0, 1, 2]),
        };
        let ex = SubplanExecutor::new(&sp, &c, &HashMap::new(), CostWeights::default()).unwrap();
        let deps = ex.snapshot_leaf_dependencies();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].1, InputSource::Base(t));
        let mut hist = HashMap::new();
        hist.insert(deps[0].0.clone(), DeltaBatch::from_rows(vec![t_row(1, 1), t_row(2, 9)]));
        let counter = WorkCounter::new();
        let snap = ex.snapshot_output(QueryId(0), QueryId(2), &mut hist, &counter).unwrap();
        // q0's branch is always-true: both historical rows, re-masked {q2}.
        assert_eq!(snap.rows.len(), 2);
        assert!(snap.rows.iter().all(|dr| dr.mask == qs(&[2]) && dr.weight == 1));
        assert!(counter.total().get() > 0.0, "spine re-run charges work");
    }

    /// Transplanting state through a bundle must continue the stream
    /// bit-identically, and prefix extraction must re-root subtree state.
    #[test]
    fn state_bundle_transplant_preserves_stream() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let weights = CostWeights::default();
        let steps: Vec<(Vec<DeltaRow>, Vec<DeltaRow>)> = vec![
            (vec![t_row(1, 1), t_row(2, 5)], vec![t_row(1, 100)]),
            (vec![t_row(1, 3)], vec![t_row(2, 20)]),
            (vec![t_row(2, 8)], vec![t_row(1, 7)]),
        ];
        let run_step = |ex: &mut SubplanExecutor,
                        step: &(Vec<DeltaRow>, Vec<DeltaRow>),
                        counter: &WorkCounter| {
            let leaves = ex.leaf_paths();
            let mut inputs = HashMap::new();
            inputs.insert(leaves[0].0.clone(), DeltaBatch::from_rows(step.0.clone()));
            inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(step.1.clone()));
            ex.execute(&mut inputs, counter).unwrap().rows
        };
        let cc = WorkCounter::new();
        let mut control = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
        let mut control_out = Vec::new();
        for s in &steps {
            control_out.push(run_step(&mut control, s, &cc));
        }

        let tc = WorkCounter::new();
        let mut a = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
        let mut out = vec![run_step(&mut a, &steps[0], &tc), run_step(&mut a, &steps[1], &tc)];
        let rows_before = a.state_rows();
        let bundle = a.take_state_bundle().unwrap();
        assert_eq!(bundle.len(), 2, "agg at [] and join at [0]");
        assert_eq!(a.state_rows(), 0, "donor is left with fresh empty state");
        let mut b = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
        b.install_state_bundle(bundle).unwrap();
        assert_eq!(b.state_rows(), rows_before);
        out.push(run_step(&mut b, &steps[2], &tc));
        assert_eq!(out, control_out);
        assert_eq!(tc.total().get().to_bits(), cc.total().get().to_bits());
    }

    /// Splitting at the join: the extracted sub-bundle re-roots at [] and
    /// installs into an executor whose subplan is the join subtree.
    #[test]
    fn extract_prefix_moves_subtree_state() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let weights = CostWeights::default();
        let counter = WorkCounter::new();
        let mut ex = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
        let leaves = ex.leaf_paths();
        let mut inputs = HashMap::new();
        inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(vec![t_row(1, 100)]));
        ex.execute(&mut inputs, &counter).unwrap();

        let mut bundle = ex.take_state_bundle().unwrap();
        let sub = bundle.extract_prefix(&[0]);
        assert_eq!(sub.len(), 1, "join state re-rooted at []");
        assert_eq!(bundle.len(), 1, "agg state stays with the parent");

        let join_sp = Subplan {
            id: SubplanId(1),
            root: sp.root.inputs[0].clone(),
            queries: sp.queries,
            output_queries: sp.queries,
        };
        let mut jex = SubplanExecutor::new(&join_sp, &c, &HashMap::new(), weights).unwrap();
        jex.install_state_bundle(sub).unwrap();
        // The transplanted right side must join against a fresh left row.
        let jleaves = jex.leaf_paths();
        let mut inputs = HashMap::new();
        inputs.insert(jleaves[0].0.clone(), DeltaBatch::from_rows(vec![t_row(1, 5)]));
        let out = jex.execute(&mut inputs, &counter).unwrap();
        assert_eq!(out.rows.len(), 1, "probe matched the transplanted right row");
        assert_eq!(out.rows[0].mask, qs(&[0, 1]));
    }

    #[test]
    fn reference_mode_rejects_churn_ops() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let mut ex = SubplanExecutor::new_with_mode(
            &sp,
            &c,
            &HashMap::new(),
            CostWeights::default(),
            ExecMode::Reference,
        )
        .unwrap();
        let counter = WorkCounter::new();
        let msg = |e: Error| e.to_string();
        assert!(msg(ex.widen_query(QueryId(0), QueryId(2)).unwrap_err()).contains("churn"));
        assert!(msg(ex.retire_query(QueryId(1)).unwrap_err()).contains("churn"));
        assert!(msg(ex.take_state_bundle().unwrap_err()).contains("churn"));
        assert!(msg(ex.install_state_bundle(StateBundle::default()).unwrap_err()).contains("churn"));
        assert!(msg(ex
            .snapshot_output(QueryId(0), QueryId(2), &mut HashMap::new(), &counter)
            .unwrap_err())
        .contains("churn"));
    }

    /// The two datapaths must agree bit-for-bit: same output rows in the
    /// same order, same charged work to the last f64 bit, across multiple
    /// incremental executions with inserts and deletes.
    #[test]
    fn reference_mode_matches_kernels_bitwise() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let weights = CostWeights::default();

        let mut kern = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
        let mut refr =
            SubplanExecutor::new_with_mode(&sp, &c, &HashMap::new(), weights, ExecMode::Reference)
                .unwrap();
        let leaves = kern.leaf_paths();
        let kc = WorkCounter::new();
        let rc = WorkCounter::new();

        let steps: Vec<(Vec<DeltaRow>, Vec<DeltaRow>)> = vec![
            (vec![t_row(1, 1), t_row(1, 5)], vec![t_row(1, 100)]),
            (vec![t_row(2, 9)], vec![t_row(2, 20), t_row(1, 7)]),
            (
                vec![DeltaRow {
                    row: Row::new(vec![Value::Int(1), Value::Int(5)]),
                    weight: -1,
                    mask: qs(&[0, 1]),
                }],
                vec![],
            ),
        ];
        for (ts, us) in steps {
            let mut ki = HashMap::new();
            ki.insert(leaves[0].0.clone(), DeltaBatch::from_rows(ts.clone()));
            ki.insert(leaves[1].0.clone(), DeltaBatch::from_rows(us.clone()));
            let mut ri = HashMap::new();
            ri.insert(leaves[0].0.clone(), DeltaBatch::from_rows(ts));
            ri.insert(leaves[1].0.clone(), DeltaBatch::from_rows(us));
            let kout = kern.execute(&mut ki, &kc).unwrap();
            let rout = refr.execute(&mut ri, &rc).unwrap();
            assert_eq!(kout.rows, rout.rows, "outputs must match in order");
            assert_eq!(kc.total().get().to_bits(), rc.total().get().to_bits());
        }
    }

    #[test]
    fn vectorized_mode_matches_kernels_bitwise() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let weights = CostWeights::default();

        let mut kern = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
        let mut vect =
            SubplanExecutor::new_with_mode(&sp, &c, &HashMap::new(), weights, ExecMode::Vectorized)
                .unwrap();
        let leaves = kern.leaf_paths();
        let kc = WorkCounter::new();
        let vc = WorkCounter::new();

        let steps: Vec<(Vec<DeltaRow>, Vec<DeltaRow>)> = vec![
            (vec![t_row(1, 1), t_row(1, 5)], vec![t_row(1, 100)]),
            (vec![t_row(2, 9)], vec![t_row(2, 20), t_row(1, 7)]),
            (
                vec![DeltaRow {
                    row: Row::new(vec![Value::Int(1), Value::Int(5)]),
                    weight: -1,
                    mask: qs(&[0, 1]),
                }],
                vec![],
            ),
        ];
        for (ts, us) in steps {
            let mut ki = HashMap::new();
            ki.insert(leaves[0].0.clone(), DeltaBatch::from_rows(ts.clone()));
            ki.insert(leaves[1].0.clone(), DeltaBatch::from_rows(us.clone()));
            let mut vi = HashMap::new();
            vi.insert(leaves[0].0.clone(), DeltaBatch::from_rows(ts));
            vi.insert(leaves[1].0.clone(), DeltaBatch::from_rows(us));
            let kout = kern.execute(&mut ki, &kc).unwrap();
            let vout = vect.execute(&mut vi, &vc).unwrap();
            assert_eq!(kout.rows, vout.rows, "outputs must match in order");
            assert_eq!(kc.total().get().to_bits(), vc.total().get().to_bits());
            for kind in ishare_common::OpKind::ALL {
                assert_eq!(
                    kc.breakdown().get(kind).to_bits(),
                    vc.breakdown().get(kind).to_bits(),
                    "charge mismatch for {kind:?}"
                );
            }
        }
        let stats = vect.batch_stats();
        assert!(stats.batches > 0 && stats.rows > 0, "vectorized run must record batch stats");
        assert!(stats.scanned >= stats.kept);
        assert_eq!(kern.batch_stats(), crate::vectorized::BatchStats::default());
    }

    #[test]
    fn vectorized_partitioned_matches_unpartitioned_bitwise() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let weights = CostWeights::default();
        let mut plain =
            SubplanExecutor::new_with_mode(&sp, &c, &HashMap::new(), weights, ExecMode::Vectorized)
                .unwrap();
        let mut part = SubplanExecutor::new_with_options(
            &sp,
            &c,
            &HashMap::new(),
            weights,
            ExecOptions { mode: ExecMode::Vectorized, partitions: 4, partition_threads: 2 },
        )
        .unwrap();
        let leaves = plain.leaf_paths();
        let pc = WorkCounter::new();
        let qc = WorkCounter::new();
        let steps: Vec<(Vec<DeltaRow>, Vec<DeltaRow>)> = vec![
            (vec![t_row(1, 1), t_row(2, 5), t_row(3, 9)], vec![t_row(1, 100), t_row(3, 4)]),
            (vec![t_row(2, 9)], vec![t_row(2, 20), t_row(1, 7)]),
        ];
        for (ts, us) in steps {
            let mut pi = HashMap::new();
            pi.insert(leaves[0].0.clone(), DeltaBatch::from_rows(ts.clone()));
            pi.insert(leaves[1].0.clone(), DeltaBatch::from_rows(us.clone()));
            let mut qi = HashMap::new();
            qi.insert(leaves[0].0.clone(), DeltaBatch::from_rows(ts));
            qi.insert(leaves[1].0.clone(), DeltaBatch::from_rows(us));
            let pout = plain.execute(&mut pi, &pc).unwrap();
            let qout = part.execute(&mut qi, &qc).unwrap();
            assert_eq!(pout.rows, qout.rows, "partitioned vectorized must keep emission order");
            assert_eq!(pc.total().get().to_bits(), qc.total().get().to_bits());
        }
        assert!(!part.partition_stats().is_empty(), "partitioned ops must report stats");
    }
}
