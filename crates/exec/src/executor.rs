//! The subplan executor: runs one subplan's operator tree over one
//! incremental input batch, keeping join/aggregate state alive across
//! executions.
//!
//! The paced driver (`ishare-stream`) owns the buffers; for each incremental
//! execution it pulls the new deltas for every leaf of the tree and hands
//! them to [`SubplanExecutor::execute`], which returns the subplan's output
//! delta (to be materialized into the subplan's buffer, or consumed as final
//! query results).

use crate::aggregate::AggState;
use crate::join::JoinState;
use crate::operators::{apply_project, apply_select, narrow_input};
use ishare_common::{CostWeights, DataType, Error, QuerySet, Result, SubplanId, WorkCounter};
use ishare_plan::{InputSource, OpTree, Subplan, TreeOp};
use ishare_storage::{Catalog, DeltaBatch, Schema};
use std::collections::HashMap;

/// Stateful-operator state, keyed by tree path.
#[derive(Debug)]
enum OpState {
    Join(JoinState),
    Agg(AggState),
}

/// Executes one subplan incrementally, holding its operator state.
#[derive(Debug)]
pub struct SubplanExecutor {
    subplan: Subplan,
    weights: CostWeights,
    /// Per-aggregate-node flags: is each aggregate argument integer-typed?
    agg_int: HashMap<Vec<usize>, Vec<bool>>,
    states: HashMap<Vec<usize>, OpState>,
}

impl SubplanExecutor {
    /// Build an executor for `subplan`. `child_schemas` must contain the
    /// output schema of every child subplan referenced by the tree (see
    /// [`ishare_plan::SharedPlan::schemas`]).
    pub fn new(
        subplan: &Subplan,
        catalog: &Catalog,
        child_schemas: &HashMap<SubplanId, Schema>,
        weights: CostWeights,
    ) -> Result<Self> {
        let mut agg_int = HashMap::new();
        let mut states = HashMap::new();
        init_states(
            &subplan.root,
            &mut Vec::new(),
            catalog,
            child_schemas,
            &mut agg_int,
            &mut states,
        )?;
        Ok(SubplanExecutor { subplan: subplan.clone(), weights, agg_int, states })
    }

    /// The executed subplan.
    pub fn subplan(&self) -> &Subplan {
        &self.subplan
    }

    /// All leaves of the tree with their tree paths, in pre-order. The
    /// driver registers one buffer consumer per leaf (a self-join reads the
    /// same source through two leaves, each with its own cursor).
    pub fn leaf_paths(&self) -> Vec<(Vec<usize>, InputSource)> {
        let mut out = Vec::new();
        fn go(t: &OpTree, path: &mut Vec<usize>, out: &mut Vec<(Vec<usize>, InputSource)>) {
            if let TreeOp::Input(src) = &t.op {
                out.push((path.clone(), *src));
            }
            for (i, child) in t.inputs.iter().enumerate() {
                path.push(i);
                go(child, path, out);
                path.pop();
            }
        }
        go(&self.subplan.root, &mut Vec::new(), &mut out);
        out
    }

    /// Run one incremental execution. `inputs` maps leaf paths to the new
    /// deltas pulled from the corresponding buffers; missing entries mean no
    /// new data for that leaf. Returns the subplan's output delta.
    pub fn execute(
        &mut self,
        inputs: &mut HashMap<Vec<usize>, DeltaBatch>,
        counter: &WorkCounter,
    ) -> Result<DeltaBatch> {
        let root = self.subplan.root.clone();
        self.exec_node(&root, &mut Vec::new(), inputs, counter)
    }

    fn exec_node(
        &mut self,
        t: &OpTree,
        path: &mut Vec<usize>,
        inputs: &mut HashMap<Vec<usize>, DeltaBatch>,
        counter: &WorkCounter,
    ) -> Result<DeltaBatch> {
        match &t.op {
            TreeOp::Input(_) => {
                let batch = inputs.remove(path.as_slice()).unwrap_or_default();
                Ok(narrow_input(&batch, self.subplan.queries, &self.weights, counter))
            }
            TreeOp::Select { branches } => {
                path.push(0);
                let input = self.exec_node(&t.inputs[0], path, inputs, counter)?;
                path.pop();
                apply_select(input, branches, &self.weights, counter)
            }
            TreeOp::Project { exprs } => {
                path.push(0);
                let input = self.exec_node(&t.inputs[0], path, inputs, counter)?;
                path.pop();
                apply_project(input, exprs, &self.weights, counter)
            }
            TreeOp::Join { keys } => {
                path.push(0);
                let left = self.exec_node(&t.inputs[0], path, inputs, counter)?;
                path.pop();
                path.push(1);
                let right = self.exec_node(&t.inputs[1], path, inputs, counter)?;
                path.pop();
                let state = match self.states.get_mut(path.as_slice()) {
                    Some(OpState::Join(js)) => js,
                    _ => {
                        return Err(Error::InvalidPlan(format!(
                            "missing join state at path {path:?}"
                        )))
                    }
                };
                state.execute(left, right, keys, &self.weights, counter)
            }
            TreeOp::Aggregate { group_by, aggs } => {
                path.push(0);
                let input = self.exec_node(&t.inputs[0], path, inputs, counter)?;
                path.pop();
                let int_flags = self
                    .agg_int
                    .get(path.as_slice())
                    .cloned()
                    .unwrap_or_else(|| vec![false; aggs.len()]);
                let state = match self.states.get_mut(path.as_slice()) {
                    Some(OpState::Agg(st)) => st,
                    _ => {
                        return Err(Error::InvalidPlan(format!(
                            "missing aggregate state at path {path:?}"
                        )))
                    }
                };
                state.execute(input, group_by, aggs, &int_flags, &self.weights, counter)
            }
        }
    }

    /// The queries this subplan serves.
    pub fn queries(&self) -> QuerySet {
        self.subplan.queries
    }
}

fn init_states(
    t: &OpTree,
    path: &mut Vec<usize>,
    catalog: &Catalog,
    child_schemas: &HashMap<SubplanId, Schema>,
    agg_int: &mut HashMap<Vec<usize>, Vec<bool>>,
    states: &mut HashMap<Vec<usize>, OpState>,
) -> Result<()> {
    match &t.op {
        TreeOp::Join { .. } => {
            states.insert(path.clone(), OpState::Join(JoinState::new()));
        }
        TreeOp::Aggregate { aggs, .. } => {
            let in_schema = t.inputs[0].schema(catalog, child_schemas)?;
            let mut flags = Vec::with_capacity(aggs.len());
            for a in aggs {
                let ty = ishare_expr::typecheck::infer_type(&a.arg, &in_schema)?;
                flags.push(ty == DataType::Int);
            }
            agg_int.insert(path.clone(), flags);
            states.insert(path.clone(), OpState::Agg(AggState::new()));
        }
        _ => {}
    }
    for (i, child) in t.inputs.iter().enumerate() {
        path.push(i);
        init_states(child, path, catalog, child_schemas, agg_int, states)?;
    }
    path.pop();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{QueryId, Value};
    use ishare_expr::Expr;
    use ishare_plan::{AggExpr, AggFunc, SelectBranch};
    use ishare_storage::{consolidate, DeltaRow, Field, Row, TableStats};

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats::unknown(100.0, 2),
        )
        .unwrap();
        c.add_table(
            "u",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("w", DataType::Int)]),
            TableStats::unknown(100.0, 2),
        )
        .unwrap();
        c
    }

    /// select(v>2 for q1; all for q0) -> join(t,u on k) -> agg sum(w) by t.k
    fn sample_subplan(c: &Catalog) -> Subplan {
        let t = c.table_by_name("t").unwrap().id;
        let u = c.table_by_name("u").unwrap().id;
        let tree = OpTree::node(
            TreeOp::Aggregate {
                group_by: vec![(Expr::col(0), "k".into())],
                aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(3), "sw")],
            },
            vec![OpTree::node(
                TreeOp::Join { keys: vec![(Expr::col(0), Expr::col(0))] },
                vec![
                    OpTree::node(
                        TreeOp::Select {
                            branches: vec![
                                SelectBranch { queries: qs(&[0]), predicate: Expr::true_lit() },
                                SelectBranch {
                                    queries: qs(&[1]),
                                    predicate: Expr::col(1).gt(Expr::lit(2i64)),
                                },
                            ],
                        },
                        vec![OpTree::input(InputSource::Base(t))],
                    ),
                    OpTree::input(InputSource::Base(u)),
                ],
            )],
        );
        Subplan { id: SubplanId(0), root: tree, queries: qs(&[0, 1]), output_queries: qs(&[0, 1]) }
    }

    fn t_row(k: i64, v: i64) -> DeltaRow {
        DeltaRow { row: Row::new(vec![Value::Int(k), Value::Int(v)]), weight: 1, mask: qs(&[0, 1]) }
    }

    #[test]
    fn end_to_end_one_batch() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let mut ex =
            SubplanExecutor::new(&sp, &c, &HashMap::new(), CostWeights::default()).unwrap();
        let leaves = ex.leaf_paths();
        assert_eq!(leaves.len(), 2);
        let counter = WorkCounter::new();
        let mut inputs = HashMap::new();
        // t rows: (1, v=1) fails q1's filter; (1, v=5) passes both.
        inputs.insert(leaves[0].0.clone(), DeltaBatch::from_rows(vec![t_row(1, 1), t_row(1, 5)]));
        inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(vec![t_row(1, 100)]));
        let out = ex.execute(&mut inputs, &counter).unwrap();
        let cons = consolidate(out.rows);
        // q0 joined both t rows with u's row: sum = 200 (two matches × 100).
        // q1 joined only (1,5): sum = 100.
        assert_eq!(cons[&(Row::new(vec![Value::Int(1), Value::Int(200)]), qs(&[0]))], 1);
        assert_eq!(cons[&(Row::new(vec![Value::Int(1), Value::Int(100)]), qs(&[1]))], 1);
        assert!(counter.total().get() > 0.0);
    }

    #[test]
    fn incremental_matches_single_batch() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let weights = CostWeights::default();
        let counter = WorkCounter::new();

        let t_rows = vec![t_row(1, 1), t_row(1, 5), t_row(2, 9), t_row(2, 2)];
        let u_rows = vec![t_row(1, 10), t_row(2, 20), t_row(2, 30)];

        // One batch.
        let mut big = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
        let leaves = big.leaf_paths();
        let mut inputs = HashMap::new();
        inputs.insert(leaves[0].0.clone(), DeltaBatch::from_rows(t_rows.clone()));
        inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(u_rows.clone()));
        let batch_out = big.execute(&mut inputs, &counter).unwrap();

        // Four incremental executions with interleaved arrivals.
        let mut inc = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
        let mut acc = Vec::new();
        let steps: Vec<(Vec<DeltaRow>, Vec<DeltaRow>)> = vec![
            (vec![t_rows[0].clone()], vec![]),
            (vec![t_rows[1].clone(), t_rows[2].clone()], vec![u_rows[0].clone()]),
            (vec![], vec![u_rows[1].clone()]),
            (vec![t_rows[3].clone()], vec![u_rows[2].clone()]),
        ];
        for (ts, us) in steps {
            let mut inputs = HashMap::new();
            inputs.insert(leaves[0].0.clone(), DeltaBatch::from_rows(ts));
            inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(us));
            acc.extend(inc.execute(&mut inputs, &counter).unwrap().rows);
        }
        assert_eq!(consolidate(batch_out.rows), consolidate(acc));
    }

    #[test]
    fn eager_execution_costs_more() {
        // The paper's Fig. 1: more executions over the same data = more
        // total work, because aggregates retract and reinsert.
        let c = catalog();
        let sp = sample_subplan(&c);
        let weights = CostWeights::default();

        let t_rows: Vec<DeltaRow> = (0..40).map(|i| t_row(i % 4, i)).collect();
        let u_rows: Vec<DeltaRow> = (0..4).map(|k| t_row(k, 100)).collect();

        let work_of = |chunks: usize| {
            let mut ex = SubplanExecutor::new(&sp, &c, &HashMap::new(), weights).unwrap();
            let leaves = ex.leaf_paths();
            let counter = WorkCounter::new();
            let chunk = t_rows.len() / chunks;
            for i in 0..chunks {
                let mut inputs = HashMap::new();
                inputs.insert(
                    leaves[0].0.clone(),
                    DeltaBatch::from_rows(t_rows[i * chunk..(i + 1) * chunk].to_vec()),
                );
                if i == 0 {
                    inputs.insert(leaves[1].0.clone(), DeltaBatch::from_rows(u_rows.clone()));
                }
                ex.execute(&mut inputs, &counter).unwrap();
            }
            counter.total().get()
        };
        let lazy = work_of(1);
        let eager = work_of(10);
        assert!(
            eager > lazy * 1.2,
            "eager ({eager}) must cost meaningfully more than lazy ({lazy})"
        );
    }

    #[test]
    fn missing_inputs_are_empty() {
        let c = catalog();
        let sp = sample_subplan(&c);
        let mut ex =
            SubplanExecutor::new(&sp, &c, &HashMap::new(), CostWeights::default()).unwrap();
        let counter = WorkCounter::new();
        let out = ex.execute(&mut HashMap::new(), &counter).unwrap();
        assert!(out.is_empty());
        assert_eq!(ex.queries(), qs(&[0, 1]));
    }
}
