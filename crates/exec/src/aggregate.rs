//! Incremental shared group-by aggregation — datapath-kernel implementation.
//!
//! Every group's state is a set of *disjoint query-mask classes*; a class
//! holds one accumulator per aggregate column covering exactly the input
//! tuples whose mask contains the class's bits. When all tuples of a group
//! carry the same mask (the common, fully shared case) there is exactly one
//! class and the accumulator is genuinely shared. When marking selects
//! upstream give tuples different masks, partition refinement splits classes
//! so that each query's aggregate stays correct.
//!
//! Emission implements the paper's delete amplification: after each
//! incremental execution, a touched group retracts its previously emitted
//! output rows and inserts the new ones (identical pairs cancel and are not
//! emitted). This retract+insert churn is exactly why eager incremental
//! execution of aggregates wastes work (Fig. 1 / Sec. 1).
//!
//! MIN/MAX accumulators keep the full value multiset; deleting the current
//! extremum triggers a rescan charged at `minmax_rescan × multiset size` —
//! the paper's "if a max value is deleted, the max operator needs to rescan
//! all arrived values" (Sec. 5.3, Q15).
//!
//! Kernel datapath vs. [`crate::reference::RefAggState`]: group keys are
//! [`KeyBuf`]-encoded into a [`FlatTable`] (no `Vec<Value>` hashing, no
//! SipHash); group-by and aggregate-argument expressions are pre-compiled
//! [`CompiledScalar`]s in an [`AggSpec`]; the per-execution touched set is an
//! epoch stamp on the group instead of a `HashSet<Vec<Value>>`; and
//! `AggUpdate`/`AggEmit` work is charged once per batch (bit-identical to the
//! reference's per-tuple charges because the default weights are dyadic).
//! Flush order is first-touch order in both datapaths, and each touched
//! group's output key uses the value representation produced by the row that
//! first touched it *this execution* — both properties the reference also
//! has, and both load-bearing for bit-identical results. `MinmaxRescan`
//! stays charged per event: its unit count depends on mutable state, so it
//! cannot be batched without changing observable totals on error paths.

use crate::flat::FlatTable;
use ishare_common::{
    CostWeights, Error, FxHashMap, KeyBuf, OpKind, QueryId, QuerySet, Result, StrInterner, Value,
    WorkCounter,
};
use ishare_expr::compile::CompiledScalar;
use ishare_expr::Expr;
use ishare_plan::{AggExpr, AggFunc};
use ishare_storage::{DeltaBatch, DeltaRow, Row};

/// One aggregate accumulator.
#[derive(Debug, Clone)]
pub enum Accumulator {
    /// SUM — integer-exact when the argument is an integer column.
    Sum {
        /// Argument type is integer (output stays `Value::Int`).
        int: bool,
        /// Integer sum (valid when `int`).
        sum_i: i64,
        /// Float sum (valid when `!int`).
        sum_f: f64,
        /// Weighted count of non-NULL contributions (SUM of nothing is NULL).
        nonnull: i64,
    },
    /// COUNT of non-NULL arguments.
    Count {
        /// Weighted count.
        count: i64,
    },
    /// AVG maintained as sum + count.
    Avg {
        /// Weighted sum.
        sum: f64,
        /// Weighted count of non-NULL contributions.
        count: i64,
    },
    /// MIN or MAX over a stored multiset.
    MinMax {
        /// `true` for MIN.
        min: bool,
        /// Value multiset (value → net weight). Deterministically hashed;
        /// only ever read via `keys().min()/max()`, which is order-free.
        values: FxHashMap<Value, i64>,
        /// Cached extremum.
        cached: Option<Value>,
        /// Monotone count of values ever inserted. A rescan after deleting
        /// the extremum is charged against *all arrived values* — the
        /// paper's Sec. 5.3: "the max operator needs to rescan all arrived
        /// values to find the new max one" — which is what makes MIN/MAX
        /// genuinely non-incrementable under churn.
        arrived: i64,
    },
}

impl Accumulator {
    /// Fresh accumulator for an aggregate column; `int` says whether the
    /// argument is integer-typed (affects SUM's output type).
    pub fn new(func: AggFunc, int: bool) -> Accumulator {
        match func {
            AggFunc::Sum => Accumulator::Sum { int, sum_i: 0, sum_f: 0.0, nonnull: 0 },
            AggFunc::Count => Accumulator::Count { count: 0 },
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => Accumulator::MinMax {
                min: true,
                values: FxHashMap::default(),
                cached: None,
                arrived: 0,
            },
            AggFunc::Max => Accumulator::MinMax {
                min: false,
                values: FxHashMap::default(),
                cached: None,
                arrived: 0,
            },
        }
    }

    /// Fold one weighted value in. NULLs are ignored (SQL aggregate
    /// semantics). Charges MIN/MAX rescans to `counter`.
    pub fn update(
        &mut self,
        v: &Value,
        w: i64,
        weights: &CostWeights,
        counter: &WorkCounter,
    ) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        match self {
            Accumulator::Sum { int, sum_i, sum_f, nonnull } => {
                if *int {
                    let x = v.as_i64().ok_or_else(|| type_err("sum", v))?;
                    *sum_i += x * w;
                } else {
                    let x = v.as_f64().ok_or_else(|| type_err("sum", v))?;
                    *sum_f += x * w as f64;
                }
                *nonnull += w;
            }
            Accumulator::Count { count } => *count += w,
            Accumulator::Avg { sum, count } => {
                let x = v.as_f64().ok_or_else(|| type_err("avg", v))?;
                *sum += x * w as f64;
                *count += w;
            }
            Accumulator::MinMax { min, values, cached, arrived } => {
                let entry = values.entry(v.clone()).or_insert(0);
                *entry += w;
                let now = *entry;
                if now == 0 {
                    values.remove(v);
                }
                if now < 0 {
                    return Err(Error::InvalidDelta(format!(
                        "MIN/MAX multiset went negative for value {v}"
                    )));
                }
                if w > 0 {
                    *arrived += w;
                }
                if w > 0 && now > 0 {
                    // Insertion may improve the extremum — O(1).
                    let better = match cached {
                        None => true,
                        Some(c) => {
                            if *min {
                                v < c
                            } else {
                                v > c
                            }
                        }
                    };
                    if better {
                        *cached = Some(v.clone());
                    }
                } else if now == 0 && cached.as_ref() == Some(v) {
                    // The extremum was deleted: find the new one. The engine
                    // charges the rescan against all arrived values (paper
                    // Sec. 5.3) — the cost a log-backed IVM engine pays.
                    counter.charge(
                        OpKind::MinmaxRescan,
                        weights.minmax_rescan,
                        (*arrived).max(0) as usize,
                    );
                    *cached = if *min {
                        values.keys().min().cloned()
                    } else {
                        values.keys().max().cloned()
                    };
                }
            }
        }
        Ok(())
    }

    /// Current aggregate value.
    pub fn value(&self) -> Value {
        match self {
            Accumulator::Sum { int, sum_i, sum_f, nonnull } => {
                if *nonnull == 0 {
                    Value::Null
                } else if *int {
                    Value::Int(*sum_i)
                } else {
                    Value::Float(*sum_f)
                }
            }
            Accumulator::Count { count } => Value::Int(*count),
            Accumulator::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum / *count as f64)
                }
            }
            Accumulator::MinMax { cached, .. } => cached.clone().unwrap_or(Value::Null),
        }
    }
}

fn type_err(what: &str, v: &Value) -> Error {
    Error::TypeMismatch(format!("{what} over non-numeric value {v}"))
}

/// Compiled aggregate operator: group-by scalars plus per-aggregate
/// `(function, argument scalar)` pairs, lowered once at plan setup.
#[derive(Debug, Clone)]
pub struct AggSpec {
    group_by: Vec<CompiledScalar>,
    funcs: Vec<AggFunc>,
    args: Vec<CompiledScalar>,
}

impl AggSpec {
    /// The input columns the columnar update path reads from typed columns:
    /// every group key or aggregate argument that is a bare column. Computed
    /// scalars evaluate over backing rows and need no materialized column,
    /// so they simply don't appear here; the executor's late-materialization
    /// analysis feeds this to `ColumnarBatch::from_rows_pruned`.
    pub(crate) fn columnar_cols(&self) -> Vec<usize> {
        self.group_by.iter().chain(&self.args).filter_map(CompiledScalar::as_col).collect()
    }

    /// Lower the planner's group-by and aggregate expressions.
    pub fn compile(group_by: &[(Expr, String)], aggs: &[AggExpr]) -> AggSpec {
        AggSpec {
            group_by: group_by.iter().map(|(e, _)| CompiledScalar::compile(e)).collect(),
            funcs: aggs.iter().map(|a| a.func).collect(),
            args: aggs.iter().map(|a| CompiledScalar::compile(&a.arg)).collect(),
        }
    }

    /// Partition-key extractor over the group-by scalars — the exchange
    /// routes rows by evaluating exactly what the state groups by, so a
    /// group's rows always share a partition.
    pub fn group_extractor(&self) -> ishare_expr::KeyExtractor {
        ishare_expr::KeyExtractor::new(self.group_by.clone())
    }
}

/// Per-touched-group flush records of one aggregate execution, in flush
/// (= first-touch) order: `(first_touch_row, emits)` where `first_touch_row`
/// is the batch index of the row that first touched the group this execution
/// and `emits` is how many output rows the group's flush produced. Groups
/// partition disjointly by key, so each partition's flush order is a
/// subsequence of the sequential one; merging partition outputs ascending by
/// `first_touch_row` reconstructs the exact sequential emission order.
#[derive(Debug, Default)]
pub struct AggTrace {
    /// `(first_touch_row, emits)` per touched group, in flush order.
    pub groups: Vec<(u32, u32)>,
}

/// One disjoint query-mask class within a group.
#[derive(Debug, Clone)]
struct ClassState {
    mask: QuerySet,
    /// Net weight of input rows attributed to this class.
    rows: i64,
    accums: Vec<Accumulator>,
}

/// Per-group state: mask classes plus the output rows currently outstanding
/// downstream (needed to emit exact retractions).
#[derive(Debug, Default)]
struct GroupState {
    classes: Vec<ClassState>,
    emitted: Vec<(QuerySet, Row)>,
    /// Execution epoch that last touched this group — replaces the
    /// reference's per-execution `HashSet<Vec<Value>>` membership test.
    touched_at: u64,
}

/// Persistent state of one aggregate operator across incremental executions.
#[derive(Debug, Default)]
pub struct AggState {
    groups: FlatTable<GroupState>,
    interner: StrInterner,
    scratch: KeyBuf,
    epoch: u64,
}

impl AggState {
    /// Fresh empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live groups (state-size diagnostics).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Run one incremental execution.
    ///
    /// `agg_int[i]` says whether aggregate `i`'s argument is integer-typed.
    pub fn execute(
        &mut self,
        input: DeltaBatch,
        spec: &AggSpec,
        agg_int: &[bool],
        weights: &CostWeights,
        counter: &WorkCounter,
    ) -> Result<DeltaBatch> {
        self.execute_traced(input, spec, agg_int, weights, counter, None)
    }

    /// [`Self::execute`] that additionally records per-touched-group flush
    /// records into `trace` (cleared first). The traced and untraced paths
    /// are byte-for-byte the same computation.
    pub fn execute_traced(
        &mut self,
        input: DeltaBatch,
        spec: &AggSpec,
        agg_int: &[bool],
        weights: &CostWeights,
        counter: &WorkCounter,
        mut trace: Option<&mut AggTrace>,
    ) -> Result<DeltaBatch> {
        if let Some(t) = trace.as_deref_mut() {
            t.groups.clear();
        }
        self.epoch += 1;
        let epoch = self.epoch;
        counter.charge(
            OpKind::AggUpdate,
            weights.agg_update,
            input.rows.len() * spec.funcs.len().max(1),
        );
        // First-touch order, not map order: flush order must be a pure
        // function of the input stream so executions are reproducible and
        // thread-count independent (the parallel driver's bit-identical
        // work-unit guarantee relies on it). The key values captured here
        // are the ones the first-touching row evaluated to — the output-row
        // representation, matching the reference exactly.
        let mut touched: Vec<(u32, Vec<Value>, u32)> = Vec::new();
        let mut key_vals: Vec<Value> = Vec::with_capacity(spec.group_by.len());
        for (i, dr) in input.rows.iter().enumerate() {
            key_vals.clear();
            for g in &spec.group_by {
                key_vals.push(g.eval(dr.row.values())?);
            }
            self.scratch.clear();
            for v in &key_vals {
                self.scratch.push_value(v, &mut self.interner);
            }
            let id = self.groups.id_or_insert_with(self.scratch.as_words(), GroupState::default);
            let group = self.groups.get_by_id_mut(id).expect("live group");
            if group.touched_at != epoch {
                group.touched_at = epoch;
                touched.push((id, key_vals.clone(), i as u32));
            }
            refine_classes(group, dr.mask, spec, agg_int);
            for class in &mut group.classes {
                if class.mask.is_subset_of(dr.mask) {
                    class.rows += dr.weight;
                    for (acc, arg) in class.accums.iter_mut().zip(&spec.args) {
                        match arg.eval_ref(dr.row.values())? {
                            Ok(v) => acc.update(v, dr.weight, weights, counter)?,
                            Err(v) => acc.update(&v, dr.weight, weights, counter)?,
                        }
                    }
                }
            }
        }

        self.flush_touched(touched, weights, counter, trace)
    }

    /// Columnar-input execution for `ExecMode::Vectorized`. Every group-by
    /// and argument scalar gets a per-scalar source: a bare in-bounds column
    /// is read straight from the typed column; anything else (computed
    /// expressions like TPC-H's `price * (1 - discount)`, or an
    /// out-of-bounds column reference) evaluates the same compiled program
    /// over the batch's rows — backing rows when present, a scratch row
    /// otherwise — producing the same values *and the same errors* as the
    /// row path. When all group keys are columns, the per-group key
    /// `Vec<Value>` is materialized *lazily*, only on a group's first touch,
    /// instead of once per input row; with a computed key the row path's
    /// eval-keys-first order is kept so interner mutations line up. Flush
    /// logic, emission order, and charges are shared with
    /// [`Self::execute_traced`], so outputs are bit-identical.
    pub fn execute_columnar(
        &mut self,
        view: crate::vectorized::ColsView<'_>,
        spec: &AggSpec,
        agg_int: &[bool],
        weights: &CostWeights,
        counter: &WorkCounter,
    ) -> Result<DeltaBatch> {
        let arity = view.batch.arity();
        let group_src: Vec<Option<usize>> =
            spec.group_by.iter().map(|s| s.as_col().filter(|&c| c < arity)).collect();
        let arg_src: Vec<Option<usize>> =
            spec.args.iter().map(|s| s.as_col().filter(|&c| c < arity)).collect();
        let lazy_keys = group_src.iter().all(Option::is_some);
        let needs_rows = !lazy_keys || arg_src.iter().any(Option::is_none);
        let backing = view.batch.backing_rows();
        self.epoch += 1;
        let epoch = self.epoch;
        counter.charge(OpKind::AggUpdate, weights.agg_update, view.len() * spec.funcs.len().max(1));
        let mut touched: Vec<(u32, Vec<Value>, u32)> = Vec::new();
        let mut scratch_row: Vec<Value> = Vec::new();
        let mut key_vals: Vec<Value> = Vec::with_capacity(spec.group_by.len());
        for (j, (&i, &mask)) in view.sel.iter().zip(view.masks).enumerate() {
            let i = i as usize;
            let row_vals: Option<&[Value]> = if needs_rows {
                Some(match backing {
                    Some(rows) => rows[i].values(),
                    None => {
                        scratch_row.clear();
                        for c in &view.batch.columns {
                            scratch_row.push(c.value_at(i));
                        }
                        &scratch_row
                    }
                })
            } else {
                None
            };
            self.scratch.clear();
            if lazy_keys {
                for s in &group_src {
                    let c = s.expect("lazy_keys implies all columns");
                    self.scratch.push_value(&view.batch.columns[c].value_at(i), &mut self.interner);
                }
            } else {
                let rv = row_vals.expect("computed key implies needs_rows");
                key_vals.clear();
                for (g, src) in spec.group_by.iter().zip(&group_src) {
                    key_vals.push(match src {
                        Some(c) => view.batch.columns[*c].value_at(i),
                        None => g.eval(rv)?,
                    });
                }
                for v in &key_vals {
                    self.scratch.push_value(v, &mut self.interner);
                }
            }
            let id = self.groups.id_or_insert_with(self.scratch.as_words(), GroupState::default);
            let group = self.groups.get_by_id_mut(id).expect("live group");
            if group.touched_at != epoch {
                group.touched_at = epoch;
                let kv = if lazy_keys {
                    group_src
                        .iter()
                        .map(|s| view.batch.columns[s.expect("lazy keys")].value_at(i))
                        .collect()
                } else {
                    key_vals.clone()
                };
                touched.push((id, kv, j as u32));
            }
            let weight = view.batch.weights[i];
            refine_classes(group, mask, spec, agg_int);
            for class in &mut group.classes {
                if class.mask.is_subset_of(mask) {
                    class.rows += weight;
                    for ((acc, arg), src) in
                        class.accums.iter_mut().zip(&spec.args).zip(&arg_src)
                    {
                        match src {
                            Some(c) => acc.update(
                                &view.batch.columns[*c].value_at(i),
                                weight,
                                weights,
                                counter,
                            )?,
                            None => match arg.eval_ref(row_vals.expect("computed arg"))? {
                                Ok(v) => acc.update(v, weight, weights, counter)?,
                                Err(v) => acc.update(&v, weight, weights, counter)?,
                            },
                        }
                    }
                }
            }
        }
        self.flush_touched(touched, weights, counter, None)
    }

    /// Flush: per touched group, retract stale output rows and emit new
    /// ones (unchanged pairs cancel). Shared verbatim by the row and
    /// columnar update loops — the flush is where emission order and
    /// `AggEmit` charges are decided, so sharing it is what makes the two
    /// datapaths bit-identical.
    fn flush_touched(
        &mut self,
        touched: Vec<(u32, Vec<Value>, u32)>,
        weights: &CostWeights,
        counter: &WorkCounter,
        mut trace: Option<&mut AggTrace>,
    ) -> Result<DeltaBatch> {
        let mut out = DeltaBatch::new();
        let mut emit_units = 0usize;
        let mut canceled: Vec<bool> = Vec::new();
        for (id, key, first_row) in touched {
            let flush_start = out.len();
            let group = self.groups.get_by_id_mut(id).expect("touched group exists");
            for class in &group.classes {
                if class.rows < 0 {
                    return Err(Error::InvalidDelta(format!(
                        "group {key:?} class {} retracted below zero",
                        class.mask
                    )));
                }
            }
            let mut new_pairs: Vec<(QuerySet, Row)> =
                Vec::with_capacity(group.classes.iter().filter(|c| c.rows > 0).count());
            for c in group.classes.iter().filter(|c| c.rows > 0) {
                let mut vals = Vec::with_capacity(key.len() + c.accums.len());
                vals.extend(key.iter().cloned());
                vals.extend(c.accums.iter().map(|a| a.value()));
                new_pairs.push((c.mask, Row::new(vals)));
            }

            // Order-preserving diff: retract stale pairs first (in emitted
            // order), then insert fresh ones (in class order). Pairs within
            // a group are unique — class masks are disjoint — so an old pair
            // cancels against at most one identical new pair, and old rows
            // can be moved straight into the retraction deltas. Groups emit
            // a handful of rows, so linear matching beats hashing and keeps
            // emission order deterministic.
            let old_pairs = std::mem::take(&mut group.emitted);
            canceled.clear();
            canceled.resize(new_pairs.len(), false);
            for (m, r) in old_pairs {
                match new_pairs.iter().position(|(nm, nr)| *nm == m && *nr == r) {
                    Some(i) => canceled[i] = true,
                    None => {
                        emit_units += 1;
                        out.push(DeltaRow { row: r, weight: -1, mask: m });
                    }
                }
            }
            for (skip, (m, r)) in canceled.iter().zip(&new_pairs) {
                if !skip {
                    emit_units += 1;
                    out.push(DeltaRow { row: r.clone(), weight: 1, mask: *m });
                }
            }
            group.emitted = new_pairs;
            group.classes.retain(|c| c.rows > 0);
            if group.classes.is_empty() {
                self.groups.remove_id(id);
            }
            if let Some(t) = trace.as_deref_mut() {
                t.groups.push((first_row, (out.len() - flush_start) as u32));
            }
        }
        counter.charge(OpKind::AggEmit, weights.agg_emit, emit_units);
        self.groups.maybe_compact();
        Ok(out)
    }

    /// Stored state entries (mask classes + outstanding emitted pairs), for
    /// churn GC accounting.
    pub fn state_size(&self) -> usize {
        self.groups
            .live_ids()
            .iter()
            .filter_map(|&id| self.groups.get_by_id(id))
            .map(|g| g.classes.len() + g.emitted.len())
            .sum()
    }

    /// Query admission: add `q_new`'s bit wherever the witness `q_ref`'s bit
    /// is set — in mask classes (so future inputs fold into the accumulator
    /// `q_new` now shares) *and* in outstanding emitted pairs. Widening the
    /// emitted pairs is required for correctness, not just bookkeeping: the
    /// next flush of a touched group retracts pairs by their stored mask,
    /// and if `q_new` were missing there the retraction would not reach it
    /// while the fresh insert would — double-counting the group downstream.
    /// Classes stay disjoint because `q_new` is a fresh bit added only to
    /// (mutually disjoint) classes containing `q_ref`.
    pub fn widen_query(&mut self, q_ref: QueryId, q_new: QueryId) {
        for id in self.groups.live_ids() {
            let g = self.groups.get_by_id_mut(id).expect("live group");
            for c in &mut g.classes {
                if c.mask.contains(q_ref) {
                    c.mask.insert(q_new);
                }
            }
            for (m, _) in &mut g.emitted {
                if m.contains(q_ref) {
                    m.insert(q_new);
                }
            }
        }
    }

    /// Query removal: clear `q`'s bit from every class and emitted pair,
    /// dropping those that go empty and removing groups left with no
    /// classes. Two distinct classes can never collapse into one — class
    /// masks are disjoint, so equal leftovers would mean both were subsets
    /// of `{q}` and thus both went empty. Returns state entries freed.
    pub fn retire_query(&mut self, q: QueryId) -> usize {
        let mut reclaimed = 0usize;
        for id in self.groups.live_ids() {
            let g = self.groups.get_by_id_mut(id).expect("live group");
            for c in &mut g.classes {
                c.mask.remove(q);
            }
            let before = g.classes.len();
            g.classes.retain(|c| !c.mask.is_empty());
            reclaimed += before - g.classes.len();
            for (m, _) in &mut g.emitted {
                m.remove(q);
            }
            let before = g.emitted.len();
            g.emitted.retain(|(m, _)| !m.is_empty());
            reclaimed += before - g.emitted.len();
            if g.classes.is_empty() && g.emitted.is_empty() {
                self.groups.remove_id(id);
            }
        }
        self.groups.maybe_compact();
        reclaimed
    }

    /// State handoff for admission: the aggregate output `q_ref` has netted
    /// so far. The flush diff retracts every superseded pair, so the net
    /// output visible to a query is exactly its outstanding emitted pairs,
    /// each at weight +1, re-masked to `{q_new}`. Unconsolidated, in
    /// storage order — the caller consolidates.
    pub fn snapshot_emitted(&self, q_ref: QueryId, q_new: QueryId) -> Vec<DeltaRow> {
        let mut out = Vec::new();
        for id in self.groups.live_ids() {
            let g = self.groups.get_by_id(id).expect("live group");
            for (m, r) in &g.emitted {
                if m.contains(q_ref) {
                    out.push(DeltaRow { row: r.clone(), weight: 1, mask: QuerySet::single(q_new) });
                }
            }
        }
        out
    }
}

/// Partition refinement: after this, every class is either a subset of
/// `mask` or disjoint from it, and `mask` is fully covered by classes.
fn refine_classes(group: &mut GroupState, mask: QuerySet, spec: &AggSpec, agg_int: &[bool]) {
    let mut covered = QuerySet::EMPTY;
    let mut splits = Vec::new();
    for class in &mut group.classes {
        let inter = class.mask.intersect(mask);
        covered = covered.union(inter);
        if !inter.is_empty() && inter != class.mask {
            // Split off the intersecting part; the accumulators describe the
            // same underlying tuples for both halves, so they are cloned.
            let outside = class.mask.difference(mask);
            let split = ClassState { mask: inter, rows: class.rows, accums: class.accums.clone() };
            class.mask = outside;
            splits.push(split);
        }
    }
    group.classes.extend(splits);
    let leftover = mask.difference(covered);
    if !leftover.is_empty() {
        group.classes.push(ClassState {
            mask: leftover,
            rows: 0,
            accums: spec
                .funcs
                .iter()
                .zip(agg_int)
                .map(|(&f, &int)| Accumulator::new(f, int))
                .collect(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::QueryId;
    use ishare_storage::consolidate;

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    fn dr(k: i64, v: i64, w: i64, m: &[u16]) -> DeltaRow {
        DeltaRow { row: Row::new(vec![Value::Int(k), Value::Int(v)]), weight: w, mask: qs(m) }
    }

    fn sum_spec() -> (AggSpec, Vec<bool>) {
        let group_by = vec![(Expr::col(0), "k".to_string())];
        let aggs = vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")];
        (AggSpec::compile(&group_by, &aggs), vec![true])
    }

    fn run(st: &mut AggState, rows: Vec<DeltaRow>) -> DeltaBatch {
        let (spec, agg_int) = sum_spec();
        let c = WorkCounter::new();
        st.execute(DeltaBatch::from_rows(rows), &spec, &agg_int, &CostWeights::default(), &c)
            .unwrap()
    }

    #[test]
    fn first_execution_only_inserts() {
        let mut st = AggState::new();
        let out = run(&mut st, vec![dr(1, 10, 1, &[0]), dr(1, 5, 1, &[0]), dr(2, 7, 1, &[0])]);
        let c = consolidate(out.rows);
        assert_eq!(c.len(), 2);
        assert_eq!(c[&(Row::new(vec![Value::Int(1), Value::Int(15)]), qs(&[0]))], 1);
        assert_eq!(c[&(Row::new(vec![Value::Int(2), Value::Int(7)]), qs(&[0]))], 1);
    }

    #[test]
    fn updates_emit_retract_plus_insert() {
        let mut st = AggState::new();
        run(&mut st, vec![dr(1, 10, 1, &[0])]);
        let out = run(&mut st, vec![dr(1, 5, 1, &[0])]);
        // Delete amplification: old sum (10) retracted, new sum (15) inserted.
        assert_eq!(out.len(), 2);
        let c = consolidate(out.rows);
        assert_eq!(c[&(Row::new(vec![Value::Int(1), Value::Int(10)]), qs(&[0]))], -1);
        assert_eq!(c[&(Row::new(vec![Value::Int(1), Value::Int(15)]), qs(&[0]))], 1);
    }

    #[test]
    fn untouched_groups_stay_silent() {
        let mut st = AggState::new();
        run(&mut st, vec![dr(1, 10, 1, &[0]), dr(2, 20, 1, &[0])]);
        let out = run(&mut st, vec![dr(1, 1, 1, &[0])]);
        // Group 2 untouched — nothing emitted for it.
        assert!(out.rows.iter().all(|r| r.row.get(0) == &Value::Int(1)));
    }

    #[test]
    fn group_deletion_retracts_only() {
        let mut st = AggState::new();
        run(&mut st, vec![dr(1, 10, 1, &[0])]);
        let out = run(&mut st, vec![dr(1, 10, -1, &[0])]);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0].weight, -1);
        assert_eq!(st.group_count(), 0);
    }

    #[test]
    fn mask_classes_keep_queries_correct() {
        let mut st = AggState::new();
        // q0 sees both rows; q1 sees only the second (marking select upstream).
        let out = run(&mut st, vec![dr(1, 10, 1, &[0, 1]), dr(1, 5, 1, &[0])]);
        let c = consolidate(out.rows);
        // q0's sum is 15, q1's sum is 10: two disjoint output classes.
        assert_eq!(c.len(), 2);
        assert_eq!(c[&(Row::new(vec![Value::Int(1), Value::Int(15)]), qs(&[0]))], 1);
        assert_eq!(c[&(Row::new(vec![Value::Int(1), Value::Int(10)]), qs(&[1]))], 1);
    }

    #[test]
    fn shared_case_single_output_row() {
        let mut st = AggState::new();
        let out = run(&mut st, vec![dr(1, 10, 1, &[0, 1]), dr(1, 5, 1, &[0, 1])]);
        assert_eq!(out.len(), 1, "fully shared masks collapse to one class");
        assert_eq!(out.rows[0].mask, qs(&[0, 1]));
        assert_eq!(out.rows[0].row.get(1), &Value::Int(15));
    }

    #[test]
    fn over_retraction_detected() {
        let mut st = AggState::new();
        run(&mut st, vec![dr(1, 10, 1, &[0])]);
        let (spec, agg_int) = sum_spec();
        let c = WorkCounter::new();
        let res = st.execute(
            DeltaBatch::from_rows(vec![dr(1, 10, -2, &[0])]),
            &spec,
            &agg_int,
            &CostWeights::default(),
            &c,
        );
        assert!(matches!(res, Err(Error::InvalidDelta(_))));
    }

    #[test]
    fn max_rescan_on_extremum_delete() {
        let weights = CostWeights::default();
        let counter = WorkCounter::new();
        let mut acc = Accumulator::new(AggFunc::Max, true);
        for v in [1i64, 5, 3] {
            acc.update(&Value::Int(v), 1, &weights, &counter).unwrap();
        }
        assert_eq!(acc.value(), Value::Int(5));
        let before = counter.total().get();
        // Deleting a non-extremum is O(1): no rescan charge.
        acc.update(&Value::Int(1), -1, &weights, &counter).unwrap();
        assert_eq!(counter.total().get(), before);
        assert_eq!(acc.value(), Value::Int(5));
        // Deleting the max rescans the remaining multiset.
        acc.update(&Value::Int(5), -1, &weights, &counter).unwrap();
        assert_eq!(acc.value(), Value::Int(3));
        assert!(counter.total().get() > before, "rescan must be charged");
    }

    /// Pins the MIN/MAX delete contract end to end: deleting the extremum
    /// after 3 arrivals yields the runner-up AND charges exactly
    /// `minmax_rescan × 3` (all arrived values, paper Sec. 5.3) — as raw f64
    /// bits, so a batching or reordering regression cannot hide in epsilon.
    #[test]
    fn minmax_delete_rescan_work_pinned() {
        let weights = CostWeights::default();
        let counter = WorkCounter::new();
        let mut acc = Accumulator::new(AggFunc::Max, true);
        for v in [1i64, 5, 3] {
            acc.update(&Value::Int(v), 1, &weights, &counter).unwrap();
        }
        assert_eq!(counter.breakdown().get(OpKind::MinmaxRescan), 0.0);
        acc.update(&Value::Int(5), -1, &weights, &counter).unwrap();
        assert_eq!(acc.value(), Value::Int(3), "rescan must find the runner-up");
        let charged = counter.breakdown().get(OpKind::MinmaxRescan);
        let expected = weights.minmax_rescan * 3.0;
        assert_eq!(
            charged.to_bits(),
            expected.to_bits(),
            "rescan charge must be exactly minmax_rescan × arrived (= {expected}), got {charged}"
        );
        // A second extremum delete rescans against arrived = 3 still (the
        // counter is monotone over insertions, deletions don't shrink it).
        acc.update(&Value::Int(3), -1, &weights, &counter).unwrap();
        assert_eq!(acc.value(), Value::Int(1));
        let charged2 = counter.breakdown().get(OpKind::MinmaxRescan);
        assert_eq!(charged2.to_bits(), (weights.minmax_rescan * 6.0).to_bits());
    }

    #[test]
    fn accumulator_values() {
        let w = CostWeights::default();
        let c = WorkCounter::new();
        let mut sum_f = Accumulator::new(AggFunc::Sum, false);
        sum_f.update(&Value::Float(1.5), 2, &w, &c).unwrap();
        assert_eq!(sum_f.value(), Value::Float(3.0));
        let empty_sum = Accumulator::new(AggFunc::Sum, true);
        assert_eq!(empty_sum.value(), Value::Null);
        let mut avg = Accumulator::new(AggFunc::Avg, false);
        avg.update(&Value::Int(4), 1, &w, &c).unwrap();
        avg.update(&Value::Int(8), 1, &w, &c).unwrap();
        assert_eq!(avg.value(), Value::Float(6.0));
        let mut cnt = Accumulator::new(AggFunc::Count, true);
        cnt.update(&Value::Int(1), 1, &w, &c).unwrap();
        cnt.update(&Value::Null, 1, &w, &c).unwrap();
        assert_eq!(cnt.value(), Value::Int(1), "NULLs not counted");
        let mut mn = Accumulator::new(AggFunc::Min, true);
        mn.update(&Value::Int(3), 1, &w, &c).unwrap();
        mn.update(&Value::Int(1), 1, &w, &c).unwrap();
        assert_eq!(mn.value(), Value::Int(1));
    }

    #[test]
    fn global_aggregate_empty_group_key() {
        let mut st = AggState::new();
        let spec = AggSpec::compile(&[], &[AggExpr::new(AggFunc::Count, Expr::lit(1i64), "n")]);
        let c = WorkCounter::new();
        let out = st
            .execute(
                DeltaBatch::from_rows(vec![dr(1, 1, 1, &[0]), dr(2, 2, 1, &[0])]),
                &spec,
                &[true],
                &CostWeights::default(),
                &c,
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0].row.values(), &[Value::Int(2)]);
    }

    #[test]
    fn widen_retire_snapshot_roundtrip() {
        let mut st = AggState::new();
        // Group 1 shared by q0+q1, group 2 private to q1.
        run(&mut st, vec![dr(1, 10, 1, &[0, 1]), dr(2, 7, 1, &[1])]);
        // Snapshot for q2 witnessed by q0: only group 1's emitted pair.
        let snap = st.snapshot_emitted(QueryId(0), QueryId(2));
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].row, Row::new(vec![Value::Int(1), Value::Int(10)]));
        assert_eq!(snap[0].mask, qs(&[2]));

        // Widen, then an update to group 1 retracts the old pair for q2 as
        // well — no double counting.
        st.widen_query(QueryId(0), QueryId(2));
        let out = run(&mut st, vec![dr(1, 5, 1, &[0, 1, 2])]);
        let c = consolidate(out.rows);
        assert_eq!(c[&(Row::new(vec![Value::Int(1), Value::Int(10)]), qs(&[0, 1, 2]))], -1);
        assert_eq!(c[&(Row::new(vec![Value::Int(1), Value::Int(15)]), qs(&[0, 1, 2]))], 1);

        // Retire q1: group 2 (private) is freed entirely.
        let before = st.group_count();
        let freed = st.retire_query(QueryId(1));
        assert!(freed >= 2, "group 2's class + emitted pair are q1-private");
        assert_eq!(st.group_count(), before - 1);
        let out = run(&mut st, vec![dr(2, 1, 1, &[0])]);
        let c = consolidate(out.rows);
        // Fresh group: no stale retraction from the retired state.
        assert_eq!(c.len(), 1);
        assert_eq!(c[&(Row::new(vec![Value::Int(2), Value::Int(1)]), qs(&[0]))], 1);
    }

    /// Charged work must be bit-identical to the reference datapath even
    /// though the kernel batches its `AggUpdate`/`AggEmit` charges.
    #[test]
    fn charges_match_reference_bitwise() {
        use crate::reference::RefAggState;
        let rows = vec![
            dr(1, 10, 1, &[0, 1]),
            dr(2, 7, 1, &[0]),
            dr(1, 5, 1, &[0]),
            dr(1, 10, -1, &[0, 1]),
            dr(3, 2, 1, &[1]),
        ];
        let group_by = vec![(Expr::col(0), "k".to_string())];
        let aggs = vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")];
        let w = CostWeights::default();

        let kc = WorkCounter::new();
        let mut kst = AggState::new();
        let spec = AggSpec::compile(&group_by, &aggs);
        let kout =
            kst.execute(DeltaBatch::from_rows(rows.clone()), &spec, &[true], &w, &kc).unwrap();

        let rc = WorkCounter::new();
        let mut rst = RefAggState::new();
        let rout =
            rst.execute(DeltaBatch::from_rows(rows), &group_by, &aggs, &[true], &w, &rc).unwrap();

        assert_eq!(kout.rows, rout.rows, "emission (order included) must match");
        assert_eq!(kc.total().get().to_bits(), rc.total().get().to_bits());
        for kind in [OpKind::AggUpdate, OpKind::AggEmit, OpKind::MinmaxRescan] {
            assert_eq!(
                kc.breakdown().get(kind).to_bits(),
                rc.breakdown().get(kind).to_bits(),
                "charge mismatch for {kind:?}"
            );
        }
    }
}
