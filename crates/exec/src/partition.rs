//! Intra-subplan data parallelism: hash-partitioned stateful operators
//! behind an exchange that preserves the sequential emission order exactly.
//!
//! The paced scheduler spreads *subplans* over time and the parallel driver
//! spreads independent subplans over threads, but a single heavy join or
//! aggregate still ran on one thread. This module shards the *state* of one
//! stateful operator: its [`FlatTable`](crate::flat::FlatTable) rows are
//! owned by `N` partitions keyed by `hash(encoded key) % N`
//! ([`ishare_common::fxhash::partition_of`]), and each incremental execution
//! routes its delta rows to their owning partition (the exchange), executes
//! every partition independently — optionally on scoped worker threads —
//! and merges the partition outputs back into the exact order the
//! unpartitioned operator would have emitted.
//!
//! The exchange sits *per stateful operator*, not per subplan tree: a tree
//! like `Agg(Join(t, u))` partitions the join by the join key and the
//! aggregate by its group key independently, with stateless operators
//! (select/project/input-narrowing) running unchanged on merged batches in
//! between. That costs one merge per stateful operator but keeps each
//! operator's state local to the key it is actually keyed by.
//!
//! Three invariants make the partitioned path bit-identical to the
//! sequential one, which is what lets every existing differential suite
//! keep its oracle:
//!
//! 1. **Value-pure routing.** Rows are routed by the *evaluated key value*
//!    (the join side's key exprs, the aggregate's group-by), encoded through
//!    one router-owned interner — so equal keys always share a partition,
//!    and all state transitions of one key replay in input order inside one
//!    partition. Rows whose key contains NULL route to partition 0 by rule
//!    (a NULL join key never matches; a NULL group key still groups — and
//!    equal NULL-containing group keys bail identically, so they co-locate).
//! 2. **Traced execution.** Each partition records where its outputs came
//!    from ([`JoinTrace`]: emissions per probe row; [`AggTrace`]: flush
//!    records per touched group). A join emits left-probe output before
//!    right-probe output, each phase in batch-row order; an aggregate
//!    flushes groups in first-touch order, and groups partition disjointly.
//!    Splicing per-row runs in original batch order (join) / N-way merging
//!    flush runs by first-touch row index (agg) therefore reconstructs the
//!    sequential emission order exactly — not approximately.
//! 3. **Exact work absorption.** Each partition charges a private
//!    [`WorkCounter`]; the per-kind breakdowns are absorbed into the main
//!    counter in partition-index order ([`WorkCounter::absorb`]). With the
//!    engine's dyadic cost weights every per-kind sum is exact in f64, so
//!    totals — including the per-query final-work numbers the paper's
//!    constraints are stated over — come out bit-equal to the sequential
//!    counter's.
//!
//! Error paths are the one documented divergence: partitions execute
//! independently, so when several fail the exchange deterministically
//! reports the lowest partition index's error, which need not be the error
//! the sequential row order would have hit first. On valid streams (no
//! over-retraction, well-typed keys) the paths are indistinguishable.

use crate::aggregate::{AggSpec, AggState, AggTrace};
use crate::join::{JoinKeys, JoinState, JoinTrace};
use ishare_common::fxhash::partition_of;
use ishare_common::{
    CostWeights, KeyBuf, QueryId, Result, StrInterner, WorkBreakdown, WorkCounter,
};
use ishare_expr::KeyExtractor;
use ishare_storage::{DeltaBatch, DeltaRow};

/// Cumulative per-partition load of one partitioned operator: how many
/// delta rows the exchange routed to the partition and how much work the
/// partition charged, across all executions so far. Feeds the `obs`
/// per-partition work/skew gauges and the partition-scaling bench.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PartitionStat {
    /// Delta rows routed to this partition (both sides for a join).
    pub rows: u64,
    /// Work units charged by this partition's executions.
    pub work: f64,
}

/// The exchange half shared by both operators: route a batch to partitions
/// by encoded key, remembering each row's owner so the merge can splice.
struct Router {
    extractor: KeyExtractor,
    interner: StrInterner,
    scratch: KeyBuf,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router").field("key_columns", &self.extractor.len()).finish()
    }
}

impl Router {
    fn new(extractor: KeyExtractor) -> Router {
        Router { extractor, interner: StrInterner::new(), scratch: KeyBuf::new() }
    }

    /// Split `batch` into per-partition sub-batches (rows kept in batch
    /// order) and return each original row's owning partition.
    fn route(
        &mut self,
        batch: &DeltaBatch,
        partitions: usize,
    ) -> Result<(Vec<DeltaBatch>, Vec<u32>)> {
        let mut parts: Vec<DeltaBatch> = (0..partitions).map(|_| DeltaBatch::new()).collect();
        let mut owners = Vec::with_capacity(batch.len());
        for dr in &batch.rows {
            let keyed =
                self.extractor.encode(dr.row.values(), &mut self.scratch, &mut self.interner)?;
            let p = if keyed {
                partition_of(self.scratch.as_words(), partitions)
            } else {
                // NULL in the key: no hashable value. Route by fixed rule so
                // equal (NULL-containing) keys still co-locate.
                0
            };
            owners.push(p as u32);
            parts[p].push(dr.clone());
        }
        Ok((parts, owners))
    }
}

/// Run one closure per partition, inline or on scoped worker threads, and
/// return the outcomes in partition order, each with the partition's
/// private work breakdown. Thread count only affects wall-clock: outcomes
/// and charges are a pure function of the inputs.
fn run_partitioned<S, T, R, F>(
    threads: usize,
    states: &mut [S],
    inputs: Vec<T>,
    f: F,
) -> Vec<Result<(R, WorkBreakdown)>>
where
    S: Send,
    T: Send,
    R: Send,
    F: Fn(&mut S, T, &WorkCounter) -> Result<R> + Sync,
{
    let run_one = |st: &mut S, inp: T| {
        let counter = WorkCounter::new();
        f(st, inp, &counter).map(|out| (out, counter.breakdown()))
    };
    if threads > 1 && states.len() > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = states
                .iter_mut()
                .zip(inputs)
                .map(|(st, inp)| {
                    let run_one = &run_one;
                    scope.spawn(move || run_one(st, inp))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("partition worker panicked")).collect()
        })
    } else {
        states.iter_mut().zip(inputs).map(|(st, inp)| run_one(st, inp)).collect()
    }
}

/// Unwrap partition outcomes: absorb every partition's charges into
/// `counter` in partition-index order (and into the per-partition work
/// stats), or return the lowest-index error without absorbing anything.
fn collect_outcomes<T>(
    outcomes: Vec<Result<(T, WorkBreakdown)>>,
    counter: &WorkCounter,
    stats: &mut [PartitionStat],
) -> Result<Vec<T>> {
    let mut unwrapped = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        unwrapped.push(o?);
    }
    let mut ok = Vec::with_capacity(unwrapped.len());
    for ((v, b), stat) in unwrapped.into_iter().zip(stats) {
        counter.absorb(&b);
        stat.work += b.sum();
        ok.push(v);
    }
    Ok(ok)
}

/// A hash-partitioned symmetric join: `N` independent [`JoinState`]s behind
/// an exchange on the join key. Drop-in for [`JoinState::execute`] with
/// bit-identical output and charges (see the module docs).
#[derive(Debug)]
pub struct PartitionedJoin {
    parts: Vec<JoinState>,
    threads: usize,
    left_router: Router,
    right_router: Router,
    stats: Vec<PartitionStat>,
}

impl PartitionedJoin {
    /// Fresh empty partitioned state. `partitions ≥ 1`; `threads ≤ 1` runs
    /// partitions inline on the calling thread.
    pub fn new(partitions: usize, threads: usize, keys: &JoinKeys) -> PartitionedJoin {
        assert!(partitions > 0, "need at least one partition");
        PartitionedJoin {
            parts: (0..partitions).map(|_| JoinState::new()).collect(),
            threads,
            left_router: Router::new(keys.extractor(false)),
            right_router: Router::new(keys.extractor(true)),
            stats: vec![PartitionStat::default(); partitions],
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Cumulative per-partition routed-row / charged-work load.
    pub fn stats(&self) -> &[PartitionStat] {
        &self.stats
    }

    /// Total stored (row, mask) entries on the left side, all partitions.
    pub fn left_size(&self) -> usize {
        self.parts.iter().map(|p| p.left_size()).sum()
    }

    /// Total stored (row, mask) entries on the right side, all partitions.
    pub fn right_size(&self) -> usize {
        self.parts.iter().map(|p| p.right_size()).sum()
    }

    /// Widen every stored entry whose mask contains `q_ref` with `q_new`,
    /// partition by partition in index order. Routing is unaffected: widening
    /// changes masks, never key values, so each entry stays in its partition.
    pub fn widen_query(&mut self, q_ref: QueryId, q_new: QueryId) {
        for p in &mut self.parts {
            p.widen_query(q_ref, q_new);
        }
    }

    /// Remove `q` from every stored entry and GC entries/keys whose mask
    /// goes empty. Returns the total number of entries reclaimed, summed in
    /// partition-index order (a plain integer sum — partition-count
    /// independent because partitions hold disjoint entries).
    pub fn retire_query(&mut self, q: QueryId) -> usize {
        self.parts.iter_mut().map(|p| p.retire_query(q)).sum()
    }

    /// Concatenate per-partition [`JoinState::snapshot_product`] outputs in
    /// partition-index order. The result is *unconsolidated and
    /// partition-order dependent*; callers must consolidate globally (sort by
    /// encoded row + merge weights) before the snapshot crosses a
    /// determinism boundary.
    pub fn snapshot_product(&self, q_ref: QueryId, q_new: QueryId) -> Vec<DeltaRow> {
        let mut out = Vec::new();
        for p in &self.parts {
            out.extend(p.snapshot_product(q_ref, q_new));
        }
        out
    }

    /// Run one incremental execution: exchange-route both deltas, execute
    /// every partition (traced), merge outputs in the sequential emission
    /// order — left-probe phase in batch order, then right-probe phase.
    pub fn execute(
        &mut self,
        left_delta: DeltaBatch,
        right_delta: DeltaBatch,
        keys: &JoinKeys,
        weights: &CostWeights,
        counter: &WorkCounter,
    ) -> Result<DeltaBatch> {
        let n = self.parts.len();
        let (left_parts, right_parts, left_owners, right_owners) = {
            let (lp, lo) = self.left_router.route(&left_delta, n)?;
            let (rp, ro) = self.right_router.route(&right_delta, n)?;
            (lp, rp, lo, ro)
        };
        for (p, stat) in self.stats.iter_mut().enumerate() {
            stat.rows += (left_parts[p].len() + right_parts[p].len()) as u64;
        }

        let jobs: Vec<(DeltaBatch, DeltaBatch)> = left_parts.into_iter().zip(right_parts).collect();
        let outcomes = run_partitioned(self.threads, &mut self.parts, jobs, |st, (l, r), c| {
            let mut trace = JoinTrace::default();
            let out = st.execute_traced(l, r, keys, weights, c, Some(&mut trace))?;
            Ok((out, trace))
        });
        let results = collect_outcomes(outcomes, counter, &mut self.stats)?;
        let mut outs: Vec<std::vec::IntoIter<DeltaRow>> = Vec::with_capacity(n);
        let mut traces: Vec<JoinTrace> = Vec::with_capacity(n);
        for (out, trace) in results {
            outs.push(out.rows.into_iter());
            traces.push(trace);
        }

        // Splice: for each original row (left batch first, then right), take
        // that row's emission run from its owner partition's output stream.
        let mut merged = DeltaBatch::new();
        let mut cursor = vec![0usize; n];
        for &p in &left_owners {
            let p = p as usize;
            let count = traces[p].left[cursor[p]] as usize;
            cursor[p] += 1;
            for _ in 0..count {
                merged.push(outs[p].next().expect("traced join output exhausted early"));
            }
        }
        let mut cursor = vec![0usize; n];
        for &p in &right_owners {
            let p = p as usize;
            let count = traces[p].right[cursor[p]] as usize;
            cursor[p] += 1;
            for _ in 0..count {
                merged.push(outs[p].next().expect("traced join output exhausted early"));
            }
        }
        debug_assert!(outs.iter_mut().all(|o| o.next().is_none()), "unmerged join output");
        Ok(merged)
    }
}

/// A hash-partitioned aggregate: `N` independent [`AggState`]s behind an
/// exchange on the group-by key. Drop-in for [`AggState::execute`] with
/// bit-identical output and charges (see the module docs).
#[derive(Debug)]
pub struct PartitionedAgg {
    parts: Vec<AggState>,
    threads: usize,
    router: Router,
    stats: Vec<PartitionStat>,
}

impl PartitionedAgg {
    /// Fresh empty partitioned state. `partitions ≥ 1`; `threads ≤ 1` runs
    /// partitions inline on the calling thread.
    pub fn new(partitions: usize, threads: usize, spec: &AggSpec) -> PartitionedAgg {
        assert!(partitions > 0, "need at least one partition");
        PartitionedAgg {
            parts: (0..partitions).map(|_| AggState::new()).collect(),
            threads,
            router: Router::new(spec.group_extractor()),
            stats: vec![PartitionStat::default(); partitions],
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Cumulative per-partition routed-row / charged-work load.
    pub fn stats(&self) -> &[PartitionStat] {
        &self.stats
    }

    /// Number of live groups, all partitions.
    pub fn group_count(&self) -> usize {
        self.parts.iter().map(|p| p.group_count()).sum()
    }

    /// Total stored state entries (classes + outstanding emitted pairs),
    /// all partitions.
    pub fn state_size(&self) -> usize {
        self.parts.iter().map(|p| p.state_size()).sum()
    }

    /// Widen classes and outstanding emitted pairs containing `q_ref` with
    /// `q_new`, partition by partition in index order.
    pub fn widen_query(&mut self, q_ref: QueryId, q_new: QueryId) {
        for p in &mut self.parts {
            p.widen_query(q_ref, q_new);
        }
    }

    /// Remove `q` from all classes and emitted pairs, GC empties. Returns
    /// the total number of state entries reclaimed (integer sum over
    /// disjoint partitions — partition-count independent).
    pub fn retire_query(&mut self, q: QueryId) -> usize {
        self.parts.iter_mut().map(|p| p.retire_query(q)).sum()
    }

    /// Concatenate per-partition [`AggState::snapshot_emitted`] outputs in
    /// partition-index order. Unconsolidated and partition-order dependent;
    /// callers must consolidate globally before use.
    pub fn snapshot_emitted(&self, q_ref: QueryId, q_new: QueryId) -> Vec<DeltaRow> {
        let mut out = Vec::new();
        for p in &self.parts {
            out.extend(p.snapshot_emitted(q_ref, q_new));
        }
        out
    }

    /// Run one incremental execution: exchange-route by group key, execute
    /// every partition (traced), N-way merge flush runs ascending by the
    /// first-touch row index — the sequential flush order.
    pub fn execute(
        &mut self,
        input: DeltaBatch,
        spec: &AggSpec,
        agg_int: &[bool],
        weights: &CostWeights,
        counter: &WorkCounter,
    ) -> Result<DeltaBatch> {
        let n = self.parts.len();
        let (parts_in, owners) = self.router.route(&input, n)?;
        // Map each partition's local row index back to the original batch
        // index, for the first-touch merge key.
        let mut locals: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, &p) in owners.iter().enumerate() {
            locals[p as usize].push(i as u32);
        }
        for (p, stat) in self.stats.iter_mut().enumerate() {
            stat.rows += parts_in[p].len() as u64;
        }

        let outcomes = run_partitioned(self.threads, &mut self.parts, parts_in, |st, batch, c| {
            let mut trace = AggTrace::default();
            let out = st.execute_traced(batch, spec, agg_int, weights, c, Some(&mut trace))?;
            Ok((out, trace))
        });
        let results = collect_outcomes(outcomes, counter, &mut self.stats)?;
        let mut outs: Vec<std::vec::IntoIter<DeltaRow>> = Vec::with_capacity(n);
        let mut runs: Vec<std::vec::IntoIter<(u32, u32)>> = Vec::with_capacity(n);
        for (p, (out, trace)) in results.into_iter().enumerate() {
            outs.push(out.rows.into_iter());
            // Rewrite local first-touch indices to original batch indices.
            let global: Vec<(u32, u32)> = trace
                .groups
                .into_iter()
                .map(|(local, emits)| (locals[p][local as usize], emits))
                .collect();
            runs.push(global.into_iter());
        }

        // N-way merge ascending by first-touch original row index. Each
        // partition's runs are already ascending (local first-touch order
        // maps monotonically to original indices), and indices are distinct
        // across partitions, so the order is total and deterministic.
        let mut merged = DeltaBatch::new();
        let mut heads: Vec<Option<(u32, u32)>> = runs.iter_mut().map(|r| r.next()).collect();
        loop {
            let mut best: Option<(usize, u32)> = None;
            for (p, head) in heads.iter().enumerate() {
                if let Some((first, _)) = head {
                    if best.is_none_or(|(_, bf)| *first < bf) {
                        best = Some((p, *first));
                    }
                }
            }
            let Some((p, _)) = best else { break };
            let (_, emits) = heads[p].take().expect("picked head exists");
            for _ in 0..emits {
                merged.push(outs[p].next().expect("traced agg output exhausted early"));
            }
            heads[p] = runs[p].next();
        }
        debug_assert!(outs.iter_mut().all(|o| o.next().is_none()), "unmerged agg output");
        Ok(merged)
    }
}
