//! Insertion-ordered flat hash table for operator state.
//!
//! [`FlatTable`] keys dense state slots by encoded [`KeyBuf`]s: an FxHash
//! index maps the 64-bit hash of a key's `u64` words to a `u32` slot id
//! into a `Vec` of values, so lookups hash a few words (no `Value` enum
//! walks, no SipHash seeds) and the values live contiguously in insertion
//! order. The key itself is materialized exactly once, in the slot — the
//! index holds only `(hash, id)`, so inserting a fresh key costs one
//! allocation, not two. Hash collisions (distinct keys, equal 64-bit hash)
//! are handled by an id overflow list and resolved by comparing the slot's
//! stored key words. Removal tombstones the slot — ids handed out during
//! one incremental execution stay valid for its whole duration — and
//! [`FlatTable::maybe_compact`], called by operators *between* executions,
//! reclaims tombstoned slots once they outnumber live ones.
//!
//! Layout (slot order, index bucket order) is a pure function of the
//! operation sequence: FxHash has no per-process seed, and the drivers
//! guarantee a deterministic operation sequence per operator. Nothing the
//! engine emits depends on layout anyway — emission order comes from
//! per-slot sorted entry lists (join) or first-touch lists (aggregation) —
//! so layout determinism is defense in depth, extending `validate_replay`'s
//! cross-process guarantee to the state itself.

use ishare_common::fxhash::{hash_words, partition_of};
use ishare_common::{FxHashMap, KeyBuf};

/// Slot ids sharing one 64-bit hash. Almost always exactly one; the `Many`
/// arm exists so a genuine 64-bit collision degrades to a short scan
/// instead of a wrong answer.
#[derive(Debug, Clone)]
enum IdList {
    One(u32),
    Many(Vec<u32>),
}

impl IdList {
    #[inline]
    fn as_slice(&self) -> &[u32] {
        match self {
            IdList::One(id) => std::slice::from_ref(id),
            IdList::Many(ids) => ids,
        }
    }

    fn push(&mut self, id: u32) {
        match self {
            IdList::One(first) => *self = IdList::Many(vec![*first, id]),
            IdList::Many(ids) => ids.push(id),
        }
    }
}

/// A hash-indexed dense table keyed by encoded keys.
#[derive(Debug, Clone)]
pub struct FlatTable<V> {
    index: FxHashMap<u64, IdList>,
    slots: Vec<Option<(KeyBuf, V)>>,
    live: usize,
    tombstones: usize,
}

impl<V> Default for FlatTable<V> {
    fn default() -> Self {
        FlatTable { index: FxHashMap::default(), slots: Vec::new(), live: 0, tombstones: 0 }
    }
}

impl<V> FlatTable<V> {
    /// Fresh empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` iff no live entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    #[inline]
    fn find(&self, key: &[u64], hash: u64) -> Option<u32> {
        for &id in self.index.get(&hash)?.as_slice() {
            if let Some((k, _)) = &self.slots[id as usize] {
                if k.as_words() == key {
                    return Some(id);
                }
            }
        }
        None
    }

    /// Look up by encoded key words (zero-allocation probe from a scratch
    /// [`KeyBuf`]).
    #[inline]
    pub fn get(&self, key: &[u64]) -> Option<&V> {
        let id = self.find(key, hash_words(key))?;
        self.slots[id as usize].as_ref().map(|(_, v)| v)
    }

    /// Slot id for a key, if present. Ids are stable until the next
    /// [`Self::maybe_compact`].
    #[inline]
    pub fn id_of(&self, key: &[u64]) -> Option<u32> {
        self.find(key, hash_words(key))
    }

    /// Value at a live slot id.
    #[inline]
    pub fn get_by_id_mut(&mut self, id: u32) -> Option<&mut V> {
        self.slots[id as usize].as_mut().map(|(_, v)| v)
    }

    /// Value at a live slot id (shared).
    #[inline]
    pub fn get_by_id(&self, id: u32) -> Option<&V> {
        self.slots[id as usize].as_ref().map(|(_, v)| v)
    }

    /// Slot id for `key`, inserting `make()` into a fresh slot when absent.
    /// The key words are materialized into one owned [`KeyBuf`] only on
    /// insert (misses), never on the probe path.
    #[inline]
    pub fn id_or_insert_with(&mut self, key: &[u64], make: impl FnOnce() -> V) -> u32 {
        let hash = hash_words(key);
        if let Some(id) = self.find(key, hash) {
            return id;
        }
        let id = u32::try_from(self.slots.len()).expect("flat table overflow");
        self.slots.push(Some((KeyBuf::from_words(key), make())));
        self.live += 1;
        match self.index.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(id),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(IdList::One(id));
            }
        }
        id
    }

    /// Ids of all live slots, in slot (= insertion) order. Stable until the
    /// next [`Self::maybe_compact`]; used by query churn to walk operator
    /// state for mask widening / retirement.
    pub fn live_ids(&self) -> Vec<u32> {
        (0..self.slots.len() as u32).filter(|&id| self.slots[id as usize].is_some()).collect()
    }

    /// Key words and value at a live slot id.
    #[inline]
    pub fn get_by_id_with_key(&self, id: u32) -> Option<(&[u64], &V)> {
        self.slots[id as usize].as_ref().map(|(k, v)| (k.as_words(), v))
    }

    /// Remove the entry at `id`, tombstoning its slot. No-op on a dead id.
    pub fn remove_id(&mut self, id: u32) {
        if let Some((key, _)) = self.slots[id as usize].take() {
            let hash = hash_words(key.as_words());
            match self.index.get_mut(&hash) {
                Some(IdList::One(_)) => {
                    self.index.remove(&hash);
                }
                Some(IdList::Many(ids)) => {
                    ids.retain(|&i| i != id);
                    if let [only] = ids[..] {
                        self.index.insert(hash, IdList::One(only));
                    }
                }
                None => unreachable!("indexed slot"),
            }
            self.live -= 1;
            self.tombstones += 1;
        }
    }

    /// Reclaim tombstoned slots when they outnumber live entries. Slot ids
    /// change (live entries are renumbered in insertion order), so this must
    /// only run between incremental executions, never while ids are held.
    pub fn maybe_compact(&mut self) {
        if self.tombstones <= self.live {
            return;
        }
        self.slots.retain(|s| s.is_some());
        self.index.clear();
        for (next, slot) in self.slots.iter().enumerate() {
            let (key, _) = slot.as_ref().expect("retained slot");
            let id = next as u32;
            match self.index.entry(hash_words(key.as_words())) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(id),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(IdList::One(id));
                }
            }
        }
        self.tombstones = 0;
    }

    /// Split this table into `partitions` tables by key hash
    /// ([`partition_of`] over each slot's stored key words), consuming it.
    ///
    /// Live entries are distributed in slot (= insertion) order, so each
    /// partition's insertion order is the subsequence of the original's that
    /// it owns — the invariant the exchange's deterministic merge relies on.
    /// Tombstones are dropped; slot ids are renumbered per partition.
    pub fn split_by(self, partitions: usize) -> Vec<FlatTable<V>> {
        assert!(partitions > 0, "split_by needs at least one partition");
        let mut parts: Vec<FlatTable<V>> = (0..partitions).map(|_| FlatTable::new()).collect();
        for slot in self.slots.into_iter().flatten() {
            let (key, value) = slot;
            let p = partition_of(key.as_words(), partitions);
            let mut value = Some(value);
            parts[p].id_or_insert_with(key.as_words(), || value.take().expect("fresh key"));
            debug_assert!(value.is_none(), "duplicate key within one table");
        }
        parts
    }

    /// Rebuild one table from partitioned tables (inverse of
    /// [`Self::split_by`] up to slot renumbering), consuming them.
    ///
    /// Entries are inserted in partition-index order, and within each
    /// partition in its insertion order — deterministic regardless of how
    /// the partitions were populated concurrently.
    pub fn merge(parts: Vec<FlatTable<V>>) -> FlatTable<V> {
        let mut out = FlatTable::new();
        for part in parts {
            for slot in part.slots.into_iter().flatten() {
                let (key, value) = slot;
                let mut value = Some(value);
                out.id_or_insert_with(key.as_words(), || value.take().expect("fresh key"));
                debug_assert!(value.is_none(), "key owned by two partitions");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{StrInterner, Value};

    fn key(i: i64) -> KeyBuf {
        let mut k = KeyBuf::new();
        k.push_value(&Value::Int(i), &mut StrInterner::new());
        k
    }

    #[test]
    fn insert_lookup_remove() {
        let mut t: FlatTable<i64> = FlatTable::new();
        let a = t.id_or_insert_with(key(1).as_words(), || 10);
        let b = t.id_or_insert_with(key(2).as_words(), || 20);
        assert_ne!(a, b);
        assert_eq!(t.id_or_insert_with(key(1).as_words(), || 99), a, "existing key keeps its slot");
        assert_eq!(t.get(key(1).as_words()), Some(&10));
        assert_eq!(t.id_of(key(2).as_words()), Some(b));
        *t.get_by_id_mut(a).unwrap() += 1;
        assert_eq!(t.get_by_id(a), Some(&11));
        assert_eq!(t.len(), 2);
        t.remove_id(a);
        assert_eq!(t.get(key(1).as_words()), None);
        assert_eq!(t.len(), 1);
        t.remove_id(a); // dead id: no-op
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn compaction_renumbers_but_preserves_entries() {
        let mut t: FlatTable<i64> = FlatTable::new();
        for i in 0..10 {
            t.id_or_insert_with(key(i).as_words(), || i * 100);
        }
        for i in 0..9 {
            let id = t.id_of(key(i).as_words()).unwrap();
            t.remove_id(id);
        }
        t.maybe_compact();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(key(9).as_words()), Some(&900));
        assert_eq!(t.id_of(key(9).as_words()), Some(0), "renumbered to dense prefix");
        // And the table keeps working after compaction.
        let id = t.id_or_insert_with(key(42).as_words(), || 7);
        assert_eq!(t.get_by_id(id), Some(&7));
    }

    #[test]
    fn compaction_skipped_while_mostly_live() {
        let mut t: FlatTable<i64> = FlatTable::new();
        for i in 0..4 {
            t.id_or_insert_with(key(i).as_words(), || i);
        }
        let id0 = t.id_of(key(0).as_words()).unwrap();
        t.remove_id(id0);
        t.maybe_compact(); // 1 tombstone vs 3 live: keep ids stable
        assert_eq!(t.id_of(key(3).as_words()), Some(3));
    }

    /// Split distributes every entry to its hash-owner and merge restores
    /// the full table with a deterministic insertion order: partition-index
    /// order, then per-partition insertion order. Running split→merge twice
    /// must produce identical slot numbering.
    #[test]
    fn split_merge_roundtrip_is_deterministic() {
        let build = || {
            let mut t: FlatTable<i64> = FlatTable::new();
            for i in 0..40 {
                t.id_or_insert_with(key(i).as_words(), || i * 10);
            }
            t
        };
        for partitions in [1usize, 2, 4, 8] {
            let parts = build().split_by(partitions);
            assert_eq!(parts.len(), partitions);
            let total: usize = parts.iter().map(|p| p.len()).sum();
            assert_eq!(total, 40, "no entry lost or duplicated");
            for (p, part) in parts.iter().enumerate() {
                for i in 0..40 {
                    if part.get(key(i).as_words()).is_some() {
                        assert_eq!(partition_of(key(i).as_words(), partitions), p);
                    }
                }
            }
            let merged = FlatTable::merge(parts);
            assert_eq!(merged.len(), 40);
            let merged2 = FlatTable::merge(build().split_by(partitions));
            for i in 0..40 {
                assert_eq!(merged.get(key(i).as_words()), Some(&(i * 10)));
                assert_eq!(
                    merged.id_of(key(i).as_words()),
                    merged2.id_of(key(i).as_words()),
                    "merge order must be deterministic"
                );
            }
        }
    }

    /// Each partition compacts its tombstones independently without
    /// disturbing the other partitions' live entries.
    #[test]
    fn per_partition_tombstone_compaction() {
        let mut t: FlatTable<i64> = FlatTable::new();
        for i in 0..32 {
            t.id_or_insert_with(key(i).as_words(), || i);
        }
        let mut parts = t.split_by(4);
        // Tombstone most of partition 0, none of the others.
        let victims: Vec<u32> = (0..32)
            .filter_map(|i| parts[0].id_of(key(i).as_words()))
            .take(parts[0].len().saturating_sub(1))
            .collect();
        let survivors_before: usize = parts.iter().map(|p| p.len()).sum();
        for id in victims {
            parts[0].remove_id(id);
        }
        let removed = survivors_before - parts.iter().map(|p| p.len()).sum::<usize>();
        for p in parts.iter_mut() {
            p.maybe_compact();
        }
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 32 - removed);
        let merged = FlatTable::merge(parts);
        let mut live = 0;
        for i in 0..32 {
            if let Some(v) = merged.get(key(i).as_words()) {
                assert_eq!(*v, i);
                live += 1;
            }
        }
        assert_eq!(live, 32 - removed);
    }

    /// Skew pin: when every key hashes to one partition, that partition
    /// holds everything, the rest stay empty, and the roundtrip is still
    /// correct and ordered.
    #[test]
    fn skewed_split_pins_one_partition() {
        // A single repeated key value obviously pins; use many distinct keys
        // that share an owner instead, by filtering for a fixed partition.
        let partitions = 4;
        let target = partition_of(key(0).as_words(), partitions);
        let pinned: Vec<i64> =
            (0..500).filter(|&i| partition_of(key(i).as_words(), partitions) == target).collect();
        assert!(pinned.len() >= 8, "need a few keys owned by one partition");
        let mut t: FlatTable<i64> = FlatTable::new();
        for &i in &pinned {
            t.id_or_insert_with(key(i).as_words(), || i);
        }
        let parts = t.split_by(partitions);
        for (p, part) in parts.iter().enumerate() {
            assert_eq!(part.len(), if p == target { pinned.len() } else { 0 });
        }
        let merged = FlatTable::merge(parts);
        for (pos, &i) in pinned.iter().enumerate() {
            assert_eq!(merged.get(key(i).as_words()), Some(&i));
            assert_eq!(merged.id_of(key(i).as_words()), Some(pos as u32), "insertion order kept");
        }
    }

    #[test]
    fn colliding_hashes_stay_distinct() {
        // Force the Many arm by inserting through a table whose index we
        // seed with an artificial collision: two distinct keys that the
        // 64-bit hash maps together are astronomically unlikely to occur
        // naturally, so exercise the overflow list directly instead.
        let mut t: FlatTable<i64> = FlatTable::new();
        let a = t.id_or_insert_with(key(1).as_words(), || 1);
        let b = t.id_or_insert_with(key(2).as_words(), || 2);
        // Merge both ids under both hash entries: lookups must still
        // resolve by comparing stored key words.
        let ha = hash_words(key(1).as_words());
        let hb = hash_words(key(2).as_words());
        t.index.insert(ha, IdList::Many(vec![a, b]));
        t.index.insert(hb, IdList::Many(vec![a, b]));
        assert_eq!(t.get(key(1).as_words()), Some(&1));
        assert_eq!(t.get(key(2).as_words()), Some(&2));
        t.remove_id(a);
        assert_eq!(t.get(key(1).as_words()), None);
        assert_eq!(t.get(key(2).as_words()), Some(&2));
    }
}
