//! Insertion-ordered flat hash table for operator state.
//!
//! [`FlatTable`] keys dense state slots by encoded [`KeyBuf`]s: an FxHash
//! index maps the 64-bit hash of a key's `u64` words to a `u32` slot id
//! into a `Vec` of values, so lookups hash a few words (no `Value` enum
//! walks, no SipHash seeds) and the values live contiguously in insertion
//! order. The key itself is materialized exactly once, in the slot — the
//! index holds only `(hash, id)`, so inserting a fresh key costs one
//! allocation, not two. Hash collisions (distinct keys, equal 64-bit hash)
//! are handled by an id overflow list and resolved by comparing the slot's
//! stored key words. Removal tombstones the slot — ids handed out during
//! one incremental execution stay valid for its whole duration — and
//! [`FlatTable::maybe_compact`], called by operators *between* executions,
//! reclaims tombstoned slots once they outnumber live ones.
//!
//! Layout (slot order, index bucket order) is a pure function of the
//! operation sequence: FxHash has no per-process seed, and the drivers
//! guarantee a deterministic operation sequence per operator. Nothing the
//! engine emits depends on layout anyway — emission order comes from
//! per-slot sorted entry lists (join) or first-touch lists (aggregation) —
//! so layout determinism is defense in depth, extending `validate_replay`'s
//! cross-process guarantee to the state itself.

use ishare_common::{FxHashMap, FxHasher, KeyBuf};
use std::hash::Hasher;

/// Full 64-bit FxHash of encoded key words. Both the index key and the
/// probe side use this exact loop, so equal words always collide into the
/// same index entry.
#[inline]
fn hash_words(words: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for w in words {
        h.write_u64(*w);
    }
    h.finish()
}

/// Slot ids sharing one 64-bit hash. Almost always exactly one; the `Many`
/// arm exists so a genuine 64-bit collision degrades to a short scan
/// instead of a wrong answer.
#[derive(Debug, Clone)]
enum IdList {
    One(u32),
    Many(Vec<u32>),
}

impl IdList {
    #[inline]
    fn as_slice(&self) -> &[u32] {
        match self {
            IdList::One(id) => std::slice::from_ref(id),
            IdList::Many(ids) => ids,
        }
    }

    fn push(&mut self, id: u32) {
        match self {
            IdList::One(first) => *self = IdList::Many(vec![*first, id]),
            IdList::Many(ids) => ids.push(id),
        }
    }
}

/// A hash-indexed dense table keyed by encoded keys.
#[derive(Debug, Clone)]
pub struct FlatTable<V> {
    index: FxHashMap<u64, IdList>,
    slots: Vec<Option<(KeyBuf, V)>>,
    live: usize,
    tombstones: usize,
}

impl<V> Default for FlatTable<V> {
    fn default() -> Self {
        FlatTable { index: FxHashMap::default(), slots: Vec::new(), live: 0, tombstones: 0 }
    }
}

impl<V> FlatTable<V> {
    /// Fresh empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` iff no live entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    #[inline]
    fn find(&self, key: &[u64], hash: u64) -> Option<u32> {
        for &id in self.index.get(&hash)?.as_slice() {
            if let Some((k, _)) = &self.slots[id as usize] {
                if k.as_words() == key {
                    return Some(id);
                }
            }
        }
        None
    }

    /// Look up by encoded key words (zero-allocation probe from a scratch
    /// [`KeyBuf`]).
    #[inline]
    pub fn get(&self, key: &[u64]) -> Option<&V> {
        let id = self.find(key, hash_words(key))?;
        self.slots[id as usize].as_ref().map(|(_, v)| v)
    }

    /// Slot id for a key, if present. Ids are stable until the next
    /// [`Self::maybe_compact`].
    #[inline]
    pub fn id_of(&self, key: &[u64]) -> Option<u32> {
        self.find(key, hash_words(key))
    }

    /// Value at a live slot id.
    #[inline]
    pub fn get_by_id_mut(&mut self, id: u32) -> Option<&mut V> {
        self.slots[id as usize].as_mut().map(|(_, v)| v)
    }

    /// Value at a live slot id (shared).
    #[inline]
    pub fn get_by_id(&self, id: u32) -> Option<&V> {
        self.slots[id as usize].as_ref().map(|(_, v)| v)
    }

    /// Slot id for `key`, inserting `make()` into a fresh slot when absent.
    /// The key words are materialized into one owned [`KeyBuf`] only on
    /// insert (misses), never on the probe path.
    #[inline]
    pub fn id_or_insert_with(&mut self, key: &[u64], make: impl FnOnce() -> V) -> u32 {
        let hash = hash_words(key);
        if let Some(id) = self.find(key, hash) {
            return id;
        }
        let id = u32::try_from(self.slots.len()).expect("flat table overflow");
        self.slots.push(Some((KeyBuf::from_words(key), make())));
        self.live += 1;
        match self.index.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(id),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(IdList::One(id));
            }
        }
        id
    }

    /// Remove the entry at `id`, tombstoning its slot. No-op on a dead id.
    pub fn remove_id(&mut self, id: u32) {
        if let Some((key, _)) = self.slots[id as usize].take() {
            let hash = hash_words(key.as_words());
            match self.index.get_mut(&hash) {
                Some(IdList::One(_)) => {
                    self.index.remove(&hash);
                }
                Some(IdList::Many(ids)) => {
                    ids.retain(|&i| i != id);
                    if let [only] = ids[..] {
                        self.index.insert(hash, IdList::One(only));
                    }
                }
                None => unreachable!("indexed slot"),
            }
            self.live -= 1;
            self.tombstones += 1;
        }
    }

    /// Reclaim tombstoned slots when they outnumber live entries. Slot ids
    /// change (live entries are renumbered in insertion order), so this must
    /// only run between incremental executions, never while ids are held.
    pub fn maybe_compact(&mut self) {
        if self.tombstones <= self.live {
            return;
        }
        self.slots.retain(|s| s.is_some());
        self.index.clear();
        for (next, slot) in self.slots.iter().enumerate() {
            let (key, _) = slot.as_ref().expect("retained slot");
            let id = next as u32;
            match self.index.entry(hash_words(key.as_words())) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(id),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(IdList::One(id));
                }
            }
        }
        self.tombstones = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{StrInterner, Value};

    fn key(i: i64) -> KeyBuf {
        let mut k = KeyBuf::new();
        k.push_value(&Value::Int(i), &mut StrInterner::new());
        k
    }

    #[test]
    fn insert_lookup_remove() {
        let mut t: FlatTable<i64> = FlatTable::new();
        let a = t.id_or_insert_with(key(1).as_words(), || 10);
        let b = t.id_or_insert_with(key(2).as_words(), || 20);
        assert_ne!(a, b);
        assert_eq!(t.id_or_insert_with(key(1).as_words(), || 99), a, "existing key keeps its slot");
        assert_eq!(t.get(key(1).as_words()), Some(&10));
        assert_eq!(t.id_of(key(2).as_words()), Some(b));
        *t.get_by_id_mut(a).unwrap() += 1;
        assert_eq!(t.get_by_id(a), Some(&11));
        assert_eq!(t.len(), 2);
        t.remove_id(a);
        assert_eq!(t.get(key(1).as_words()), None);
        assert_eq!(t.len(), 1);
        t.remove_id(a); // dead id: no-op
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn compaction_renumbers_but_preserves_entries() {
        let mut t: FlatTable<i64> = FlatTable::new();
        for i in 0..10 {
            t.id_or_insert_with(key(i).as_words(), || i * 100);
        }
        for i in 0..9 {
            let id = t.id_of(key(i).as_words()).unwrap();
            t.remove_id(id);
        }
        t.maybe_compact();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(key(9).as_words()), Some(&900));
        assert_eq!(t.id_of(key(9).as_words()), Some(0), "renumbered to dense prefix");
        // And the table keeps working after compaction.
        let id = t.id_or_insert_with(key(42).as_words(), || 7);
        assert_eq!(t.get_by_id(id), Some(&7));
    }

    #[test]
    fn compaction_skipped_while_mostly_live() {
        let mut t: FlatTable<i64> = FlatTable::new();
        for i in 0..4 {
            t.id_or_insert_with(key(i).as_words(), || i);
        }
        let id0 = t.id_of(key(0).as_words()).unwrap();
        t.remove_id(id0);
        t.maybe_compact(); // 1 tombstone vs 3 live: keep ids stable
        assert_eq!(t.id_of(key(3).as_words()), Some(3));
    }

    #[test]
    fn colliding_hashes_stay_distinct() {
        // Force the Many arm by inserting through a table whose index we
        // seed with an artificial collision: two distinct keys that the
        // 64-bit hash maps together are astronomically unlikely to occur
        // naturally, so exercise the overflow list directly instead.
        let mut t: FlatTable<i64> = FlatTable::new();
        let a = t.id_or_insert_with(key(1).as_words(), || 1);
        let b = t.id_or_insert_with(key(2).as_words(), || 2);
        // Merge both ids under both hash entries: lookups must still
        // resolve by comparing stored key words.
        let ha = hash_words(key(1).as_words());
        let hb = hash_words(key(2).as_words());
        t.index.insert(ha, IdList::Many(vec![a, b]));
        t.index.insert(hb, IdList::Many(vec![a, b]));
        assert_eq!(t.get(key(1).as_words()), Some(&1));
        assert_eq!(t.get(key(2).as_words()), Some(&2));
        t.remove_id(a);
        assert_eq!(t.get(key(1).as_words()), None);
        assert_eq!(t.get(key(2).as_words()), Some(&2));
    }
}
