//! Extracting per-query final results from an output subplan's delta stream.

use ishare_common::QueryId;
use ishare_storage::{DeltaRow, Row};
use std::collections::HashMap;

/// A query's materialized result: row → multiplicity.
pub type QueryResult = HashMap<Row, i64>;

/// Consolidate the delta rows valid for query `q` into its final result
/// multiset. This is what a dashboard reading query `q`'s output buffer
/// observes after the final incremental execution.
pub fn query_result<'a>(rows: impl IntoIterator<Item = &'a DeltaRow>, q: QueryId) -> QueryResult {
    let mut out = QueryResult::new();
    for r in rows {
        if r.mask.contains(q) {
            *out.entry(r.row.clone()).or_insert(0) += r.weight;
        }
    }
    out.retain(|_, w| *w != 0);
    out
}

/// Compare two result multisets with relative tolerance on float columns.
///
/// Incremental execution folds values in a different order than batch
/// execution, so float aggregates differ in the last few bits; exact
/// equality would be wrong to demand. Two rows match when non-float values
/// are equal and floats agree within `rel_eps` (relative, with an absolute
/// floor of the same magnitude).
pub fn approx_result_eq(a: &QueryResult, b: &QueryResult, rel_eps: f64) -> bool {
    if a.values().sum::<i64>() != b.values().sum::<i64>() {
        return false;
    }
    let mut remaining: Vec<(&Row, i64)> = b.iter().map(|(r, w)| (r, *w)).collect();
    for (row, w) in a {
        let mut need = *w;
        for slot in remaining.iter_mut() {
            if slot.1 != 0 && rows_approx_eq(row, slot.0, rel_eps) {
                let take = need.min(slot.1);
                slot.1 -= take;
                need -= take;
                if need == 0 {
                    break;
                }
            }
        }
        if need != 0 {
            return false;
        }
    }
    remaining.iter().all(|(_, w)| *w == 0)
}

fn rows_approx_eq(a: &Row, b: &Row, rel_eps: f64) -> bool {
    use ishare_common::Value;
    if a.arity() != b.arity() {
        return false;
    }
    a.values().iter().zip(b.values()).all(|(x, y)| match (x, y) {
        (Value::Float(p), Value::Float(q)) => {
            let scale = p.abs().max(q.abs()).max(1.0);
            (p - q).abs() <= rel_eps * scale
        }
        _ => x == y,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{QuerySet, Value};

    fn row(v: i64) -> Row {
        Row::new(vec![Value::Int(v)])
    }

    #[test]
    fn approx_eq_tolerates_float_noise() {
        let mut a = QueryResult::new();
        let mut b = QueryResult::new();
        a.insert(Row::new(vec![Value::str("x"), Value::Float(100.0)]), 1);
        b.insert(Row::new(vec![Value::str("x"), Value::Float(100.0 + 1e-9)]), 1);
        assert!(approx_result_eq(&a, &b, 1e-9));
        assert!(!approx_result_eq(&a, &b, 1e-13));
        // Non-float differences are exact.
        let mut c = QueryResult::new();
        c.insert(Row::new(vec![Value::str("y"), Value::Float(100.0)]), 1);
        assert!(!approx_result_eq(&a, &c, 1e-6));
        // Multiplicity differences fail.
        let mut d = a.clone();
        d.insert(Row::new(vec![Value::str("z"), Value::Float(1.0)]), 1);
        assert!(!approx_result_eq(&a, &d, 1e-6));
        // Empty == empty.
        assert!(approx_result_eq(&QueryResult::new(), &QueryResult::new(), 1e-6));
    }

    #[test]
    fn filters_by_query_and_consolidates() {
        let q0 = QuerySet::single(QueryId(0));
        let q01 = QuerySet::from_iter([QueryId(0), QueryId(1)]);
        let rows = vec![
            DeltaRow { row: row(1), weight: 1, mask: q01 },
            DeltaRow { row: row(1), weight: -1, mask: q01 },
            DeltaRow { row: row(2), weight: 1, mask: q0 },
            DeltaRow { row: row(3), weight: 1, mask: QuerySet::single(QueryId(1)) },
        ];
        let r0 = query_result(&rows, QueryId(0));
        assert_eq!(r0.len(), 1);
        assert_eq!(r0[&row(2)], 1);
        let r1 = query_result(&rows, QueryId(1));
        assert_eq!(r1.len(), 1);
        assert_eq!(r1[&row(3)], 1);
        assert!(query_result(&rows, QueryId(5)).is_empty());
    }
}
