//! # ishare-exec
//!
//! The shared incremental execution engine (Sec. 2.3 of the paper): iShare
//! "combines the ideas of SharedDB and prior work in incremental view
//! maintenance to support shared incremental execution of scan, select,
//! project, aggregate, and inner join operators with respect to insert,
//! delete, and update operations."
//!
//! Key mechanics, all implemented here:
//!
//! * **Weighted deltas** — every tuple carries a signed multiset weight
//!   (insert `+1`, delete `-1`; updates are delete+insert). Operators are
//!   closed under this algebra: joins multiply weights, aggregates sum them.
//! * **Query bitvectors** — every tuple carries the SharedDB mask of queries
//!   it is valid for; marking selects clear bits instead of dropping rows,
//!   and rows die only when no query needs them.
//! * **Mask-partitioned aggregate state** — when marking selects upstream
//!   give tuples of one group different masks, the group's state is split
//!   into disjoint mask classes via partition refinement, so each query sees
//!   exactly the aggregate over *its* tuples while the common all-bits case
//!   keeps a single shared accumulator.
//! * **Delete amplification** — an aggregate refresh that changes a group
//!   emits a retraction of the previously output row plus the new row. This
//!   is the eager-execution overhead the whole paper is about (Fig. 1).
//! * **Non-incrementable MIN/MAX** — deleting the current extremum forces a
//!   rescan of the group's value multiset, charged to the work counter at
//!   [`CostWeights::minmax_rescan`] per stored value (the paper's Q15
//!   behaviour).
//!
//! [`SubplanExecutor`] runs one subplan's operator tree over one incremental
//! input batch; the paced driver in `ishare-stream` owns the buffers and
//! calls it repeatedly. [`batch_ref`] provides an independent, naive batch
//! executor used by the test suites to check that incremental execution at
//! *any* pace produces identical final results.
//!
//! The operator implementations come in three interchangeable datapaths
//! ([`ExecMode`]): the default *kernel* datapath ([`join`], [`aggregate`],
//! [`operators`] over [`flat`] state and compiled expressions), the
//! columnar *vectorized* datapath ([`vectorized`] — SoA batches and
//! selection-vector kernels through the scan/select/project hot path, with
//! columnar entry points into the same stateful operators), and the
//! original interpreter-shaped *reference* datapath ([`reference`]), kept
//! verbatim as a differential oracle. All three produce bit-identical
//! outputs and charged work; only wall-clock differs.
//!
//! [`CostWeights::minmax_rescan`]: ishare_common::CostWeights

#![warn(missing_docs)]

pub mod aggregate;
pub mod batch_ref;
pub mod executor;
pub mod flat;
pub mod join;
pub mod operators;
pub mod partition;
pub mod reference;
pub mod result;
pub mod vectorized;

pub use executor::{ExecMode, ExecOptions, SubplanExecutor};
pub use partition::{PartitionStat, PartitionedAgg, PartitionedJoin};
pub use result::{approx_result_eq, query_result, QueryResult};
pub use vectorized::{BatchStats, ColsView, VecDelta};
