//! The vectorized (batch-at-a-time) datapath: columnar kernels over
//! [`ColumnarBatch`]es and selection vectors — `ExecMode::Vectorized`.
//!
//! The row kernels ([`crate::operators`]) process one [`DeltaRow`] at a
//! time: every tuple access pays an `Arc<[Value]>` indirection, an enum-tag
//! branch per column, and per-row compiled-expression dispatch. This module
//! instead carries a [`VecDelta`] between operators — a [`ColumnarBatch`]
//! (one typed `Vec` per column plus parallel weight/mask vectors) narrowed
//! by a *selection vector* of row indices — so scan→select→project chains
//! run as tight loops over primitive slices and filters never materialize
//! survivors.
//!
//! **Bit-identity contract.** Emission order, weights, masks, and every
//! per-subplan × per-`OpKind` work-charge cell are byte-identical to the
//! row-kernel datapath (and hence to the reference): the selection vector is
//! kept ascending, so selected rows keep arrival order; `Filter` is charged
//! per evaluated `(row, branch)` pair exactly as [`crate::operators::apply_select`]
//! counts them (branch-major iteration visits the same pair set); `Scan` and
//! `Project` charges use the same unit counts; and a batch that cannot be
//! laid out columnar (rows disagreeing on arity) falls back to the row
//! kernels wholesale via [`VecDelta::Rows`]. Error *ordering* is the one
//! documented divergence: branch-major selects and column-major projections
//! may surface a different (equally valid) error first; all bit-identity
//! gates cover non-error runs only, same as the partition exchange.
//!
//! Stateful operators (join, aggregate) keep their row-kernel state layout —
//! the vectorized mode shares `JoinState`/`AggState` (and their partitioned
//! wrappers) with `ExecMode::Kernels`, so churn surgery, state bundles, and
//! snapshots work unchanged. Their columnar entry points live with the
//! operators: [`crate::join::JoinState::execute_columnar`] and
//! [`crate::aggregate::AggState::execute_columnar`].

use crate::operators::{apply_project, apply_select};
use ishare_common::{CostWeights, OpKind, QuerySet, Result, WorkCounter};
use ishare_expr::compile::{CompiledPredicate, CompiledProjection};
use ishare_plan::SelectBranch;
use ishare_storage::{ColumnarBatch, DeltaBatch, DeltaRow};

/// A delta flowing between vectorized operators: columnar when the batch is
/// rectangular (the overwhelmingly common case), rows otherwise.
#[derive(Debug)]
pub enum VecDelta {
    /// Columnar payload: the batch, an ascending selection vector of live
    /// row indices, and the (possibly narrowed) mask of each *selected* row
    /// (parallel to `sel`, overriding `batch.masks`). Filters rewrite
    /// `sel`/`masks`; the batch itself is immutable once built.
    Cols {
        /// The SoA batch.
        batch: ColumnarBatch,
        /// Ascending indices of the selected rows.
        sel: Vec<u32>,
        /// Current mask of each selected row (parallel to `sel`).
        masks: Vec<QuerySet>,
    },
    /// Row fallback (ragged batches, and the output of row-path stateful
    /// operators). Downstream vectorized operators process this arm with
    /// the row kernels — bit-identical by construction.
    Rows(DeltaBatch),
}

impl VecDelta {
    /// Number of live (selected) rows.
    pub fn len(&self) -> usize {
        match self {
            VecDelta::Cols { sel, .. } => sel.len(),
            VecDelta::Rows(b) => b.len(),
        }
    }

    /// `true` iff no live rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the live rows as a [`DeltaBatch`] in selection order —
    /// exactly the batch the row datapath would be carrying at this point.
    pub fn into_rows(self) -> DeltaBatch {
        match self {
            VecDelta::Cols { batch, sel, masks } => batch.to_rows_selected(&sel, &masks),
            VecDelta::Rows(b) => b,
        }
    }

    /// Borrow as a [`ColsView`] when columnar.
    pub fn as_cols(&self) -> Option<ColsView<'_>> {
        match self {
            VecDelta::Cols { batch, sel, masks } => Some(ColsView { batch, sel, masks }),
            VecDelta::Rows(_) => None,
        }
    }
}

/// A borrowed columnar view (batch + selection + mask overrides) — what the
/// stateful operators' columnar entry points consume.
#[derive(Debug, Clone, Copy)]
pub struct ColsView<'a> {
    /// The SoA batch.
    pub batch: &'a ColumnarBatch,
    /// Ascending indices of the selected rows.
    pub sel: &'a [u32],
    /// Current mask of each selected row (parallel to `sel`).
    pub masks: &'a [QuerySet],
}

impl ColsView<'_> {
    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.sel.len()
    }

    /// `true` iff no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.sel.is_empty()
    }

    /// Materialize the selected rows (selection order, masks overridden).
    pub fn to_rows(&self) -> DeltaBatch {
        self.batch.to_rows_selected(self.sel, self.masks)
    }
}

/// Per-subplan vectorized batch statistics, feeding the `batch.fill` /
/// `batch.selectivity` obs gauges: how full the columnar batches entering
/// the subplan are, and what fraction of evaluated selection candidates
/// survive its marking selects. Makes the skew between tiny churn-era
/// batches and bulk fronts visible in the dashboard.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchStats {
    /// Input batches seen at the subplan's leaves (present entries only).
    pub batches: u64,
    /// Delta rows across those batches, pre-narrowing.
    pub rows: u64,
    /// Selected rows entering vectorized selects.
    pub scanned: u64,
    /// Selected rows surviving vectorized selects.
    pub kept: u64,
}

impl BatchStats {
    /// Mean input batch length (`batch.fill`); 0 when no batches were seen.
    pub fn mean_fill(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.rows as f64 / self.batches as f64
        }
    }

    /// Fraction of select candidates surviving (`batch.selectivity`); 1.0
    /// when no select ran (nothing was filtered away).
    pub fn selectivity(&self) -> f64 {
        if self.scanned == 0 {
            1.0
        } else {
            self.kept as f64 / self.scanned as f64
        }
    }

    /// Fold another stats record in (parallel driver aggregation).
    pub fn merge(&mut self, other: &BatchStats) {
        self.batches += other.batches;
        self.rows += other.rows;
        self.scanned += other.scanned;
        self.kept += other.kept;
    }
}

/// Vectorized input narrowing — the σ_filter at a subplan boundary. Charges
/// `Scan × batch.len()` exactly like [`crate::operators::narrow_input`],
/// then builds the columnar batch *once* (it is reused by every operator
/// above) and narrows it to `queries` by rewriting the selection vector.
/// Ragged batches fall back to a row-narrowed [`VecDelta::Rows`].
///
/// `needed` is the late-materialization column set: only these columns are
/// converted to typed vectors (the executor computes the set by walking the
/// ops above this input — predicate fast-path columns, bare projection
/// outputs, join key and aggregate group/arg columns). Everything else stays
/// [`ishare_storage::Column::Pruned`]; whole-row expression programs and row
/// materialization go through the retained backing rows, so pruning never
/// changes results — only the conversion cost, which for wide inputs is the
/// bulk of the vectorized datapath's overhead.
pub fn narrow_columnar(
    batch: &DeltaBatch,
    queries: QuerySet,
    needed: &[usize],
    weights: &CostWeights,
    counter: &WorkCounter,
) -> VecDelta {
    counter.charge(OpKind::Scan, weights.scan, batch.len());
    match ColumnarBatch::from_rows_pruned(batch, needed) {
        Some(cb) => {
            let mut sel = Vec::with_capacity(cb.len());
            let mut masks = Vec::with_capacity(cb.len());
            for (i, m) in cb.masks.iter().enumerate() {
                let mm = m.intersect(queries);
                if !mm.is_empty() {
                    sel.push(i as u32);
                    masks.push(mm);
                }
            }
            VecDelta::Cols { batch: cb, sel, masks }
        }
        None => VecDelta::Rows(
            batch
                .rows
                .iter()
                .filter_map(|r| {
                    let mask = r.mask.intersect(queries);
                    if mask.is_empty() {
                        None
                    } else {
                        Some(DeltaRow { row: r.row.clone(), weight: r.weight, mask })
                    }
                })
                .collect(),
        ),
    }
}

/// Vectorized shared marking select (σ*). Branch-major: for each branch, the
/// applicable rows (those carrying the branch's query bits) are gathered
/// into a sub-selection, the predicate runs over it as one
/// [`CompiledPredicate::eval_batch`] call, and matches fold the branch's
/// bits into the row's output mask. Rows whose output mask ends up empty are
/// dropped from the selection — never materialized.
///
/// `Filter` is charged per evaluated `(row, branch)` pair — the same pair
/// set, and therefore the same batched charge, as the row-major
/// [`apply_select`].
pub fn select_columnar(
    delta: VecDelta,
    branches: &[SelectBranch],
    compiled: &[CompiledPredicate],
    weights: &CostWeights,
    counter: &WorkCounter,
) -> Result<VecDelta> {
    let (batch, sel, masks) = match delta {
        VecDelta::Rows(b) => {
            return apply_select(b, branches, compiled, weights, counter).map(VecDelta::Rows)
        }
        VecDelta::Cols { batch, sel, masks } => (batch, sel, masks),
    };
    debug_assert_eq!(branches.len(), compiled.len());
    let mut evals = 0usize;
    let mut new_masks: Vec<QuerySet> = vec![QuerySet::EMPTY; sel.len()];
    let mut app_pos: Vec<u32> = Vec::new(); // positions into `sel`
    let mut app_rows: Vec<u32> = Vec::new(); // batch row indices
    let mut matched: Vec<u32> = Vec::new();
    for (b, p) in branches.iter().zip(compiled) {
        app_pos.clear();
        app_rows.clear();
        matched.clear();
        for (k, m) in masks.iter().enumerate() {
            if !b.queries.intersect(*m).is_empty() {
                app_pos.push(k as u32);
                app_rows.push(sel[k]);
            }
        }
        if app_rows.is_empty() {
            continue;
        }
        evals += app_rows.len();
        p.eval_batch(&batch, &app_rows, &mut matched)?;
        // `matched` is an ascending subset of `app_rows`; one merge walk
        // recovers each match's position.
        let mut next = 0usize;
        for (&pos, &row) in app_pos.iter().zip(&app_rows) {
            if next < matched.len() && matched[next] == row {
                let k = pos as usize;
                new_masks[k] = new_masks[k].union(b.queries.intersect(masks[k]));
                next += 1;
            }
        }
    }
    counter.charge(OpKind::Filter, weights.filter, evals);
    let mut out_sel = Vec::with_capacity(sel.len());
    let mut out_masks = Vec::with_capacity(sel.len());
    for (k, m) in new_masks.iter().enumerate() {
        if !m.is_empty() {
            out_sel.push(sel[k]);
            out_masks.push(*m);
        }
    }
    Ok(VecDelta::Cols { batch, sel: out_sel, masks: out_masks })
}

/// Vectorized merged projection. Identity projections pass the batch (and
/// its selection) through untouched; everything else computes the output
/// columns with [`CompiledProjection::project_batch`] — bare-column outputs
/// become gathers, computed outputs evaluate over one scratch row per input
/// row — and the result is a fresh compact batch with an identity selection.
/// `Project` is charged `arity × live rows` upfront, exactly like
/// [`apply_project`].
pub fn project_columnar(
    delta: VecDelta,
    proj: &CompiledProjection,
    weights: &CostWeights,
    counter: &WorkCounter,
) -> Result<VecDelta> {
    let (batch, sel, masks) = match delta {
        VecDelta::Rows(b) => return apply_project(b, proj, weights, counter).map(VecDelta::Rows),
        VecDelta::Cols { batch, sel, masks } => (batch, sel, masks),
    };
    counter.charge(OpKind::Project, weights.project, proj.arity() * sel.len());
    if proj.is_identity_for(batch.arity()) {
        return Ok(VecDelta::Cols { batch, sel, masks });
    }
    let columns = proj.project_batch(&batch, &sel)?;
    let out_weights: Vec<i64> = sel.iter().map(|&i| batch.weights[i as usize]).collect();
    let n = sel.len();
    let out = ColumnarBatch::from_parts(columns, out_weights, masks.clone());
    Ok(VecDelta::Cols { batch: out, sel: (0..n as u32).collect(), masks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::narrow_input;
    use ishare_common::{QueryId, Value};
    use ishare_expr::Expr;
    use ishare_storage::Row;

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    fn batch(rows: &[(i64, i64, i64, &[u16])]) -> DeltaBatch {
        rows.iter()
            .map(|&(a, b, w, m)| DeltaRow {
                row: Row::new(vec![Value::Int(a), Value::Int(b)]),
                weight: w,
                mask: qs(m),
            })
            .collect()
    }

    fn branches() -> Vec<SelectBranch> {
        vec![
            SelectBranch { queries: qs(&[0]), predicate: Expr::true_lit() },
            SelectBranch { queries: qs(&[1]), predicate: Expr::col(1).gt(Expr::lit(5i64)) },
        ]
    }

    fn compile(branches: &[SelectBranch]) -> Vec<CompiledPredicate> {
        branches.iter().map(|b| CompiledPredicate::compile(&b.predicate)).collect()
    }

    /// The full narrow→select→project chain must materialize to exactly what
    /// the row kernels produce, with bit-identical charges.
    #[test]
    fn chain_matches_row_kernels_bitwise() {
        let w = CostWeights::default();
        let b = batch(&[
            (1, 9, 1, &[0, 1]),
            (2, 3, 1, &[0, 1]),
            (3, 8, -1, &[1]),
            (4, 2, 1, &[1]),
            (5, 7, 2, &[2]), // narrowed away (subplan serves {0,1})
        ]);
        let br = branches();
        let preds = compile(&br);
        let proj = CompiledProjection::compile(&[Expr::col(1), Expr::col(0).add(Expr::lit(1i64))]);

        let rc = WorkCounter::new();
        let row_out = apply_project(
            apply_select(narrow_input(&b, qs(&[0, 1]), &w, &rc), &br, &preds, &w, &rc).unwrap(),
            &proj,
            &w,
            &rc,
        )
        .unwrap();

        // Late materialization: the select's fast path reads col 1 and the
        // projection's bare output reads col 1 (its computed output runs
        // over backing rows) — col 0 is never converted.
        let vc = WorkCounter::new();
        let narrowed = narrow_columnar(&b, qs(&[0, 1]), &[1], &w, &vc);
        match &narrowed {
            VecDelta::Cols { batch, .. } => {
                assert!(matches!(batch.columns[0], ishare_storage::Column::Pruned { .. }));
                assert!(matches!(batch.columns[1], ishare_storage::Column::Int(_)));
            }
            VecDelta::Rows(_) => panic!("expected columnar"),
        }
        let vec_out = project_columnar(
            select_columnar(narrowed, &br, &preds, &w, &vc).unwrap(),
            &proj,
            &w,
            &vc,
        )
        .unwrap()
        .into_rows();

        assert_eq!(vec_out.rows, row_out.rows, "rows, order, weights, masks must all match");
        assert_eq!(vc.total().get().to_bits(), rc.total().get().to_bits());
        for kind in ishare_common::OpKind::ALL {
            assert_eq!(
                vc.breakdown().get(kind).to_bits(),
                rc.breakdown().get(kind).to_bits(),
                "charge mismatch for {kind:?}"
            );
        }
    }

    #[test]
    fn ragged_batches_fall_back_to_rows() {
        let w = CostWeights::default();
        let c = WorkCounter::new();
        let ragged = DeltaBatch::from_rows(vec![
            DeltaRow::insert(Row::new(vec![Value::Int(1)]), qs(&[0])),
            DeltaRow::insert(Row::new(vec![Value::Int(1), Value::Int(2)]), qs(&[0])),
        ]);
        let v = narrow_columnar(&ragged, qs(&[0]), &[0], &w, &c);
        assert!(matches!(v, VecDelta::Rows(_)));
        assert_eq!(v.len(), 2);
        // The fallback arm still runs the (row) select/project kernels.
        let br = vec![SelectBranch { queries: qs(&[0]), predicate: Expr::true_lit() }];
        let out = select_columnar(v, &br, &compile(&br), &w, &c).unwrap();
        assert!(matches!(out, VecDelta::Rows(_)));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn identity_projection_keeps_selection_lazy() {
        let w = CostWeights::default();
        let c = WorkCounter::new();
        let b = batch(&[(1, 9, 1, &[0]), (2, 3, 1, &[0])]);
        let ident = CompiledProjection::compile(&[Expr::col(0), Expr::col(1)]);
        let v = narrow_columnar(&b, qs(&[0]), &[0, 1], &w, &c);
        let out = project_columnar(v, &ident, &w, &c).unwrap();
        match &out {
            VecDelta::Cols { batch, sel, .. } => {
                assert_eq!(batch.len(), 2, "identity must not rebuild the batch");
                assert_eq!(sel.as_slice(), &[0, 1]);
            }
            VecDelta::Rows(_) => panic!("expected columnar"),
        }
    }

    #[test]
    fn batch_stats_gauges() {
        let mut s = BatchStats::default();
        assert_eq!(s.mean_fill(), 0.0);
        assert_eq!(s.selectivity(), 1.0);
        s.batches = 2;
        s.rows = 10;
        s.scanned = 8;
        s.kept = 2;
        assert_eq!(s.mean_fill(), 5.0);
        assert_eq!(s.selectivity(), 0.25);
        let mut t = BatchStats::default();
        t.merge(&s);
        t.merge(&s);
        assert_eq!(t.batches, 4);
        assert_eq!(t.kept, 4);
    }
}
