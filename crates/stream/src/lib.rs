//! # ishare-stream
//!
//! The paced runtime: the piece of the paper's prototype that Spark + Kafka
//! provided, rebuilt in-process (see DESIGN.md §1 for the substitution
//! rationale).
//!
//! A workload run consists of
//!
//! * base relations whose rows *arrive* uniformly over one trigger
//!   condition (the paper preloads Kafka and pulls at a fixed rate —
//!   "we assume a fixed data arrival rate"),
//! * a [`SharedPlan`] whose subplans execute at their configured paces — a
//!   subplan at pace `k` starts one incremental execution whenever `1/k` of
//!   the trigger's data has arrived, children before parents on shared
//!   ticks, and
//! * measurement: measured *total work* (Σ work of all incremental
//!   executions), per-query *final work* (Σ work of the query's subplans'
//!   final executions — the latency proxy of Sec. 2.1), wall-clock
//!   equivalents, and the final query results.
//!
//! Two drivers share that contract: the sequential reference driver
//! ([`execute_planned`] / [`execute_planned_deltas`]) and the multi-threaded
//! driver ([`execute_planned_parallel`] /
//! [`execute_planned_deltas_parallel`]), which runs independent subplans of
//! a scheduling wavefront concurrently while staying bit-identical to the
//! sequential driver in every measured work number (see [`parallel`]).
//!
//! Both drivers also expose *source-fed* entry points
//! ([`execute_from_source_obs`] / [`execute_from_source_parallel_obs`]) that
//! pull input from an [`ishare_ingest::Source`] — an in-process Kafka-analog
//! with partitioned bounded topics, producer backpressure, out-of-order
//! arrival under event-time watermarks, and offset-commit/replay — instead
//! of pre-materialized `Vec` feeds. The `Vec`-fed entry points above are
//! thin adapters over an in-order source, so there is exactly one feed
//! path, and source-fed runs (jittered or not, killed-and-resumed or not)
//! stay bit-identical to the `Vec`-fed ones.
//!
//! Source-fed runs can additionally adapt ([`execute_adaptive_from_source_obs`]
//! / [`execute_adaptive_from_source_parallel_obs`]): an
//! [`ishare_core::adapt::AdaptController`] watches measured delivery
//! tallies at every wavefront boundary and, when the live stream drifts
//! from the catalog statistics the paces were planned against, re-runs the
//! pace search and installs the new configuration for the remaining
//! wavefronts — deterministically, so adaptive runs replay and parallelize
//! bit-identically too.
//!
//! [`SharedPlan`]: ishare_plan::SharedPlan

#![warn(missing_docs)]

pub mod admission;
pub mod driver;
pub mod measure;
pub mod parallel;
pub mod schedule;

pub use admission::{
    execute_churn_from_source, ChurnEvent, ChurnOp, ChurnOptions, ChurnOutcome, ChurnRunResult,
    ChurnScript,
};
pub use driver::{
    execute_adaptive_from_source_obs, execute_from_source_obs, execute_planned,
    execute_planned_deltas, execute_planned_deltas_obs, execute_planned_deltas_partitioned,
    execute_planned_deltas_partitioned_obs, execute_planned_deltas_reference,
    execute_planned_deltas_vectorized, execute_planned_obs, RunResult, SourceOptions,
    SourceOutcome,
};
pub use ishare_exec::{ExecMode, ExecOptions};
pub use ishare_ingest::{ChurnKind, ChurnRecord, CommitLog, Source, SourceConfig};
pub use ishare_obs::{
    AuxKind, AuxSpan, ExecCounts, ObsConfig, ObsReport, QuerySlack, SlackLedger, SlackPoint,
    SlackSample,
};
pub use measure::{missed_latency_stats, MissedLatencyStats};
pub use parallel::{
    execute_adaptive_from_source_parallel_obs, execute_from_source_parallel_obs,
    execute_planned_deltas_parallel, execute_planned_deltas_parallel_obs,
    execute_planned_deltas_parallel_partitioned_obs, execute_planned_parallel,
    execute_planned_parallel_obs,
};
