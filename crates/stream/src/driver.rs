//! The paced execution driver (sequential reference implementation).
//!
//! [`execute_planned`] / [`execute_planned_deltas`] run every scheduled tick
//! on the calling thread, in global schedule order. This path is the
//! correctness oracle: the parallel driver in [`crate::parallel`] must
//! produce bit-identical work totals and results for any thread count.

use crate::schedule::{build_schedule, front_at, reschedule_after, Tick};
use ishare_common::{
    CostWeights, Error, OpKind, QueryId, QuerySet, Result, TableId, WorkBreakdown, WorkCounter,
    WorkUnits,
};
use ishare_core::adapt::{AdaptController, ObservedTable, WavefrontObservation};
use ishare_exec::{query_result, ExecMode, ExecOptions, QueryResult, SubplanExecutor};
use ishare_ingest::{CommitLog, Source, TopicStats};
use ishare_obs::{
    AuxKind, AuxSpan, ExecCounts, FrontCharge, ObsConfig, ObsReport, SlackLedger, SlackPoint, Span,
    SpanKind, TraceBuffer,
};
use ishare_plan::{InputSource, SharedPlan};
use ishare_storage::{Catalog, ConsumerId, DeltaBuffer, DeltaRow, Retain, Row};
use std::collections::{BTreeMap, HashMap};
use std::ops::Range;
use std::time::{Duration, Instant};

/// Measured outcome of one paced run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Measured total work: Σ work of all incremental executions.
    pub total_work: WorkUnits,
    /// Wall-clock spent inside executions, summed over all of them (the
    /// paper's "total execution time"; equals CPU time on the sequential
    /// driver, and aggregate across-worker CPU time on the parallel one).
    pub total_wall: Duration,
    /// Per query: measured final work (Σ work of the final executions of
    /// the query's subplans).
    pub final_work: BTreeMap<QueryId, f64>,
    /// Per query: wall-clock latency (Σ wall of the final executions of the
    /// query's subplans).
    pub latency: BTreeMap<QueryId, Duration>,
    /// Final materialized result per query.
    pub results: BTreeMap<QueryId, QueryResult>,
    /// Number of incremental executions performed.
    pub executions: usize,
    /// Per query: how many times its subplans executed, split into
    /// incremental (fraction < 1) and final refreshes. A subplan shared by
    /// several queries counts once for each.
    pub executions_per_query: BTreeMap<QueryId, ExecCounts>,
    /// End-to-end wall clock of the whole run — setup, feeding, execution,
    /// and result extraction. Unlike `total_wall` this does not double-count
    /// concurrent work, so it is the number to compare across thread counts.
    pub elapsed: Duration,
    /// Observability report; present iff the run was started with an
    /// [`ObsConfig`] (the `*_obs` entry points).
    pub obs: Option<ObsReport>,
}

/// Everything a driver needs to run a schedule: buffers, executors, and the
/// consumer registrations wiring them together.
pub(crate) struct EngineState {
    pub(crate) base_buffers: HashMap<TableId, DeltaBuffer>,
    /// Registered base tables in deterministic (sorted) order: the order
    /// both drivers advance the ingest topics in.
    pub(crate) base_tables: Vec<TableId>,
    pub(crate) sp_buffers: Vec<DeltaBuffer>,
    pub(crate) executors: Vec<SubplanExecutor>,
    /// Per subplan: `(leaf path, source, consumer)` for each leaf input.
    pub(crate) leaf_consumers: Vec<Vec<(Vec<usize>, InputSource, ConsumerId)>>,
}

/// Build executors, buffers, and consumer registrations for `plan`.
///
/// Retention policy is decided here, once: query-root buffers keep their
/// full stream ([`Retain::All`] — it backs the final result views), every
/// other buffer drops its consumed prefix on `compact`. The drivers then
/// compact all buffers uniformly between wavefronts.
pub(crate) fn setup_engine(
    plan: &SharedPlan,
    catalog: &Catalog,
    weights: CostWeights,
    options: ExecOptions,
) -> Result<EngineState> {
    let schemas = plan.schemas(catalog)?;
    let mut base_buffers: HashMap<TableId, DeltaBuffer> = HashMap::new();
    let mut sp_buffers: Vec<DeltaBuffer> = (0..plan.len()).map(|_| DeltaBuffer::new()).collect();
    for q in plan.queries().iter() {
        if let Some(root) = plan.query_root(q) {
            sp_buffers[root.index()].set_retention(Retain::All);
        }
    }
    let mut executors: Vec<SubplanExecutor> = Vec::with_capacity(plan.len());
    let mut leaf_consumers: Vec<Vec<(Vec<usize>, InputSource, ConsumerId)>> =
        Vec::with_capacity(plan.len());
    for sp in &plan.subplans {
        let ex = SubplanExecutor::new_with_options(sp, catalog, &schemas, weights, options)?;
        let mut regs = Vec::new();
        for (path, src) in ex.leaf_paths() {
            let consumer = match src {
                InputSource::Base(t) => {
                    catalog.table(t)?; // existence check
                    base_buffers.entry(t).or_default().register_consumer()?
                }
                InputSource::Subplan(c) => sp_buffers[c.index()].register_consumer()?,
            };
            regs.push((path, src, consumer));
        }
        executors.push(ex);
        leaf_consumers.push(regs);
    }
    let mut base_tables: Vec<TableId> = base_buffers.keys().copied().collect();
    base_tables.sort();
    Ok(EngineState { base_buffers, base_tables, sp_buffers, executors, leaf_consumers })
}

/// Advance every registered base table's topic to arrival fraction
/// `num/den`, handing each released delta to `push` in event-time order.
/// Tables are independent topics, so iterating them in sorted order is
/// deterministic and does not affect any downstream state.
pub(crate) fn feed_from_source(
    source: &mut Source,
    base_tables: &[TableId],
    num: u32,
    den: u32,
    all_queries: QuerySet,
    mut push: impl FnMut(TableId, DeltaRow),
) -> Result<()> {
    for &t in base_tables {
        source.advance_to(t, num, den, |row, weight| {
            push(t, DeltaRow { row, weight, mask: all_queries })
        })?;
    }
    Ok(())
}

/// Fold per-subplan final-tick measurements and root buffers into the
/// per-query views of a [`RunResult`].
#[allow(clippy::type_complexity)]
pub(crate) fn per_query_views(
    plan: &SharedPlan,
    all_queries: QuerySet,
    final_sp_work: &[f64],
    final_sp_wall: &[Duration],
    sp_buffers: &[DeltaBuffer],
) -> Result<(BTreeMap<QueryId, f64>, BTreeMap<QueryId, Duration>, BTreeMap<QueryId, QueryResult>)> {
    let mut final_work = BTreeMap::new();
    let mut latency = BTreeMap::new();
    let mut results = BTreeMap::new();
    for q in all_queries.iter() {
        let subplans = plan.subplans_of_query(q);
        final_work.insert(q, subplans.iter().map(|id| final_sp_work[id.index()]).sum());
        latency.insert(q, subplans.iter().map(|id| final_sp_wall[id.index()]).sum());
        let root = plan
            .query_root(q)
            .ok_or_else(|| Error::InvalidPlan(format!("query {q} has no output subplan")))?;
        results.insert(q, query_result(sp_buffers[root.index()].all_rows(), q));
    }
    Ok((final_work, latency, results))
}

/// Per-tick measurement taken by either driver: the tick's work/wall plus
/// the passive observations (per-kind breakdown, start offset from the run's
/// beginning, worker index) used to build the [`ObsReport`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct TickRec {
    pub(crate) work: WorkUnits,
    pub(crate) wall: Duration,
    pub(crate) breakdown: WorkBreakdown,
    pub(crate) start: Duration,
    pub(crate) worker: u32,
}

/// Timing of one wavefront (all ticks at one arrival fraction).
#[derive(Debug, Clone)]
pub(crate) struct FrontRec {
    pub(crate) range: Range<usize>,
    pub(crate) num: u32,
    pub(crate) den: u32,
    pub(crate) start: Duration,
    pub(crate) dur: Duration,
}

/// Timing of one per-wavefront ingest cut (the `feed_from_source` call);
/// becomes an `ingest`-track aux span. `rows` is the deterministic delta
/// count; the durations are observability-only.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollRec {
    pub(crate) start: Duration,
    pub(crate) dur: Duration,
    pub(crate) rows: u64,
}

/// Timing of one adapt-controller evaluation at a wavefront boundary;
/// becomes an `adapt`-track aux span.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AdaptRec {
    pub(crate) front: u32,
    pub(crate) start: Duration,
    pub(crate) dur: Duration,
    pub(crate) switched: bool,
}

/// What [`fold_run`] produces: the deterministic run totals (identical maths
/// in both drivers — the linchpin of the bit-identical guarantee) plus the
/// observability report when requested.
pub(crate) struct FoldedRun {
    pub(crate) total_work: WorkUnits,
    pub(crate) total_wall: Duration,
    pub(crate) final_sp_work: Vec<f64>,
    pub(crate) final_sp_wall: Vec<Duration>,
    pub(crate) executions: usize,
    pub(crate) executions_per_query: BTreeMap<QueryId, ExecCounts>,
    pub(crate) obs: Option<ObsReport>,
}

/// Fold per-tick records in global schedule order into run totals, per-query
/// execution counts, and (when `obs_cfg` is set) the span trace, metrics,
/// per-subplan work breakdown, and — when `slo` budgets are declared — the
/// per-query slack ledger. The fold runs after the paced execution on the
/// coordinating thread, in global schedule order, so every derived number
/// (including the ledger) is identical across drivers and thread counts.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fold_run(
    plan: &SharedPlan,
    all_queries: QuerySet,
    schedule: &[Tick],
    depths: &[usize],
    recs: &[TickRec],
    fronts: &[FrontRec],
    polls: &[PollRec],
    adapt_recs: &[AdaptRec],
    obs_cfg: Option<ObsConfig>,
    slo: Option<&BTreeMap<QueryId, f64>>,
) -> FoldedRun {
    let mut total_work = WorkUnits::ZERO;
    let mut total_wall = Duration::ZERO;
    let mut final_sp_work: Vec<f64> = vec![0.0; plan.len()];
    let mut final_sp_wall: Vec<Duration> = vec![Duration::ZERO; plan.len()];
    let mut executions = 0usize;
    let mut sp_exec: Vec<ExecCounts> = vec![ExecCounts::default(); plan.len()];
    for (tick, rec) in schedule.iter().zip(recs) {
        total_work += rec.work;
        total_wall += rec.wall;
        executions += 1;
        let i = tick.sp.index();
        if tick.is_final {
            final_sp_work[i] = rec.work.get();
            final_sp_wall[i] = rec.wall;
            sp_exec[i].finals += 1;
        } else {
            sp_exec[i].incremental += 1;
        }
    }
    let mut executions_per_query = BTreeMap::new();
    for q in all_queries.iter() {
        let mut counts = ExecCounts::default();
        for id in plan.subplans_of_query(q) {
            counts.incremental += sp_exec[id.index()].incremental;
            counts.finals += sp_exec[id.index()].finals;
        }
        executions_per_query.insert(q, counts);
    }

    let obs = obs_cfg.map(|cfg| {
        let mut work_by_subplan: Vec<WorkBreakdown> = vec![WorkBreakdown::default(); plan.len()];
        let mut trace = TraceBuffer::new(cfg.trace_capacity);
        let mut metrics = ishare_obs::MetricsRegistry::new();
        for (tick, rec) in schedule.iter().zip(recs) {
            let i = tick.sp.index();
            work_by_subplan[i] += rec.breakdown;
            trace.push(Span {
                kind: SpanKind::Tick,
                sp: tick.sp.0,
                num: tick.num,
                den: tick.den,
                depth: depths[i] as u32,
                worker: rec.worker,
                start_us: rec.start.as_micros() as u64,
                dur_us: rec.wall.as_micros() as u64,
                work: rec.work.get(),
                is_final: tick.is_final,
            });
            metrics.histogram_record("tick.work", rec.work.get());
            metrics.histogram_record("tick.wall_us", rec.wall.as_micros() as f64);
            // Operator spans: subdivide the tick's wall interval
            // proportionally to its per-kind work breakdown, on the
            // worker's dedicated ops track.
            let dur_total = rec.wall.as_micros() as u64;
            let work_total = rec.work.get();
            if work_total > 0.0 && dur_total > 0 {
                let mut cum = 0.0;
                for kind in OpKind::ALL {
                    let w = rec.breakdown.get(kind);
                    if w == 0.0 {
                        continue;
                    }
                    let s = (dur_total as f64 * (cum / work_total)) as u64;
                    cum += w;
                    let e = (dur_total as f64 * (cum / work_total)) as u64;
                    if e > s {
                        trace.push_aux(AuxSpan {
                            kind: AuxKind::Operator(kind),
                            sp: tick.sp.0,
                            worker: rec.worker,
                            start_us: rec.start.as_micros() as u64 + s,
                            dur_us: e - s,
                            work: w,
                        });
                    }
                }
            }
        }
        for (fi, front) in fronts.iter().enumerate() {
            let front_work: f64 = recs[front.range.clone()].iter().map(|r| r.work.get()).sum();
            let is_final = schedule[front.range.clone()].iter().any(|t| t.is_final);
            trace.push(Span {
                kind: SpanKind::Wavefront,
                sp: fi as u32,
                num: front.num,
                den: front.den,
                depth: 0,
                worker: 0,
                start_us: front.start.as_micros() as u64,
                dur_us: front.dur.as_micros() as u64,
                work: front_work,
                is_final,
            });
        }
        // Ingest-poll and adapt re-search spans on their own tracks.
        for (i, p) in polls.iter().enumerate() {
            trace.push_aux(AuxSpan {
                kind: AuxKind::IngestPoll,
                sp: i as u32,
                worker: 0,
                start_us: p.start.as_micros() as u64,
                dur_us: p.dur.as_micros() as u64,
                work: p.rows as f64,
            });
            metrics.histogram_record("ingest.poll.rows", p.rows as f64);
        }
        for a in adapt_recs {
            trace.push_aux(AuxSpan {
                kind: AuxKind::AdaptSearch,
                sp: a.front,
                worker: 0,
                start_us: a.start.as_micros() as u64,
                dur_us: a.dur.as_micros() as u64,
                work: if a.switched { 1.0 } else { 0.0 },
            });
        }
        // Slack ledger: replay the fronts against the L(q) budgets. The
        // per-query sums iterate `subplans_of_query` in exactly the order
        // `wavefront_observation` uses, so `consumed` — and therefore
        // `remaining` — is to_bits-equal to what the adapt controller saw.
        let mut ledger = match slo {
            Some(budgets) if !budgets.is_empty() => Some(SlackLedger::new(budgets)),
            _ => None,
        };
        if let Some(ledger) = ledger.as_mut() {
            let mut sp_total: Vec<f64> = vec![0.0; plan.len()];
            let mut sp_final: Vec<f64> = vec![0.0; plan.len()];
            for (fi, front) in fronts.iter().enumerate() {
                let mut sp_front: Vec<f64> = vec![0.0; plan.len()];
                for (tick, rec) in
                    schedule[front.range.clone()].iter().zip(&recs[front.range.clone()])
                {
                    let i = tick.sp.index();
                    let w = rec.work.get();
                    sp_front[i] += w;
                    sp_total[i] += w;
                    if tick.is_final {
                        sp_final[i] = w;
                    }
                }
                let mut charges: BTreeMap<QueryId, FrontCharge> = BTreeMap::new();
                for q in all_queries.iter() {
                    let subplans = plan.subplans_of_query(q);
                    charges.insert(
                        q,
                        FrontCharge {
                            front_work: subplans.iter().map(|id| sp_front[id.index()]).sum(),
                            charged_total: subplans.iter().map(|id| sp_total[id.index()]).sum(),
                            consumed: subplans.iter().map(|id| sp_final[id.index()]).sum(),
                        },
                    );
                }
                ledger.record_front(fi as u32, front.num, front.den, &charges);
                let ts_us = (front.start + front.dur).as_micros() as u64;
                for (q, qs) in ledger.queries() {
                    if let Some(s) = qs.samples.last() {
                        trace.push_slack(SlackPoint {
                            query: q.0,
                            wavefront: fi as u32,
                            ts_us,
                            remaining: s.remaining,
                            consumed: s.consumed,
                        });
                    }
                }
            }
            ledger.record_metrics(&mut metrics);
        }
        let mut global = WorkBreakdown::default();
        for b in &work_by_subplan {
            global.add(b);
        }
        metrics.counter_add("work.total", total_work.get());
        for kind in OpKind::ALL {
            let w = global.get(kind);
            if w != 0.0 {
                metrics.counter_add(&format!("work.{kind}"), w);
            }
        }
        metrics.counter_add(
            "executions.incremental",
            sp_exec.iter().map(|e| e.incremental).sum::<u64>() as f64,
        );
        metrics
            .counter_add("executions.final", sp_exec.iter().map(|e| e.finals).sum::<u64>() as f64);
        ObsReport {
            total_work: total_work.get(),
            work_by_subplan,
            executions_by_subplan: sp_exec.clone(),
            metrics,
            trace,
            slack: ledger,
        }
    });

    FoldedRun {
        total_work,
        total_wall,
        final_sp_work,
        final_sp_wall,
        executions,
        executions_per_query,
        obs,
    }
}

/// Record end-of-run buffer gauges (high-water marks, retained/compacted
/// rows, consumer lags) into an [`ObsReport`]'s registry.
pub(crate) fn buffer_gauges(
    report: &mut ObsReport,
    base_buffers: &HashMap<TableId, DeltaBuffer>,
    sp_buffers: &[DeltaBuffer],
) {
    let mut tables: Vec<&TableId> = base_buffers.keys().collect();
    tables.sort();
    for t in tables {
        let b = &base_buffers[t];
        report
            .metrics
            .gauge_set(&format!("buffer.base.t{}.high_water", t.0), b.high_water() as f64);
        report.metrics.gauge_set(&format!("buffer.base.t{}.len", t.0), b.len() as f64);
    }
    for (i, b) in sp_buffers.iter().enumerate() {
        report.metrics.gauge_set(&format!("buffer.sp{i}.high_water"), b.high_water() as f64);
        report.metrics.gauge_set(&format!("buffer.sp{i}.len"), b.len() as f64);
        report.metrics.gauge_set(&format!("buffer.sp{i}.compacted"), b.compacted() as f64);
        for (c, lag) in b.lags().into_iter().enumerate() {
            report.metrics.gauge_set(&format!("buffer.sp{i}.lag.c{c}"), lag as f64);
        }
    }
}

/// Record end-of-run partition-exchange gauges (per-partition routed rows
/// and charged work, plus a max/mean skew ratio per subplan) into an
/// [`ObsReport`]'s registry. No-op for unpartitioned executors.
pub(crate) fn partition_gauges(report: &mut ObsReport, executors: &[SubplanExecutor]) {
    for (i, ex) in executors.iter().enumerate() {
        let stats: Vec<(u64, f64)> =
            ex.partition_stats().iter().map(|s| (s.rows, s.work)).collect();
        ishare_obs::record_partition_gauges(&mut report.metrics, i, &stats);
    }
}

/// Record end-of-run vectorized batch gauges (per-subplan mean input batch
/// length and select survival fraction) into an [`ObsReport`]'s registry.
/// No-op for subplans that saw no batches — i.e. every non-vectorized run.
pub(crate) fn batch_gauges(report: &mut ObsReport, executors: &[SubplanExecutor]) {
    for (i, ex) in executors.iter().enumerate() {
        let s = ex.batch_stats();
        ishare_obs::record_batch_gauges(&mut report.metrics, i, s.batches, s.mean_fill(), s.selectivity());
    }
}

/// Record end-of-run ingest gauges (per-partition ring high-water marks,
/// producer stall ticks, consumer lag, delivered cuts) into an
/// [`ObsReport`]'s registry.
pub(crate) fn ingest_gauges(report: &mut ObsReport, stats: &[TopicStats]) {
    for s in stats {
        let t = s.table.0;
        report.metrics.gauge_set(&format!("ingest.t{t}.delivered"), s.delivered as f64);
        report.metrics.gauge_set(&format!("ingest.t{t}.stall_ticks"), s.stall_ticks as f64);
        report.metrics.gauge_set(&format!("ingest.t{t}.polls"), s.polls as f64);
        report
            .metrics
            .gauge_set(&format!("ingest.t{t}.reorder_high_water"), s.reorder_high_water as f64);
        let lag: u64 = s.partitions.iter().map(|p| p.lag).sum();
        report.metrics.gauge_set(&format!("ingest.t{t}.lag"), lag as f64);
        for (i, p) in s.partitions.iter().enumerate() {
            report.metrics.gauge_set(&format!("ingest.t{t}.p{i}.high_water"), p.high_water as f64);
        }
    }
}

/// Assemble the deterministic per-wavefront observation the adaptation
/// controller consumes: cumulative delivery tallies per base table
/// (`(delivered, deletes)` as counted by the feed path) plus per-query
/// charged final work. Shared by both drivers so the adaptive decision
/// inputs — and therefore the switch sequences — cannot drift between them.
pub(crate) fn wavefront_observation(
    plan: &SharedPlan,
    all_queries: QuerySet,
    wavefront: usize,
    num: u32,
    den: u32,
    charged_sp_final: &[f64],
    tallies: &BTreeMap<TableId, (u64, u64)>,
) -> WavefrontObservation {
    let mut charged_final = BTreeMap::new();
    for q in all_queries.iter() {
        let sum: f64 =
            plan.subplans_of_query(q).iter().map(|id| charged_sp_final[id.index()]).sum();
        charged_final.insert(q, sum);
    }
    WavefrontObservation {
        wavefront,
        num,
        den,
        charged_final,
        tables: tallies
            .iter()
            .map(|(t, &(delivered, deletes))| ObservedTable { table: *t, delivered, deletes })
            .collect(),
    }
}

/// Record end-of-run adaptation counters into an [`ObsReport`]'s registry.
pub(crate) fn adapt_gauges(report: &mut ObsReport, ctrl: &AdaptController) {
    let m = ctrl.metrics();
    report.metrics.counter_add("adapt.evaluations", m.evaluations as f64);
    report.metrics.counter_add("adapt.triggers", m.triggers as f64);
    report.metrics.counter_add("adapt.pace_switches", m.switches as f64);
    report.metrics.gauge_set("adapt.max_drift", m.max_drift);
    report.metrics.gauge_set("adapt.reopt_time_us", m.reopt_time.as_micros() as f64);
}

/// Options of a source-fed run ([`execute_from_source_obs`] and its parallel
/// twin).
#[derive(Debug, Clone, Default)]
pub struct SourceOptions {
    /// Opt-in observability (see [`execute_planned_deltas_obs`]).
    pub obs: Option<ObsConfig>,
    /// Stop (kill) the run after this many wavefronts have completed and
    /// committed, returning [`SourceOutcome::Suspended`] with the commit
    /// log. `None` runs to completion.
    pub stop_after: Option<usize>,
    /// A commit log from a previous (killed) run over the same workload.
    /// Each replayed wavefront's commit is verified against it; divergence —
    /// a non-deterministic source — is an error rather than a silently
    /// different run.
    pub verify: Option<CommitLog>,
    /// Which exec-layer datapath to run ([`ExecMode::Kernels`] by default).
    /// [`ExecMode::Reference`] selects the original interpreter-shaped
    /// operators — bit-identical results and work, used as the differential
    /// oracle by the kernel-equivalence suites.
    pub mode: ExecMode,
    /// Hash-partition every join/aggregate's state into this many partitions
    /// (intra-subplan data parallelism; see DESIGN.md §12). `0` and `1` both
    /// mean unpartitioned. Only effective on the kernel datapath —
    /// [`ExecMode::Reference`] ignores it and stays the oracle. Results and
    /// every measured work number are bit-identical at any partition count.
    pub partitions: usize,
    /// Worker threads per partitioned operator execution (`0`/`1` =
    /// single-threaded exchange). Purely a wall-clock knob: the thread count
    /// never affects routing, merge order, or charged work.
    pub partition_threads: usize,
    /// Per-query final-work budgets `L(q)` for the slack ledger. When set
    /// (and `obs` is on), the report carries a [`SlackLedger`] with one
    /// sample per query per wavefront plus `slo.*` metrics and per-query
    /// slack counter tracks in the Chrome trace. The adaptive entry points
    /// default this to the controller's constraints when unset. Purely
    /// observational: budgets never influence execution.
    pub slo: Option<BTreeMap<QueryId, f64>>,
}

impl SourceOptions {
    /// The exec-layer options this run configures.
    pub(crate) fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            mode: self.mode,
            partitions: self.partitions.max(1),
            partition_threads: self.partition_threads.max(1),
        }
    }
}

/// What a source-fed run produced.
#[derive(Debug)]
pub enum SourceOutcome {
    /// The run executed every wavefront.
    Completed {
        /// The measured run, bit-identical to the `Vec`-fed drivers.
        result: Box<RunResult>,
        /// Commit log of every wavefront (for later replay verification).
        log: CommitLog,
    },
    /// The run was stopped by [`SourceOptions::stop_after`]; resume by
    /// rebuilding the source from the same feeds and config and re-running
    /// with [`SourceOptions::verify`] set to the log.
    Suspended {
        /// Commit log of the wavefronts that completed before the stop.
        log: CommitLog,
    },
}

impl SourceOutcome {
    /// Unwrap a completed run's result; errors on [`Suspended`].
    ///
    /// [`Suspended`]: SourceOutcome::Suspended
    pub fn into_result(self) -> Result<RunResult> {
        match self {
            SourceOutcome::Completed { result, .. } => Ok(*result),
            SourceOutcome::Suspended { log } => Err(Error::InvalidConfig(format!(
                "run suspended after {} wavefronts, no result",
                log.len()
            ))),
        }
    }
}

/// Verify a replayed wavefront's commit against a prior run's log and handle
/// a requested stop. Returns `Some(Suspended)` when the driver should cut
/// the run here. Shared by both drivers so kill/replay semantics cannot
/// drift between them.
pub(crate) fn commit_wavefront(
    source: &mut Source,
    wavefront: usize,
    num: u32,
    den: u32,
    paces: &[u32],
    opts: &SourceOptions,
) -> Result<Option<SourceOutcome>> {
    let entry = source.commit(wavefront, num, den, paces);
    if let Some(expect) = opts.verify.as_ref().and_then(|log| log.entries.get(wavefront)) {
        if expect != entry {
            let what =
                if expect.paces != entry.paces { "adaptive pace decisions" } else { "the source" };
            return Err(Error::InvalidDelta(format!(
                "replay diverged from commit log at wavefront {wavefront} \
                 (fraction {num}/{den}): {what} did not replay deterministically"
            )));
        }
    }
    if opts.stop_after == Some(wavefront + 1) {
        return Ok(Some(SourceOutcome::Suspended { log: source.log().clone() }));
    }
    Ok(None)
}

/// Execute `plan` at `paces` over insert-only `data` (each base relation's
/// full trigger of rows in arrival order). See [`execute_planned_deltas`]
/// for streams containing deletes/updates.
pub fn execute_planned(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<Row>>,
    weights: CostWeights,
) -> Result<RunResult> {
    let feeds = insert_feeds(data);
    execute_planned_deltas(plan, paces, catalog, &feeds, weights)
}

/// [`execute_planned`] with opt-in observability (see
/// [`execute_planned_deltas_obs`]).
pub fn execute_planned_obs(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<Row>>,
    weights: CostWeights,
    obs: Option<ObsConfig>,
) -> Result<RunResult> {
    let feeds = insert_feeds(data);
    execute_planned_deltas_obs(plan, paces, catalog, &feeds, weights, obs)
}

/// Wrap insert-only rows as weight-`+1` delta feeds.
pub(crate) fn insert_feeds(data: &HashMap<TableId, Vec<Row>>) -> HashMap<TableId, Vec<(Row, i64)>> {
    data.iter().map(|(t, rows)| (*t, rows.iter().map(|r| (r.clone(), 1i64)).collect())).collect()
}

/// Execute `plan` at `paces` over weighted delta feeds, with deltas arriving
/// uniformly.
///
/// Each base relation's feed is a sequence of `(row, weight)` deltas in
/// arrival order: weight `+1` inserts, `-1` deletes, and an update is a
/// delete followed by an insert (the engine semantics of Sec. 2.3). Subplans
/// at pace `k` run at arrival fractions `1/k … k/k`; subplans sharing a tick
/// run children-first (Sec. 5.1: "the child subplans are executed earlier
/// than their parent subplans").
pub fn execute_planned_deltas(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<(Row, i64)>>,
    weights: CostWeights,
) -> Result<RunResult> {
    execute_planned_deltas_obs(plan, paces, catalog, data, weights, None)
}

/// [`execute_planned_deltas`] on the [`ExecMode::Reference`] datapath — the
/// original interpreter-shaped operators, kept as a differential oracle.
/// Everything measured (work totals, per-query `final_work`, results) is
/// bit-identical to the default kernel datapath; only wall-clock differs.
pub fn execute_planned_deltas_reference(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<(Row, i64)>>,
    weights: CostWeights,
) -> Result<RunResult> {
    let mut source = Source::in_order(data);
    execute_from_source_obs(
        plan,
        paces,
        catalog,
        &mut source,
        weights,
        SourceOptions { mode: ExecMode::Reference, ..Default::default() },
    )?
    .into_result()
}

/// [`execute_planned_deltas`] on the [`ExecMode::Vectorized`] datapath —
/// columnar SoA batches with selection-vector kernels through the
/// scan/select/project hot path (DESIGN.md §15). Everything measured (work
/// totals, per-query `final_work`, results) is bit-identical to the default
/// kernel datapath and the reference; only wall-clock differs.
pub fn execute_planned_deltas_vectorized(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<(Row, i64)>>,
    weights: CostWeights,
) -> Result<RunResult> {
    let mut source = Source::in_order(data);
    execute_from_source_obs(
        plan,
        paces,
        catalog,
        &mut source,
        weights,
        SourceOptions { mode: ExecMode::Vectorized, ..Default::default() },
    )?
    .into_result()
}

/// [`execute_planned_deltas`] with intra-subplan data parallelism: every
/// join and aggregate's state is hash-partitioned into `partitions` parts
/// over the operator's encoded key (DESIGN.md §12). Results, work totals,
/// and every per-query number are bit-identical to the unpartitioned run at
/// any partition count; `partitions <= 1` is exactly the unpartitioned path.
pub fn execute_planned_deltas_partitioned(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<(Row, i64)>>,
    weights: CostWeights,
    partitions: usize,
) -> Result<RunResult> {
    execute_planned_deltas_partitioned_obs(plan, paces, catalog, data, weights, partitions, 1, None)
}

/// [`execute_planned_deltas_partitioned`] with a worker-thread count for the
/// partitioned operators and opt-in observability. `partition_threads` is a
/// wall-clock knob only; when `obs` is set the report carries per-partition
/// `partition.sp*.p*.rows`/`.work` gauges and a `partition.sp*.skew` ratio.
#[allow(clippy::too_many_arguments)]
pub fn execute_planned_deltas_partitioned_obs(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<(Row, i64)>>,
    weights: CostWeights,
    partitions: usize,
    partition_threads: usize,
    obs: Option<ObsConfig>,
) -> Result<RunResult> {
    let mut source = Source::in_order(data);
    execute_from_source_obs(
        plan,
        paces,
        catalog,
        &mut source,
        weights,
        SourceOptions { obs, partitions, partition_threads, ..Default::default() },
    )?
    .into_result()
}

/// [`execute_planned_deltas`] with opt-in observability: when `obs` is set
/// the returned [`RunResult::obs`] carries the per-subplan work breakdown,
/// metrics, and tick/wavefront span trace. Instrumentation is passive (it
/// reads counters and the wall clock only), so the run's work numbers are
/// bit-identical with `obs` on or off.
pub fn execute_planned_deltas_obs(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<(Row, i64)>>,
    weights: CostWeights,
    obs: Option<ObsConfig>,
) -> Result<RunResult> {
    let mut source = Source::in_order(data);
    execute_from_source_obs(
        plan,
        paces,
        catalog,
        &mut source,
        weights,
        SourceOptions { obs, ..Default::default() },
    )?
    .into_result()
}

/// Execute `plan` at `paces` pulling input from an ingest [`Source`] instead
/// of pre-materialized `Vec` feeds.
///
/// The source may deliver out of order (bounded jitter + watermarks) and
/// exert backpressure; the run's results and every measured work number are
/// still bit-identical to [`execute_planned_deltas_obs`] over the same
/// feeds. At every wavefront boundary the consumed offsets are committed to
/// the source's [`CommitLog`]; [`SourceOptions::stop_after`] kills the run
/// at a boundary and [`SourceOptions::verify`] replays a killed run against
/// its log (see [`SourceOutcome`]).
pub fn execute_from_source_obs(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    source: &mut Source,
    weights: CostWeights,
    opts: SourceOptions,
) -> Result<SourceOutcome> {
    run_from_source(plan, paces, catalog, source, weights, opts, None)
}

/// [`execute_from_source_obs`] with online re-optimization: after every
/// committed wavefront the controller sees the cumulative delivery tallies
/// and charged final work ([`WavefrontObservation`]); when it installs new
/// paces the remaining schedule is rebuilt via
/// [`reschedule_after`](crate::schedule::reschedule_after) and the switch
/// takes effect at the next wavefront. The controller's decisions depend
/// only on deterministic measured quantities, so killed-and-resumed runs
/// re-derive the identical switch sequence (verified through the commit
/// log's `paces` field) and parallel runs stay bit-identical to sequential.
pub fn execute_adaptive_from_source_obs(
    plan: &SharedPlan,
    catalog: &Catalog,
    source: &mut Source,
    weights: CostWeights,
    opts: SourceOptions,
    ctrl: &mut AdaptController,
) -> Result<SourceOutcome> {
    let paces = ctrl.current_paces().to_vec();
    run_from_source(plan, &paces, catalog, source, weights, opts, Some(ctrl))
}

fn run_from_source(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    source: &mut Source,
    weights: CostWeights,
    opts: SourceOptions,
    mut adapt: Option<&mut AdaptController>,
) -> Result<SourceOutcome> {
    let run_started = Instant::now();
    let mut tick_list = build_schedule(plan, paces)?;
    let mut active_paces: Vec<u32> = paces.to_vec();
    let all_queries = plan.queries();
    let depths = plan.depths();
    // Slack budgets: explicit `opts.slo`, else the adaptive controller's
    // L(q) constraints (the natural budgets for an adaptive run).
    let slo_budgets: Option<BTreeMap<QueryId, f64>> =
        opts.slo.clone().or_else(|| adapt.as_deref().map(|c| c.constraints().clone()));
    let EngineState {
        mut base_buffers,
        base_tables,
        mut sp_buffers,
        mut executors,
        leaf_consumers,
    } = setup_engine(plan, catalog, weights, opts.exec_options())?;

    // Run, one wavefront (= one arrival fraction) at a time. Ticks still
    // execute in global schedule order; grouping by front lets the driver
    // cut the ingest topics once per fraction and compact buffers between
    // fronts. Fronts are discovered incrementally ([`front_at`]) because an
    // adaptive pace switch rebuilds the unexecuted tail of the schedule.
    let mut recs: Vec<TickRec> = Vec::with_capacity(tick_list.len());
    let mut fronts: Vec<FrontRec> = Vec::new();
    let mut polls: Vec<PollRec> = Vec::new();
    let mut adapt_recs: Vec<AdaptRec> = Vec::new();
    let mut tallies: BTreeMap<TableId, (u64, u64)> = BTreeMap::new();
    let mut charged_final: Vec<f64> = vec![0.0; plan.len()];
    let mut pos = 0;
    let mut wf = 0;
    while pos < tick_list.len() {
        let front = front_at(&tick_list, pos);
        let head = tick_list[front.start];
        let poll_start = run_started.elapsed();
        let mut poll_rows = 0u64;
        feed_from_source(source, &base_tables, head.num, head.den, all_queries, |t, dr| {
            poll_rows += 1;
            let tally = tallies.entry(t).or_insert((0, 0));
            tally.0 += 1;
            if dr.weight < 0 {
                tally.1 += 1;
            }
            base_buffers.get_mut(&t).expect("registered table").push(dr)
        })?;
        polls.push(PollRec {
            start: poll_start,
            dur: run_started.elapsed() - poll_start,
            rows: poll_rows,
        });
        let front_start = run_started.elapsed();
        for tick in &tick_list[front.clone()] {
            let start = run_started.elapsed();
            let (work, wall, breakdown) = run_tick(
                tick,
                &mut base_buffers,
                &mut sp_buffers,
                &mut executors,
                &leaf_consumers,
                &weights,
            )?;
            if tick.is_final {
                charged_final[tick.sp.index()] = work.get();
            }
            recs.push(TickRec { work, wall, breakdown, start, worker: 0 });
        }
        fronts.push(FrontRec {
            range: front.clone(),
            num: head.num,
            den: head.den,
            start: front_start,
            dur: run_started.elapsed() - front_start,
        });
        // Reclaim fully consumed prefixes. Consumers never re-read below
        // their cursor, and query roots retain everything ([`Retain::All`],
        // set at wiring time), so this cannot change what later ticks or the
        // final result views see.
        for b in base_buffers.values_mut() {
            b.compact();
        }
        for b in sp_buffers.iter_mut() {
            b.compact();
        }
        // Commit first, then adapt: the log entry records the paces that
        // were in effect *during* this wavefront; a switch installed below
        // only governs subsequent fronts.
        if let Some(out) = commit_wavefront(source, wf, head.num, head.den, &active_paces, &opts)? {
            return Ok(out);
        }
        if let Some(ctrl) = adapt.as_deref_mut() {
            let obs = wavefront_observation(
                plan,
                all_queries,
                wf,
                head.num,
                head.den,
                &charged_final,
                &tallies,
            );
            let adapt_start = run_started.elapsed();
            let switch = ctrl.observe(&obs)?;
            adapt_recs.push(AdaptRec {
                front: wf as u32,
                start: adapt_start,
                dur: run_started.elapsed() - adapt_start,
                switched: switch.is_some(),
            });
            if let Some(new_paces) = switch {
                tick_list = reschedule_after(
                    plan,
                    &tick_list[..front.end],
                    head.num,
                    head.den,
                    &new_paces,
                )?;
                active_paces = new_paces;
            }
        }
        pos = front.end;
        wf += 1;
    }

    let folded = fold_run(
        plan,
        all_queries,
        &tick_list,
        &depths,
        &recs,
        &fronts,
        &polls,
        &adapt_recs,
        opts.obs,
        slo_budgets.as_ref(),
    );
    let mut obs_report = folded.obs;
    if let Some(report) = obs_report.as_mut() {
        buffer_gauges(report, &base_buffers, &sp_buffers);
        partition_gauges(report, &executors);
        batch_gauges(report, &executors);
        ingest_gauges(report, &source.stats());
        if let Some(ctrl) = adapt.as_deref() {
            adapt_gauges(report, ctrl);
        }
    }
    let (final_work, latency, results) = per_query_views(
        plan,
        all_queries,
        &folded.final_sp_work,
        &folded.final_sp_wall,
        &sp_buffers,
    )?;
    Ok(SourceOutcome::Completed {
        result: Box::new(RunResult {
            total_work: folded.total_work,
            total_wall: folded.total_wall,
            final_work,
            latency,
            results,
            executions: folded.executions,
            executions_per_query: folded.executions_per_query,
            elapsed: run_started.elapsed(),
            obs: obs_report,
        }),
        log: source.log().clone(),
    })
}

/// One incremental execution: pull every leaf delta, run the subplan,
/// materialize the output. Returns the tick's (work, wall, breakdown).
fn run_tick(
    tick: &Tick,
    base_buffers: &mut HashMap<TableId, DeltaBuffer>,
    sp_buffers: &mut [DeltaBuffer],
    executors: &mut [SubplanExecutor],
    leaf_consumers: &[Vec<(Vec<usize>, InputSource, ConsumerId)>],
    weights: &CostWeights,
) -> Result<(WorkUnits, Duration, WorkBreakdown)> {
    let i = tick.sp.index();
    let counter = WorkCounter::new();
    let started = Instant::now();
    let mut inputs = HashMap::new();
    for (path, src, consumer) in &leaf_consumers[i] {
        let batch = match src {
            InputSource::Base(t) => {
                base_buffers.get_mut(t).expect("registered table").pull(*consumer)?
            }
            InputSource::Subplan(c) => sp_buffers[c.index()].pull(*consumer)?,
        };
        inputs.insert(path.clone(), batch);
    }
    let out = executors[i].execute(&mut inputs, &counter)?;
    counter.charge(OpKind::Materialize, weights.materialize, out.len());
    sp_buffers[i].append(&out);
    Ok((counter.total(), started.elapsed(), counter.breakdown()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{DataType, QuerySet, Value};
    use ishare_exec::batch_ref::run_logical;
    use ishare_expr::Expr;
    use ishare_plan::{AggExpr, AggFunc, DagOp, PlanBuilder, SelectBranch, SharedDag};
    use ishare_storage::{ColumnStats, Field, Schema, TableStats};

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats {
                row_count: 200.0,
                columns: vec![ColumnStats::ndv(10.0), ColumnStats::ndv(100.0)],
            },
        )
        .unwrap();
        c
    }

    fn data(c: &Catalog, n: i64) -> HashMap<TableId, Vec<Row>> {
        let t = c.table_by_name("t").unwrap().id;
        let rows =
            (0..n).map(|i| Row::new(vec![Value::Int(i % 10), Value::Int(i * 7 % 100)])).collect();
        [(t, rows)].into_iter().collect()
    }

    /// Fig. 2-style shared plan over two queries with different predicates.
    fn shared_plan(c: &Catalog) -> SharedPlan {
        let t = c.table_by_name("t").unwrap().id;
        let mut d = SharedDag::new();
        let scan = d.add_node(DagOp::Scan { table: t }, vec![], qs(&[0, 1])).unwrap();
        let sel = d
            .add_node(
                DagOp::Select {
                    branches: vec![
                        SelectBranch { queries: qs(&[0]), predicate: Expr::true_lit() },
                        SelectBranch {
                            queries: qs(&[1]),
                            predicate: Expr::col(1).lt(Expr::lit(50i64)),
                        },
                    ],
                },
                vec![scan],
                qs(&[0, 1]),
            )
            .unwrap();
        let agg = d
            .add_node(
                DagOp::Aggregate {
                    group_by: vec![(Expr::col(0), "k".into())],
                    aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")],
                },
                vec![sel],
                qs(&[0, 1]),
            )
            .unwrap();
        let p0 = d
            .add_node(
                DagOp::Project {
                    exprs: vec![(Expr::col(0), "k".into()), (Expr::col(1), "s".into())],
                },
                vec![agg],
                qs(&[0]),
            )
            .unwrap();
        let p1 = d
            .add_node(
                DagOp::Project { exprs: vec![(Expr::col(1), "s".into())] },
                vec![agg],
                qs(&[1]),
            )
            .unwrap();
        d.set_query_root(QueryId(0), p0).unwrap();
        d.set_query_root(QueryId(1), p1).unwrap();
        SharedPlan::from_dag(&d, |_| false).unwrap()
    }

    /// The reference results computed per query by the naive executor.
    fn reference(c: &Catalog, data: &HashMap<TableId, Vec<Row>>) -> Vec<HashMap<Row, i64>> {
        let q0 = PlanBuilder::scan(c, "t")
            .unwrap()
            .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?]))
            .unwrap()
            .project_cols(&["k", "s"])
            .unwrap()
            .build();
        let q1 = PlanBuilder::scan(c, "t")
            .unwrap()
            .select(|x| Ok(x.col("v")?.lt(Expr::lit(50i64))))
            .unwrap()
            .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?]))
            .unwrap()
            .project(|x| Ok(vec![(x.col("s")?, "s".into())]))
            .unwrap()
            .build();
        vec![run_logical(&q0, c, data).unwrap(), run_logical(&q1, c, data).unwrap()]
    }

    #[test]
    fn batch_run_matches_reference() {
        let c = catalog();
        let plan = shared_plan(&c);
        let d = data(&c, 200);
        let run = execute_planned(&plan, &[1, 1, 1], &c, &d, CostWeights::default()).unwrap();
        let expected = reference(&c, &d);
        assert_eq!(run.results[&QueryId(0)], expected[0]);
        assert_eq!(run.results[&QueryId(1)], expected[1]);
        assert_eq!(run.executions, 3);
        assert!(run.total_work.get() > 0.0);
        assert!(run.elapsed >= run.total_wall);
    }

    #[test]
    fn any_pace_configuration_same_results() {
        let c = catalog();
        let plan = shared_plan(&c);
        let d = data(&c, 200);
        let expected = reference(&c, &d);
        for paces in [[1u32, 1, 1], [5, 1, 1], [10, 10, 10], [7, 3, 2]] {
            let run = execute_planned(&plan, &paces, &c, &d, CostWeights::default()).unwrap();
            assert_eq!(run.results[&QueryId(0)], expected[0], "paces {paces:?}");
            assert_eq!(run.results[&QueryId(1)], expected[1], "paces {paces:?}");
        }
    }

    #[test]
    fn eager_costs_more_total_less_final() {
        let c = catalog();
        let plan = shared_plan(&c);
        let d = data(&c, 200);
        let lazy = execute_planned(&plan, &[1, 1, 1], &c, &d, CostWeights::default()).unwrap();
        let eager = execute_planned(&plan, &[20, 20, 20], &c, &d, CostWeights::default()).unwrap();
        assert!(eager.total_work.get() > lazy.total_work.get());
        for q in [QueryId(0), QueryId(1)] {
            assert!(
                eager.final_work[&q] < lazy.final_work[&q],
                "query {q}: eager {} vs lazy {}",
                eager.final_work[&q],
                lazy.final_work[&q]
            );
        }
        assert_eq!(eager.executions, 60);
    }

    #[test]
    fn pace_mismatch_rejected() {
        let c = catalog();
        let plan = shared_plan(&c);
        let d = data(&c, 10);
        assert!(execute_planned(&plan, &[1, 1], &c, &d, CostWeights::default()).is_err());
    }

    #[test]
    fn missing_table_data_is_empty_results() {
        let c = catalog();
        let plan = shared_plan(&c);
        let run = execute_planned(&plan, &[2, 1, 1], &c, &HashMap::new(), CostWeights::default())
            .unwrap();
        assert!(run.results[&QueryId(0)].is_empty());
        assert!(run.results[&QueryId(1)].is_empty());
    }

    #[test]
    fn delta_feeds_with_updates_net_out() {
        // Insert (k=1, v=10), then update it to v=30 mid-stream: the final
        // aggregate must reflect only the updated value, at any pace.
        let c = catalog();
        let plan = shared_plan(&c);
        let t = c.table_by_name("t").unwrap().id;
        let feed: Vec<(Row, i64)> = vec![
            (Row::new(vec![Value::Int(1), Value::Int(10)]), 1),
            (Row::new(vec![Value::Int(2), Value::Int(5)]), 1),
            (Row::new(vec![Value::Int(1), Value::Int(10)]), -1), // update: delete…
            (Row::new(vec![Value::Int(1), Value::Int(30)]), 1),  // …plus insert
        ];
        let feeds: HashMap<TableId, Vec<(Row, i64)>> = [(t, feed)].into_iter().collect();
        for paces in [[1u32, 1, 1], [4, 2, 1]] {
            let run =
                execute_planned_deltas(&plan, &paces, &c, &feeds, CostWeights::default()).unwrap();
            // Q0 = sum(v) by k over all rows: k=1 → 30, k=2 → 5.
            let r0 = &run.results[&QueryId(0)];
            assert_eq!(r0[&Row::new(vec![Value::Int(1), Value::Int(30)])], 1, "paces {paces:?}");
            assert_eq!(r0[&Row::new(vec![Value::Int(2), Value::Int(5)])], 1);
            assert_eq!(r0.len(), 2);
        }
    }

    #[test]
    fn uneven_data_sizes_fully_consumed() {
        // 199 rows and pace 7: integer arrival arithmetic must still feed
        // every row by the final tick.
        let c = catalog();
        let plan = shared_plan(&c);
        let d = data(&c, 199);
        let expected = reference(&c, &d);
        let run = execute_planned(&plan, &[7, 7, 7], &c, &d, CostWeights::default()).unwrap();
        assert_eq!(run.results[&QueryId(0)], expected[0]);
    }
}
