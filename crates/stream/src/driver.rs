//! The paced execution driver (sequential reference implementation).
//!
//! [`execute_planned`] / [`execute_planned_deltas`] run every scheduled tick
//! on the calling thread, in global schedule order. This path is the
//! correctness oracle: the parallel driver in [`crate::parallel`] must
//! produce bit-identical work totals and results for any thread count.

use crate::schedule::{build_schedule, Tick};
use ishare_common::{
    CostWeights, Error, QueryId, QuerySet, Result, TableId, WorkCounter, WorkUnits,
};
use ishare_exec::{query_result, QueryResult, SubplanExecutor};
use ishare_plan::{InputSource, SharedPlan};
use ishare_storage::{Catalog, ConsumerId, DeltaBuffer, DeltaRow, Row};
use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

/// Measured outcome of one paced run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Measured total work: Σ work of all incremental executions.
    pub total_work: WorkUnits,
    /// Wall-clock spent inside executions, summed over all of them (the
    /// paper's "total execution time"; equals CPU time on the sequential
    /// driver, and aggregate across-worker CPU time on the parallel one).
    pub total_wall: Duration,
    /// Per query: measured final work (Σ work of the final executions of
    /// the query's subplans).
    pub final_work: BTreeMap<QueryId, f64>,
    /// Per query: wall-clock latency (Σ wall of the final executions of the
    /// query's subplans).
    pub latency: BTreeMap<QueryId, Duration>,
    /// Final materialized result per query.
    pub results: BTreeMap<QueryId, QueryResult>,
    /// Number of incremental executions performed.
    pub executions: usize,
    /// End-to-end wall clock of the whole run — setup, feeding, execution,
    /// and result extraction. Unlike `total_wall` this does not double-count
    /// concurrent work, so it is the number to compare across thread counts.
    pub elapsed: Duration,
}

/// Everything a driver needs to run a schedule: buffers, executors, and the
/// consumer registrations wiring them together.
pub(crate) struct EngineState {
    pub(crate) base_buffers: HashMap<TableId, DeltaBuffer>,
    /// `base_fed[t]` = rows of table `t`'s feed already pushed.
    pub(crate) base_fed: HashMap<TableId, usize>,
    pub(crate) sp_buffers: Vec<DeltaBuffer>,
    pub(crate) executors: Vec<SubplanExecutor>,
    /// Per subplan: `(leaf path, source, consumer)` for each leaf input.
    pub(crate) leaf_consumers: Vec<Vec<(Vec<usize>, InputSource, ConsumerId)>>,
}

/// Build executors, buffers, and consumer registrations for `plan`.
pub(crate) fn setup_engine(
    plan: &SharedPlan,
    catalog: &Catalog,
    weights: CostWeights,
) -> Result<EngineState> {
    let schemas = plan.schemas(catalog)?;
    let mut base_buffers: HashMap<TableId, DeltaBuffer> = HashMap::new();
    let mut sp_buffers: Vec<DeltaBuffer> = (0..plan.len()).map(|_| DeltaBuffer::new()).collect();
    let mut executors: Vec<SubplanExecutor> = Vec::with_capacity(plan.len());
    let mut leaf_consumers: Vec<Vec<(Vec<usize>, InputSource, ConsumerId)>> =
        Vec::with_capacity(plan.len());
    for sp in &plan.subplans {
        let ex = SubplanExecutor::new(sp, catalog, &schemas, weights)?;
        let mut regs = Vec::new();
        for (path, src) in ex.leaf_paths() {
            let consumer = match src {
                InputSource::Base(t) => {
                    catalog.table(t)?; // existence check
                    base_buffers.entry(t).or_default().register_consumer()
                }
                InputSource::Subplan(c) => sp_buffers[c.index()].register_consumer(),
            };
            regs.push((path, src, consumer));
        }
        executors.push(ex);
        leaf_consumers.push(regs);
    }
    let base_fed = base_buffers.keys().map(|t| (*t, 0)).collect();
    Ok(EngineState { base_buffers, base_fed, sp_buffers, executors, leaf_consumers })
}

/// Push every base feed forward to arrival fraction `num/den`, handing each
/// new delta row to `push`. Tables are independent buffers, so the iteration
/// order over them does not affect any downstream state.
pub(crate) fn feed_fraction(
    data: &HashMap<TableId, Vec<(Row, i64)>>,
    num: u32,
    den: u32,
    all_queries: QuerySet,
    base_fed: &mut HashMap<TableId, usize>,
    mut push: impl FnMut(TableId, DeltaRow),
) {
    let tables: Vec<TableId> = base_fed.keys().copied().collect();
    for t in tables {
        let rows = data.get(&t).map(|v| v.as_slice()).unwrap_or(&[]);
        let n = rows.len() as u64;
        let arrived = ((num as u64 * n) / den as u64) as usize;
        let fed = base_fed[&t];
        if arrived > fed {
            for (row, weight) in &rows[fed..arrived] {
                push(t, DeltaRow { row: row.clone(), weight: *weight, mask: all_queries });
            }
            base_fed.insert(t, arrived);
        }
    }
}

/// Fold per-subplan final-tick measurements and root buffers into the
/// per-query views of a [`RunResult`].
#[allow(clippy::type_complexity)]
pub(crate) fn per_query_views(
    plan: &SharedPlan,
    all_queries: QuerySet,
    final_sp_work: &[f64],
    final_sp_wall: &[Duration],
    sp_buffers: &[DeltaBuffer],
) -> Result<(BTreeMap<QueryId, f64>, BTreeMap<QueryId, Duration>, BTreeMap<QueryId, QueryResult>)> {
    let mut final_work = BTreeMap::new();
    let mut latency = BTreeMap::new();
    let mut results = BTreeMap::new();
    for q in all_queries.iter() {
        let subplans = plan.subplans_of_query(q);
        final_work.insert(q, subplans.iter().map(|id| final_sp_work[id.index()]).sum());
        latency.insert(q, subplans.iter().map(|id| final_sp_wall[id.index()]).sum());
        let root = plan
            .query_root(q)
            .ok_or_else(|| Error::InvalidPlan(format!("query {q} has no output subplan")))?;
        results.insert(q, query_result(sp_buffers[root.index()].all_rows(), q));
    }
    Ok((final_work, latency, results))
}

/// Execute `plan` at `paces` over insert-only `data` (each base relation's
/// full trigger of rows in arrival order). See [`execute_planned_deltas`]
/// for streams containing deletes/updates.
pub fn execute_planned(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<Row>>,
    weights: CostWeights,
) -> Result<RunResult> {
    let feeds = insert_feeds(data);
    execute_planned_deltas(plan, paces, catalog, &feeds, weights)
}

/// Wrap insert-only rows as weight-`+1` delta feeds.
pub(crate) fn insert_feeds(data: &HashMap<TableId, Vec<Row>>) -> HashMap<TableId, Vec<(Row, i64)>> {
    data.iter().map(|(t, rows)| (*t, rows.iter().map(|r| (r.clone(), 1i64)).collect())).collect()
}

/// Execute `plan` at `paces` over weighted delta feeds, with deltas arriving
/// uniformly.
///
/// Each base relation's feed is a sequence of `(row, weight)` deltas in
/// arrival order: weight `+1` inserts, `-1` deletes, and an update is a
/// delete followed by an insert (the engine semantics of Sec. 2.3). Subplans
/// at pace `k` run at arrival fractions `1/k … k/k`; subplans sharing a tick
/// run children-first (Sec. 5.1: "the child subplans are executed earlier
/// than their parent subplans").
pub fn execute_planned_deltas(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<(Row, i64)>>,
    weights: CostWeights,
) -> Result<RunResult> {
    let run_started = Instant::now();
    let tick_list = build_schedule(plan, paces)?;
    let all_queries = plan.queries();
    let EngineState {
        mut base_buffers,
        mut base_fed,
        mut sp_buffers,
        mut executors,
        leaf_consumers,
    } = setup_engine(plan, catalog, weights)?;

    // Run.
    let mut total_work = WorkUnits::ZERO;
    let mut total_wall = Duration::ZERO;
    let mut final_sp_work: Vec<f64> = vec![0.0; plan.len()];
    let mut final_sp_wall: Vec<Duration> = vec![Duration::ZERO; plan.len()];
    let mut executions = 0usize;

    for tick in &tick_list {
        // 1. Feed base buffers up to this tick's arrival fraction.
        feed_fraction(data, tick.num, tick.den, all_queries, &mut base_fed, |t, dr| {
            base_buffers.get_mut(&t).expect("registered table").push(dr)
        });
        // 2. Execute the subplan.
        let i = tick.sp.index();
        let (work, wall) = run_tick(
            tick,
            &mut base_buffers,
            &mut sp_buffers,
            &mut executors,
            &leaf_consumers,
            &weights,
        )?;
        total_work += work;
        total_wall += wall;
        executions += 1;
        if tick.is_final {
            final_sp_work[i] = work.get();
            final_sp_wall[i] = wall;
        }
    }

    let (final_work, latency, results) =
        per_query_views(plan, all_queries, &final_sp_work, &final_sp_wall, &sp_buffers)?;
    Ok(RunResult {
        total_work,
        total_wall,
        final_work,
        latency,
        results,
        executions,
        elapsed: run_started.elapsed(),
    })
}

/// One incremental execution: pull every leaf delta, run the subplan,
/// materialize the output. Returns the tick's (work, wall).
fn run_tick(
    tick: &Tick,
    base_buffers: &mut HashMap<TableId, DeltaBuffer>,
    sp_buffers: &mut [DeltaBuffer],
    executors: &mut [SubplanExecutor],
    leaf_consumers: &[Vec<(Vec<usize>, InputSource, ConsumerId)>],
    weights: &CostWeights,
) -> Result<(WorkUnits, Duration)> {
    let i = tick.sp.index();
    let counter = WorkCounter::new();
    let started = Instant::now();
    let mut inputs = HashMap::new();
    for (path, src, consumer) in &leaf_consumers[i] {
        let batch = match src {
            InputSource::Base(t) => {
                base_buffers.get_mut(t).expect("registered table").pull(*consumer)?
            }
            InputSource::Subplan(c) => sp_buffers[c.index()].pull(*consumer)?,
        };
        inputs.insert(path.clone(), batch);
    }
    let out = executors[i].execute(&mut inputs, &counter)?;
    counter.charge(weights.materialize, out.len());
    sp_buffers[i].append(&out);
    Ok((counter.total(), started.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{DataType, QuerySet, Value};
    use ishare_exec::batch_ref::run_logical;
    use ishare_expr::Expr;
    use ishare_plan::{AggExpr, AggFunc, DagOp, PlanBuilder, SelectBranch, SharedDag};
    use ishare_storage::{ColumnStats, Field, Schema, TableStats};

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats {
                row_count: 200.0,
                columns: vec![ColumnStats::ndv(10.0), ColumnStats::ndv(100.0)],
            },
        )
        .unwrap();
        c
    }

    fn data(c: &Catalog, n: i64) -> HashMap<TableId, Vec<Row>> {
        let t = c.table_by_name("t").unwrap().id;
        let rows =
            (0..n).map(|i| Row::new(vec![Value::Int(i % 10), Value::Int(i * 7 % 100)])).collect();
        [(t, rows)].into_iter().collect()
    }

    /// Fig. 2-style shared plan over two queries with different predicates.
    fn shared_plan(c: &Catalog) -> SharedPlan {
        let t = c.table_by_name("t").unwrap().id;
        let mut d = SharedDag::new();
        let scan = d.add_node(DagOp::Scan { table: t }, vec![], qs(&[0, 1])).unwrap();
        let sel = d
            .add_node(
                DagOp::Select {
                    branches: vec![
                        SelectBranch { queries: qs(&[0]), predicate: Expr::true_lit() },
                        SelectBranch {
                            queries: qs(&[1]),
                            predicate: Expr::col(1).lt(Expr::lit(50i64)),
                        },
                    ],
                },
                vec![scan],
                qs(&[0, 1]),
            )
            .unwrap();
        let agg = d
            .add_node(
                DagOp::Aggregate {
                    group_by: vec![(Expr::col(0), "k".into())],
                    aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")],
                },
                vec![sel],
                qs(&[0, 1]),
            )
            .unwrap();
        let p0 = d
            .add_node(
                DagOp::Project {
                    exprs: vec![(Expr::col(0), "k".into()), (Expr::col(1), "s".into())],
                },
                vec![agg],
                qs(&[0]),
            )
            .unwrap();
        let p1 = d
            .add_node(
                DagOp::Project { exprs: vec![(Expr::col(1), "s".into())] },
                vec![agg],
                qs(&[1]),
            )
            .unwrap();
        d.set_query_root(QueryId(0), p0).unwrap();
        d.set_query_root(QueryId(1), p1).unwrap();
        SharedPlan::from_dag(&d, |_| false).unwrap()
    }

    /// The reference results computed per query by the naive executor.
    fn reference(c: &Catalog, data: &HashMap<TableId, Vec<Row>>) -> Vec<HashMap<Row, i64>> {
        let q0 = PlanBuilder::scan(c, "t")
            .unwrap()
            .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?]))
            .unwrap()
            .project_cols(&["k", "s"])
            .unwrap()
            .build();
        let q1 = PlanBuilder::scan(c, "t")
            .unwrap()
            .select(|x| Ok(x.col("v")?.lt(Expr::lit(50i64))))
            .unwrap()
            .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?]))
            .unwrap()
            .project(|x| Ok(vec![(x.col("s")?, "s".into())]))
            .unwrap()
            .build();
        vec![run_logical(&q0, c, data).unwrap(), run_logical(&q1, c, data).unwrap()]
    }

    #[test]
    fn batch_run_matches_reference() {
        let c = catalog();
        let plan = shared_plan(&c);
        let d = data(&c, 200);
        let run = execute_planned(&plan, &[1, 1, 1], &c, &d, CostWeights::default()).unwrap();
        let expected = reference(&c, &d);
        assert_eq!(run.results[&QueryId(0)], expected[0]);
        assert_eq!(run.results[&QueryId(1)], expected[1]);
        assert_eq!(run.executions, 3);
        assert!(run.total_work.get() > 0.0);
        assert!(run.elapsed >= run.total_wall);
    }

    #[test]
    fn any_pace_configuration_same_results() {
        let c = catalog();
        let plan = shared_plan(&c);
        let d = data(&c, 200);
        let expected = reference(&c, &d);
        for paces in [[1u32, 1, 1], [5, 1, 1], [10, 10, 10], [7, 3, 2]] {
            let run = execute_planned(&plan, &paces, &c, &d, CostWeights::default()).unwrap();
            assert_eq!(run.results[&QueryId(0)], expected[0], "paces {paces:?}");
            assert_eq!(run.results[&QueryId(1)], expected[1], "paces {paces:?}");
        }
    }

    #[test]
    fn eager_costs_more_total_less_final() {
        let c = catalog();
        let plan = shared_plan(&c);
        let d = data(&c, 200);
        let lazy = execute_planned(&plan, &[1, 1, 1], &c, &d, CostWeights::default()).unwrap();
        let eager = execute_planned(&plan, &[20, 20, 20], &c, &d, CostWeights::default()).unwrap();
        assert!(eager.total_work.get() > lazy.total_work.get());
        for q in [QueryId(0), QueryId(1)] {
            assert!(
                eager.final_work[&q] < lazy.final_work[&q],
                "query {q}: eager {} vs lazy {}",
                eager.final_work[&q],
                lazy.final_work[&q]
            );
        }
        assert_eq!(eager.executions, 60);
    }

    #[test]
    fn pace_mismatch_rejected() {
        let c = catalog();
        let plan = shared_plan(&c);
        let d = data(&c, 10);
        assert!(execute_planned(&plan, &[1, 1], &c, &d, CostWeights::default()).is_err());
    }

    #[test]
    fn missing_table_data_is_empty_results() {
        let c = catalog();
        let plan = shared_plan(&c);
        let run = execute_planned(&plan, &[2, 1, 1], &c, &HashMap::new(), CostWeights::default())
            .unwrap();
        assert!(run.results[&QueryId(0)].is_empty());
        assert!(run.results[&QueryId(1)].is_empty());
    }

    #[test]
    fn delta_feeds_with_updates_net_out() {
        // Insert (k=1, v=10), then update it to v=30 mid-stream: the final
        // aggregate must reflect only the updated value, at any pace.
        let c = catalog();
        let plan = shared_plan(&c);
        let t = c.table_by_name("t").unwrap().id;
        let feed: Vec<(Row, i64)> = vec![
            (Row::new(vec![Value::Int(1), Value::Int(10)]), 1),
            (Row::new(vec![Value::Int(2), Value::Int(5)]), 1),
            (Row::new(vec![Value::Int(1), Value::Int(10)]), -1), // update: delete…
            (Row::new(vec![Value::Int(1), Value::Int(30)]), 1),  // …plus insert
        ];
        let feeds: HashMap<TableId, Vec<(Row, i64)>> = [(t, feed)].into_iter().collect();
        for paces in [[1u32, 1, 1], [4, 2, 1]] {
            let run =
                execute_planned_deltas(&plan, &paces, &c, &feeds, CostWeights::default()).unwrap();
            // Q0 = sum(v) by k over all rows: k=1 → 30, k=2 → 5.
            let r0 = &run.results[&QueryId(0)];
            assert_eq!(r0[&Row::new(vec![Value::Int(1), Value::Int(30)])], 1, "paces {paces:?}");
            assert_eq!(r0[&Row::new(vec![Value::Int(2), Value::Int(5)])], 1);
            assert_eq!(r0.len(), 2);
        }
    }

    #[test]
    fn uneven_data_sizes_fully_consumed() {
        // 199 rows and pace 7: integer arrival arithmetic must still feed
        // every row by the final tick.
        let c = catalog();
        let plan = shared_plan(&c);
        let d = data(&c, 199);
        let expected = reference(&c, &d);
        let run = execute_planned(&plan, &[7, 7, 7], &c, &d, CostWeights::default()).unwrap();
        assert_eq!(run.results[&QueryId(0)], expected[0]);
    }
}
