//! The paced execution driver.

use ishare_common::{
    CostWeights, Error, QueryId, Result, SubplanId, TableId, WorkCounter, WorkUnits,
};
use ishare_exec::{query_result, QueryResult, SubplanExecutor};
use ishare_plan::{InputSource, SharedPlan};
use ishare_storage::{Catalog, DeltaBuffer, DeltaRow, Row};
use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

/// Measured outcome of one paced run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Measured total work: Σ work of all incremental executions.
    pub total_work: WorkUnits,
    /// Wall-clock spent inside executions (the paper's "total execution
    /// time" — single-threaded here, so it is also CPU time).
    pub total_wall: Duration,
    /// Per query: measured final work (Σ work of the final executions of
    /// the query's subplans).
    pub final_work: BTreeMap<QueryId, f64>,
    /// Per query: wall-clock latency (Σ wall of the final executions of the
    /// query's subplans).
    pub latency: BTreeMap<QueryId, Duration>,
    /// Final materialized result per query.
    pub results: BTreeMap<QueryId, QueryResult>,
    /// Number of incremental executions performed.
    pub executions: usize,
}

/// One scheduled incremental execution: subplan `sp` runs when `num/den` of
/// the trigger's data has arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Tick {
    num: u32,
    den: u32,
    topo_rank: usize,
    sp: SubplanId,
    is_final: bool,
}

impl Tick {
    fn frac_cmp(&self, other: &Tick) -> std::cmp::Ordering {
        // i/k vs j/m  ⇔  i·m vs j·k (exact, no float).
        let a = self.num as u64 * other.den as u64;
        let b = other.num as u64 * self.den as u64;
        a.cmp(&b)
    }
}

/// Execute `plan` at `paces` over insert-only `data` (each base relation's
/// full trigger of rows in arrival order). See [`execute_planned_deltas`]
/// for streams containing deletes/updates.
pub fn execute_planned(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<Row>>,
    weights: CostWeights,
) -> Result<RunResult> {
    let feeds: HashMap<TableId, Vec<(Row, i64)>> = data
        .iter()
        .map(|(t, rows)| (*t, rows.iter().map(|r| (r.clone(), 1i64)).collect()))
        .collect();
    execute_planned_deltas(plan, paces, catalog, &feeds, weights)
}

/// Execute `plan` at `paces` over weighted delta feeds, with deltas arriving
/// uniformly.
///
/// Each base relation's feed is a sequence of `(row, weight)` deltas in
/// arrival order: weight `+1` inserts, `-1` deletes, and an update is a
/// delete followed by an insert (the engine semantics of Sec. 2.3). Subplans
/// at pace `k` run at arrival fractions `1/k … k/k`; subplans sharing a tick
/// run children-first (Sec. 5.1: "the child subplans are executed earlier
/// than their parent subplans").
pub fn execute_planned_deltas(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<(Row, i64)>>,
    weights: CostWeights,
) -> Result<RunResult> {
    if paces.len() != plan.len() {
        return Err(Error::InvalidConfig(format!(
            "{} paces for {} subplans",
            paces.len(),
            plan.len()
        )));
    }
    let schemas = plan.schemas(catalog)?;
    let topo = plan.topo_order()?;
    let topo_rank: HashMap<SubplanId, usize> =
        topo.iter().enumerate().map(|(i, id)| (*id, i)).collect();
    let all_queries = plan.queries();

    // Buffers: one per base table, one per subplan output.
    let mut base_buffers: HashMap<TableId, DeltaBuffer> = HashMap::new();
    let mut base_fed: HashMap<TableId, usize> = HashMap::new();
    let mut sp_buffers: Vec<DeltaBuffer> = (0..plan.len()).map(|_| DeltaBuffer::new()).collect();

    // Executors + consumer registrations per leaf.
    let mut executors: Vec<SubplanExecutor> = Vec::with_capacity(plan.len());
    let mut leaf_consumers: Vec<Vec<(Vec<usize>, InputSource, ishare_storage::ConsumerId)>> =
        Vec::with_capacity(plan.len());
    for sp in &plan.subplans {
        let ex = SubplanExecutor::new(sp, catalog, &schemas, weights)?;
        let mut regs = Vec::new();
        for (path, src) in ex.leaf_paths() {
            let consumer = match src {
                InputSource::Base(t) => {
                    catalog.table(t)?; // existence check
                    base_buffers.entry(t).or_default().register_consumer()
                }
                InputSource::Subplan(c) => sp_buffers[c.index()].register_consumer(),
            };
            regs.push((path, src, consumer));
        }
        executors.push(ex);
        leaf_consumers.push(regs);
    }
    for t in base_buffers.keys() {
        base_fed.insert(*t, 0);
    }

    // Build the global tick schedule.
    let mut ticks: Vec<Tick> = Vec::new();
    for sp in &plan.subplans {
        let k = paces[sp.id.index()];
        for i in 1..=k {
            ticks.push(Tick {
                num: i,
                den: k,
                topo_rank: topo_rank[&sp.id],
                sp: sp.id,
                is_final: i == k,
            });
        }
    }
    ticks.sort_by(|a, b| a.frac_cmp(b).then(a.topo_rank.cmp(&b.topo_rank)));

    // Run.
    let mut total_work = WorkUnits::ZERO;
    let mut total_wall = Duration::ZERO;
    let mut final_sp_work: Vec<f64> = vec![0.0; plan.len()];
    let mut final_sp_wall: Vec<Duration> = vec![Duration::ZERO; plan.len()];
    let mut executions = 0usize;

    let tick_list = ticks;
    for tick in &tick_list {
        // 1. Feed base buffers up to this tick's arrival fraction.
        let tables: Vec<TableId> = base_fed.keys().copied().collect();
        for t in tables {
            let rows = data.get(&t).map(|v| v.as_slice()).unwrap_or(&[]);
            let n = rows.len() as u64;
            let arrived = ((tick.num as u64 * n) / tick.den as u64) as usize;
            let fed = base_fed[&t];
            if arrived > fed {
                let buf = base_buffers.get_mut(&t).expect("registered table");
                for (row, weight) in &rows[fed..arrived] {
                    buf.push(DeltaRow { row: row.clone(), weight: *weight, mask: all_queries });
                }
                base_fed.insert(t, arrived);
            }
        }
        // 2. Execute the subplan.
        let i = tick.sp.index();
        let counter = WorkCounter::new();
        let started = Instant::now();
        let mut inputs = HashMap::new();
        for (path, src, consumer) in &leaf_consumers[i] {
            let batch = match src {
                InputSource::Base(t) => base_buffers
                    .get_mut(t)
                    .expect("registered table")
                    .pull(*consumer)?,
                InputSource::Subplan(c) => sp_buffers[c.index()].pull(*consumer)?,
            };
            inputs.insert(path.clone(), batch);
        }
        let out = executors[i].execute(&mut inputs, &counter)?;
        counter.charge(weights.materialize, out.len());
        sp_buffers[i].append(&out);
        let wall = started.elapsed();
        let work = counter.total();
        total_work += work;
        total_wall += wall;
        executions += 1;
        if tick.is_final {
            final_sp_work[i] = work.get();
            final_sp_wall[i] = wall;
        }
    }

    // Aggregate per-query measurements and extract results.
    let mut final_work = BTreeMap::new();
    let mut latency = BTreeMap::new();
    let mut results = BTreeMap::new();
    for q in all_queries.iter() {
        let subplans = plan.subplans_of_query(q);
        final_work.insert(q, subplans.iter().map(|id| final_sp_work[id.index()]).sum());
        latency.insert(
            q,
            subplans.iter().map(|id| final_sp_wall[id.index()]).sum(),
        );
        let root = plan
            .query_root(q)
            .ok_or_else(|| Error::InvalidPlan(format!("query {q} has no output subplan")))?;
        results.insert(q, query_result(sp_buffers[root.index()].all_rows(), q));
    }

    Ok(RunResult {
        total_work,
        total_wall,
        final_work,
        latency,
        results,
        executions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{DataType, QuerySet, Value};
    use ishare_exec::batch_ref::run_logical;
    use ishare_expr::Expr;
    use ishare_plan::{AggExpr, AggFunc, DagOp, PlanBuilder, SelectBranch, SharedDag};
    use ishare_storage::{ColumnStats, Field, Schema, TableStats};

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
            TableStats {
                row_count: 200.0,
                columns: vec![ColumnStats::ndv(10.0), ColumnStats::ndv(100.0)],
            },
        )
        .unwrap();
        c
    }

    fn data(c: &Catalog, n: i64) -> HashMap<TableId, Vec<Row>> {
        let t = c.table_by_name("t").unwrap().id;
        let rows = (0..n)
            .map(|i| Row::new(vec![Value::Int(i % 10), Value::Int(i * 7 % 100)]))
            .collect();
        [(t, rows)].into_iter().collect()
    }

    /// Fig. 2-style shared plan over two queries with different predicates.
    fn shared_plan(c: &Catalog) -> SharedPlan {
        let t = c.table_by_name("t").unwrap().id;
        let mut d = SharedDag::new();
        let scan = d.add_node(DagOp::Scan { table: t }, vec![], qs(&[0, 1])).unwrap();
        let sel = d
            .add_node(
                DagOp::Select {
                    branches: vec![
                        SelectBranch { queries: qs(&[0]), predicate: Expr::true_lit() },
                        SelectBranch {
                            queries: qs(&[1]),
                            predicate: Expr::col(1).lt(Expr::lit(50i64)),
                        },
                    ],
                },
                vec![scan],
                qs(&[0, 1]),
            )
            .unwrap();
        let agg = d
            .add_node(
                DagOp::Aggregate {
                    group_by: vec![(Expr::col(0), "k".into())],
                    aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")],
                },
                vec![sel],
                qs(&[0, 1]),
            )
            .unwrap();
        let p0 = d
            .add_node(
                DagOp::Project {
                    exprs: vec![(Expr::col(0), "k".into()), (Expr::col(1), "s".into())],
                },
                vec![agg],
                qs(&[0]),
            )
            .unwrap();
        let p1 = d
            .add_node(
                DagOp::Project { exprs: vec![(Expr::col(1), "s".into())] },
                vec![agg],
                qs(&[1]),
            )
            .unwrap();
        d.set_query_root(QueryId(0), p0).unwrap();
        d.set_query_root(QueryId(1), p1).unwrap();
        SharedPlan::from_dag(&d, |_| false).unwrap()
    }

    /// The reference results computed per query by the naive executor.
    fn reference(c: &Catalog, data: &HashMap<TableId, Vec<Row>>) -> Vec<HashMap<Row, i64>> {
        let q0 = PlanBuilder::scan(c, "t")
            .unwrap()
            .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?]))
            .unwrap()
            .project_cols(&["k", "s"])
            .unwrap()
            .build();
        let q1 = PlanBuilder::scan(c, "t")
            .unwrap()
            .select(|x| Ok(x.col("v")?.lt(Expr::lit(50i64))))
            .unwrap()
            .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?]))
            .unwrap()
            .project(|x| Ok(vec![(x.col("s")?, "s".into())]))
            .unwrap()
            .build();
        vec![run_logical(&q0, c, data).unwrap(), run_logical(&q1, c, data).unwrap()]
    }

    #[test]
    fn batch_run_matches_reference() {
        let c = catalog();
        let plan = shared_plan(&c);
        let d = data(&c, 200);
        let run = execute_planned(&plan, &[1, 1, 1], &c, &d, CostWeights::default()).unwrap();
        let expected = reference(&c, &d);
        assert_eq!(run.results[&QueryId(0)], expected[0]);
        assert_eq!(run.results[&QueryId(1)], expected[1]);
        assert_eq!(run.executions, 3);
        assert!(run.total_work.get() > 0.0);
    }

    #[test]
    fn any_pace_configuration_same_results() {
        let c = catalog();
        let plan = shared_plan(&c);
        let d = data(&c, 200);
        let expected = reference(&c, &d);
        for paces in [[1u32, 1, 1], [5, 1, 1], [10, 10, 10], [7, 3, 2]] {
            let run =
                execute_planned(&plan, &paces, &c, &d, CostWeights::default()).unwrap();
            assert_eq!(run.results[&QueryId(0)], expected[0], "paces {paces:?}");
            assert_eq!(run.results[&QueryId(1)], expected[1], "paces {paces:?}");
        }
    }

    #[test]
    fn eager_costs_more_total_less_final() {
        let c = catalog();
        let plan = shared_plan(&c);
        let d = data(&c, 200);
        let lazy = execute_planned(&plan, &[1, 1, 1], &c, &d, CostWeights::default()).unwrap();
        let eager =
            execute_planned(&plan, &[20, 20, 20], &c, &d, CostWeights::default()).unwrap();
        assert!(eager.total_work.get() > lazy.total_work.get());
        for q in [QueryId(0), QueryId(1)] {
            assert!(
                eager.final_work[&q] < lazy.final_work[&q],
                "query {q}: eager {} vs lazy {}",
                eager.final_work[&q],
                lazy.final_work[&q]
            );
        }
        assert_eq!(eager.executions, 60);
    }

    #[test]
    fn pace_mismatch_rejected() {
        let c = catalog();
        let plan = shared_plan(&c);
        let d = data(&c, 10);
        assert!(execute_planned(&plan, &[1, 1], &c, &d, CostWeights::default()).is_err());
    }

    #[test]
    fn missing_table_data_is_empty_results() {
        let c = catalog();
        let plan = shared_plan(&c);
        let run = execute_planned(
            &plan,
            &[2, 1, 1],
            &c,
            &HashMap::new(),
            CostWeights::default(),
        )
        .unwrap();
        assert!(run.results[&QueryId(0)].is_empty());
        assert!(run.results[&QueryId(1)].is_empty());
    }

    #[test]
    fn delta_feeds_with_updates_net_out() {
        // Insert (k=1, v=10), then update it to v=30 mid-stream: the final
        // aggregate must reflect only the updated value, at any pace.
        let c = catalog();
        let plan = shared_plan(&c);
        let t = c.table_by_name("t").unwrap().id;
        let feed: Vec<(Row, i64)> = vec![
            (Row::new(vec![Value::Int(1), Value::Int(10)]), 1),
            (Row::new(vec![Value::Int(2), Value::Int(5)]), 1),
            (Row::new(vec![Value::Int(1), Value::Int(10)]), -1), // update: delete…
            (Row::new(vec![Value::Int(1), Value::Int(30)]), 1),  // …plus insert
        ];
        let feeds: HashMap<TableId, Vec<(Row, i64)>> = [(t, feed)].into_iter().collect();
        for paces in [[1u32, 1, 1], [4, 2, 1]] {
            let run = execute_planned_deltas(&plan, &paces, &c, &feeds, CostWeights::default())
                .unwrap();
            // Q0 = sum(v) by k over all rows: k=1 → 30, k=2 → 5.
            let r0 = &run.results[&QueryId(0)];
            assert_eq!(
                r0[&Row::new(vec![Value::Int(1), Value::Int(30)])],
                1,
                "paces {paces:?}"
            );
            assert_eq!(r0[&Row::new(vec![Value::Int(2), Value::Int(5)])], 1);
            assert_eq!(r0.len(), 2);
        }
    }

    #[test]
    fn uneven_data_sizes_fully_consumed() {
        // 199 rows and pace 7: integer arrival arithmetic must still feed
        // every row by the final tick.
        let c = catalog();
        let plan = shared_plan(&c);
        let d = data(&c, 199);
        let expected = reference(&c, &d);
        let run = execute_planned(&plan, &[7, 7, 7], &c, &d, CostWeights::default()).unwrap();
        assert_eq!(run.results[&QueryId(0)], expected[0]);
    }
}
