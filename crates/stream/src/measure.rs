//! Missed-latency statistics (the metrics of Tables 1–3).
//!
//! "The absolute missed latency represents the difference between the tested
//! latency and the latency goal, which is `max(0, tested − goal)`. The
//! relative missed latency represents the percentage of the absolute missed
//! latency compared to the latency goal."

use ishare_common::QueryId;
use std::collections::BTreeMap;

/// Mean/max missed latency over a set of queries, in both absolute units
/// and percent of the goal (the four columns of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MissedLatencyStats {
    /// Mean relative missed latency (percent).
    pub mean_pct: f64,
    /// Mean absolute missed latency (same unit as the inputs).
    pub mean_abs: f64,
    /// Max relative missed latency (percent).
    pub max_pct: f64,
    /// Max absolute missed latency.
    pub max_abs: f64,
}

/// Compute missed-latency statistics from per-query `(goal, tested)` pairs.
/// Queries present in only one map are ignored.
pub fn missed_latency_stats(
    goals: &BTreeMap<QueryId, f64>,
    tested: &BTreeMap<QueryId, f64>,
) -> MissedLatencyStats {
    let mut abs = Vec::new();
    let mut pct = Vec::new();
    for (q, goal) in goals {
        let Some(&t) = tested.get(q) else { continue };
        let missed = (t - goal).max(0.0);
        abs.push(missed);
        pct.push(if *goal > 0.0 { 100.0 * missed / goal } else { 0.0 });
    }
    if abs.is_empty() {
        return MissedLatencyStats::default();
    }
    let n = abs.len() as f64;
    MissedLatencyStats {
        mean_pct: pct.iter().sum::<f64>() / n,
        mean_abs: abs.iter().sum::<f64>() / n,
        max_pct: pct.iter().copied().fold(0.0, f64::max),
        max_abs: abs.iter().copied().fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(u16, f64)]) -> BTreeMap<QueryId, f64> {
        entries.iter().map(|&(q, v)| (QueryId(q), v)).collect()
    }

    #[test]
    fn stats_computed() {
        let goals = map(&[(0, 10.0), (1, 20.0), (2, 5.0)]);
        let tested = map(&[(0, 15.0), (1, 10.0), (2, 6.0)]);
        let s = missed_latency_stats(&goals, &tested);
        // Missed: q0 = 5 (50%), q1 = 0, q2 = 1 (20%).
        assert!((s.mean_abs - 2.0).abs() < 1e-9);
        assert!((s.max_abs - 5.0).abs() < 1e-9);
        assert!((s.max_pct - 50.0).abs() < 1e-9);
        assert!((s.mean_pct - (50.0 + 0.0 + 20.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn all_met_is_zero() {
        let goals = map(&[(0, 10.0)]);
        let tested = map(&[(0, 9.0)]);
        assert_eq!(missed_latency_stats(&goals, &tested), MissedLatencyStats::default());
    }

    #[test]
    fn empty_and_mismatched_inputs() {
        assert_eq!(
            missed_latency_stats(&BTreeMap::new(), &BTreeMap::new()),
            MissedLatencyStats::default()
        );
        let goals = map(&[(0, 10.0)]);
        let tested = map(&[(9, 99.0)]);
        assert_eq!(missed_latency_stats(&goals, &tested), MissedLatencyStats::default());
    }

    #[test]
    fn zero_goal_does_not_divide_by_zero() {
        let goals = map(&[(0, 0.0)]);
        let tested = map(&[(0, 5.0)]);
        let s = missed_latency_stats(&goals, &tested);
        assert_eq!(s.mean_pct, 0.0);
        assert_eq!(s.mean_abs, 5.0);
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn single_query_stats() {
        let goals: BTreeMap<QueryId, f64> = [(QueryId(0), 100.0)].into_iter().collect();
        let tested: BTreeMap<QueryId, f64> = [(QueryId(0), 150.0)].into_iter().collect();
        let s = missed_latency_stats(&goals, &tested);
        assert_eq!(s.mean_abs, 50.0);
        assert_eq!(s.max_abs, 50.0);
        assert_eq!(s.mean_pct, 50.0);
        assert_eq!(s.max_pct, 50.0);
    }

    #[test]
    fn negative_miss_clamped() {
        // Beating the goal is a zero miss, not a negative one.
        let goals: BTreeMap<QueryId, f64> =
            [(QueryId(0), 100.0), (QueryId(1), 100.0)].into_iter().collect();
        let tested: BTreeMap<QueryId, f64> =
            [(QueryId(0), 10.0), (QueryId(1), 110.0)].into_iter().collect();
        let s = missed_latency_stats(&goals, &tested);
        assert_eq!(s.mean_abs, 5.0, "only q1's 10 counts, averaged over 2");
        assert_eq!(s.max_pct, 10.0);
    }
}
