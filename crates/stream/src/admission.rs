//! Online query churn: live admission and removal with incremental
//! re-sharing (DESIGN.md §14).
//!
//! The batch drivers fix the query set before the first row arrives. This
//! module lifts that restriction: a [`ChurnScript`] names queries to admit
//! or remove at arrival fractions, and [`execute_churn_from_source`] applies
//! each event at the first *wavefront boundary* at or after its fraction —
//! never mid-front, so every decision point is a deterministic position in
//! the schedule.
//!
//! ## Admission
//!
//! An admission diff-merges the new query into the live shared DAG through
//! [`IncrementalSharer`] (no full rebuild: the existing nodes, and
//! therefore the existing operator state keyed by node identity, stay
//! put). The runner then
//!
//! 1. re-cuts the DAG with *sticky forced cuts* — every previous subplan
//!    root plus the admission's attachment frontier — so surviving subplans
//!    never fuse and the new query's private cone taps shared structure at
//!    materialized buffers;
//! 2. runs the pace search over the re-cut plan under the live queries'
//!    *residual* budgets `R(q) = max(0, L(q) − charged final work)`; an
//!    infeasible admission is rejected with [`Error::Churn`] before any
//!    engine state is touched (the merge happens on a clone of the sharer);
//! 3. reconciles the engine: surviving subplans keep their executors,
//!    buffers, and consumer cursors (re-compiled in place via
//!    `refresh_subplan`); a frontier cut *inside* a surviving subplan
//!    splits it, transplanting operator state path-by-path with
//!    `StateBundle::extract_prefix`; new private subplans start cold;
//! 4. hands existing state to the new query where subplans are shared:
//!    the *witness query* (a query that has seen exactly the rows the new
//!    query would have seen over the reused structure) indexes operator
//!    state snapshots which are re-masked to the new query and seeded into
//!    its private cone — no replay of history through shared prefixes.
//!    Private cones over base tables replay the base buffers instead
//!    (base buffers retain their full stream in churn mode).
//!
//! ## Removal
//!
//! Removal reverses: the query's bit is cleared everywhere, query-empty
//! nodes are tombstoned, the re-cut drops subplans whose query set went
//! empty, their executors and buffers are garbage-collected (reported as
//! `churn.reclaimed_rows`), surviving operator state drops the query's
//! mask column via `retire_query`, and the query's slack-ledger entry is
//! released.
//!
//! ## Determinism
//!
//! Every churn event is applied on a *quiesced* boundary: the runner first
//! drains all delta buffers with one children-first execution sweep, so
//! operator state, buffers, and consumer cursors agree exactly when state
//! is snapshotted or transplanted. Events are recorded in the ingest commit
//! log as [`ChurnRecord`]s, so a killed run replays the exact churn
//! trajectory (replay verification compares whole commit entries, churn
//! included). Results and all measured work numbers are bit-identical
//! across obs on/off, partition counts, worker threads, and kill/resume.

use crate::driver::{feed_from_source, setup_engine, EngineState, RunResult, SourceOptions};
use crate::schedule::{build_schedule, front_at, Tick};
use ishare_common::{
    CostWeights, Error, NodeId, OpKind, QueryId, QuerySet, Result, SubplanId, TableId, WorkCounter,
    WorkUnits,
};
use ishare_core::constraint::batch_final_works;
use ishare_core::{find_pace_configuration, resolve_constraints, FinalWorkConstraint};
use ishare_cost::PlanEstimator;
use ishare_exec::executor::StateBundle;
use ishare_exec::{query_result, ExecMode, ExecOptions, SubplanExecutor};
use ishare_ingest::{ChurnKind, ChurnRecord, CommitLog, Source};
use ishare_mqo::{normalize, IncrementalSharer, MqoConfig};
use ishare_obs::{ExecCounts, FrontCharge, MetricsRegistry, ObsReport, SlackLedger};
use ishare_plan::{DagOp, InputSource, LogicalPlan, SharedDag, SharedPlan};
use ishare_storage::{Catalog, ConsumerId, DeltaBatch, DeltaBuffer, Retain, Schema};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::{Duration, Instant};

/// One churn operation.
#[derive(Debug, Clone)]
pub enum ChurnOp {
    /// Admit a new query into the live run.
    Admit {
        /// The query's id (must be free: never used, or removed earlier).
        query: QueryId,
        /// Its logical plan (normalized internally).
        plan: LogicalPlan,
        /// Its final-work budget `L(q)`; `Relative` is resolved against the
        /// query's own no-share batch final work, exactly like the planners.
        constraint: FinalWorkConstraint,
    },
    /// Remove a live query from the run.
    Remove {
        /// The query to remove.
        query: QueryId,
    },
}

/// A churn operation due at arrival fraction `num/den`. It is applied at
/// the first wavefront boundary whose fraction is ≥ `num/den`; fractions
/// ≥ 1 are rejected up front (there is nothing left to churn at the final
/// boundary).
#[derive(Debug, Clone)]
pub struct ChurnEvent {
    /// Fraction numerator.
    pub num: u32,
    /// Fraction denominator.
    pub den: u32,
    /// What to do.
    pub op: ChurnOp,
}

/// The full churn trajectory of one run, applied in order.
#[derive(Debug, Clone, Default)]
pub struct ChurnScript {
    /// Events in application order.
    pub events: Vec<ChurnEvent>,
}

impl ChurnScript {
    /// Script with the given events.
    pub fn new(events: Vec<ChurnEvent>) -> Self {
        ChurnScript { events }
    }
}

/// Options for a churn run.
#[derive(Debug, Clone, Default)]
pub struct ChurnOptions {
    /// Ingest/runtime options shared with the plain source drivers
    /// ([`ExecMode::Reference`] is rejected: the oracle datapath has no
    /// state surgery).
    pub source: SourceOptions,
    /// MQO configuration for the incremental sharer.
    pub mqo: MqoConfig,
    /// Pace-search bound (0 falls back to 8).
    pub max_pace: u32,
}

impl ChurnOptions {
    fn max_pace(&self) -> u32 {
        if self.max_pace == 0 {
            8
        } else {
            self.max_pace
        }
    }
}

/// What a churn run produced.
#[derive(Debug, Clone)]
pub struct ChurnRunResult {
    /// The measured run over the queries live at the end.
    pub run: RunResult,
    /// Applied churn events, in order (the same records land in the commit
    /// log).
    pub churn: Vec<ChurnRecord>,
    /// Queries live at the end of the run.
    pub live: QuerySet,
    /// Queries removed during the run, in removal order.
    pub removed: Vec<QueryId>,
    /// Total state/buffer rows reclaimed by removals.
    pub reclaimed_rows: u64,
    /// Total rows handed to admitted queries from shared state.
    pub handoff_rows: u64,
    /// Extra drain executions run to quiesce churn boundaries.
    pub quiesce_ticks: usize,
}

/// Outcome of a churn run, mirroring [`crate::SourceOutcome`].
#[derive(Debug)]
pub enum ChurnOutcome {
    /// The run executed every wavefront.
    Completed {
        /// The measured run.
        result: Box<ChurnRunResult>,
        /// Commit log (wavefronts + churn records) for replay verification.
        log: CommitLog,
    },
    /// Stopped by [`SourceOptions::stop_after`].
    Suspended {
        /// Commit log of the completed wavefronts.
        log: CommitLog,
    },
}

impl ChurnOutcome {
    /// Unwrap a completed run's result; errors on `Suspended`.
    pub fn into_result(self) -> Result<ChurnRunResult> {
        match self {
            ChurnOutcome::Completed { result, .. } => Ok(*result),
            ChurnOutcome::Suspended { log } => Err(Error::InvalidConfig(format!(
                "churn run suspended after {} wavefronts, no result",
                log.len()
            ))),
        }
    }
}

/// `a/b > c/d`, exact in `u64`.
fn frac_gt(a: u32, b: u32, c: u32, d: u32) -> bool {
    u64::from(a) * u64::from(d) > u64::from(c) * u64::from(b)
}

/// `a/b <= c/d`, exact in `u64`.
fn frac_le(a: u32, b: u32, c: u32, d: u32) -> bool {
    u64::from(a) * u64::from(d) <= u64::from(c) * u64::from(b)
}

/// Where a post-churn subplan's executor and buffer came from.
#[derive(Debug, Clone, PartialEq)]
enum Origin {
    /// Same root node as old subplan `i`: executor, buffer, and consumer
    /// cursors carried over (a split *parent* is also a survivor — it keeps
    /// the old buffer and the state above the cut).
    Survivor(usize),
    /// Root was *interior* to old subplan `old` at tree path `prefix`:
    /// fresh executor with state transplanted from the donor's bundle,
    /// fresh buffer, consumer cursors carried from the donor's leaves
    /// under `prefix`.
    Split {
        /// Donor (old) subplan index.
        old: usize,
        /// Tree path of this subplan's root inside the donor.
        prefix: Vec<usize>,
    },
    /// Created for an admitted query's private cone: everything cold.
    Fresh,
}

/// Run `initial` queries (with optional final-work `constraints`; missing
/// entries default to `Relative(1.0)`) against `source`, applying `script`'s
/// churn events at wavefront boundaries. See the module docs.
pub fn execute_churn_from_source(
    initial: &[(QueryId, LogicalPlan)],
    constraints: &BTreeMap<QueryId, FinalWorkConstraint>,
    script: &ChurnScript,
    catalog: &Catalog,
    source: &mut Source,
    weights: CostWeights,
    opts: &ChurnOptions,
) -> Result<ChurnOutcome> {
    if opts.source.mode == ExecMode::Reference {
        return Err(Error::Churn(
            "the reference datapath does not support live churn (no state surgery)".into(),
        ));
    }
    if initial.is_empty() {
        return Err(Error::InvalidConfig("churn run needs at least one initial query".into()));
    }
    for ev in &script.events {
        if ev.den == 0 {
            return Err(Error::InvalidConfig("churn event with zero denominator".into()));
        }
        if ev.num >= ev.den {
            return Err(Error::Churn(format!(
                "churn event at fraction {}/{} is at or beyond the final boundary",
                ev.num, ev.den
            )));
        }
    }

    let started = Instant::now();
    let mut sharer = IncrementalSharer::new(opts.mqo.clone());
    for (q, lp) in initial {
        sharer.admit(*q, &normalize(lp))?;
    }
    sharer.seal();
    let (plan, roots) = SharedPlan::from_dag_with_roots(sharer.dag(), |_| false, &[])?;
    let budgets = resolve_constraints(initial, constraints, catalog, weights)?;
    let mut est = PlanEstimator::new(&plan, catalog, weights)?;
    let outcome = find_pace_configuration(&mut est, &budgets, opts.max_pace())?;
    let paces = outcome.paces.as_slice().to_vec();

    let exec_opts = opts.source.exec_options();
    let mut engine = setup_engine(&plan, catalog, weights, exec_opts)?;
    // Churn mode: base buffers keep their full stream so an admitted
    // query's private cone can replay history from offset 0.
    for b in engine.base_buffers.values_mut() {
        b.set_retention(Retain::All);
    }
    let seeds: Vec<HashMap<Vec<usize>, DeltaBatch>> =
        (0..plan.len()).map(|_| HashMap::new()).collect();

    let ledger = opts.source.obs.is_some().then(|| SlackLedger::new(&budgets));
    let runner = Runner {
        catalog,
        weights,
        opts,
        exec_opts,
        sharer,
        plan,
        roots,
        forced: Vec::new(),
        paces,
        budgets,
        engine,
        seeds,
        total_work: 0.0,
        total_wall: Duration::ZERO,
        executions: 0,
        counts: BTreeMap::new(),
        charged_total: BTreeMap::new(),
        charged_final: BTreeMap::new(),
        final_wall: BTreeMap::new(),
        removed: Vec::new(),
        churn: Vec::new(),
        reclaimed_total: 0,
        handoff_total: 0,
        quiesce_ticks: 0,
        admissions: 0,
        removals: 0,
        merge_reused: 0,
        merge_created: 0,
        ledger,
    };
    runner.run(script, source, started)
}

struct Runner<'a> {
    catalog: &'a Catalog,
    weights: CostWeights,
    opts: &'a ChurnOptions,
    exec_opts: ExecOptions,
    sharer: IncrementalSharer,
    plan: SharedPlan,
    /// Per subplan: the DAG node its root came from (stable identity across
    /// re-cuts).
    roots: Vec<NodeId>,
    /// Sticky forced cuts: every node that has ever been a subplan root or
    /// an admission frontier. Re-cutting never fuses live subplans.
    forced: Vec<NodeId>,
    paces: Vec<u32>,
    /// Absolute final-work budgets `L(q)` of the live queries.
    budgets: BTreeMap<QueryId, f64>,
    engine: EngineState,
    /// Per subplan: one-shot leaf input batches (state handoff for admitted
    /// queries), merged ahead of the pulled rows at the next execution.
    seeds: Vec<HashMap<Vec<usize>, DeltaBatch>>,
    total_work: f64,
    total_wall: Duration,
    executions: usize,
    counts: BTreeMap<QueryId, ExecCounts>,
    charged_total: BTreeMap<QueryId, f64>,
    charged_final: BTreeMap<QueryId, f64>,
    final_wall: BTreeMap<QueryId, Duration>,
    removed: Vec<QueryId>,
    churn: Vec<ChurnRecord>,
    reclaimed_total: u64,
    handoff_total: u64,
    quiesce_ticks: usize,
    admissions: u64,
    removals: u64,
    merge_reused: u64,
    merge_created: u64,
    ledger: Option<SlackLedger>,
}

impl Runner<'_> {
    fn run(
        mut self,
        script: &ChurnScript,
        source: &mut Source,
        started: Instant,
    ) -> Result<ChurnOutcome> {
        let mut pending: VecDeque<ChurnEvent> = script.events.iter().cloned().collect();
        let mut wf = 0usize;
        let mut bound = (0u32, 1u32);
        'epochs: loop {
            // A churn event re-cuts the plan and re-searches paces, so each
            // epoch runs the suffix of a freshly built schedule: only ticks
            // strictly past the last committed boundary. Every subplan's
            // final tick sits at 1/1 in every build, so the last epoch
            // always runs all finals.
            let ticks: Vec<Tick> = build_schedule(&self.plan, &self.paces)?
                .into_iter()
                .filter(|t| frac_gt(t.num, t.den, bound.0, bound.1))
                .collect();
            if ticks.is_empty() {
                break;
            }
            let mut pos = 0;
            while pos < ticks.len() {
                let front = front_at(&ticks, pos);
                let head = ticks[front.start];
                {
                    let EngineState { base_tables, base_buffers, .. } = &mut self.engine;
                    feed_from_source(
                        source,
                        base_tables,
                        head.num,
                        head.den,
                        self.plan.queries(),
                        |t, dr| base_buffers.get_mut(&t).expect("registered table").push(dr),
                    )?;
                }
                let mut front_work: BTreeMap<QueryId, f64> = BTreeMap::new();
                for tick in &ticks[front.clone()] {
                    let (w, wall) = exec_once(
                        tick.sp.index(),
                        &mut self.engine,
                        &mut self.seeds,
                        &self.weights,
                    )?;
                    self.attribute(tick.sp, w, wall, tick.is_final, &mut front_work);
                }
                for b in self.engine.base_buffers.values_mut() {
                    b.compact();
                }
                for b in &mut self.engine.sp_buffers {
                    b.compact();
                }

                // Churn events due at this boundary.
                let mut due = Vec::new();
                while pending.front().is_some_and(|ev| frac_le(ev.num, ev.den, head.num, head.den))
                {
                    due.push(pending.pop_front().expect("front checked"));
                }
                let committed_paces = self.paces.clone();
                let mut records = Vec::new();
                if !due.is_empty() {
                    if head.num == head.den {
                        return Err(Error::Churn(format!(
                            "churn due at fraction {}/{} but the only remaining boundary is \
                             final; lower the event fraction or raise a pace",
                            due[0].num, due[0].den
                        )));
                    }
                    self.quiesce(&mut front_work)?;
                    self.record_front(wf, head.num, head.den, &front_work);
                    for ev in due {
                        records.push(self.apply(ev)?);
                    }
                } else {
                    self.record_front(wf, head.num, head.den, &front_work);
                }

                // Commit with the paces that were in effect *during* this
                // wavefront (an event's new paces only govern the next
                // epoch), plus the churn records applied at its boundary.
                let entry = source.commit_with_churn(
                    wf,
                    head.num,
                    head.den,
                    &committed_paces,
                    records.clone(),
                );
                if let Some(expect) =
                    self.opts.source.verify.as_ref().and_then(|log| log.entries.get(wf))
                {
                    if expect != entry {
                        let what = if expect.churn != entry.churn {
                            "the churn trajectory"
                        } else if expect.paces != entry.paces {
                            "pace decisions"
                        } else {
                            "the source"
                        };
                        return Err(Error::InvalidDelta(format!(
                            "replay diverged from commit log at wavefront {wf} (fraction \
                             {}/{}): {what} did not replay deterministically",
                            head.num, head.den
                        )));
                    }
                }
                if self.opts.source.stop_after == Some(wf + 1) {
                    return Ok(ChurnOutcome::Suspended { log: source.log().clone() });
                }
                wf += 1;
                bound = (head.num, head.den);
                if !records.is_empty() {
                    self.churn.extend(records);
                    continue 'epochs;
                }
                pos = front.end;
            }
            break;
        }
        let log = source.log().clone();
        Ok(ChurnOutcome::Completed { result: Box::new(self.finish(started)?), log })
    }

    /// Charge one execution to the accumulators, in deterministic order.
    fn attribute(
        &mut self,
        sp: SubplanId,
        w: WorkUnits,
        wall: Duration,
        is_final: bool,
        front_work: &mut BTreeMap<QueryId, f64>,
    ) {
        self.total_work += w.get();
        self.total_wall += wall;
        self.executions += 1;
        for q in self.plan.subplans[sp.index()].queries.iter() {
            let c = self.counts.entry(q).or_default();
            *self.charged_total.entry(q).or_insert(0.0) += w.get();
            *front_work.entry(q).or_insert(0.0) += w.get();
            if is_final {
                c.finals += 1;
                *self.charged_final.entry(q).or_insert(0.0) += w.get();
                *self.final_wall.entry(q).or_insert(Duration::ZERO) += wall;
            } else {
                c.incremental += 1;
            }
        }
    }

    fn record_front(&mut self, wf: usize, num: u32, den: u32, front_work: &BTreeMap<QueryId, f64>) {
        let Some(ledger) = self.ledger.as_mut() else { return };
        let mut charges = BTreeMap::new();
        for q in self.plan.queries().iter() {
            charges.insert(
                q,
                FrontCharge {
                    front_work: front_work.get(&q).copied().unwrap_or(0.0),
                    charged_total: self.charged_total.get(&q).copied().unwrap_or(0.0),
                    consumed: self.charged_final.get(&q).copied().unwrap_or(0.0),
                },
            );
        }
        ledger.record_front(wf as u32, num, den, &charges);
    }

    /// Drain every buffer with one children-first sweep so operator state
    /// and buffers agree exactly at the churn boundary.
    fn quiesce(&mut self, front_work: &mut BTreeMap<QueryId, f64>) -> Result<()> {
        for sp in self.plan.topo_order()? {
            let i = sp.index();
            let mut has_input = !self.seeds[i].is_empty();
            if !has_input {
                for (_, src, cid) in &self.engine.leaf_consumers[i] {
                    let pending = match src {
                        InputSource::Base(t) => self
                            .engine
                            .base_buffers
                            .get(t)
                            .ok_or_else(|| Error::NotFound(format!("base buffer {t:?}")))?
                            .pending(*cid)?,
                        InputSource::Subplan(c) => {
                            self.engine.sp_buffers[c.index()].pending(*cid)?
                        }
                    };
                    if pending > 0 {
                        has_input = true;
                        break;
                    }
                }
            }
            if !has_input {
                continue;
            }
            let (w, wall) = exec_once(i, &mut self.engine, &mut self.seeds, &self.weights)?;
            self.quiesce_ticks += 1;
            self.attribute(sp, w, wall, false, front_work);
        }
        Ok(())
    }

    /// Live queries' budgets minus final work already charged.
    fn residual_constraints(&self) -> BTreeMap<QueryId, f64> {
        self.budgets
            .iter()
            .map(|(&q, &l)| (q, (l - self.charged_final.get(&q).copied().unwrap_or(0.0)).max(0.0)))
            .collect()
    }

    fn apply(&mut self, ev: ChurnEvent) -> Result<ChurnRecord> {
        match ev.op {
            ChurnOp::Admit { query, plan, constraint } => {
                self.apply_admit(query, &plan, constraint)
            }
            ChurnOp::Remove { query } => self.apply_remove(query),
        }
    }

    fn apply_admit(
        &mut self,
        q: QueryId,
        lp: &LogicalPlan,
        constraint: FinalWorkConstraint,
    ) -> Result<ChurnRecord> {
        // Speculate on a clone: nothing below touches live state until the
        // admission has fully validated.
        let mut trial = self.sharer.clone();
        let diff = trial.admit(q, &normalize(lp))?;
        let l = match constraint {
            FinalWorkConstraint::Absolute(x) => x,
            FinalWorkConstraint::Relative(r) => {
                let batch = batch_final_works(&[(q, lp.clone())], self.catalog, self.weights)?;
                r * batch.get(&q).copied().ok_or_else(|| {
                    Error::InvalidConfig(format!("no batch baseline for admitted query {q}"))
                })?
            }
        };

        let mut forced = self.forced.clone();
        for r in self.roots.iter().chain(diff.frontier.iter()) {
            if !forced.contains(r) {
                forced.push(*r);
            }
        }
        let (plan2, roots2) = SharedPlan::from_dag_with_roots(trial.dag(), |_| false, &forced)?;

        // Witness requirement: any shared (non-fresh) subplan now serving
        // the new query needs a witness query to index its state by. The
        // witness is *per subplan* — a global intersection over all reused
        // nodes is too strict once the new query taps several cones shared
        // by disjoint query subsets (routine in TPC-H workloads).
        let old_by_root: HashMap<u32, usize> =
            self.roots.iter().enumerate().map(|(i, r)| (r.0, i)).collect();
        let witnesses = subplan_witnesses(trial.dag(), &plan2, &roots2, q, |root| {
            !old_by_root.contains_key(&root.0) && diff.created.contains(root)
        });
        for (j, root) in roots2.iter().enumerate() {
            let fresh = !old_by_root.contains_key(&root.0) && diff.created.contains(root);
            if !fresh && plan2.subplans[j].queries.contains(q) && witnesses[j].is_none() {
                return Err(Error::Churn(format!(
                    "admission of query {q} shares subplan {j} (root {root}) but no live \
                     query witnesses its input cone; state handoff would be ambiguous"
                )));
            }
        }

        let mut cons = self.residual_constraints();
        cons.insert(q, l);
        let mut est = PlanEstimator::new(&plan2, self.catalog, self.weights)?;
        let outcome = find_pace_configuration(&mut est, &cons, self.opts.max_pace())?;
        if !outcome.feasible {
            return Err(Error::Churn(format!(
                "admission of query {q} is infeasible under final-work budget {l} given the \
                 live queries' residual budgets"
            )));
        }

        let (handoff_rows, handoff_work) =
            self.reconcile(&plan2, &roots2, Some((&witnesses, q, &diff.created)), None)?;

        let record = ChurnRecord {
            kind: ChurnKind::Admit,
            query: q.0,
            nodes_reused: diff.reused.len() as u32,
            nodes_created: diff.created.len() as u32,
            subplans: plan2.len() as u32,
            handoff_rows,
            reclaimed_rows: 0,
            handoff_work_bits: handoff_work.to_bits(),
        };
        self.sharer = trial;
        self.plan = plan2;
        self.roots = roots2;
        self.forced = forced;
        self.paces = outcome.paces.as_slice().to_vec();
        self.budgets.insert(q, l);
        self.handoff_total += handoff_rows;
        self.admissions += 1;
        self.merge_reused += u64::from(record.nodes_reused);
        self.merge_created += u64::from(record.nodes_created);
        if let Some(ledger) = self.ledger.as_mut() {
            ledger.add_query(q, l);
        }
        Ok(record)
    }

    fn apply_remove(&mut self, q: QueryId) -> Result<ChurnRecord> {
        let mut trial = self.sharer.clone();
        let diff = trial.remove(q)?;
        if trial.queries().is_empty() {
            return Err(Error::Churn(format!(
                "cannot remove query {q}: it is the last live query"
            )));
        }
        let mut forced = self.forced.clone();
        for r in &self.roots {
            if !forced.contains(r) {
                forced.push(*r);
            }
        }
        let (plan2, roots2) = SharedPlan::from_dag_with_roots(trial.dag(), |_| false, &forced)?;
        let cons = {
            let mut c = self.residual_constraints();
            c.remove(&q);
            c
        };
        // Best effort: the remaining queries' residuals may already be
        // exhausted; removal itself is never rejected for pace reasons.
        let mut est = PlanEstimator::new(&plan2, self.catalog, self.weights)?;
        let outcome = find_pace_configuration(&mut est, &cons, self.opts.max_pace())?;

        let (reclaimed, _) = self.reconcile(&plan2, &roots2, None, Some(q))?;

        let record = ChurnRecord {
            kind: ChurnKind::Remove,
            query: q.0,
            nodes_reused: diff.shrunk_nodes.len() as u32,
            nodes_created: diff.removed_nodes.len() as u32,
            subplans: plan2.len() as u32,
            handoff_rows: 0,
            reclaimed_rows: reclaimed,
            handoff_work_bits: 0,
        };
        self.sharer = trial;
        self.plan = plan2;
        self.roots = roots2;
        self.forced = forced;
        self.paces = outcome.paces.as_slice().to_vec();
        self.budgets.remove(&q);
        self.removed.push(q);
        self.reclaimed_total += reclaimed;
        self.removals += 1;
        if let Some(ledger) = self.ledger.as_mut() {
            ledger.drop_query(q);
        }
        Ok(record)
    }

    /// Rebuild the engine around the re-cut plan, carrying state by root
    /// node identity. Returns `(rows, handoff_work)`: admissions report
    /// rows/work seeded into the new query, removals report rows reclaimed
    /// (work 0).
    #[allow(clippy::type_complexity)]
    fn reconcile(
        &mut self,
        plan2: &SharedPlan,
        roots2: &[NodeId],
        admit: Option<(&[Option<QueryId>], QueryId, &Vec<NodeId>)>,
        remove: Option<QueryId>,
    ) -> Result<(u64, f64)> {
        let n2 = plan2.len();
        let schemas = plan2.schemas(self.catalog)?;
        let old_by_root: HashMap<u32, usize> =
            self.roots.iter().enumerate().map(|(i, r)| (r.0, i)).collect();
        let created: Option<&Vec<NodeId>> = admit.as_ref().map(|(_, _, c)| *c);

        let mut old_execs: Vec<Option<SubplanExecutor>> =
            std::mem::take(&mut self.engine.executors).into_iter().map(Some).collect();
        let mut old_bufs: Vec<Option<DeltaBuffer>> =
            std::mem::take(&mut self.engine.sp_buffers).into_iter().map(Some).collect();
        let old_cons: Vec<Vec<(Vec<usize>, InputSource, ConsumerId)>> =
            std::mem::take(&mut self.engine.leaf_consumers);
        let mut old_seeds: Vec<HashMap<Vec<usize>, DeltaBatch>> = std::mem::take(&mut self.seeds);

        let mut origin: Vec<Option<Origin>> = vec![None; n2];
        let mut new_execs: Vec<Option<SubplanExecutor>> = (0..n2).map(|_| None).collect();
        let mut new_bufs: Vec<Option<DeltaBuffer>> = (0..n2).map(|_| None).collect();

        // Pass 1 — survivors: same root node, carry executor + buffer.
        // A refresh rejection (shape change) marks a split donor.
        let mut split_parents: Vec<(usize, usize)> = Vec::new();
        for (j, root) in roots2.iter().enumerate() {
            let Some(&i) = old_by_root.get(&root.0) else { continue };
            origin[j] = Some(Origin::Survivor(i));
            new_bufs[j] = Some(old_bufs[i].take().ok_or_else(|| {
                Error::InvalidPlan(format!("old subplan {i} buffer claimed twice"))
            })?);
            let mut ex = old_execs[i]
                .take()
                .ok_or_else(|| Error::InvalidPlan(format!("old subplan {i} claimed twice")))?;
            match ex.refresh_subplan(&plan2.subplans[j], self.catalog, &schemas) {
                Ok(()) => new_execs[j] = Some(ex),
                Err(Error::Churn(_)) => {
                    old_execs[i] = Some(ex);
                    split_parents.push((i, j));
                }
                Err(e) => return Err(e),
            }
        }

        // Pass 2 — splits: a forced cut landed *inside* a surviving
        // subplan. Transplant operator state path-by-path from the donor.
        for &(i, j1) in &split_parents {
            let mut donor = old_execs[i]
                .take()
                .ok_or_else(|| Error::InvalidPlan(format!("split donor {i} missing")))?;
            let bundle = donor.take_state_bundle()?;
            self.build_split(
                plan2,
                roots2,
                &schemas,
                j1,
                bundle,
                i,
                Vec::new(),
                created,
                &mut origin,
                &mut new_execs,
                &mut new_bufs,
            )?;
        }

        // Pass 3 — everything else is a fresh private subplan.
        for j in 0..n2 {
            if origin[j].is_some() {
                continue;
            }
            origin[j] = Some(Origin::Fresh);
            new_execs[j] = Some(SubplanExecutor::new_with_options(
                &plan2.subplans[j],
                self.catalog,
                &schemas,
                self.weights,
                self.exec_opts,
            )?);
            new_bufs[j] = Some(DeltaBuffer::new());
        }
        for q in plan2.queries().iter() {
            if let Some(r) = plan2.query_root(q) {
                new_bufs[r.index()]
                    .as_mut()
                    .expect("all buffers placed")
                    .set_retention(Retain::All);
            }
        }

        // Old subplan index → new index of the survivor that kept its
        // buffer (for retiring stale cursors on moved buffers).
        let old_to_new: HashMap<usize, usize> = origin
            .iter()
            .enumerate()
            .filter_map(|(j, o)| match o {
                Some(Origin::Survivor(i)) => Some((*i, j)),
                _ => None,
            })
            .collect();

        // Pass 4 — consumers: carry cursors by (old subplan, full leaf
        // path); register fresh ones for new leaves. Pending seed batches
        // follow their leaf.
        let mut claimed: Vec<Vec<bool>> = old_cons.iter().map(|v| vec![false; v.len()]).collect();
        let mut new_cons: Vec<Vec<(Vec<usize>, InputSource, ConsumerId)>> =
            (0..n2).map(|_| Vec::new()).collect();
        let mut new_seeds: Vec<HashMap<Vec<usize>, DeltaBatch>> =
            (0..n2).map(|_| HashMap::new()).collect();
        for j in 0..n2 {
            let leaves = new_execs[j].as_ref().expect("all executors placed").leaf_paths();
            let o = origin[j].clone().expect("all origins placed");
            let mut regs = Vec::with_capacity(leaves.len());
            for (path, src) in leaves {
                let carried = match &o {
                    Origin::Fresh => None,
                    Origin::Survivor(i) => claim(&old_cons[*i], &mut claimed[*i], &path)
                        .map(|cid| (*i, cid, path.clone())),
                    Origin::Split { old, prefix } => {
                        let mut full = prefix.clone();
                        full.extend_from_slice(&path);
                        claim(&old_cons[*old], &mut claimed[*old], &full)
                            .map(|cid| (*old, cid, full))
                    }
                };
                let cid = match carried {
                    Some((i, cid, full)) => {
                        if let Some(batch) = old_seeds[i].remove(&full) {
                            new_seeds[j].insert(path.clone(), batch);
                        }
                        cid
                    }
                    None => match src {
                        InputSource::Base(t) => {
                            self.catalog.table(t)?;
                            let b = self.engine.base_buffers.entry(t).or_default();
                            b.set_retention(Retain::All);
                            // Offset 0 on a Retain::All buffer = replay the
                            // full base history (an admitted query's
                            // private cone sees every row).
                            b.register_consumer()?
                        }
                        InputSource::Subplan(c) => {
                            let fresh_child = matches!(origin[c.index()], Some(Origin::Fresh));
                            let buf = new_bufs[c.index()].as_mut().expect("all buffers placed");
                            if matches!(o, Origin::Fresh) && !fresh_child {
                                // Shared child: its history arrives as a
                                // seeded snapshot, never by replaying the
                                // buffer (which may be compacted anyway).
                                buf.register_consumer_at_end()
                            } else {
                                buf.register_consumer()?
                            }
                        }
                    },
                };
                regs.push((path, src, cid));
            }
            new_cons[j] = regs;
        }

        // Pass 5 — retire cursors nothing claimed (a dead subplan's reads,
        // or a split donor's cut-away leaves) so surviving buffers can
        // compact past them.
        for (i, entries) in old_cons.iter().enumerate() {
            for (k, (_, src, cid)) in entries.iter().enumerate() {
                if claimed[i][k] {
                    continue;
                }
                match src {
                    InputSource::Base(t) => {
                        if let Some(b) = self.engine.base_buffers.get_mut(t) {
                            b.retire_consumer(*cid)?;
                        }
                    }
                    InputSource::Subplan(c) => {
                        if let Some(&jn) = old_to_new.get(&c.index()) {
                            new_bufs[jn]
                                .as_mut()
                                .expect("all buffers placed")
                                .retire_consumer(*cid)?;
                        }
                    }
                }
            }
        }

        // Pass 6 — GC dead subplans (a removed query's private cone).
        let mut reclaimed: u64 = 0;
        for i in 0..old_execs.len() {
            if let Some(ex) = old_execs[i].take() {
                reclaimed += ex.state_rows() as u64;
            }
            if let Some(mut b) = old_bufs[i].take() {
                reclaimed += b.drain() as u64;
            }
            reclaimed += old_seeds[i].values().map(|b| b.rows.len() as u64).sum::<u64>();
        }

        // Install the new engine before widening/seeding so the helpers
        // see consistent state.
        self.engine.executors =
            new_execs.into_iter().map(|e| e.expect("all executors placed")).collect();
        self.engine.sp_buffers =
            new_bufs.into_iter().map(|b| b.expect("all buffers placed")).collect();
        self.engine.leaf_consumers = new_cons;
        self.seeds = new_seeds;
        let mut tables: Vec<TableId> = self.engine.base_buffers.keys().copied().collect();
        tables.sort();
        self.engine.base_tables = tables;

        // Pass 7 — removal: drop the query's mask column from surviving
        // operator state. (`self.plan` is still the pre-churn plan here.)
        if let Some(q) = remove {
            for (j, org) in origin.iter().enumerate().take(n2) {
                let served = match org {
                    Some(Origin::Survivor(i)) | Some(Origin::Split { old: i, .. }) => {
                        self.plan.subplans[*i].queries.contains(q)
                    }
                    _ => false,
                };
                if served {
                    reclaimed += self.engine.executors[j].retire_query(q)? as u64;
                }
            }
            return Ok((reclaimed, 0.0));
        }

        // Pass 8 — admission: widen shared state to the new query, then
        // seed its private cone from witness-indexed snapshots. Every
        // shared subplan uses its *own* witness (validated in
        // `apply_admit`), so disjoint shared cones hand off independently.
        let (witnesses, q_new, _) = admit.expect("reconcile is admit or remove");
        let mut handoff_rows: u64 = 0;
        let counter = WorkCounter::new();
        for (j, org) in origin.iter().enumerate().take(n2) {
            if plan2.subplans[j].queries.contains(q_new) && !matches!(org, Some(Origin::Fresh)) {
                let q_ref = witnesses[j].expect("witness validated for shared subplan");
                self.engine.executors[j].widen_query(q_ref, q_new)?;
            }
        }
        // Widen resident (in-flight) buffer rows only where a carried
        // downstream cursor serving the new query will still pull them
        // — never the new query's own root buffer, whose history is
        // handed off as a snapshot below (widening both would double
        // count).
        let mut widen_child = vec![false; n2];
        for (j, org) in origin.iter().enumerate().take(n2) {
            if matches!(org, Some(Origin::Fresh)) || !plan2.subplans[j].queries.contains(q_new) {
                continue;
            }
            for (_, src) in self.engine.executors[j].leaf_paths() {
                if let InputSource::Subplan(c) = src {
                    widen_child[c.index()] = true;
                }
            }
        }
        let new_root = plan2.query_root(q_new).map(|r| r.index());
        for (j, widen) in widen_child.iter().enumerate() {
            if *widen && Some(j) != new_root {
                let q_ref = witnesses[j].expect("witness validated for widened child");
                self.engine.sp_buffers[j].widen_where(q_ref, q_new);
            }
        }
        // Base buffers re-mark their whole retained stream: correct for a
        // re-admitted id, and what the private cone's replay-from-zero
        // cursors rely on.
        for t in self.engine.base_tables.clone() {
            self.engine.base_buffers.get_mut(&t).expect("registered table").widen_all(q_new);
        }
        // Seed every fresh subplan's shared-child leaves with the
        // child's reconstructed, re-masked history.
        for j in 0..n2 {
            if !matches!(origin[j], Some(Origin::Fresh)) {
                continue;
            }
            for (path, src) in self.engine.executors[j].leaf_paths() {
                let InputSource::Subplan(c) = src else { continue };
                if matches!(origin[c.index()], Some(Origin::Fresh)) {
                    continue;
                }
                let q_ref = witnesses[c.index()].expect("witness validated for shared child");
                let batch = snapshot_subplan(
                    c.index(),
                    &self.engine.executors,
                    &self.engine.base_buffers,
                    q_ref,
                    q_new,
                    &counter,
                )?;
                handoff_rows += batch.rows.len() as u64;
                self.seeds[j].insert(path, batch);
            }
        }
        // A fully shared root: the new query's results are served by an
        // existing subplan whose buffer may have compacted its history.
        // Reconstruct the witnessed history straight into the root
        // buffer (which is Retain::All from here on).
        if let Some(r) = plan2.query_root(q_new) {
            if !matches!(origin[r.index()], Some(Origin::Fresh)) {
                let q_ref = witnesses[r.index()].expect("witness validated for shared root");
                let batch = snapshot_subplan(
                    r.index(),
                    &self.engine.executors,
                    &self.engine.base_buffers,
                    q_ref,
                    q_new,
                    &counter,
                )?;
                handoff_rows += batch.rows.len() as u64;
                self.engine.sp_buffers[r.index()].append(&batch);
            }
        }
        Ok((handoff_rows, counter.total().get()))
    }

    /// Build a split subplan's executor and, recursively, its split
    /// children's, moving the transplanted state down to each cut.
    #[allow(clippy::too_many_arguments)]
    fn build_split(
        &self,
        plan2: &SharedPlan,
        roots2: &[NodeId],
        schemas: &HashMap<SubplanId, Schema>,
        j: usize,
        mut bundle: StateBundle,
        old_i: usize,
        prefix: Vec<usize>,
        created: Option<&Vec<NodeId>>,
        origin: &mut [Option<Origin>],
        new_execs: &mut [Option<SubplanExecutor>],
        new_bufs: &mut [Option<DeltaBuffer>],
    ) -> Result<()> {
        let ex = SubplanExecutor::new_with_options(
            &plan2.subplans[j],
            self.catalog,
            schemas,
            self.weights,
            self.exec_opts,
        )?;
        for (path, src) in ex.leaf_paths() {
            let InputSource::Subplan(c) = src else { continue };
            let c = c.index();
            if origin[c].is_some() {
                continue; // survivor or an already-built split child
            }
            if created.is_some_and(|cr| cr.contains(&roots2[c])) {
                continue; // fresh private subplan, built in pass 3
            }
            // Interior node of the old subplan, now a forced cut: its
            // subtree's state lives under `path` in the donor bundle.
            let sub = bundle.extract_prefix(&path);
            let mut full = prefix.clone();
            full.extend_from_slice(&path);
            origin[c] = Some(Origin::Split { old: old_i, prefix: full.clone() });
            self.build_split(
                plan2, roots2, schemas, c, sub, old_i, full, created, origin, new_execs, new_bufs,
            )?;
        }
        let mut ex = ex;
        ex.install_state_bundle(bundle)?;
        new_execs[j] = Some(ex);
        if new_bufs[j].is_none() {
            new_bufs[j] = Some(DeltaBuffer::new());
        }
        Ok(())
    }

    fn finish(self, started: Instant) -> Result<ChurnRunResult> {
        let live = self.plan.queries();
        let mut results = BTreeMap::new();
        let mut final_work = BTreeMap::new();
        let mut latency = BTreeMap::new();
        let mut counts = BTreeMap::new();
        for q in live.iter() {
            let root = self
                .plan
                .query_root(q)
                .ok_or_else(|| Error::InvalidPlan(format!("live query {q} has no root")))?;
            results.insert(q, query_result(self.engine.sp_buffers[root.index()].all_rows(), q));
            final_work.insert(q, self.charged_final.get(&q).copied().unwrap_or(0.0));
            latency.insert(q, self.final_wall.get(&q).copied().unwrap_or(Duration::ZERO));
            counts.insert(q, self.counts.get(&q).copied().unwrap_or_default());
        }
        let obs = self.opts.source.obs.as_ref().map(|_| {
            let mut metrics = MetricsRegistry::new();
            metrics.counter_add("churn.admissions", self.admissions as f64);
            metrics.counter_add("churn.removals", self.removals as f64);
            metrics.counter_add("churn.merge_nodes_reused", self.merge_reused as f64);
            metrics.counter_add("churn.merge_nodes_created", self.merge_created as f64);
            metrics.counter_add("churn.quiesce_ticks", self.quiesce_ticks as f64);
            metrics.gauge_set("churn.reclaimed_rows", self.reclaimed_total as f64);
            metrics.gauge_set("churn.handoff_rows", self.handoff_total as f64);
            metrics.gauge_set("churn.live_queries", live.len() as f64);
            metrics.gauge_set("churn.subplans", self.plan.len() as f64);
            // NOTE: unlike the fixed-set drivers, the churn ledger is not
            // `verify()`-able — mid-run admissions start sampling at their
            // admission front, which the whole-run invariants don't model.
            if let Some(ledger) = self.ledger.as_ref() {
                ledger.record_metrics(&mut metrics);
            }
            ObsReport {
                total_work: self.total_work,
                metrics,
                slack: self.ledger.clone(),
                ..ObsReport::default()
            }
        });
        Ok(ChurnRunResult {
            run: RunResult {
                total_work: WorkUnits(self.total_work),
                total_wall: self.total_wall,
                final_work,
                latency,
                results,
                executions: self.executions,
                executions_per_query: counts,
                elapsed: started.elapsed(),
                obs,
            },
            churn: self.churn,
            live,
            removed: self.removed,
            reclaimed_rows: self.reclaimed_total,
            handoff_rows: self.handoff_total,
            quiesce_ticks: self.quiesce_ticks,
        })
    }
}

/// Find the old consumer registered at `path`, marking it claimed.
fn claim(
    entries: &[(Vec<usize>, InputSource, ConsumerId)],
    claimed: &mut [bool],
    path: &[usize],
) -> Option<ConsumerId> {
    let k = entries.iter().position(|(p, _, _)| p == path)?;
    if claimed[k] {
        return None;
    }
    claimed[k] = true;
    Some(entries[k].2)
}

/// Pull every leaf (merging any pending seed batch ahead of the pulled
/// rows), execute, and materialize — the churn twin of the driver's
/// `run_tick`.
fn exec_once(
    i: usize,
    engine: &mut EngineState,
    seeds: &mut [HashMap<Vec<usize>, DeltaBatch>],
    weights: &CostWeights,
) -> Result<(WorkUnits, Duration)> {
    let EngineState { base_buffers, sp_buffers, executors, leaf_consumers, .. } = engine;
    let counter = WorkCounter::new();
    let started = Instant::now();
    let mut inputs = HashMap::new();
    for (path, src, consumer) in &leaf_consumers[i] {
        let pulled = match src {
            InputSource::Base(t) => {
                base_buffers.get_mut(t).expect("registered table").pull(*consumer)?
            }
            InputSource::Subplan(c) => sp_buffers[c.index()].pull(*consumer)?,
        };
        let batch = match seeds[i].remove(path) {
            Some(mut seed) => {
                seed.rows.extend(pulled.rows);
                seed
            }
            None => pulled,
        };
        inputs.insert(path.clone(), batch);
    }
    let out = executors[i].execute(&mut inputs, &counter)?;
    counter.charge(OpKind::Materialize, weights.materialize, out.len());
    sp_buffers[i].append(&out);
    Ok((counter.total(), started.elapsed()))
}

/// Per-subplan witness queries for an admission of `q_new`.
///
/// For each subplan serving the new query whose root pre-dates the
/// admission, pick a live query whose mask bit equals the new query's
/// would-be bit over the subplan's **entire input cone**: the intersection,
/// over every DAG node reachable from the subplan root, of the node's
/// pre-admission query set, refined at select nodes to the branch(es) the
/// new query joined (post-seal admission only ever joins an
/// equal-predicate branch, so any co-member of that branch has seen
/// exactly the rows the new query would have seen there). Masks are a pure
/// function of branch membership, so agreement over the whole cone makes
/// the witness's bit a stand-in for the new query's across all handed-off
/// state. Fresh subplans, and subplans not serving the new query, get
/// `None`. The smallest qualifying query id is chosen, which keeps the
/// handoff deterministic.
fn subplan_witnesses(
    dag: &SharedDag,
    plan2: &SharedPlan,
    roots2: &[NodeId],
    q_new: QueryId,
    is_fresh: impl Fn(&NodeId) -> bool,
) -> Vec<Option<QueryId>> {
    roots2
        .iter()
        .enumerate()
        .map(|(j, root)| {
            if is_fresh(root) || !plan2.subplans[j].queries.contains(q_new) {
                return None;
            }
            let mut pool = QuerySet(u64::MAX);
            let mut seen = vec![false; dag.nodes.len()];
            let mut stack = vec![*root];
            while let Some(n) = stack.pop() {
                if std::mem::replace(&mut seen[n.0 as usize], true) {
                    continue;
                }
                let node = &dag.nodes[n.0 as usize];
                let mut w = node.queries;
                w.remove(q_new);
                if let DagOp::Select { branches } = &node.op {
                    for b in branches {
                        if b.queries.contains(q_new) {
                            let mut bw = b.queries;
                            bw.remove(q_new);
                            w = w.intersect(bw);
                        }
                    }
                }
                pool = pool.intersect(w);
                stack.extend(node.children.iter().copied());
            }
            pool.iter().next()
        })
        .collect()
}

/// Reconstruct subplan `c`'s net witnessed history re-masked to `q_new`,
/// recursing through stateless subplans' leaf dependencies (base buffers
/// retain their full stream in churn mode, and churn boundaries are
/// quiesced, so the reconstruction is exact).
fn snapshot_subplan(
    c: usize,
    executors: &[SubplanExecutor],
    base_buffers: &HashMap<TableId, DeltaBuffer>,
    q_ref: QueryId,
    q_new: QueryId,
    counter: &WorkCounter,
) -> Result<DeltaBatch> {
    let mut history = HashMap::new();
    for (path, src) in executors[c].snapshot_leaf_dependencies() {
        let batch = match src {
            InputSource::Base(t) => DeltaBatch::from_rows(
                base_buffers
                    .get(&t)
                    .ok_or_else(|| Error::NotFound(format!("base buffer {t:?}")))?
                    .all_rows()
                    .to_vec(),
            ),
            InputSource::Subplan(d) => {
                // Reconstruct the child's history under the *witness's*
                // mask: the parent's own snapshot filters leaf rows by
                // `q_ref` before re-masking to `q_new`, so feeding it
                // `q_new`-masked rows would drop everything.
                snapshot_subplan(d.index(), executors, base_buffers, q_ref, q_ref, counter)?
            }
        };
        history.insert(path, batch);
    }
    executors[c].snapshot_output(q_ref, q_new, &mut history, counter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{DataType, Value};
    use ishare_exec::batch_ref::run_logical;
    use ishare_expr::Expr;
    use ishare_obs::ObsConfig;
    use ishare_plan::PlanBuilder;
    use ishare_storage::{ColumnStats, Field, Row, Schema, TableStats};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats {
                row_count: 120.0,
                columns: vec![ColumnStats::ndv(10.0), ColumnStats::ndv(100.0)],
            },
        )
        .unwrap();
        c
    }

    fn feed(c: &Catalog, n: i64) -> HashMap<TableId, Vec<(Row, i64)>> {
        let t = c.table_by_name("t").unwrap().id;
        let rows = (0..n)
            .map(|i| (Row::new(vec![Value::Int(i % 10), Value::Int(i * 7 % 100)]), 1))
            .collect();
        [(t, rows)].into_iter().collect()
    }

    fn rows_of(feed: &HashMap<TableId, Vec<(Row, i64)>>) -> HashMap<TableId, Vec<Row>> {
        feed.iter().map(|(t, v)| (*t, v.iter().map(|(r, _)| r.clone()).collect())).collect()
    }

    /// Sum(v) by k over the whole table.
    fn q_all(c: &Catalog) -> LogicalPlan {
        PlanBuilder::scan(c, "t")
            .unwrap()
            .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?]))
            .unwrap()
            .project_cols(&["k", "s"])
            .unwrap()
            .build()
    }

    /// Same aggregate over v < 50 only: shares the scan with `q_all`.
    fn q_sel(c: &Catalog) -> LogicalPlan {
        PlanBuilder::scan(c, "t")
            .unwrap()
            .select(|x| Ok(x.col("v")?.lt(Expr::lit(50i64))))
            .unwrap()
            .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?]))
            .unwrap()
            .project_cols(&["k", "s"])
            .unwrap()
            .build()
    }

    /// Budgets tight enough that the pace search picks eager paces — the
    /// schedule then has intermediate wavefront boundaries for churn to
    /// land on.
    fn tight() -> BTreeMap<QueryId, FinalWorkConstraint> {
        let mut m = BTreeMap::new();
        for q in 0..4u16 {
            m.insert(QueryId(q), FinalWorkConstraint::Relative(0.5));
        }
        m
    }

    fn opts() -> ChurnOptions {
        ChurnOptions { max_pace: 4, ..Default::default() }
    }

    #[test]
    fn admit_identical_plan_hands_off_shared_root() {
        // Admitting a bit-for-bit copy of the live query reuses the whole
        // DAG: the new query's history arrives as a re-masked snapshot of
        // the shared root's state, never by replaying the stream.
        let c = catalog();
        let f = feed(&c, 120);
        let expected = run_logical(&q_all(&c), &c, &rows_of(&f)).unwrap();
        let script = ChurnScript::new(vec![ChurnEvent {
            num: 1,
            den: 3,
            op: ChurnOp::Admit {
                query: QueryId(1),
                plan: q_all(&c),
                constraint: FinalWorkConstraint::Relative(1.0),
            },
        }]);
        let mut source = Source::in_order(&f);
        let out = execute_churn_from_source(
            &[(QueryId(0), q_all(&c))],
            &tight(),
            &script,
            &c,
            &mut source,
            CostWeights::default(),
            &opts(),
        )
        .unwrap()
        .into_result()
        .unwrap();
        assert_eq!(out.run.results[&QueryId(0)], expected);
        assert_eq!(out.run.results[&QueryId(1)], expected);
        assert_eq!(out.churn.len(), 1);
        assert_eq!(out.churn[0].kind, ChurnKind::Admit);
        assert!(out.churn[0].nodes_reused > 0, "identical plan must reuse nodes");
        assert_eq!(out.churn[0].nodes_created, 0, "identical plan creates nothing");
        assert!(out.handoff_rows > 0, "shared-root admission must hand off state");
        assert!(out.live.contains(QueryId(0)) && out.live.contains(QueryId(1)));
    }

    #[test]
    fn admit_partial_share_splits_and_replays() {
        // The admitted query shares only the scan: the survivor splits at
        // the attachment frontier and the private cone replays base history.
        let c = catalog();
        let f = feed(&c, 120);
        let e0 = run_logical(&q_all(&c), &c, &rows_of(&f)).unwrap();
        let e1 = run_logical(&q_sel(&c), &c, &rows_of(&f)).unwrap();
        let script = ChurnScript::new(vec![ChurnEvent {
            num: 1,
            den: 3,
            op: ChurnOp::Admit {
                query: QueryId(1),
                plan: q_sel(&c),
                constraint: FinalWorkConstraint::Relative(1.0),
            },
        }]);
        let mut source = Source::in_order(&f);
        let out = execute_churn_from_source(
            &[(QueryId(0), q_all(&c))],
            &tight(),
            &script,
            &c,
            &mut source,
            CostWeights::default(),
            &opts(),
        )
        .unwrap()
        .into_result()
        .unwrap();
        assert_eq!(out.run.results[&QueryId(0)], e0);
        assert_eq!(out.run.results[&QueryId(1)], e1);
        assert_eq!(out.churn.len(), 1);
        assert!(out.churn[0].nodes_reused > 0, "the scan is shared");
        assert!(out.churn[0].nodes_created > 0, "the select cone is new");
    }

    #[test]
    fn remove_mid_run_reclaims_state() {
        let c = catalog();
        let f = feed(&c, 120);
        let e0 = run_logical(&q_all(&c), &c, &rows_of(&f)).unwrap();
        let script = ChurnScript::new(vec![ChurnEvent {
            num: 1,
            den: 3,
            op: ChurnOp::Remove { query: QueryId(1) },
        }]);
        let mut source = Source::in_order(&f);
        let out = execute_churn_from_source(
            &[(QueryId(0), q_all(&c)), (QueryId(1), q_sel(&c))],
            &tight(),
            &script,
            &c,
            &mut source,
            CostWeights::default(),
            &opts(),
        )
        .unwrap()
        .into_result()
        .unwrap();
        assert_eq!(out.run.results[&QueryId(0)], e0);
        assert!(!out.run.results.contains_key(&QueryId(1)), "removed query has no result");
        assert_eq!(out.removed, vec![QueryId(1)]);
        assert!(out.reclaimed_rows > 0, "the private cone's state is reclaimed");
        assert!(out.live.contains(QueryId(0)) && !out.live.contains(QueryId(1)));
        assert_eq!(out.churn.len(), 1);
        assert_eq!(out.churn[0].kind, ChurnKind::Remove);
    }

    #[test]
    fn admit_then_remove_sequence() {
        // Admit a sharer mid-run, then remove the original: the run ends
        // serving only the admitted query, and its result is still exact.
        let c = catalog();
        let f = feed(&c, 120);
        let e1 = run_logical(&q_sel(&c), &c, &rows_of(&f)).unwrap();
        let script = ChurnScript::new(vec![
            ChurnEvent {
                num: 1,
                den: 3,
                op: ChurnOp::Admit {
                    query: QueryId(1),
                    plan: q_sel(&c),
                    constraint: FinalWorkConstraint::Relative(1.0),
                },
            },
            ChurnEvent { num: 2, den: 3, op: ChurnOp::Remove { query: QueryId(0) } },
        ]);
        let mut source = Source::in_order(&f);
        let out = execute_churn_from_source(
            &[(QueryId(0), q_all(&c))],
            &tight(),
            &script,
            &c,
            &mut source,
            CostWeights::default(),
            &opts(),
        )
        .unwrap()
        .into_result()
        .unwrap();
        assert_eq!(out.run.results.len(), 1);
        assert_eq!(out.run.results[&QueryId(1)], e1);
        assert_eq!(out.removed, vec![QueryId(0)]);
        assert_eq!(out.churn.len(), 2);
    }

    #[test]
    fn churn_errors_are_typed() {
        let c = catalog();
        let f = feed(&c, 30);
        let run = |initial: &[(QueryId, LogicalPlan)], script: ChurnScript, o: ChurnOptions| {
            let mut source = Source::in_order(&f);
            execute_churn_from_source(
                initial,
                &tight(),
                &script,
                &c,
                &mut source,
                CostWeights::default(),
                &o,
            )
        };
        let admit = |q: u16, num: u32, den: u32| {
            ChurnScript::new(vec![ChurnEvent {
                num,
                den,
                op: ChurnOp::Admit {
                    query: QueryId(q),
                    plan: q_sel(&c),
                    constraint: FinalWorkConstraint::Relative(1.0),
                },
            }])
        };
        let initial = vec![(QueryId(0), q_all(&c))];

        // Duplicate admission.
        assert!(matches!(run(&initial, admit(0, 1, 3), opts()), Err(Error::Churn(_))));
        // Unknown removal.
        let unknown = ChurnScript::new(vec![ChurnEvent {
            num: 1,
            den: 3,
            op: ChurnOp::Remove { query: QueryId(7) },
        }]);
        assert!(matches!(run(&initial, unknown, opts()), Err(Error::Churn(_))));
        // Removing the last live query.
        let last = ChurnScript::new(vec![ChurnEvent {
            num: 1,
            den: 3,
            op: ChurnOp::Remove { query: QueryId(0) },
        }]);
        assert!(matches!(run(&initial, last, opts()), Err(Error::Churn(_))));
        // Infeasible admission budget.
        let infeasible = ChurnScript::new(vec![ChurnEvent {
            num: 1,
            den: 3,
            op: ChurnOp::Admit {
                query: QueryId(1),
                plan: q_sel(&c),
                constraint: FinalWorkConstraint::Absolute(0.0),
            },
        }]);
        assert!(matches!(run(&initial, infeasible, opts()), Err(Error::Churn(_))));
        // Event at or past the final boundary.
        assert!(matches!(run(&initial, admit(1, 1, 1), opts()), Err(Error::Churn(_))));
        assert!(matches!(run(&initial, admit(1, 5, 3), opts()), Err(Error::Churn(_))));
        // Zero denominator.
        assert!(matches!(run(&initial, admit(1, 0, 0), opts()), Err(Error::InvalidConfig(_))));
        // Reference datapath has no state surgery.
        let mut ref_opts = opts();
        ref_opts.source.mode = ExecMode::Reference;
        assert!(matches!(run(&initial, admit(1, 1, 3), ref_opts), Err(Error::Churn(_))));
        // Empty initial set.
        assert!(matches!(run(&[], admit(1, 1, 3), opts()), Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn obs_toggle_is_bit_identical() {
        let c = catalog();
        let f = feed(&c, 120);
        let script = ChurnScript::new(vec![
            ChurnEvent {
                num: 1,
                den: 3,
                op: ChurnOp::Admit {
                    query: QueryId(1),
                    plan: q_sel(&c),
                    constraint: FinalWorkConstraint::Relative(1.0),
                },
            },
            ChurnEvent { num: 2, den: 3, op: ChurnOp::Remove { query: QueryId(0) } },
        ]);
        let run = |obs: Option<ObsConfig>| {
            let mut source = Source::in_order(&f);
            let mut o = opts();
            o.source.obs = obs;
            execute_churn_from_source(
                &[(QueryId(0), q_all(&c))],
                &tight(),
                &script,
                &c,
                &mut source,
                CostWeights::default(),
                &o,
            )
            .unwrap()
            .into_result()
            .unwrap()
        };
        let plain = run(None);
        let obs = run(Some(ObsConfig::default()));
        assert!(plain.run.obs.is_none());
        let report = obs.run.obs.as_ref().expect("obs run carries a report");
        assert_eq!(plain.run.results, obs.run.results);
        assert_eq!(plain.run.final_work, obs.run.final_work);
        assert_eq!(plain.run.total_work.get().to_bits(), obs.run.total_work.get().to_bits());
        assert_eq!(plain.run.executions, obs.run.executions);
        assert_eq!(plain.run.executions_per_query, obs.run.executions_per_query);
        assert_eq!(plain.churn, obs.churn);
        assert_eq!(plain.reclaimed_rows, obs.reclaimed_rows);
        assert_eq!(plain.handoff_rows, obs.handoff_rows);
        assert_eq!(report.metrics.counter("churn.admissions"), Some(1.0));
        assert_eq!(report.metrics.counter("churn.removals"), Some(1.0));
        assert_eq!(report.metrics.gauge("churn.live_queries"), Some(1.0));
    }

    #[test]
    fn partitioned_run_is_bit_identical() {
        let c = catalog();
        let f = feed(&c, 120);
        let script = ChurnScript::new(vec![ChurnEvent {
            num: 1,
            den: 3,
            op: ChurnOp::Admit {
                query: QueryId(1),
                plan: q_sel(&c),
                constraint: FinalWorkConstraint::Relative(1.0),
            },
        }]);
        let run = |partitions: usize, threads: usize| {
            let mut source = Source::in_order(&f);
            let mut o = opts();
            o.source.partitions = partitions;
            o.source.partition_threads = threads;
            execute_churn_from_source(
                &[(QueryId(0), q_all(&c))],
                &tight(),
                &script,
                &c,
                &mut source,
                CostWeights::default(),
                &o,
            )
            .unwrap()
            .into_result()
            .unwrap()
        };
        let base = run(0, 0);
        for (p, th) in [(2, 1), (4, 2)] {
            let alt = run(p, th);
            assert_eq!(base.run.results, alt.run.results, "P={p} threads={th}");
            assert_eq!(
                base.run.total_work.get().to_bits(),
                alt.run.total_work.get().to_bits(),
                "P={p} threads={th}"
            );
            assert_eq!(base.run.final_work, alt.run.final_work);
            assert_eq!(base.churn, alt.churn);
        }
    }

    #[test]
    fn replay_verifies_churn_trajectory() {
        let c = catalog();
        let f = feed(&c, 120);
        let script = ChurnScript::new(vec![ChurnEvent {
            num: 1,
            den: 3,
            op: ChurnOp::Admit {
                query: QueryId(1),
                plan: q_sel(&c),
                constraint: FinalWorkConstraint::Relative(1.0),
            },
        }]);
        let initial = vec![(QueryId(0), q_all(&c))];
        let go = |o: ChurnOptions| {
            let mut source = Source::in_order(&f);
            execute_churn_from_source(
                &initial,
                &tight(),
                &script,
                &c,
                &mut source,
                CostWeights::default(),
                &o,
            )
        };
        let (first, log) = match go(opts()).unwrap() {
            ChurnOutcome::Completed { result, log } => (*result, log),
            ChurnOutcome::Suspended { .. } => panic!("run completed"),
        };
        assert!(log.entries.iter().any(|e| !e.churn.is_empty()), "log records churn");

        // Kill after the first wavefront: the partial log is a prefix.
        let mut kill = opts();
        kill.source.stop_after = Some(1);
        let partial = match go(kill).unwrap() {
            ChurnOutcome::Suspended { log } => log,
            ChurnOutcome::Completed { .. } => panic!("run suspended"),
        };
        assert_eq!(partial.entries.len(), 1);
        assert_eq!(partial.entries[0], log.entries[0]);

        // Resume = replay under verification; the rerun is bit-identical.
        let mut verify = opts();
        verify.source.verify = Some(log.clone());
        let second = match go(verify).unwrap() {
            ChurnOutcome::Completed { result, .. } => *result,
            ChurnOutcome::Suspended { .. } => panic!("run completed"),
        };
        assert_eq!(first.run.results, second.run.results);
        assert_eq!(first.run.total_work.get().to_bits(), second.run.total_work.get().to_bits());
        assert_eq!(first.churn, second.churn);

        // A tampered churn trajectory is caught, not silently diverged.
        let mut tampered = log.clone();
        let wf = tampered.entries.iter().position(|e| !e.churn.is_empty()).unwrap();
        tampered.entries[wf].churn[0].nodes_reused += 1;
        let mut bad = opts();
        bad.source.verify = Some(tampered);
        assert!(matches!(go(bad), Err(Error::InvalidDelta(_))));
    }
}
