//! Multi-threaded paced execution driver.
//!
//! The sequential driver has a lot of *time slackness* of its own: within
//! one arrival fraction, subplans that do not read each other's buffers are
//! fully independent, yet run one after another. This driver exploits that
//! by grouping the global tick schedule into wavefronts (equal arrival
//! fraction) and, inside each wavefront, into dependency-depth levels
//! ([`crate::schedule`]); ticks within one level execute concurrently on a
//! fixed-size worker pool of scoped threads.
//!
//! # Determinism
//!
//! The parallel driver is *bit-identical* to the sequential driver for any
//! thread count:
//!
//! - Ticks only run concurrently when their subplans share a dependency
//!   depth, and a parent is strictly deeper than each of its children — so
//!   no concurrently running tick ever reads a buffer another one writes.
//!   Each tick therefore consumes exactly the deltas it would have seen
//!   sequentially, and produces exactly the same output batch.
//! - Each tick's work is tallied on a tick-local [`WorkCounter`]; the
//!   per-tick `(work, wall)` records are folded into run totals in global
//!   schedule order *after* the threads join, so floating-point summation
//!   order — and hence every `f64` in the [`RunResult`] — matches the
//!   sequential driver exactly. Only the wall-clock fields vary run to run.
//! - Errors are reported for the earliest failing tick in schedule order,
//!   regardless of which worker hit one first.
//!
//! Base relations are fed once per wavefront rather than once per tick;
//! ticks in a wavefront share one arrival fraction, so the extra feeds the
//! sequential driver performs within a front are no-ops anyway.

use crate::driver::{
    adapt_gauges, batch_gauges, buffer_gauges, commit_wavefront, feed_from_source, fold_run,
    ingest_gauges, insert_feeds, partition_gauges, per_query_views, setup_engine,
    wavefront_observation, AdaptRec,
    EngineState, FrontRec, PollRec, RunResult, SourceOptions, SourceOutcome, TickRec,
};
use crate::schedule::{build_schedule, depth_levels, front_at, reschedule_after, Tick};
use ishare_common::{
    CostWeights, Error, OpKind, Result, TableId, WorkBreakdown, WorkCounter, WorkUnits,
};
use ishare_core::adapt::AdaptController;
use ishare_exec::SubplanExecutor;
use ishare_ingest::Source;
use ishare_obs::ObsConfig;
use ishare_plan::{InputSource, SharedPlan};
use ishare_storage::{Catalog, ConsumerId, DeltaBuffer, Row};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Parallel [`crate::execute_planned`]: insert-only rows, `threads` workers.
pub fn execute_planned_parallel(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<Row>>,
    weights: CostWeights,
    threads: usize,
) -> Result<RunResult> {
    let feeds = insert_feeds(data);
    execute_planned_deltas_parallel(plan, paces, catalog, &feeds, weights, threads)
}

/// [`execute_planned_parallel`] with opt-in observability (see
/// [`execute_planned_deltas_parallel_obs`]).
pub fn execute_planned_parallel_obs(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<Row>>,
    weights: CostWeights,
    threads: usize,
    obs: Option<ObsConfig>,
) -> Result<RunResult> {
    let feeds = insert_feeds(data);
    execute_planned_deltas_parallel_obs(plan, paces, catalog, &feeds, weights, threads, obs)
}

/// Parallel [`crate::execute_planned_deltas`]: weighted delta feeds,
/// `threads` workers. Produces work totals and results bit-identical to the
/// sequential driver for any `threads ≥ 1`; `threads == 0` is rejected.
pub fn execute_planned_deltas_parallel(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<(Row, i64)>>,
    weights: CostWeights,
    threads: usize,
) -> Result<RunResult> {
    execute_planned_deltas_parallel_obs(plan, paces, catalog, data, weights, threads, None)
}

/// [`execute_planned_deltas_parallel`] with opt-in observability: when `obs`
/// is set, [`RunResult::obs`] carries per-subplan work breakdowns, metrics,
/// and a tick/wavefront span trace with one track per worker. The
/// instrumentation only reads tick-local counters and the wall clock, so
/// work numbers stay bit-identical to the sequential driver with `obs` on
/// or off.
pub fn execute_planned_deltas_parallel_obs(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<(Row, i64)>>,
    weights: CostWeights,
    threads: usize,
    obs: Option<ObsConfig>,
) -> Result<RunResult> {
    let mut source = Source::in_order(data);
    execute_from_source_parallel_obs(
        plan,
        paces,
        catalog,
        &mut source,
        weights,
        threads,
        SourceOptions { obs, ..Default::default() },
    )?
    .into_result()
}

/// [`execute_planned_deltas_parallel_obs`] with intra-subplan data
/// parallelism stacked on top of inter-subplan parallelism: independent
/// subplans of a wavefront run on `threads` workers, and inside each tick
/// every join/aggregate's state is hash-partitioned into `partitions` parts
/// executed by `partition_threads` workers (DESIGN.md §12). Bit-identical to
/// the sequential unpartitioned driver for any combination of the three
/// knobs.
#[allow(clippy::too_many_arguments)]
pub fn execute_planned_deltas_parallel_partitioned_obs(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    data: &HashMap<TableId, Vec<(Row, i64)>>,
    weights: CostWeights,
    threads: usize,
    partitions: usize,
    partition_threads: usize,
    obs: Option<ObsConfig>,
) -> Result<RunResult> {
    let mut source = Source::in_order(data);
    execute_from_source_parallel_obs(
        plan,
        paces,
        catalog,
        &mut source,
        weights,
        threads,
        SourceOptions { obs, partitions, partition_threads, ..Default::default() },
    )?
    .into_result()
}

/// Parallel twin of [`crate::driver::execute_from_source_obs`]: pulls input
/// from an ingest [`Source`], executes independent subplans of each
/// wavefront on `threads` workers, and commits consumed offsets at every
/// wavefront boundary. Bit-identical to the sequential source-fed driver —
/// and hence to the `Vec`-fed drivers — for any `threads ≥ 1`.
pub fn execute_from_source_parallel_obs(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    source: &mut Source,
    weights: CostWeights,
    threads: usize,
    opts: SourceOptions,
) -> Result<SourceOutcome> {
    run_from_source_parallel(plan, paces, catalog, source, weights, threads, opts, None)
}

/// Parallel twin of [`crate::driver::execute_adaptive_from_source_obs`].
/// Adaptation decisions happen between wavefronts, on the single-threaded
/// boundary path, from the same deterministic observations the sequential
/// driver builds — so adaptive parallel runs remain bit-identical to
/// adaptive sequential runs for any thread count.
pub fn execute_adaptive_from_source_parallel_obs(
    plan: &SharedPlan,
    catalog: &Catalog,
    source: &mut Source,
    weights: CostWeights,
    threads: usize,
    opts: SourceOptions,
    ctrl: &mut AdaptController,
) -> Result<SourceOutcome> {
    let paces = ctrl.current_paces().to_vec();
    run_from_source_parallel(plan, &paces, catalog, source, weights, threads, opts, Some(ctrl))
}

#[allow(clippy::too_many_arguments)]
fn run_from_source_parallel(
    plan: &SharedPlan,
    paces: &[u32],
    catalog: &Catalog,
    source: &mut Source,
    weights: CostWeights,
    threads: usize,
    opts: SourceOptions,
    mut adapt: Option<&mut AdaptController>,
) -> Result<SourceOutcome> {
    if threads == 0 {
        return Err(Error::InvalidConfig("thread count must be at least 1".into()));
    }
    let run_started = Instant::now();
    let mut schedule = build_schedule(plan, paces)?;
    let mut active_paces: Vec<u32> = paces.to_vec();
    let all_queries = plan.queries();
    let depths = plan.depths();
    // Slack budgets: explicit `opts.slo`, else the adaptive controller's
    // L(q) constraints — same derivation as the sequential driver.
    let slo_budgets: Option<BTreeMap<ishare_common::QueryId, f64>> =
        opts.slo.clone().or_else(|| adapt.as_deref().map(|c| c.constraints().clone()));
    let EngineState { base_buffers, base_tables, sp_buffers, executors, leaf_consumers } =
        setup_engine(plan, catalog, weights, opts.exec_options())?;
    // Shared-state wrappers. Plain `Mutex` (not `RwLock`): every buffer
    // access — even a read — advances a consumer cursor via `pull(&mut)`.
    let mut base_buffers: HashMap<TableId, Mutex<DeltaBuffer>> =
        base_buffers.into_iter().map(|(t, b)| (t, Mutex::new(b))).collect();
    let mut sp_buffers: Vec<Mutex<DeltaBuffer>> = sp_buffers.into_iter().map(Mutex::new).collect();
    let executors: Vec<Mutex<SubplanExecutor>> = executors.into_iter().map(Mutex::new).collect();

    // Per-tick measurements, indexed by global schedule position and folded
    // in that order below — the linchpin of the bit-identical guarantee.
    let mut recs: Vec<Option<TickRec>> = vec![None; schedule.len()];
    let mut fronts: Vec<FrontRec> = Vec::new();
    let mut polls: Vec<PollRec> = Vec::new();
    let mut adapt_recs: Vec<AdaptRec> = Vec::new();
    let mut tallies: BTreeMap<TableId, (u64, u64)> = BTreeMap::new();
    let mut charged_final: Vec<f64> = vec![0.0; plan.len()];
    let mut pos = 0;
    let mut wf = 0;
    while pos < schedule.len() {
        let front = front_at(&schedule, pos);
        // Cut the ingest topics at this front's arrival fraction
        // (single-threaded between levels, hence `get_mut` instead of
        // locking).
        let head = schedule[front.start];
        let poll_start = run_started.elapsed();
        let mut poll_rows = 0u64;
        feed_from_source(source, &base_tables, head.num, head.den, all_queries, |t, dr| {
            poll_rows += 1;
            let tally = tallies.entry(t).or_insert((0, 0));
            tally.0 += 1;
            if dr.weight < 0 {
                tally.1 += 1;
            }
            base_buffers
                .get_mut(&t)
                .expect("registered table")
                .get_mut()
                .expect("buffer lock poisoned")
                .push(dr)
        })?;
        polls.push(PollRec {
            start: poll_start,
            dur: run_started.elapsed() - poll_start,
            rows: poll_rows,
        });
        let front_start = run_started.elapsed();
        for level in depth_levels(&schedule[front.clone()], &depths) {
            let ticks: Vec<usize> = level.map(|o| front.start + o).collect();
            if threads == 1 || ticks.len() == 1 {
                for &g in &ticks {
                    let start = run_started.elapsed();
                    let (work, wall, breakdown) = run_tick(
                        &schedule[g],
                        &base_buffers,
                        &sp_buffers,
                        &executors,
                        &leaf_consumers,
                        &weights,
                    )?;
                    recs[g] = Some(TickRec { work, wall, breakdown, start, worker: 0 });
                }
            } else {
                // Work-stealing over the level: workers grab the next tick
                // index until the level is drained.
                let next = AtomicUsize::new(0);
                let workers = threads.min(ticks.len());
                type Outcome = (usize, Result<(WorkUnits, Duration, WorkBreakdown)>, Duration);
                let mut outcomes: Vec<(u32, Outcome)> = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..workers as u32)
                        .map(|w| {
                            let next = &next;
                            let ticks = &ticks;
                            let schedule = &schedule;
                            let base_buffers = &base_buffers;
                            let sp_buffers = &sp_buffers;
                            let executors = &executors;
                            let leaf_consumers = &leaf_consumers;
                            let weights = &weights;
                            s.spawn(move || {
                                let mut done = Vec::new();
                                loop {
                                    let j = next.fetch_add(1, Ordering::Relaxed);
                                    let Some(&g) = ticks.get(j) else { break };
                                    let start = run_started.elapsed();
                                    let outcome = run_tick(
                                        &schedule[g],
                                        base_buffers,
                                        sp_buffers,
                                        executors,
                                        leaf_consumers,
                                        weights,
                                    );
                                    done.push((w, (g, outcome, start)));
                                }
                                done
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("worker thread panicked"))
                        .collect()
                });
                // Surface the earliest failing tick in schedule order, as
                // the sequential driver would.
                outcomes.sort_by_key(|(_, (g, _, _))| *g);
                for (w, (g, outcome, start)) in outcomes {
                    let (work, wall, breakdown) = outcome?;
                    recs[g] = Some(TickRec { work, wall, breakdown, start, worker: w });
                }
            }
        }
        for (i, tick) in schedule[front.clone()].iter().enumerate() {
            if tick.is_final {
                let rec = recs[front.start + i].as_ref().expect("tick ran");
                charged_final[tick.sp.index()] = rec.work.get();
            }
        }
        fronts.push(FrontRec {
            range: front.clone(),
            num: head.num,
            den: head.den,
            start: front_start,
            dur: run_started.elapsed() - front_start,
        });
        // Reclaim fully consumed prefixes between fronts (single-threaded
        // here, so `get_mut`); cursors are absolute and query roots retain
        // everything, so later pulls and result views are unaffected.
        for b in base_buffers.values_mut() {
            b.get_mut().expect("buffer lock poisoned").compact();
        }
        for b in sp_buffers.iter_mut() {
            b.get_mut().expect("buffer lock poisoned").compact();
        }
        // Commit first (the entry records the paces in effect during this
        // front), then let the controller install a switch for the next.
        if let Some(out) = commit_wavefront(source, wf, head.num, head.den, &active_paces, &opts)? {
            return Ok(out);
        }
        if let Some(ctrl) = adapt.as_deref_mut() {
            let obs = wavefront_observation(
                plan,
                all_queries,
                wf,
                head.num,
                head.den,
                &charged_final,
                &tallies,
            );
            let adapt_start = run_started.elapsed();
            let switch = ctrl.observe(&obs)?;
            adapt_recs.push(AdaptRec {
                front: wf as u32,
                start: adapt_start,
                dur: run_started.elapsed() - adapt_start,
                switched: switch.is_some(),
            });
            if let Some(new_paces) = switch {
                schedule =
                    reschedule_after(plan, &schedule[..front.end], head.num, head.den, &new_paces)?;
                // The executed prefix keeps its records; the rebuilt tail is
                // unexecuted, so its slots start empty.
                recs.resize(schedule.len(), None);
                for r in recs.iter_mut().skip(front.end) {
                    *r = None;
                }
                active_paces = new_paces;
            }
        }
        pos = front.end;
        wf += 1;
    }

    let recs: Vec<TickRec> =
        recs.into_iter().map(|r| r.expect("every scheduled tick ran")).collect();
    let folded = fold_run(
        plan,
        all_queries,
        &schedule,
        &depths,
        &recs,
        &fronts,
        &polls,
        &adapt_recs,
        opts.obs,
        slo_budgets.as_ref(),
    );

    let base_buffers: HashMap<TableId, DeltaBuffer> = base_buffers
        .into_iter()
        .map(|(t, m)| (t, m.into_inner().expect("buffer lock poisoned")))
        .collect();
    let sp_buffers: Vec<DeltaBuffer> =
        sp_buffers.into_iter().map(|m| m.into_inner().expect("buffer lock poisoned")).collect();
    let executors: Vec<SubplanExecutor> =
        executors.into_iter().map(|m| m.into_inner().expect("executor lock poisoned")).collect();
    let mut obs_report = folded.obs;
    if let Some(report) = obs_report.as_mut() {
        buffer_gauges(report, &base_buffers, &sp_buffers);
        partition_gauges(report, &executors);
        batch_gauges(report, &executors);
        ingest_gauges(report, &source.stats());
        if let Some(ctrl) = adapt.as_deref() {
            adapt_gauges(report, ctrl);
        }
    }
    let (final_work, latency, results) = per_query_views(
        plan,
        all_queries,
        &folded.final_sp_work,
        &folded.final_sp_wall,
        &sp_buffers,
    )?;
    Ok(SourceOutcome::Completed {
        result: Box::new(RunResult {
            total_work: folded.total_work,
            total_wall: folded.total_wall,
            final_work,
            latency,
            results,
            executions: folded.executions,
            executions_per_query: folded.executions_per_query,
            elapsed: run_started.elapsed(),
            obs: obs_report,
        }),
        log: source.log().clone(),
    })
}

/// One incremental execution against the lock-wrapped engine state. Locks
/// are taken one at a time and never nested, so workers cannot deadlock;
/// within a level no two ticks touch the same executor or write the same
/// buffer, so contention is limited to sibling pulls of a shared child.
fn run_tick(
    tick: &Tick,
    base_buffers: &HashMap<TableId, Mutex<DeltaBuffer>>,
    sp_buffers: &[Mutex<DeltaBuffer>],
    executors: &[Mutex<SubplanExecutor>],
    leaf_consumers: &[Vec<(Vec<usize>, InputSource, ConsumerId)>],
    weights: &CostWeights,
) -> Result<(WorkUnits, Duration, WorkBreakdown)> {
    let i = tick.sp.index();
    let counter = WorkCounter::new();
    let started = Instant::now();
    let mut inputs = HashMap::new();
    for (path, src, consumer) in &leaf_consumers[i] {
        let batch = match src {
            InputSource::Base(t) => base_buffers
                .get(t)
                .expect("registered table")
                .lock()
                .expect("buffer lock poisoned")
                .pull(*consumer)?,
            InputSource::Subplan(c) => {
                sp_buffers[c.index()].lock().expect("buffer lock poisoned").pull(*consumer)?
            }
        };
        inputs.insert(path.clone(), batch);
    }
    let out =
        executors[i].lock().expect("executor lock poisoned").execute(&mut inputs, &counter)?;
    counter.charge(OpKind::Materialize, weights.materialize, out.len());
    sp_buffers[i].lock().expect("buffer lock poisoned").append(&out);
    Ok((counter.total(), started.elapsed(), counter.breakdown()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::execute_planned_deltas;
    use ishare_common::{DataType, QueryId, QuerySet, Value};
    use ishare_expr::Expr;
    use ishare_plan::{AggExpr, AggFunc, DagOp, SelectBranch, SharedDag};
    use ishare_storage::{ColumnStats, Field, Schema, TableStats};

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    /// Catalog with one table and a plan fanning out to `n` independent
    /// aggregate subplans (one per query) over a shared scan+select trunk.
    #[allow(clippy::type_complexity)]
    fn fan_out(n: u16) -> (Catalog, SharedPlan, HashMap<TableId, Vec<(Row, i64)>>) {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats {
                row_count: 120.0,
                columns: vec![ColumnStats::ndv(12.0), ColumnStats::ndv(100.0)],
            },
        )
        .unwrap();
        let t = c.table_by_name("t").unwrap().id;
        let all: Vec<u16> = (0..n).collect();
        let mut d = SharedDag::new();
        let scan = d.add_node(DagOp::Scan { table: t }, vec![], qs(&all)).unwrap();
        for q in 0..n {
            let sel = d
                .add_node(
                    DagOp::Select {
                        branches: vec![SelectBranch {
                            queries: qs(&[q]),
                            predicate: Expr::col(0).lt(Expr::lit(2 + q as i64)),
                        }],
                    },
                    vec![scan],
                    qs(&[q]),
                )
                .unwrap();
            let agg = d
                .add_node(
                    DagOp::Aggregate {
                        group_by: vec![(Expr::col(0), "k".into())],
                        aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")],
                    },
                    vec![sel],
                    qs(&[q]),
                )
                .unwrap();
            d.set_query_root(QueryId(q), agg).unwrap();
        }
        let plan = SharedPlan::from_dag(&d, |_| false).unwrap();
        let feed: Vec<(Row, i64)> = (0..120)
            .map(|i| (Row::new(vec![Value::Int(i % 12), Value::Int(i * 13 % 100)]), 1))
            .collect();
        let data = [(t, feed)].into_iter().collect();
        (c, plan, data)
    }

    fn assert_bit_identical(a: &RunResult, b: &RunResult, label: &str) {
        assert_eq!(a.results, b.results, "{label}: results differ");
        assert_eq!(
            a.total_work.get().to_bits(),
            b.total_work.get().to_bits(),
            "{label}: total_work differs"
        );
        assert_eq!(a.final_work, b.final_work, "{label}: final_work differs");
        for (q, w) in &a.final_work {
            assert_eq!(
                w.to_bits(),
                b.final_work[q].to_bits(),
                "{label}: final_work bits differ for {q}"
            );
        }
        assert_eq!(a.executions, b.executions, "{label}: executions differ");
    }

    #[test]
    fn matches_sequential_across_thread_counts() {
        let (c, plan, data) = fan_out(6);
        for paces_seed in [1u32, 3, 5] {
            let paces: Vec<u32> =
                (0..plan.len()).map(|i| 1 + (i as u32 + paces_seed) % 5).collect();
            let seq =
                execute_planned_deltas(&plan, &paces, &c, &data, CostWeights::default()).unwrap();
            for threads in [1, 2, 4] {
                let par = execute_planned_deltas_parallel(
                    &plan,
                    &paces,
                    &c,
                    &data,
                    CostWeights::default(),
                    threads,
                )
                .unwrap();
                assert_bit_identical(&seq, &par, &format!("threads={threads}"));
            }
        }
    }

    #[test]
    fn deletes_match_sequential() {
        let (c, plan, mut data) = fan_out(4);
        // Retract a third of the rows mid-stream.
        let feed = data.values_mut().next().unwrap();
        let dels: Vec<(Row, i64)> = feed.iter().step_by(3).map(|(r, _)| (r.clone(), -1)).collect();
        feed.extend(dels);
        let paces: Vec<u32> = (0..plan.len()).map(|i| 1 + i as u32 % 4).collect();
        let seq = execute_planned_deltas(&plan, &paces, &c, &data, CostWeights::default()).unwrap();
        for threads in [2, 4] {
            let par = execute_planned_deltas_parallel(
                &plan,
                &paces,
                &c,
                &data,
                CostWeights::default(),
                threads,
            )
            .unwrap();
            assert_bit_identical(&seq, &par, &format!("deletes threads={threads}"));
        }
    }

    #[test]
    fn zero_threads_rejected() {
        let (c, plan, data) = fan_out(2);
        let paces = vec![1u32; plan.len()];
        let err =
            execute_planned_deltas_parallel(&plan, &paces, &c, &data, CostWeights::default(), 0);
        assert!(matches!(err, Err(Error::InvalidConfig(_))));
    }

    fn controller(
        c: &Catalog,
        plan: &SharedPlan,
        paces: &[u32],
        constraints: ishare_core::ConstraintMap,
        opts: ishare_core::AdaptOptions,
    ) -> AdaptController {
        AdaptController::new(plan, c, CostWeights::default(), paces, constraints, opts).unwrap()
    }

    #[test]
    fn adaptive_disabled_is_bit_identical_to_static() {
        use crate::driver::execute_adaptive_from_source_obs;
        let (c, plan, data) = fan_out(4);
        let paces: Vec<u32> = (0..plan.len()).map(|i| 1 + i as u32 % 3).collect();
        let w = CostWeights::default();
        let static_run = execute_planned_deltas(&plan, &paces, &c, &data, w).unwrap();
        let opts = ishare_core::AdaptOptions::disabled();
        for threads in [1usize, 2, 4] {
            let mut ctrl = controller(&c, &plan, &paces, ishare_core::ConstraintMap::new(), opts);
            let mut source = Source::in_order(&data);
            let run = if threads == 1 {
                execute_adaptive_from_source_obs(
                    &plan,
                    &c,
                    &mut source,
                    w,
                    SourceOptions::default(),
                    &mut ctrl,
                )
            } else {
                execute_adaptive_from_source_parallel_obs(
                    &plan,
                    &c,
                    &mut source,
                    w,
                    threads,
                    SourceOptions::default(),
                    &mut ctrl,
                )
            }
            .unwrap()
            .into_result()
            .unwrap();
            assert_bit_identical(&static_run, &run, &format!("adaptive off, threads={threads}"));
            assert_eq!(ctrl.metrics().switches, 0, "disabled controller must never switch");
            assert!(ctrl.metrics().evaluations > 0, "controller must still observe fronts");
        }
    }

    /// A drifted stream (3× the cataloged rows, with deletes) plus an
    /// unreachable constraint force a pace switch; the switch must replay
    /// bit-identically sequentially, in parallel, and across kill/resume.
    #[test]
    fn adaptive_switch_replays_and_parallelizes_bit_identically() {
        use crate::driver::execute_adaptive_from_source_obs;
        let (c, plan, mut data) = fan_out(3);
        let feed = data.values_mut().next().unwrap();
        let extra: Vec<(Row, i64)> = (120..330)
            .map(|i| (Row::new(vec![Value::Int(i % 12), Value::Int(i * 13 % 100)]), 1))
            .collect();
        let dels: Vec<(Row, i64)> = feed.iter().step_by(4).map(|(r, _)| (r.clone(), -1)).collect();
        feed.extend(extra);
        feed.extend(dels);
        let w = CostWeights::default();
        let initial = vec![2u32; plan.len()];
        let cons: ishare_core::ConstraintMap = [(QueryId(0), 1.0)].into_iter().collect();
        let opts = ishare_core::AdaptOptions { max_pace: 6, ..Default::default() };

        let run = |threads: usize, src_opts: SourceOptions| {
            let mut ctrl = controller(&c, &plan, &initial, cons.clone(), opts);
            let mut source = Source::in_order(&data);
            let out = if threads == 1 {
                execute_adaptive_from_source_obs(&plan, &c, &mut source, w, src_opts, &mut ctrl)
            } else {
                execute_adaptive_from_source_parallel_obs(
                    &plan,
                    &c,
                    &mut source,
                    w,
                    threads,
                    src_opts,
                    &mut ctrl,
                )
            }
            .unwrap();
            (out, ctrl)
        };

        let (out_seq, ctrl_seq) = run(1, SourceOptions::default());
        assert!(
            !ctrl_seq.switches().is_empty(),
            "3x drift against an unreachable constraint must switch paces"
        );
        let (result_seq, log_seq) = match out_seq {
            SourceOutcome::Completed { result, log } => (*result, log),
            SourceOutcome::Suspended { .. } => panic!("run must complete"),
        };
        // The commit log records the pace trajectory: initial paces on the
        // first front, switched paces on the last.
        assert_eq!(log_seq.entries.first().unwrap().paces, initial);
        assert_eq!(
            log_seq.entries.last().unwrap().paces,
            ctrl_seq.current_paces(),
            "last front must run under the switched configuration"
        );

        for threads in [2usize, 4] {
            let (out, ctrl) = run(threads, SourceOptions::default());
            let result = out.into_result().unwrap();
            assert_bit_identical(&result_seq, &result, &format!("adaptive threads={threads}"));
            assert_eq!(ctrl.switches(), ctrl_seq.switches(), "switch log, threads={threads}");
        }

        // Kill after the first committed wavefront, then resume from scratch
        // with the partial log: the fresh controller must re-derive the same
        // switches and the run must verify against — and extend — the log.
        let (killed, _) = run(1, SourceOptions { stop_after: Some(1), ..Default::default() });
        let partial = match killed {
            SourceOutcome::Suspended { log } => log,
            SourceOutcome::Completed { .. } => panic!("stop_after must suspend"),
        };
        assert_eq!(partial.len(), 1);
        let (resumed, ctrl_res) =
            run(1, SourceOptions { verify: Some(partial), ..Default::default() });
        let (result_res, log_res) = match resumed {
            SourceOutcome::Completed { result, log } => (*result, log),
            SourceOutcome::Suspended { .. } => panic!("resume must complete"),
        };
        assert_bit_identical(&result_seq, &result_res, "killed+resumed");
        assert_eq!(log_res, log_seq, "resumed commit log (incl. paces) must match");
        assert_eq!(ctrl_res.switches(), ctrl_seq.switches(), "resumed switch log must match");
    }
}
