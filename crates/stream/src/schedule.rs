//! Tick scheduling: which subplan runs at which arrival fraction.
//!
//! A subplan at pace `k` runs when `1/k, 2/k, …, k/k` of the trigger's data
//! has arrived (paper Sec. 2.2). The global schedule merges every subplan's
//! ticks, ordered by arrival fraction and children-first within a shared
//! fraction (Sec. 5.1: "the child subplans are executed earlier than their
//! parent subplans").
//!
//! On top of the flat schedule this module exposes the two groupings the
//! parallel driver needs: [`wavefronts`] (maximal runs of equal fraction —
//! base relations need feeding only once per front) and [`depth_levels`]
//! (ticks whose subplans share a dependency depth never read each other's
//! buffers, so one level may execute concurrently).

use ishare_common::{Error, Result, SubplanId};
use ishare_plan::SharedPlan;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::ops::Range;

/// One scheduled incremental execution: subplan `sp` runs when `num/den` of
/// the trigger's data has arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tick {
    /// Numerator of the arrival fraction.
    pub num: u32,
    /// Denominator of the arrival fraction (the subplan's pace).
    pub den: u32,
    /// Rank in the plan's children-first topological order.
    pub topo_rank: usize,
    /// The subplan to execute.
    pub sp: SubplanId,
    /// `true` for the subplan's last tick (`num == den`).
    pub is_final: bool,
}

impl Tick {
    /// Compare arrival fractions exactly: `i/k` vs `j/m` ⇔ `i·m` vs `j·k`.
    /// Cross-multiplication in `u64` is exact and cannot overflow for `u32`
    /// numerators and denominators.
    pub fn frac_cmp(&self, other: &Tick) -> Ordering {
        let a = self.num as u64 * other.den as u64;
        let b = other.num as u64 * self.den as u64;
        a.cmp(&b)
    }
}

/// Build the global tick schedule for `plan` at `paces`: every subplan's
/// ticks merged, sorted by arrival fraction with ties broken children-first
/// (topological rank). Errors when `paces` and the plan disagree on the
/// number of subplans.
pub fn build_schedule(plan: &SharedPlan, paces: &[u32]) -> Result<Vec<Tick>> {
    if paces.len() != plan.len() {
        return Err(Error::InvalidConfig(format!(
            "{} paces for {} subplans",
            paces.len(),
            plan.len()
        )));
    }
    let topo = plan.topo_order()?;
    let topo_rank: HashMap<SubplanId, usize> =
        topo.iter().enumerate().map(|(i, id)| (*id, i)).collect();
    let mut ticks: Vec<Tick> = Vec::new();
    for sp in &plan.subplans {
        let k = paces[sp.id.index()];
        for i in 1..=k {
            ticks.push(Tick {
                num: i,
                den: k,
                topo_rank: topo_rank[&sp.id],
                sp: sp.id,
                is_final: i == k,
            });
        }
    }
    ticks.sort_by(|a, b| a.frac_cmp(b).then(a.topo_rank.cmp(&b.topo_rank)));
    Ok(ticks)
}

/// Split a schedule into wavefronts: maximal runs of ticks sharing one
/// arrival fraction, returned as index ranges into the schedule. Every tick
/// in a wavefront observes the same base-relation prefix.
pub fn wavefronts(ticks: &[Tick]) -> Vec<Range<usize>> {
    let mut fronts = Vec::new();
    let mut start = 0;
    for i in 1..=ticks.len() {
        if i == ticks.len() || ticks[i].frac_cmp(&ticks[start]) != Ordering::Equal {
            fronts.push(start..i);
            start = i;
        }
    }
    fronts
}

/// The maximal wavefront starting at `pos`: the run of ticks sharing
/// `ticks[pos]`'s arrival fraction. Incremental counterpart of
/// [`wavefronts`] for drivers whose schedule may change mid-run (adaptive
/// pace switches rebuild the tail, so fronts cannot be precomputed).
pub fn front_at(ticks: &[Tick], pos: usize) -> Range<usize> {
    let mut end = pos + 1;
    while end < ticks.len() && ticks[end].frac_cmp(&ticks[pos]) == Ordering::Equal {
        end += 1;
    }
    pos..end
}

/// Rebuild a schedule around a mid-run pace switch: keep the already
/// executed prefix (`executed`, which must end exactly at the wavefront
/// boundary with arrival fraction `num/den`) and regenerate every remaining
/// tick from `new_paces`, keeping only fractions *strictly* beyond the
/// boundary. Each subplan's final tick (`k/k`, fraction 1) is always beyond
/// a non-final boundary, so every subplan still ends with exactly one final
/// refresh — and because the engine's delta buffers are pull-based, any tick
/// set ending in finals materializes the same results, so a switch can never
/// change answers, only how work is spread over the remaining fronts.
pub fn reschedule_after(
    plan: &SharedPlan,
    executed: &[Tick],
    num: u32,
    den: u32,
    new_paces: &[u32],
) -> Result<Vec<Tick>> {
    if new_paces.len() != plan.len() {
        return Err(Error::InvalidConfig(format!(
            "{} paces for {} subplans",
            new_paces.len(),
            plan.len()
        )));
    }
    if num >= den {
        return Err(Error::InvalidConfig(format!(
            "cannot reschedule at boundary {num}/{den}: stream already complete"
        )));
    }
    let topo = plan.topo_order()?;
    let topo_rank: HashMap<SubplanId, usize> =
        topo.iter().enumerate().map(|(i, id)| (*id, i)).collect();
    let mut suffix: Vec<Tick> = Vec::new();
    for sp in &plan.subplans {
        let k = new_paces[sp.id.index()];
        for j in 1..=k {
            // Strictly beyond the boundary: j/k > num/den ⇔ j·den > num·k
            // (exact in u64).
            if j as u64 * den as u64 > num as u64 * k as u64 {
                suffix.push(Tick {
                    num: j,
                    den: k,
                    topo_rank: topo_rank[&sp.id],
                    sp: sp.id,
                    is_final: j == k,
                });
            }
        }
    }
    suffix.sort_by(|a, b| a.frac_cmp(b).then(a.topo_rank.cmp(&b.topo_rank)));
    let mut out = executed.to_vec();
    out.extend(suffix);
    debug_assert!(
        plan.subplans
            .iter()
            .all(|sp| out.iter().filter(|t| t.sp == sp.id && t.is_final).count() == 1),
        "rescheduled ticks must contain exactly one final tick per subplan"
    );
    Ok(out)
}

/// Split one wavefront into depth levels: maximal runs of ticks whose
/// subplans share a dependency depth (`SharedPlan::depths`), as index ranges
/// into the front. A parent subplan is strictly deeper than each of its
/// children, so the ticks within one level are mutually independent; levels
/// must still run in order.
///
/// Relies on the front being sorted by topological rank, which orders
/// subplans by `(depth, id)` — equal depths are therefore contiguous.
pub fn depth_levels(front: &[Tick], depths: &[usize]) -> Vec<Range<usize>> {
    debug_assert!(
        front.windows(2).all(|w| depths[w[0].sp.index()] <= depths[w[1].sp.index()]),
        "wavefront not sorted by depth"
    );
    let mut levels = Vec::new();
    let mut start = 0;
    for i in 1..=front.len() {
        if i == front.len() || depths[front[i].sp.index()] != depths[front[start].sp.index()] {
            levels.push(start..i);
            start = i;
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{DataType, QueryId, QuerySet};
    use ishare_expr::Expr;
    use ishare_plan::{AggExpr, AggFunc, DagOp, SelectBranch, SharedDag};
    use ishare_storage::{Catalog, ColumnStats, Field, Schema, TableStats};

    fn tick(num: u32, den: u32) -> Tick {
        Tick { num, den, topo_rank: 0, sp: SubplanId(0), is_final: num == den }
    }

    #[test]
    fn frac_cmp_equal_at_different_denominators() {
        assert_eq!(tick(1, 2).frac_cmp(&tick(2, 4)), Ordering::Equal);
        assert_eq!(tick(3, 6).frac_cmp(&tick(1, 2)), Ordering::Equal);
        assert_eq!(tick(2, 2).frac_cmp(&tick(7, 7)), Ordering::Equal);
        assert_eq!(tick(5, 10).frac_cmp(&tick(50, 100)), Ordering::Equal);
    }

    #[test]
    fn frac_cmp_orders_fractions() {
        let fracs = [(1, 5), (1, 3), (2, 5), (1, 2), (2, 3), (3, 4), (1, 1)];
        for (i, &(an, ad)) in fracs.iter().enumerate() {
            for (j, &(bn, bd)) in fracs.iter().enumerate() {
                let got = tick(an, ad).frac_cmp(&tick(bn, bd));
                assert_eq!(got, i.cmp(&j), "{an}/{ad} vs {bn}/{bd}");
            }
        }
    }

    #[test]
    fn frac_cmp_max_pace_values_do_not_overflow() {
        let m = u32::MAX;
        // (MAX-1)/MAX < 1/1 == MAX/MAX; cross products reach (2^32-1)^2 < 2^64.
        assert_eq!(tick(m - 1, m).frac_cmp(&tick(1, 1)), Ordering::Less);
        assert_eq!(tick(m, m).frac_cmp(&tick(1, 1)), Ordering::Equal);
        assert_eq!(tick(1, 1).frac_cmp(&tick(m - 1, m)), Ordering::Greater);
        // Adjacent ticks at the largest possible pace stay distinguishable.
        assert_eq!(tick(1, m).frac_cmp(&tick(2, m)), Ordering::Less);
        assert_eq!(tick(1, m).frac_cmp(&tick(1, m - 1)), Ordering::Less);
        assert_eq!(tick(m - 1, m).frac_cmp(&tick(m - 2, m - 1)), Ordering::Greater);
    }

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    /// The driver's Fig. 2-style fixture: scan→select→aggregate shared by
    /// two queries, with one project subplan per query on top.
    fn fixture() -> (Catalog, SharedPlan) {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats {
                row_count: 200.0,
                columns: vec![ColumnStats::ndv(10.0), ColumnStats::ndv(100.0)],
            },
        )
        .unwrap();
        let t = c.table_by_name("t").unwrap().id;
        let mut d = SharedDag::new();
        let scan = d.add_node(DagOp::Scan { table: t }, vec![], qs(&[0, 1])).unwrap();
        let sel = d
            .add_node(
                DagOp::Select {
                    branches: vec![
                        SelectBranch { queries: qs(&[0]), predicate: Expr::true_lit() },
                        SelectBranch {
                            queries: qs(&[1]),
                            predicate: Expr::col(1).lt(Expr::lit(50i64)),
                        },
                    ],
                },
                vec![scan],
                qs(&[0, 1]),
            )
            .unwrap();
        let agg = d
            .add_node(
                DagOp::Aggregate {
                    group_by: vec![(Expr::col(0), "k".into())],
                    aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")],
                },
                vec![sel],
                qs(&[0, 1]),
            )
            .unwrap();
        let p0 = d
            .add_node(
                DagOp::Project {
                    exprs: vec![(Expr::col(0), "k".into()), (Expr::col(1), "s".into())],
                },
                vec![agg],
                qs(&[0]),
            )
            .unwrap();
        let p1 = d
            .add_node(
                DagOp::Project { exprs: vec![(Expr::col(1), "s".into())] },
                vec![agg],
                qs(&[1]),
            )
            .unwrap();
        d.set_query_root(QueryId(0), p0).unwrap();
        d.set_query_root(QueryId(1), p1).unwrap();
        let plan = ishare_plan::SharedPlan::from_dag(&d, |_| false).unwrap();
        (c, plan)
    }

    #[test]
    fn pace_count_mismatch_rejected() {
        let (_c, plan) = fixture();
        assert!(build_schedule(&plan, &[1, 1]).is_err());
    }

    #[test]
    fn children_run_before_parents_on_shared_ticks() {
        let (_c, plan) = fixture();
        let paces = vec![2u32; plan.len()];
        let ticks = build_schedule(&plan, &paces).unwrap();
        assert_eq!(ticks.len(), 2 * plan.len());
        for front in wavefronts(&ticks) {
            let front = &ticks[front];
            // Every subplan ticks exactly once per shared fraction here.
            assert_eq!(front.len(), plan.len());
            let pos: HashMap<SubplanId, usize> =
                front.iter().enumerate().map(|(i, t)| (t.sp, i)).collect();
            for sp in &plan.subplans {
                for child in sp.children() {
                    assert!(
                        pos[&child] < pos[&sp.id],
                        "child {child} must run before parent {} in a shared tick",
                        sp.id
                    );
                }
            }
        }
    }

    #[test]
    fn wavefronts_partition_by_fraction() {
        let (_c, plan) = fixture();
        let mut paces = vec![1u32; plan.len()];
        paces[0] = 4;
        paces[1] = 2;
        let ticks = build_schedule(&plan, &paces).unwrap();
        let fronts = wavefronts(&ticks);
        // Fractions: 1/4 | 1/2 = 2/4 | 3/4 | 1/1 group (4/4, 2/2, 1/1 …).
        let sizes: Vec<usize> = fronts.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![1, 2, 1, plan.len()]);
        // The ranges tile the schedule in order.
        let mut covered = 0;
        for f in &fronts {
            assert_eq!(f.start, covered);
            covered = f.end;
            let head = ticks[f.start];
            for t in &ticks[f.clone()] {
                assert_eq!(t.frac_cmp(&head), Ordering::Equal);
            }
        }
        assert_eq!(covered, ticks.len());
    }

    #[test]
    fn depth_levels_group_independent_subplans() {
        let (_c, plan) = fixture();
        let depths = plan.depths();
        let ticks = build_schedule(&plan, &vec![1u32; plan.len()]).unwrap();
        let fronts = wavefronts(&ticks);
        assert_eq!(fronts.len(), 1);
        let front = &ticks[fronts[0].clone()];
        let levels = depth_levels(front, &depths);
        // The fixture has one trunk subplan and two project subplans reading
        // it: two levels, the second holding both independent projects.
        assert_eq!(levels.len(), 2);
        assert_eq!(front[levels[0].clone()].len(), 1);
        assert_eq!(front[levels[1].clone()].len(), 2);
        for level in &levels {
            let d0 = depths[front[level.start].sp.index()];
            for t in &front[level.clone()] {
                assert_eq!(depths[t.sp.index()], d0);
            }
        }
        // Levels never split a parent/child pair into the same level.
        for sp in &plan.subplans {
            for child in sp.children() {
                assert_ne!(depths[sp.id.index()], depths[child.index()]);
            }
        }
    }

    #[test]
    fn front_at_agrees_with_wavefronts() {
        let (_c, plan) = fixture();
        let paces: Vec<u32> = (0..plan.len()).map(|i| 1 + i as u32 * 2).collect();
        let ticks = build_schedule(&plan, &paces).unwrap();
        let mut pos = 0;
        let mut incremental = Vec::new();
        while pos < ticks.len() {
            let f = front_at(&ticks, pos);
            pos = f.end;
            incremental.push(f);
        }
        assert_eq!(incremental, wavefronts(&ticks));
    }

    #[test]
    fn reschedule_keeps_prefix_and_regenerates_strict_suffix() {
        let (_c, plan) = fixture();
        let old = vec![4u32; plan.len()];
        let ticks = build_schedule(&plan, &old).unwrap();
        // Boundary after the 2/4 front.
        let boundary = wavefronts(&ticks)[1].end;
        let new_paces: Vec<u32> = (0..plan.len()).map(|i| [6u32, 1][i % 2]).collect();
        let out = reschedule_after(&plan, &ticks[..boundary], 2, 4, &new_paces).unwrap();
        // Prefix untouched.
        assert_eq!(&out[..boundary], &ticks[..boundary]);
        // Suffix: only fractions strictly beyond 1/2, sorted, each subplan
        // ending in exactly one final tick.
        let half = Tick { num: 1, den: 2, topo_rank: 0, sp: SubplanId(0), is_final: false };
        for t in &out[boundary..] {
            assert_eq!(t.frac_cmp(&half), Ordering::Greater, "{}/{} <= 1/2", t.num, t.den);
        }
        for w in out[boundary..].windows(2) {
            assert_ne!(w[0].frac_cmp(&w[1]), Ordering::Greater, "suffix must stay sorted");
        }
        for sp in &plan.subplans {
            assert_eq!(out.iter().filter(|t| t.sp == sp.id && t.is_final).count(), 1);
            let k = new_paces[sp.id.index()];
            // A subplan at new pace k has exactly the ticks j/k with j/k > 1/2.
            let expect = (1..=k).filter(|&j| j as u64 * 2 > k as u64).count();
            assert_eq!(out[boundary..].iter().filter(|t| t.sp == sp.id).count(), expect);
        }
    }

    #[test]
    fn reschedule_rejects_complete_boundary_and_bad_arity() {
        let (_c, plan) = fixture();
        let ticks = build_schedule(&plan, &vec![2u32; plan.len()]).unwrap();
        assert!(reschedule_after(&plan, &ticks, 2, 2, &vec![3u32; plan.len()]).is_err());
        assert!(reschedule_after(&plan, &ticks[..1], 1, 2, &[3]).is_err());
    }
}
