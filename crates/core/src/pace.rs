//! Pace configurations (Sec. 2.2).
//!
//! "A pace k means that the subplan starts one execution whenever the system
//! has received 1/k of the total estimated tuples for that trigger
//! condition. The higher the pace is, the more eagerly we execute the
//! subplan. … The pace configuration P_1 = (1, 1, …, 1) represents the batch
//! execution for all subplans."

use ishare_common::{Error, Result, SubplanId};
use ishare_plan::SharedPlan;
use std::fmt;

/// One pace per subplan, positionally aligned with
/// [`SharedPlan::subplans`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PaceConfiguration {
    paces: Vec<u32>,
}

impl PaceConfiguration {
    /// Batch execution: every subplan at pace 1 (the paper's P_𝟙).
    pub fn batch(n: usize) -> Self {
        PaceConfiguration { paces: vec![1; n] }
    }

    /// Build from explicit paces (each must be ≥ 1).
    pub fn new(paces: Vec<u32>) -> Result<Self> {
        if let Some(&p) = paces.iter().find(|&&p| p == 0) {
            return Err(Error::InvalidConfig(format!("pace {p} must be >= 1")));
        }
        Ok(PaceConfiguration { paces })
    }

    /// Number of subplans covered.
    pub fn len(&self) -> usize {
        self.paces.len()
    }

    /// `true` iff covering zero subplans.
    pub fn is_empty(&self) -> bool {
        self.paces.is_empty()
    }

    /// Pace of one subplan.
    pub fn pace(&self, id: SubplanId) -> u32 {
        self.paces[id.index()]
    }

    /// Raw slice (what the estimator consumes).
    pub fn as_slice(&self) -> &[u32] {
        &self.paces
    }

    /// Copy with one subplan's pace replaced (the paper's P_[pᵢ\pᵢ+1]).
    pub fn with_pace(&self, id: SubplanId, pace: u32) -> Self {
        let mut paces = self.paces.clone();
        paces[id.index()] = pace;
        PaceConfiguration { paces }
    }

    /// Set a pace in place.
    pub fn set(&mut self, id: SubplanId, pace: u32) {
        self.paces[id.index()] = pace;
    }

    /// `true` iff `self` is *eagerer than* `other`: no pace smaller, at
    /// least one larger (the precondition of Eq. 1).
    pub fn eagerer_than(&self, other: &PaceConfiguration) -> bool {
        self.paces.len() == other.paces.len()
            && self.paces.iter().zip(&other.paces).all(|(a, b)| a >= b)
            && self.paces.iter().zip(&other.paces).any(|(a, b)| a > b)
    }

    /// Check the engine requirement that a parent subplan's pace never
    /// exceeds its children's (a parent cannot consume faster than the
    /// child materializes).
    pub fn respects_plan(&self, plan: &SharedPlan) -> Result<()> {
        if self.paces.len() != plan.len() {
            return Err(Error::InvalidConfig(format!(
                "{} paces for {} subplans",
                self.paces.len(),
                plan.len()
            )));
        }
        for sp in &plan.subplans {
            for c in sp.children() {
                if self.pace(sp.id) > self.pace(c) {
                    return Err(Error::InvalidConfig(format!(
                        "parent {} pace {} exceeds child {} pace {}",
                        sp.id,
                        self.pace(sp.id),
                        c,
                        self.pace(c)
                    )));
                }
            }
        }
        Ok(())
    }

    /// `true` iff every pace has reached `max_pace`.
    pub fn maxed(&self, max_pace: u32) -> bool {
        self.paces.iter().all(|&p| p >= max_pace)
    }
}

impl fmt::Display for PaceConfiguration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.paces.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let p = PaceConfiguration::batch(3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.pace(SubplanId(2)), 1);
        assert!(PaceConfiguration::new(vec![1, 0]).is_err());
        let p2 = p.with_pace(SubplanId(1), 5);
        assert_eq!(p2.pace(SubplanId(1)), 5);
        assert_eq!(p.pace(SubplanId(1)), 1, "with_pace is non-destructive");
        assert_eq!(p2.to_string(), "(1, 5, 1)");
    }

    #[test]
    fn eagerness_ordering() {
        let base = PaceConfiguration::batch(3);
        let e = base.with_pace(SubplanId(0), 2);
        assert!(e.eagerer_than(&base));
        assert!(!base.eagerer_than(&e));
        assert!(!base.eagerer_than(&base), "equal is not eagerer");
        let mixed = base.with_pace(SubplanId(0), 2).with_pace(SubplanId(1), 1);
        let other = base.with_pace(SubplanId(1), 2);
        assert!(!mixed.eagerer_than(&other), "incomparable configs");
    }

    #[test]
    fn maxed() {
        let p = PaceConfiguration::new(vec![5, 5]).unwrap();
        assert!(p.maxed(5));
        assert!(!p.maxed(6));
        assert!(PaceConfiguration::batch(0).maxed(100), "vacuously maxed");
    }
}
