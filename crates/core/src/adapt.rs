//! Online re-optimization: feed measured runtime statistics back into the
//! pace search at wavefront boundaries.
//!
//! The static optimizer picks paces from *catalog* statistics. When the live
//! stream drifts from those estimates — more rows than the catalog promised,
//! or an unexpected delete/update mix — the chosen paces may blow the very
//! final-work constraints they were selected to meet. [`AdaptController`]
//! closes the loop: the stream drivers hand it one [`WavefrontObservation`]
//! per committed wavefront, it measures drift between observed and estimated
//! base-stream statistics, and when drift crosses a threshold (with
//! hysteresis, so one noisy front cannot cause pace thrash) it refreshes the
//! estimator's base stats ([`ishare_cost::PlanEstimator::refresh_base`],
//! which keeps every memoized simulation the change cannot affect) and
//! re-runs [`find_pace_configuration`] under the *residual* constraints
//! `R(q) = max(0, L(q) − charged_final(q))`.
//!
//! Everything the controller consumes is deterministic — charged work units,
//! delivered/deleted record counts, exact arrival fractions — never
//! wall-clock time. Re-running the same stream therefore re-derives the
//! identical switch sequence, which is what lets killed-and-resumed runs and
//! parallel runs stay bit-identical to sequential ones (wall time is used
//! only for the `reopt_time` metric, which is observability, not input).

use crate::baselines::PlannedExecution;
use crate::constraint::ConstraintMap;
use crate::pace::PaceConfiguration;
use crate::pace_search::find_pace_configuration;
use ishare_common::{CostWeights, Error, QueryId, Result, TableId};
use ishare_cost::{ObservedBase, PlanEstimator};
use ishare_plan::SharedPlan;
use ishare_storage::Catalog;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Knobs for the re-optimization trigger rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptOptions {
    /// Relative drift at or above which a re-optimization fires (when
    /// armed). `f64::INFINITY` disables adaptation entirely — the
    /// controller still tallies drift metrics but never re-plans.
    pub drift_threshold: f64,
    /// After a switch, the controller re-arms only once drift (against the
    /// *refreshed* stats) falls below `drift_threshold * rearm_ratio`.
    /// This is the hysteresis band that prevents pace thrash.
    pub rearm_ratio: f64,
    /// Wavefronts to skip entirely after a switch before evaluating the
    /// trigger again (lets the refreshed estimate settle).
    pub cooldown_fronts: usize,
    /// Hard cap on the number of pace switches per run.
    pub max_switches: usize,
    /// Maximum pace handed to the re-entrant pace search.
    pub max_pace: u32,
    /// Fraction of each residual budget the re-optimization actually
    /// targets, in `(0, 1]`. The cost model that mispredicted badly enough
    /// to trigger adaptation cannot be trusted to land exactly on the
    /// budget either, so the search aims below it and the slack absorbs the
    /// residual estimate-vs-measured error. `1.0` targets the full budget.
    pub headroom: f64,
}

impl Default for AdaptOptions {
    fn default() -> Self {
        AdaptOptions {
            drift_threshold: 0.25,
            rearm_ratio: 0.5,
            cooldown_fronts: 1,
            max_switches: 8,
            max_pace: 100,
            headroom: 0.8,
        }
    }
}

impl AdaptOptions {
    /// Options that never trigger: drift is still measured (metrics), but no
    /// re-optimization ever runs. Used by the adaptation-invariance tests.
    pub fn disabled() -> Self {
        AdaptOptions { drift_threshold: f64::INFINITY, ..AdaptOptions::default() }
    }

    fn validate(&self) -> Result<()> {
        if self.drift_threshold.is_nan() || self.drift_threshold < 0.0 {
            return Err(Error::InvalidConfig(format!(
                "drift_threshold must be >= 0 (or +inf to disable), got {}",
                self.drift_threshold
            )));
        }
        if !(0.0..=1.0).contains(&self.rearm_ratio) {
            return Err(Error::InvalidConfig(format!(
                "rearm_ratio must be in [0, 1], got {}",
                self.rearm_ratio
            )));
        }
        if self.max_pace == 0 {
            return Err(Error::InvalidConfig("max_pace must be >= 1".into()));
        }
        if !(self.headroom > 0.0 && self.headroom <= 1.0) {
            return Err(Error::InvalidConfig(format!(
                "headroom must be in (0, 1], got {}",
                self.headroom
            )));
        }
        Ok(())
    }
}

/// Cumulative per-base-table delivery counts, as tallied by the driver's
/// feed path up to (and including) the current wavefront.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedTable {
    /// Which base stream.
    pub table: TableId,
    /// Gross delta records delivered so far (inserts + deletes).
    pub delivered: u64,
    /// Deletion records among `delivered`.
    pub deletes: u64,
}

/// Everything the controller is allowed to see about one committed
/// wavefront. All fields are deterministic functions of the input stream and
/// the schedule — no wall-clock quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct WavefrontObservation {
    /// Zero-based wavefront index.
    pub wavefront: usize,
    /// Arrival fraction numerator of this wavefront's ticks.
    pub num: u32,
    /// Arrival fraction denominator of this wavefront's ticks.
    pub den: u32,
    /// Per-query final work already charged (work of executed final ticks of
    /// that query's subplans). Under iShare scheduling every final tick has
    /// fraction 1 and so sits in the last wavefront; at any adapt-eligible
    /// front this is therefore zero, but the controller still subtracts it
    /// so the residual-budget math stays honest if schedules ever change.
    pub charged_final: BTreeMap<QueryId, f64>,
    /// Cumulative delivery tallies per base table.
    pub tables: Vec<ObservedTable>,
}

/// One recorded pace switch. Contains only deterministic fields, so replayed
/// runs can compare switch logs bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct PaceSwitch {
    /// Wavefront after which the switch takes effect.
    pub wavefront: usize,
    /// Arrival fraction numerator at the trigger point.
    pub num: u32,
    /// Arrival fraction denominator at the trigger point.
    pub den: u32,
    /// Measured drift that fired the trigger.
    pub drift: f64,
    /// Paces in effect before the switch.
    pub from: Vec<u32>,
    /// Paces installed by the switch.
    pub to: Vec<u32>,
    /// Whether the re-run search believes the residual constraints are met.
    pub feasible: bool,
    /// Pace-search steps the re-optimization took.
    pub steps: usize,
}

/// Residual budgets the controller computed at one observed wavefront:
/// `R(q) = headroom · max(0, L(q) − charged_final(q))`, recorded for *every*
/// observation (including final fronts and fronts that did not trigger).
/// Purely deterministic, so the observability layer's slack ledger can be
/// checked `to_bits`-equal against it.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontResiduals {
    /// Zero-based wavefront index of the observation.
    pub wavefront: usize,
    /// Arrival fraction numerator at the observation.
    pub num: u32,
    /// Arrival fraction denominator at the observation.
    pub den: u32,
    /// Residual budget per query.
    pub residuals: ConstraintMap,
}

/// Counters and gauges the controller accumulates; surfaced as `adapt.*`
/// metrics by the observability layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdaptMetrics {
    /// Wavefront observations evaluated.
    pub evaluations: u64,
    /// Times the trigger rule fired (a re-optimization ran).
    pub triggers: u64,
    /// Times a re-optimization actually changed the paces.
    pub switches: u64,
    /// Largest drift seen across the run.
    pub max_drift: f64,
    /// Wall time spent inside re-optimizations (observability only — never
    /// an input to any decision).
    pub reopt_time: Duration,
}

/// The online re-optimization controller. Owns a [`PlanEstimator`] (with its
/// memo) across the whole run so consecutive re-optimizations reuse every
/// simulation that drift did not invalidate.
pub struct AdaptController {
    est: PlanEstimator,
    constraints: ConstraintMap,
    opts: AdaptOptions,
    paces: PaceConfiguration,
    armed: bool,
    cooldown: usize,
    switches: Vec<PaceSwitch>,
    residual_log: Vec<FrontResiduals>,
    metrics: AdaptMetrics,
}

impl AdaptController {
    /// Build a controller for `plan`, starting from `initial_paces` (the
    /// statically optimized configuration) and absolute final-work
    /// `constraints` L(q).
    pub fn new(
        plan: &SharedPlan,
        catalog: &Catalog,
        weights: CostWeights,
        initial_paces: &[u32],
        constraints: ConstraintMap,
        opts: AdaptOptions,
    ) -> Result<Self> {
        opts.validate()?;
        if initial_paces.len() != plan.len() {
            return Err(Error::InvalidConfig(format!(
                "initial paces cover {} subplans, plan has {}",
                initial_paces.len(),
                plan.len()
            )));
        }
        let est = PlanEstimator::new(plan, catalog, weights)?;
        let paces = PaceConfiguration::new(initial_paces.to_vec())?;
        Ok(AdaptController {
            est,
            constraints,
            opts,
            paces,
            armed: true,
            cooldown: 0,
            switches: Vec::new(),
            residual_log: Vec::new(),
            metrics: AdaptMetrics::default(),
        })
    }

    /// Convenience constructor from a static planning result.
    pub fn from_planned(
        planned: &PlannedExecution,
        catalog: &Catalog,
        weights: CostWeights,
        opts: AdaptOptions,
    ) -> Result<Self> {
        Self::new(
            &planned.plan,
            catalog,
            weights,
            planned.paces.as_slice(),
            planned.constraints.clone(),
            opts,
        )
    }

    /// Paces currently in effect.
    pub fn current_paces(&self) -> &[u32] {
        self.paces.as_slice()
    }

    /// The absolute constraints the controller protects.
    pub fn constraints(&self) -> &ConstraintMap {
        &self.constraints
    }

    /// The recorded switch log, in trigger order.
    pub fn switches(&self) -> &[PaceSwitch] {
        &self.switches
    }

    /// Residual budgets computed for every observed wavefront, in
    /// observation order (one entry per [`observe`](Self::observe) call).
    pub fn residual_log(&self) -> &[FrontResiduals] {
        &self.residual_log
    }

    /// Accumulated counters and gauges.
    pub fn metrics(&self) -> &AdaptMetrics {
        &self.metrics
    }

    /// Residual final-work budgets, scaled by the search headroom:
    /// `R(q) = headroom · max(0, L(q) − charged_final(q))`.
    pub fn residual_constraints(&self, charged_final: &BTreeMap<QueryId, f64>) -> ConstraintMap {
        self.constraints
            .iter()
            .map(|(q, l)| {
                let residual = (l - charged_final.get(q).copied().unwrap_or(0.0)).max(0.0);
                (*q, residual * self.opts.headroom)
            })
            .collect()
    }

    /// Largest relative error between the estimator's base-stream stats and
    /// the observation, maximized over tables and over (row count, delete
    /// fraction). Delivered counts are extrapolated to full-stream size by
    /// the exact arrival fraction `num/den`.
    fn drift_of(&self, obs: &WavefrontObservation) -> f64 {
        let mut worst: f64 = 0.0;
        for t in &obs.tables {
            let Some(est) = self.est.base_estimate(t.table) else { continue };
            let obs_rows = (t.delivered as f64) * (obs.den as f64) / (obs.num as f64);
            let row_err = (obs_rows - est.rows.total).abs() / est.rows.total.max(1.0);
            let obs_df = if t.delivered > 0 { t.deletes as f64 / t.delivered as f64 } else { 0.0 };
            let df_err = (obs_df - est.delete_frac).abs();
            worst = worst.max(row_err).max(df_err);
        }
        worst
    }

    /// Evaluate one committed wavefront. Returns `Some(new_paces)` when a
    /// re-optimization fired *and* changed the configuration — the driver
    /// must then reschedule the remaining ticks under the new paces.
    ///
    /// Decisions depend only on the observation and prior observations, so
    /// the switch sequence is a deterministic function of the stream.
    pub fn observe(&mut self, obs: &WavefrontObservation) -> Result<Option<Vec<u32>>> {
        self.metrics.evaluations += 1;
        self.residual_log.push(FrontResiduals {
            wavefront: obs.wavefront,
            num: obs.num,
            den: obs.den,
            residuals: self.residual_constraints(&obs.charged_final),
        });
        if obs.num == obs.den {
            // Final wavefront: nothing left to reschedule.
            return Ok(None);
        }
        let drift = self.drift_of(obs);
        if drift > self.metrics.max_drift {
            self.metrics.max_drift = drift;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return Ok(None);
        }
        if !self.armed {
            if drift <= self.opts.drift_threshold * self.opts.rearm_ratio {
                self.armed = true;
            }
            return Ok(None);
        }
        if drift < self.opts.drift_threshold || self.switches.len() >= self.opts.max_switches {
            return Ok(None);
        }

        // Trigger: fold the observation into the estimator, then re-run the
        // pace search under the residual budgets.
        self.metrics.triggers += 1;
        let started = Instant::now();
        for t in &obs.tables {
            if self.est.base_estimate(t.table).is_none() {
                continue;
            }
            let rows = (t.delivered as f64) * (obs.den as f64) / (obs.num as f64);
            let delete_frac =
                if t.delivered > 0 { t.deletes as f64 / t.delivered as f64 } else { 0.0 };
            self.est.refresh_base(t.table, ObservedBase { rows, delete_frac })?;
        }
        let residual = self.residual_constraints(&obs.charged_final);
        let outcome = find_pace_configuration(&mut self.est, &residual, self.opts.max_pace)?;
        self.metrics.reopt_time += started.elapsed();
        self.armed = false;
        self.cooldown = self.opts.cooldown_fronts;
        if outcome.paces == self.paces {
            return Ok(None);
        }
        self.switches.push(PaceSwitch {
            wavefront: obs.wavefront,
            num: obs.num,
            den: obs.den,
            drift,
            from: self.paces.as_slice().to_vec(),
            to: outcome.paces.as_slice().to_vec(),
            feasible: outcome.feasible,
            steps: outcome.steps,
        });
        self.metrics.switches += 1;
        self.paces = outcome.paces;
        Ok(Some(self.paces.as_slice().to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{DataType, QuerySet};
    use ishare_expr::Expr;
    use ishare_plan::{AggExpr, AggFunc, DagOp, SelectBranch, SharedDag};
    use ishare_storage::{ColumnStats, Field, Schema, TableStats};

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats {
                row_count: 20_000.0,
                columns: vec![ColumnStats::ndv(100.0), ColumnStats::ndv(5000.0)],
            },
        )
        .unwrap();
        c
    }

    /// Shared agg feeding two per-query projects (same shape as the
    /// pace-search fixture).
    fn shared_plan(c: &Catalog) -> SharedPlan {
        let t = c.table_by_name("t").unwrap().id;
        let mut d = SharedDag::new();
        let scan = d.add_node(DagOp::Scan { table: t }, vec![], qs(&[0, 1])).unwrap();
        let sel = d
            .add_node(
                DagOp::Select {
                    branches: vec![SelectBranch {
                        queries: qs(&[0, 1]),
                        predicate: Expr::true_lit(),
                    }],
                },
                vec![scan],
                qs(&[0, 1]),
            )
            .unwrap();
        let agg = d
            .add_node(
                DagOp::Aggregate {
                    group_by: vec![(Expr::col(0), "k".into())],
                    aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")],
                },
                vec![sel],
                qs(&[0, 1]),
            )
            .unwrap();
        let p0 = d
            .add_node(
                DagOp::Project { exprs: vec![(Expr::col(1), "a".into())] },
                vec![agg],
                qs(&[0]),
            )
            .unwrap();
        let p1 = d
            .add_node(
                DagOp::Project { exprs: vec![(Expr::col(0), "b".into())] },
                vec![agg],
                qs(&[1]),
            )
            .unwrap();
        d.set_query_root(QueryId(0), p0).unwrap();
        d.set_query_root(QueryId(1), p1).unwrap();
        SharedPlan::from_dag(&d, |_| false).unwrap()
    }

    /// Plan statically, then build a controller around the result.
    fn planned_controller(frac: f64, opts: AdaptOptions) -> (AdaptController, Vec<u32>, TableId) {
        let c = catalog();
        let plan = shared_plan(&c);
        let t = c.table_by_name("t").unwrap().id;
        let mut est = PlanEstimator::new(&plan, &c, CostWeights::default()).unwrap();
        let batch = est.estimate(&vec![1; plan.len()]).unwrap();
        let cons: ConstraintMap =
            [(QueryId(0), batch.final_of(QueryId(0)).get() * frac)].into_iter().collect();
        let out = find_pace_configuration(&mut est, &cons, 50).unwrap();
        let initial = out.paces.as_slice().to_vec();
        let ctrl =
            AdaptController::new(&plan, &c, CostWeights::default(), &initial, cons, opts).unwrap();
        (ctrl, initial, t)
    }

    /// An observation claiming `factor`× the cataloged rows at fraction 1/4.
    fn drifted_obs(table: TableId, factor: f64) -> WavefrontObservation {
        WavefrontObservation {
            wavefront: 0,
            num: 1,
            den: 4,
            charged_final: BTreeMap::new(),
            tables: vec![ObservedTable {
                table,
                delivered: (20_000.0 * factor / 4.0) as u64,
                deletes: 0,
            }],
        }
    }

    #[test]
    fn infinite_threshold_never_triggers() {
        let (mut ctrl, initial, t) = planned_controller(0.4, AdaptOptions::disabled());
        for wf in 0..3 {
            let mut obs = drifted_obs(t, 5.0);
            obs.wavefront = wf;
            assert_eq!(ctrl.observe(&obs).unwrap(), None);
        }
        assert_eq!(ctrl.metrics().triggers, 0);
        assert_eq!(ctrl.metrics().switches, 0);
        assert_eq!(ctrl.metrics().evaluations, 3);
        assert!(ctrl.metrics().max_drift > 3.0);
        assert_eq!(ctrl.current_paces(), &initial[..]);
    }

    #[test]
    fn drift_triggers_switch_to_eagerer_paces() {
        let (mut ctrl, initial, t) = planned_controller(0.4, AdaptOptions::default());
        let new = ctrl
            .observe(&drifted_obs(t, 4.0))
            .unwrap()
            .expect("4x row drift against a tight constraint must re-plan");
        assert_eq!(ctrl.metrics().triggers, 1);
        assert_eq!(ctrl.metrics().switches, 1);
        assert_eq!(ctrl.current_paces(), &new[..]);
        let sw = &ctrl.switches()[0];
        assert_eq!(sw.from, initial);
        assert_eq!(sw.to, new);
        assert!(sw.drift >= 2.9, "drift {} should be ~3", sw.drift);
        // More rows against the same absolute budget demands strictly more
        // incremental work somewhere.
        assert!(
            new.iter().zip(&initial).any(|(n, o)| n > o),
            "expected an eagerer pace: {initial:?} -> {new:?}"
        );
    }

    #[test]
    fn hysteresis_disarms_until_drift_subsides() {
        let (mut ctrl, _, t) = planned_controller(0.4, AdaptOptions::default());
        assert!(ctrl.observe(&drifted_obs(t, 4.0)).unwrap().is_some());
        // Cooldown front: skipped outright.
        let mut obs = drifted_obs(t, 4.0);
        obs.wavefront = 1;
        assert_eq!(ctrl.observe(&obs).unwrap(), None);
        // Disarmed: the refreshed stats make the same observation near-zero
        // drift, which re-arms but must not trigger on the same front.
        obs.wavefront = 2;
        assert_eq!(ctrl.observe(&obs).unwrap(), None);
        assert_eq!(ctrl.metrics().triggers, 1);
        // Re-armed now; a fresh drift spike triggers again.
        let mut spike = drifted_obs(t, 12.0);
        spike.wavefront = 3;
        let again = ctrl.observe(&spike).unwrap();
        assert_eq!(ctrl.metrics().triggers, 2);
        // The second search may or may not move paces further, but if it
        // did, the switch log must have recorded it.
        assert_eq!(ctrl.metrics().switches as usize, ctrl.switches().len());
        if let Some(p) = again {
            assert_eq!(ctrl.current_paces(), &p[..]);
        }
    }

    #[test]
    fn final_wavefront_is_never_evaluated() {
        let (mut ctrl, _, t) = planned_controller(0.4, AdaptOptions::default());
        let mut obs = drifted_obs(t, 8.0);
        obs.num = 4;
        obs.den = 4;
        assert_eq!(ctrl.observe(&obs).unwrap(), None);
        assert_eq!(ctrl.metrics().triggers, 0);
        assert_eq!(ctrl.metrics().evaluations, 1);
    }

    #[test]
    fn max_switches_caps_replanning() {
        let opts = AdaptOptions { max_switches: 1, cooldown_fronts: 0, ..AdaptOptions::default() };
        let (mut ctrl, _, t) = planned_controller(0.4, opts);
        assert!(ctrl.observe(&drifted_obs(t, 4.0)).unwrap().is_some());
        // Re-arm via a calm front, then spike again: capped, so no trigger.
        let mut calm = drifted_obs(t, 4.0);
        calm.wavefront = 1;
        assert_eq!(ctrl.observe(&calm).unwrap(), None);
        let mut spike = drifted_obs(t, 20.0);
        spike.wavefront = 2;
        assert_eq!(ctrl.observe(&spike).unwrap(), None);
        assert_eq!(ctrl.metrics().triggers, 1);
        assert_eq!(ctrl.metrics().switches, 1);
    }

    #[test]
    fn residual_constraints_subtract_charged_final_work() {
        let opts = AdaptOptions { headroom: 1.0, ..AdaptOptions::default() };
        let (ctrl, _, _) = planned_controller(0.4, opts);
        let l = *ctrl.constraints().values().next().unwrap();
        let charged: BTreeMap<QueryId, f64> =
            [(QueryId(0), l * 0.25), (QueryId(1), 123.0)].into_iter().collect();
        let residual = ctrl.residual_constraints(&charged);
        assert!((residual[&QueryId(0)] - l * 0.75).abs() < 1e-9);
        // Over-charged budgets clamp at zero rather than going negative.
        let over: BTreeMap<QueryId, f64> = [(QueryId(0), l * 2.0)].into_iter().collect();
        assert_eq!(ctrl.residual_constraints(&over)[&QueryId(0)], 0.0);
    }

    #[test]
    fn residual_log_records_every_observation() {
        let opts = AdaptOptions { headroom: 1.0, ..AdaptOptions::disabled() };
        let (mut ctrl, _, t) = planned_controller(0.4, opts);
        let l = *ctrl.constraints().values().next().unwrap();
        for wf in 0..3 {
            let mut obs = drifted_obs(t, 1.0);
            obs.wavefront = wf;
            obs.charged_final = [(QueryId(0), l * 0.1 * wf as f64)].into_iter().collect();
            if wf == 2 {
                // Final front: early-returns, but must still be logged.
                obs.num = 4;
                obs.den = 4;
            }
            ctrl.observe(&obs).unwrap();
        }
        let log = ctrl.residual_log();
        assert_eq!(log.len(), 3);
        for (wf, entry) in log.iter().enumerate() {
            assert_eq!(entry.wavefront, wf);
            let want = (l - l * 0.1 * wf as f64).max(0.0);
            assert_eq!(entry.residuals[&QueryId(0)].to_bits(), want.to_bits());
        }
        assert_eq!(log[2].num, 4);
        assert_eq!(log[2].den, 4);
    }

    #[test]
    fn invalid_options_are_rejected() {
        let c = catalog();
        let plan = shared_plan(&c);
        let mk = |opts: AdaptOptions| {
            AdaptController::new(
                &plan,
                &c,
                CostWeights::default(),
                &vec![1; plan.len()],
                ConstraintMap::new(),
                opts,
            )
        };
        assert!(mk(AdaptOptions { drift_threshold: f64::NAN, ..AdaptOptions::default() }).is_err());
        assert!(mk(AdaptOptions { drift_threshold: -0.5, ..AdaptOptions::default() }).is_err());
        assert!(mk(AdaptOptions { rearm_ratio: 1.5, ..AdaptOptions::default() }).is_err());
        assert!(mk(AdaptOptions { max_pace: 0, ..AdaptOptions::default() }).is_err());
        assert!(mk(AdaptOptions { headroom: 0.0, ..AdaptOptions::default() }).is_err());
        assert!(mk(AdaptOptions { headroom: f64::NAN, ..AdaptOptions::default() }).is_err());
        // Wrong pace arity.
        assert!(AdaptController::new(
            &plan,
            &c,
            CostWeights::default(),
            &[1],
            ConstraintMap::new(),
            AdaptOptions::default()
        )
        .is_err());
    }
}
