//! The evaluation's comparison systems (Sec. 5.2).
//!
//! | Approach | Plan | Paces |
//! |---|---|---|
//! | NoShare-Uniform | each query private | one pace knob per query |
//! | NoShare-Nonuniform | each query private, cut at blocking operators | one pace knob per subplan (prior work, Tang et al. 2020) |
//! | Share-Uniform | MQO shared plan(s) | one pace knob per connected shared plan |
//! | iShare (w/o unshare) | MQO shared plan | one pace knob per subplan |
//! | iShare (w/ unshare) | MQO shared plan + decomposition | one pace knob per subplan |
//! | iShare (Brute-Force) | like w/ unshare, exhaustive splits | — |
//!
//! Every approach resolves the same final work constraints and uses the same
//! cost model, so differences come from plan structure and pace freedom
//! only — exactly the paper's experimental control.

use crate::constraint::{
    batch_final_works, resolve_constraints, ConstraintMap, FinalWorkConstraint,
};
use crate::optimizer::{IShareOptimizer, IShareOptions};
use crate::pace::PaceConfiguration;
use crate::pace_search::{find_grouped_paces, find_pace_configuration};
use ishare_common::{CostWeights, QueryId, Result, SubplanId};
use ishare_cost::{CostReport, EstimatorCounters, PlanEstimator};
use ishare_mqo::{build_shared_dag, connected_components, normalize, MqoConfig};
use ishare_plan::{DagOp, LogicalPlan, SharedPlan};
use ishare_storage::Catalog;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// The comparison systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// Each query separate, one pace per query.
    NoShareUniform,
    /// Each query separate, nonuniform paces per blocking-operator part.
    NoShareNonuniform,
    /// Shared plan(s), one pace per connected shared plan.
    ShareUniform,
    /// iShare without the decomposition pass.
    IShareNoUnshare,
    /// Full iShare.
    IShare,
    /// iShare with brute-force split enumeration.
    IShareBruteForce,
    /// The "simple approach" the paper mentions and dismisses (Sec. 5.2):
    /// each query separate, one execution before the trigger point and a
    /// final one at it — i.e. pace 2 with an even split (this repo's pace
    /// model always splits evenly; the paper's tuned split point is not
    /// modeled).
    OneShot,
}

impl Approach {
    /// All approaches in the paper's presentation order.
    pub const ALL: [Approach; 7] = [
        Approach::NoShareUniform,
        Approach::NoShareNonuniform,
        Approach::ShareUniform,
        Approach::IShareNoUnshare,
        Approach::IShare,
        Approach::IShareBruteForce,
        Approach::OneShot,
    ];

    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Approach::NoShareUniform => "NoShare-Uniform",
            Approach::NoShareNonuniform => "NoShare-Nonuniform",
            Approach::ShareUniform => "Share-Uniform",
            Approach::IShareNoUnshare => "iShare (w/o unshare)",
            Approach::IShare => "iShare",
            Approach::IShareBruteForce => "iShare (Brute-Force)",
            Approach::OneShot => "OneShot",
        }
    }
}

/// A fully planned workload, ready for the paced runtime.
#[derive(Debug, Clone)]
pub struct PlannedExecution {
    /// The (possibly shared, possibly decomposed) plan.
    pub plan: SharedPlan,
    /// Chosen paces.
    pub paces: PaceConfiguration,
    /// Estimated costs at those paces.
    pub report: CostReport,
    /// Whether the cost model believes all constraints are met.
    pub feasible: bool,
    /// Resolved absolute constraints L(q).
    pub constraints: ConstraintMap,
    /// Per-query separate batch final work (the latency-goal denominators).
    pub batch_finals: BTreeMap<QueryId, f64>,
    /// Optimization wall time.
    pub opt_time: Duration,
    /// Estimator counters (simulations vs memo hits).
    pub estimator_counters: EstimatorCounters,
}

/// Common planning knobs.
#[derive(Debug, Clone)]
pub struct PlanningOptions {
    /// Pace cap.
    pub max_pace: u32,
    /// Partial decomposition for the iShare variants.
    pub partial: bool,
    /// Memoized estimation.
    pub use_memo: bool,
    /// Brute-force deadline.
    pub brute_deadline: Duration,
}

impl Default for PlanningOptions {
    fn default() -> Self {
        PlanningOptions {
            max_pace: 100,
            partial: true,
            use_memo: true,
            brute_deadline: Duration::from_secs(60),
        }
    }
}

/// Plan a workload under one approach.
pub fn plan_workload(
    approach: Approach,
    queries: &[(QueryId, LogicalPlan)],
    constraints: &BTreeMap<QueryId, FinalWorkConstraint>,
    catalog: &Catalog,
    opts: &PlanningOptions,
) -> Result<PlannedExecution> {
    let weights = CostWeights::default();
    match approach {
        Approach::IShare | Approach::IShareNoUnshare | Approach::IShareBruteForce => {
            let optimizer = IShareOptimizer {
                options: IShareOptions {
                    max_pace: opts.max_pace,
                    unshare: approach != Approach::IShareNoUnshare,
                    partial: opts.partial,
                    brute_force: approach == Approach::IShareBruteForce,
                    brute_deadline: opts.brute_deadline,
                    mqo: MqoConfig::default(),
                    use_memo: opts.use_memo,
                },
                weights,
            };
            optimizer.optimize(queries, constraints, catalog)
        }
        Approach::NoShareUniform => {
            plan_grouped(queries, constraints, catalog, opts, weights, false, GroupBy::Query)
        }
        Approach::NoShareNonuniform => {
            plan_nonuniform_noshare(queries, constraints, catalog, opts, weights)
        }
        Approach::ShareUniform => {
            plan_grouped(queries, constraints, catalog, opts, weights, true, GroupBy::Component)
        }
        Approach::OneShot => plan_oneshot(queries, constraints, catalog, weights),
    }
}

/// OneShot: queries separate, every subplan at pace 2 regardless of
/// constraints (the first execution happens mid-arrival, the final one at
/// the trigger point).
fn plan_oneshot(
    queries: &[(QueryId, LogicalPlan)],
    constraints: &BTreeMap<QueryId, FinalWorkConstraint>,
    catalog: &Catalog,
    weights: CostWeights,
) -> Result<PlannedExecution> {
    let start = Instant::now();
    let normalized: Vec<(QueryId, LogicalPlan)> =
        queries.iter().map(|(q, p)| (*q, normalize(p))).collect();
    let dag = build_shared_dag(&normalized, catalog, &MqoConfig::no_sharing())?;
    let plan = SharedPlan::from_dag(&dag, |_| false)?;
    plan.validate(catalog)?;
    let batch_finals = batch_final_works(&normalized, catalog, weights)?;
    let resolved = resolve_constraints(&normalized, constraints, catalog, weights)?;
    let paces = crate::pace::PaceConfiguration::new(vec![2; plan.len()])?;
    let mut est = PlanEstimator::new(&plan, catalog, weights)?;
    let report = est.estimate(paces.as_slice())?;
    let feasible = resolved.iter().all(|(q, l)| report.final_of(*q).get() <= *l + 1e-9);
    Ok(PlannedExecution {
        plan,
        paces,
        report,
        feasible,
        constraints: resolved,
        batch_finals,
        opt_time: start.elapsed(),
        estimator_counters: est.counters,
    })
}

enum GroupBy {
    /// One pace knob per query (NoShare-Uniform).
    Query,
    /// One pace knob per connected shared plan (Share-Uniform).
    Component,
}

fn plan_grouped(
    queries: &[(QueryId, LogicalPlan)],
    constraints: &BTreeMap<QueryId, FinalWorkConstraint>,
    catalog: &Catalog,
    opts: &PlanningOptions,
    weights: CostWeights,
    share: bool,
    group_by: GroupBy,
) -> Result<PlannedExecution> {
    let start = Instant::now();
    let normalized: Vec<(QueryId, LogicalPlan)> =
        queries.iter().map(|(q, p)| (*q, normalize(p))).collect();
    let mqo = if share { MqoConfig::default() } else { MqoConfig::no_sharing() };
    let dag = build_shared_dag(&normalized, catalog, &mqo)?;
    let plan = SharedPlan::from_dag(&dag, |_| false)?;
    plan.validate(catalog)?;

    let batch_finals = batch_final_works(&normalized, catalog, weights)?;
    let resolved = resolve_constraints(&normalized, constraints, catalog, weights)?;

    // Build the pace-knob groups.
    let groups: Vec<Vec<SubplanId>> = match group_by {
        GroupBy::Query => normalized
            .iter()
            .map(|(q, _)| plan.subplans_of_query(*q))
            .filter(|g| !g.is_empty())
            .collect(),
        GroupBy::Component => connected_components(&plan)
            .into_iter()
            .map(|comp| {
                plan.subplans
                    .iter()
                    .filter(|sp| sp.queries.intersects(comp))
                    .map(|sp| sp.id)
                    .collect()
            })
            .collect(),
    };

    let mut est = PlanEstimator::new(&plan, catalog, weights)?;
    est.set_memo_enabled(opts.use_memo);
    let outcome = find_grouped_paces(&mut est, &groups, &resolved, opts.max_pace)?;
    Ok(PlannedExecution {
        plan,
        paces: outcome.paces,
        report: outcome.report,
        feasible: outcome.feasible,
        constraints: resolved,
        batch_finals,
        opt_time: start.elapsed(),
        estimator_counters: est.counters,
    })
}

/// NoShare-Nonuniform: queries private, cut at blocking operators
/// (aggregates), free per-subplan paces — the prior-work baseline.
fn plan_nonuniform_noshare(
    queries: &[(QueryId, LogicalPlan)],
    constraints: &BTreeMap<QueryId, FinalWorkConstraint>,
    catalog: &Catalog,
    opts: &PlanningOptions,
    weights: CostWeights,
) -> Result<PlannedExecution> {
    let start = Instant::now();
    let normalized: Vec<(QueryId, LogicalPlan)> =
        queries.iter().map(|(q, p)| (*q, normalize(p))).collect();
    let dag = build_shared_dag(&normalized, catalog, &MqoConfig::no_sharing())?;
    // Cut at blocking operators: aggregates materialize, enabling
    // asymmetric paces within one query.
    let plan = SharedPlan::from_dag(&dag, |n| matches!(n.op, DagOp::Aggregate { .. }))?;
    plan.validate(catalog)?;

    let batch_finals = batch_final_works(&normalized, catalog, weights)?;
    let resolved = resolve_constraints(&normalized, constraints, catalog, weights)?;
    let mut est = PlanEstimator::new(&plan, catalog, weights)?;
    est.set_memo_enabled(opts.use_memo);
    let outcome = find_pace_configuration(&mut est, &resolved, opts.max_pace)?;
    Ok(PlannedExecution {
        plan,
        paces: outcome.paces,
        report: outcome.report,
        feasible: outcome.feasible,
        constraints: resolved,
        batch_finals,
        opt_time: start.elapsed(),
        estimator_counters: est.counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::DataType;
    use ishare_plan::PlanBuilder;
    use ishare_storage::{ColumnStats, Field, Schema, TableStats};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats {
                row_count: 20_000.0,
                columns: vec![
                    ColumnStats::ndv(100.0),
                    ColumnStats::with_range(
                        2000.0,
                        ishare_common::Value::Int(0),
                        ishare_common::Value::Int(1999),
                    ),
                ],
            },
        )
        .unwrap();
        c
    }

    /// Two structurally identical aggregates with different predicates —
    /// the canonical sharable pair.
    fn workload(c: &Catalog) -> Vec<(QueryId, LogicalPlan)> {
        let q0 = PlanBuilder::scan(c, "t")
            .unwrap()
            .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?]))
            .unwrap()
            .build();
        let q1 = PlanBuilder::scan(c, "t")
            .unwrap()
            .select(|x| Ok(x.col("v")?.lt(ishare_expr::Expr::lit(100i64))))
            .unwrap()
            .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?]))
            .unwrap()
            .build();
        vec![(QueryId(0), q0), (QueryId(1), q1)]
    }

    fn rel(frac: f64) -> BTreeMap<QueryId, FinalWorkConstraint> {
        [
            (QueryId(0), FinalWorkConstraint::Relative(frac)),
            (QueryId(1), FinalWorkConstraint::Relative(frac)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn all_approaches_plan_successfully() {
        let c = catalog();
        let qs = workload(&c);
        let cons = rel(0.5);
        let opts = PlanningOptions { max_pace: 20, ..Default::default() };
        for approach in Approach::ALL {
            let planned = plan_workload(approach, &qs, &cons, &c, &opts)
                .unwrap_or_else(|e| panic!("{}: {e}", approach.label()));
            if approach != Approach::OneShot {
                // OneShot ignores constraints by design.
                assert!(planned.feasible, "{} must meet 0.5 relative", approach.label());
            }
            planned.paces.respects_plan(&planned.plan).unwrap();
            assert!(planned.report.total_work.get() > 0.0);
        }
    }

    #[test]
    fn share_plans_share_noshare_plans_do_not() {
        let c = catalog();
        let qs = workload(&c);
        let cons = rel(1.0);
        let opts = PlanningOptions { max_pace: 10, ..Default::default() };
        let ns = plan_workload(Approach::NoShareUniform, &qs, &cons, &c, &opts).unwrap();
        assert!(ns.plan.subplans.iter().all(|sp| sp.queries.len() == 1));
        let su = plan_workload(Approach::ShareUniform, &qs, &cons, &c, &opts).unwrap();
        assert!(su.plan.subplans.iter().any(|sp| sp.queries.len() == 2));
        // Batch sharing saves work (Fig. 10's premise).
        assert!(su.report.total_work.get() < ns.report.total_work.get());
    }

    #[test]
    fn share_uniform_uses_one_pace_per_component() {
        let c = catalog();
        let qs = workload(&c);
        let cons = rel(0.2);
        let opts = PlanningOptions { max_pace: 50, ..Default::default() };
        let su = plan_workload(Approach::ShareUniform, &qs, &cons, &c, &opts).unwrap();
        // Single component → all subplans share one pace.
        let first = su.paces.as_slice()[0];
        assert!(su.paces.as_slice().iter().all(|&p| p == first));
        assert!(first > 1);
    }

    #[test]
    fn ishare_never_worse_than_share_uniform() {
        let c = catalog();
        let qs = workload(&c);
        for frac in [1.0, 0.5, 0.2] {
            let cons = rel(frac);
            let opts = PlanningOptions { max_pace: 50, ..Default::default() };
            let su = plan_workload(Approach::ShareUniform, &qs, &cons, &c, &opts).unwrap();
            let is = plan_workload(Approach::IShare, &qs, &cons, &c, &opts).unwrap();
            assert!(
                is.report.total_work.get() <= su.report.total_work.get() * 1.01,
                "frac {frac}: iShare {} vs Share-Uniform {}",
                is.report.total_work.get(),
                su.report.total_work.get()
            );
        }
    }

    #[test]
    fn nonuniform_noshare_has_more_knobs() {
        let c = catalog();
        let qs = workload(&c);
        let cons = rel(0.5);
        let opts = PlanningOptions { max_pace: 20, ..Default::default() };
        let uni = plan_workload(Approach::NoShareUniform, &qs, &cons, &c, &opts).unwrap();
        let non = plan_workload(Approach::NoShareNonuniform, &qs, &cons, &c, &opts).unwrap();
        assert!(non.plan.len() > uni.plan.len(), "blocking-operator cuts create more subplans");
        assert!(non.feasible && uni.feasible);
        // Note: nonuniform is NOT asserted cheaper here — cutting at
        // aggregates adds materialization buffers, which costs more at loose
        // constraints and pays off under tight ones (measured in the
        // experiment harness, Fig. 9/11).
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Approach::IShare.label(), "iShare");
        assert_eq!(Approach::ShareUniform.label(), "Share-Uniform");
        assert_eq!(Approach::ALL.len(), 7);
    }

    #[test]
    fn oneshot_uses_pace_two_everywhere() {
        let c = catalog();
        let qs = workload(&c);
        let planned =
            plan_workload(Approach::OneShot, &qs, &rel(0.5), &c, &PlanningOptions::default())
                .unwrap();
        assert!(planned.paces.as_slice().iter().all(|&p| p == 2));
        assert!(planned.plan.subplans.iter().all(|sp| sp.queries.len() == 1));
        // OneShot ignores constraints; with a tight one it is infeasible.
        let tight =
            plan_workload(Approach::OneShot, &qs, &rel(0.01), &c, &PlanningOptions::default())
                .unwrap();
        assert!(!tight.feasible);
    }
}
