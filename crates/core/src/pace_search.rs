//! Greedy pace-configuration search (Sec. 3.2) and its two variants.
//!
//! * [`find_pace_configuration`] — the iShare greedy: start from batch
//!   execution P_𝟙 and repeatedly raise the pace of the subplan with the
//!   highest incrementability until every query meets its constraint or all
//!   paces hit the max. Candidates violating the parent-pace ≤ child-pace
//!   requirement are filtered out.
//! * [`find_grouped_paces`] — the same greedy with *groups* of subplans
//!   sharing one pace knob: NoShare-Uniform (one group per query) and
//!   Share-Uniform (one group per connected shared plan) are exactly this.
//! * [`relax_pace_configuration`] — the decomposition follow-up (Sec. 4.2):
//!   start from an eager initial configuration and repeatedly *decrease* the
//!   pace of the subplan with the lowest incrementability — the one that
//!   lowers total work most per unit of final work given back — without
//!   regressing any query's missed work.

use crate::constraint::ConstraintMap;
use crate::incrementability::{benefit, incrementability};
use crate::pace::PaceConfiguration;
use ishare_common::{Error, Result, SubplanId};
use ishare_cost::{CostReport, PlanEstimator};
use std::cmp::Ordering;

/// Result of a pace search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The chosen configuration.
    pub paces: PaceConfiguration,
    /// Its cost report.
    pub report: CostReport,
    /// `true` iff every query meets its constraint under the cost model.
    pub feasible: bool,
    /// Greedy steps taken.
    pub steps: usize,
}

fn is_feasible(report: &CostReport, constraints: &ConstraintMap) -> bool {
    constraints.iter().all(|(q, l)| report.final_of(*q).get() <= *l + 1e-9)
}

/// Reject NaN constraints up front: every comparison downstream treats
/// "final work ≤ L + ε" as false for NaN, which would silently turn a
/// poisoned constraint into "unsatisfiable" (upward search) or "always
/// admissible" (relaxation's `(x − NaN).max(0.0) == 0`).
fn check_constraints(constraints: &ConstraintMap) -> Result<()> {
    for (q, l) in constraints {
        if l.is_nan() {
            return Err(Error::InvalidConfig(format!("NaN final-work constraint for {q}")));
        }
    }
    Ok(())
}

/// Candidate ordering for the upward search: highest incrementability wins,
/// ties broken by least extra total work. NaN-safe — a candidate with a NaN
/// cost never wins (total_cmp alone would rank NaN above +∞), and any
/// non-NaN candidate displaces a NaN incumbent.
pub(crate) fn upward_better(cand: (f64, f64), best: Option<(f64, f64)>) -> bool {
    let (inc, extra) = cand;
    if inc.is_nan() || extra.is_nan() {
        return false;
    }
    match best {
        None => true,
        Some((bi, be)) => {
            if bi.is_nan() || be.is_nan() {
                return true;
            }
            match inc.total_cmp(&bi) {
                Ordering::Greater => true,
                Ordering::Equal => extra.total_cmp(&be).is_lt(),
                Ordering::Less => false,
            }
        }
    }
}

/// Candidate ordering for the lazy-ward relaxation: lowest incrementability
/// wins, ties broken by most total work saved. Same NaN policy as
/// [`upward_better`].
pub(crate) fn relax_better(cand: (f64, f64), best: Option<(f64, f64)>) -> bool {
    let (inc, saved) = cand;
    if inc.is_nan() || saved.is_nan() {
        return false;
    }
    match best {
        None => true,
        Some((bi, bs)) => {
            if bi.is_nan() || bs.is_nan() {
                return true;
            }
            match inc.total_cmp(&bi) {
                Ordering::Less => true,
                Ordering::Equal => saved.total_cmp(&bs).is_gt(),
                Ordering::Greater => false,
            }
        }
    }
}

/// The iShare greedy (one pace knob per subplan).
pub fn find_pace_configuration(
    est: &mut PlanEstimator,
    constraints: &ConstraintMap,
    max_pace: u32,
) -> Result<SearchOutcome> {
    let n = est.plan().len();
    let groups: Vec<Vec<SubplanId>> = (0..n).map(|i| vec![SubplanId(i as u32)]).collect();
    grouped_search(est, &groups, constraints, max_pace)
}

/// [`find_pace_configuration`] for a runtime that executes every subplan
/// with `partitions`-way intra-subplan data parallelism (the exchange of
/// DESIGN.md §12).
///
/// Under a balanced P-way exchange the per-query latency proxy becomes the
/// critical-path final work `final / P`, not the charged total, so a latency
/// constraint `final / P ≤ L` is equivalent to `final ≤ L·P`: each limit is
/// scaled by the partition count and the ordinary greedy runs unchanged.
/// More partitions therefore admit lazier (cheaper-in-total-work) pace
/// configurations — the search never needs to know about the exchange
/// beyond the effective per-subplan cost division. `partitions == 1` is
/// exactly [`find_pace_configuration`]; `0` is rejected.
pub fn find_pace_configuration_partitioned(
    est: &mut PlanEstimator,
    constraints: &ConstraintMap,
    max_pace: u32,
    partitions: usize,
) -> Result<SearchOutcome> {
    if partitions == 0 {
        return Err(Error::InvalidConfig("partition count must be at least 1".into()));
    }
    let scaled: ConstraintMap =
        constraints.iter().map(|(q, l)| (*q, l * partitions as f64)).collect();
    find_pace_configuration(est, &scaled, max_pace)
}

/// The grouped greedy: all subplans in a group move together.
pub fn find_grouped_paces(
    est: &mut PlanEstimator,
    groups: &[Vec<SubplanId>],
    constraints: &ConstraintMap,
    max_pace: u32,
) -> Result<SearchOutcome> {
    grouped_search(est, groups, constraints, max_pace)
}

fn grouped_search(
    est: &mut PlanEstimator,
    groups: &[Vec<SubplanId>],
    constraints: &ConstraintMap,
    max_pace: u32,
) -> Result<SearchOutcome> {
    check_constraints(constraints)?;
    let plan = est.plan().clone();
    let paces = PaceConfiguration::batch(plan.len());
    search_upward(est, &plan, groups, constraints, max_pace, paces)
}

/// The paper's greedy loop: raise the pace of the group with the highest
/// incrementability until every constraint is met or all paces are maxed.
///
/// Zero-benefit steps are taken too — they cross plateaus where a parent's
/// pace is blocked by its child's (raising the child alone buys nothing,
/// but unblocks the parent next step). To avoid pointlessly pumping
/// subplans of already-satisfied queries, zero-benefit candidates are
/// restricted to groups serving at least one unmet query.
fn search_upward(
    est: &mut PlanEstimator,
    plan: &ishare_plan::SharedPlan,
    groups: &[Vec<SubplanId>],
    constraints: &ConstraintMap,
    max_pace: u32,
    mut paces: PaceConfiguration,
) -> Result<SearchOutcome> {
    let mut report = est.estimate(paces.as_slice())?;
    let mut steps = 0;

    loop {
        if is_feasible(&report, constraints) || paces.maxed(max_pace) {
            break;
        }
        let unmet: ishare_common::QuerySet = constraints
            .iter()
            .filter(|(q, l)| report.final_of(**q).get() > **l + 1e-9)
            .map(|(q, _)| *q)
            .collect();
        // Evaluate one candidate per group: bump every member by one.
        let mut best: Option<(f64, f64, PaceConfiguration, CostReport)> = None;
        for g in groups {
            if g.iter().any(|id| paces.pace(*id) >= max_pace) {
                continue;
            }
            let serves_unmet =
                g.iter().any(|id| plan.subplans[id.index()].queries.intersects(unmet));
            if !serves_unmet {
                continue;
            }
            let mut cand = paces.clone();
            for &id in g {
                cand.set(id, cand.pace(id) + 1);
            }
            if cand.respects_plan(plan).is_err() {
                continue;
            }
            let cand_report = est.estimate(cand.as_slice())?;
            debug_assert!(
                cand_report.total_work.get().is_finite(),
                "non-finite estimated total work for {cand}"
            );
            let inc = incrementability(&cand_report, &report, constraints);
            let extra = cand_report.total_work.get() - report.total_work.get();
            if upward_better((inc, extra), best.as_ref().map(|(bi, be, _, _)| (*bi, *be))) {
                best = Some((inc, extra, cand, cand_report));
            }
        }
        match best {
            Some((_, _, cand, cand_report)) => {
                paces = cand;
                report = cand_report;
                steps += 1;
            }
            // Every group is maxed or blocked: nothing left to try.
            None => break,
        }
    }
    let feasible = is_feasible(&report, constraints);
    Ok(SearchOutcome { paces, report, feasible, steps })
}

/// The decomposition follow-up: lazy-ward relaxation from an eager initial
/// configuration. A candidate decrease is admissible iff it reduces total
/// work, keeps the parent ≤ child requirement, and does not increase any
/// query's *missed* final work relative to the initial configuration
/// (feasible stays feasible; already-missed stays no-worse).
pub fn relax_pace_configuration(
    est: &mut PlanEstimator,
    constraints: &ConstraintMap,
    init: PaceConfiguration,
    max_pace: u32,
) -> Result<SearchOutcome> {
    check_constraints(constraints)?;
    let plan = est.plan().clone();
    let mut paces = init;
    let mut report = est.estimate(paces.as_slice())?;
    let mut steps = 0;

    // If the initial configuration misses constraints, try to repair by
    // increasing first (the regenerated plan's costs differ slightly from
    // the donor configuration's).
    if !is_feasible(&report, constraints) {
        let repaired =
            grouped_search_from(est, constraints, max_pace, paces.clone(), report.clone())?;
        paces = repaired.paces;
        report = repaired.report;
        steps += repaired.steps;
    }

    let missed_budget: Vec<(ishare_common::QueryId, f64)> =
        constraints.iter().map(|(q, l)| (*q, (report.final_of(*q).get() - l).max(0.0))).collect();

    loop {
        let mut best: Option<(f64, f64, PaceConfiguration, CostReport)> = None;
        for i in 0..plan.len() {
            let id = SubplanId(i as u32);
            let p = paces.pace(id);
            if p <= 1 {
                continue;
            }
            let cand = paces.with_pace(id, p - 1);
            if cand.respects_plan(&plan).is_err() {
                continue;
            }
            let cand_report = est.estimate(cand.as_slice())?;
            let saved = report.total_work.get() - cand_report.total_work.get();
            // Zero-saving decreases are admissible too: a stateless parent's
            // total work is pace-independent, but lowering its pace unblocks
            // decreases of its children (parent pace ≤ child pace).
            if saved < -1e-9 {
                continue;
            }
            let admissible = missed_budget.iter().all(|(q, budget)| {
                let l = constraints.get(q).copied().unwrap_or(f64::INFINITY);
                let missed = (cand_report.final_of(*q).get() - l).max(0.0);
                missed <= budget + 1e-9
            });
            if !admissible {
                continue;
            }
            // Lowest incrementability of the eager side = best candidate to
            // relax: it pays the most total work for the least benefit.
            let inc = incrementability(&report, &cand_report, constraints);
            if relax_better((inc, saved), best.as_ref().map(|(bi, bs, _, _)| (*bi, *bs))) {
                best = Some((inc, saved, cand, cand_report));
            }
        }
        match best {
            Some((_, _, cand, cand_report)) => {
                paces = cand;
                report = cand_report;
                steps += 1;
            }
            None => break,
        }
    }
    let feasible = is_feasible(&report, constraints);
    Ok(SearchOutcome { paces, report, feasible, steps })
}

/// Increase-greedy starting from an arbitrary configuration (used to repair
/// infeasible initial configurations before relaxing).
fn grouped_search_from(
    est: &mut PlanEstimator,
    constraints: &ConstraintMap,
    max_pace: u32,
    paces: PaceConfiguration,
    _report: CostReport,
) -> Result<SearchOutcome> {
    let plan = est.plan().clone();
    let groups: Vec<Vec<SubplanId>> = (0..plan.len()).map(|i| vec![SubplanId(i as u32)]).collect();
    search_upward(est, &plan, &groups, constraints, max_pace, paces)
}

// `benefit` is re-exported at the crate root; keep the import used.
#[allow(unused_imports)]
use benefit as _benefit;

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{CostWeights, DataType, QueryId, QuerySet};
    use ishare_expr::Expr;
    use ishare_plan::{AggExpr, AggFunc, DagOp, SelectBranch, SharedDag, SharedPlan};
    use ishare_storage::{Catalog, ColumnStats, Field, Schema, TableStats};

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats {
                row_count: 20_000.0,
                columns: vec![ColumnStats::ndv(100.0), ColumnStats::ndv(5000.0)],
            },
        )
        .unwrap();
        c
    }

    /// Shared agg feeding two per-query projects (Fig. 2 shape, no join).
    fn shared_plan(c: &Catalog) -> SharedPlan {
        let t = c.table_by_name("t").unwrap().id;
        let mut d = SharedDag::new();
        let scan = d.add_node(DagOp::Scan { table: t }, vec![], qs(&[0, 1])).unwrap();
        let sel = d
            .add_node(
                DagOp::Select {
                    branches: vec![SelectBranch {
                        queries: qs(&[0, 1]),
                        predicate: Expr::true_lit(),
                    }],
                },
                vec![scan],
                qs(&[0, 1]),
            )
            .unwrap();
        let agg = d
            .add_node(
                DagOp::Aggregate {
                    group_by: vec![(Expr::col(0), "k".into())],
                    aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")],
                },
                vec![sel],
                qs(&[0, 1]),
            )
            .unwrap();
        let p0 = d
            .add_node(
                DagOp::Project { exprs: vec![(Expr::col(1), "a".into())] },
                vec![agg],
                qs(&[0]),
            )
            .unwrap();
        let p1 = d
            .add_node(
                DagOp::Project { exprs: vec![(Expr::col(0), "b".into())] },
                vec![agg],
                qs(&[1]),
            )
            .unwrap();
        d.set_query_root(QueryId(0), p0).unwrap();
        d.set_query_root(QueryId(1), p1).unwrap();
        SharedPlan::from_dag(&d, |_| false).unwrap()
    }

    fn constraints_rel(est: &mut PlanEstimator, fracs: &[(u16, f64)]) -> ConstraintMap {
        // Resolve relative constraints against this plan's own batch run.
        let batch = est.estimate(&vec![1; est.plan().len()]).unwrap();
        fracs.iter().map(|&(q, f)| (QueryId(q), batch.final_of(QueryId(q)).get() * f)).collect()
    }

    #[test]
    fn loose_constraints_stay_batch() {
        let c = catalog();
        let plan = shared_plan(&c);
        let mut est = PlanEstimator::new(&plan, &c, CostWeights::default()).unwrap();
        let cons = constraints_rel(&mut est, &[(0, 1.0), (1, 1.0)]);
        let out = find_pace_configuration(&mut est, &cons, 50).unwrap();
        assert!(out.feasible);
        assert_eq!(out.paces, PaceConfiguration::batch(plan.len()));
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn tight_constraints_raise_paces_and_meet() {
        let c = catalog();
        let plan = shared_plan(&c);
        let mut est = PlanEstimator::new(&plan, &c, CostWeights::default()).unwrap();
        let cons = constraints_rel(&mut est, &[(0, 0.2), (1, 0.2)]);
        let out = find_pace_configuration(&mut est, &cons, 100).unwrap();
        assert!(out.feasible, "0.2 relative must be reachable");
        assert!(out.steps > 0);
        assert!(out.paces.as_slice().iter().any(|&p| p > 1));
        out.paces.respects_plan(&plan).unwrap();
        // The batch configuration costs less total work.
        let batch = est.estimate(&vec![1; plan.len()]).unwrap();
        assert!(out.report.total_work.get() >= batch.total_work.get());
    }

    #[test]
    fn asymmetric_constraints_give_nonuniform_paces() {
        let c = catalog();
        let plan = shared_plan(&c);
        let mut est = PlanEstimator::new(&plan, &c, CostWeights::default()).unwrap();
        // q0 tight, q1 loose: q1's private project subplan must stay lazy.
        let cons = constraints_rel(&mut est, &[(0, 0.15), (1, 1.0)]);
        let out = find_pace_configuration(&mut est, &cons, 100).unwrap();
        assert!(out.feasible);
        let q1_root = plan.query_root(QueryId(1)).unwrap();
        assert_eq!(out.paces.pace(q1_root), 1, "nothing should eagerly run q1's private subplan");
    }

    #[test]
    fn parent_child_requirement_respected() {
        let c = catalog();
        let plan = shared_plan(&c);
        let mut est = PlanEstimator::new(&plan, &c, CostWeights::default()).unwrap();
        let cons = constraints_rel(&mut est, &[(0, 0.05), (1, 0.05)]);
        let out = find_pace_configuration(&mut est, &cons, 100).unwrap();
        out.paces.respects_plan(&plan).unwrap();
    }

    #[test]
    fn grouped_search_moves_groups_together() {
        let c = catalog();
        let plan = shared_plan(&c);
        let mut est = PlanEstimator::new(&plan, &c, CostWeights::default()).unwrap();
        let cons = constraints_rel(&mut est, &[(0, 0.2), (1, 0.2)]);
        // Single group: everything at one pace (Share-Uniform style).
        let all: Vec<SubplanId> = (0..plan.len()).map(|i| SubplanId(i as u32)).collect();
        let out = find_grouped_paces(&mut est, &[all], &cons, 100).unwrap();
        let first = out.paces.as_slice()[0];
        assert!(out.paces.as_slice().iter().all(|&p| p == first));
        assert!(out.feasible);
        assert!(first > 1);
    }

    #[test]
    fn partitions_admit_lazier_paces() {
        let c = catalog();
        let plan = shared_plan(&c);
        let mut est = PlanEstimator::new(&plan, &c, CostWeights::default()).unwrap();
        let cons = constraints_rel(&mut est, &[(0, 0.2), (1, 0.2)]);
        let p1 = find_pace_configuration_partitioned(&mut est, &cons, 100, 1).unwrap();
        let p4 = find_pace_configuration_partitioned(&mut est, &cons, 100, 4).unwrap();
        assert!(p1.feasible && p4.feasible);
        // P=1 is exactly the unpartitioned search.
        let base = find_pace_configuration(&mut est, &cons, 100).unwrap();
        assert_eq!(p1.paces, base.paces);
        // Dividing per-subplan cost by 4 must admit a lazier (cheaper in
        // total work) configuration than the sequential constraint allows.
        assert!(
            p4.report.total_work.get() < p1.report.total_work.get(),
            "4 partitions must buy laziness: {} vs {}",
            p4.report.total_work.get(),
            p1.report.total_work.get()
        );
        assert!(p4.paces.as_slice().iter().sum::<u32>() < p1.paces.as_slice().iter().sum::<u32>());
        // Zero partitions is a config error.
        assert!(find_pace_configuration_partitioned(&mut est, &cons, 100, 0).is_err());
    }

    #[test]
    fn relax_recovers_batch_when_constraints_loose() {
        let c = catalog();
        let plan = shared_plan(&c);
        let mut est = PlanEstimator::new(&plan, &c, CostWeights::default()).unwrap();
        let cons = constraints_rel(&mut est, &[(0, 1.0), (1, 1.0)]);
        let eager = PaceConfiguration::new(vec![8; plan.len()]).unwrap();
        let out = relax_pace_configuration(&mut est, &cons, eager, 100).unwrap();
        assert!(out.feasible);
        assert_eq!(
            out.paces,
            PaceConfiguration::batch(plan.len()),
            "everything relaxes back to batch"
        );
    }

    #[test]
    fn relax_keeps_constraints_met() {
        let c = catalog();
        let plan = shared_plan(&c);
        let mut est = PlanEstimator::new(&plan, &c, CostWeights::default()).unwrap();
        let cons = constraints_rel(&mut est, &[(0, 0.3), (1, 0.3)]);
        let eager = PaceConfiguration::new(vec![30; plan.len()]).unwrap();
        let relaxed = relax_pace_configuration(&mut est, &cons, eager.clone(), 100).unwrap();
        assert!(relaxed.feasible);
        let eager_report = est.estimate(eager.as_slice()).unwrap();
        assert!(
            relaxed.report.total_work.get() < eager_report.total_work.get(),
            "relaxation must save total work"
        );
    }

    #[test]
    fn nan_cost_cannot_win_a_search() {
        // Regression for the NaN-unsafe `inc > *bi` / `inc < *bi`
        // comparisons: NaN candidates must lose to everything in both
        // search directions, and finite candidates must displace a NaN
        // incumbent.
        // Upward (max inc, min extra):
        assert!(!upward_better((f64::NAN, 0.0), None));
        assert!(!upward_better((1.0, f64::NAN), None));
        assert!(!upward_better((f64::NAN, 0.0), Some((0.0, 0.0))));
        assert!(upward_better((0.0, 0.0), Some((f64::NAN, 0.0))));
        assert!(upward_better((f64::INFINITY, 5.0), Some((2.0, 0.0))));
        assert!(upward_better((2.0, 1.0), Some((2.0, 3.0))), "tie broken by less extra");
        assert!(!upward_better((2.0, 3.0), Some((2.0, 1.0))));
        // Relaxation (min inc, max saved):
        assert!(!relax_better((f64::NAN, 0.0), None));
        assert!(!relax_better((f64::NAN, 0.0), Some((f64::INFINITY, 0.0))));
        assert!(relax_better((f64::INFINITY, 0.0), Some((f64::NAN, 0.0))));
        assert!(relax_better((1.0, 0.0), Some((2.0, 9.0))));
        assert!(relax_better((2.0, 9.0), Some((2.0, 1.0))), "tie broken by more saved");
    }

    #[test]
    fn nan_constraints_rejected() {
        let c = catalog();
        let plan = shared_plan(&c);
        let mut est = PlanEstimator::new(&plan, &c, CostWeights::default()).unwrap();
        let cons: ConstraintMap =
            [(QueryId(0), f64::NAN), (QueryId(1), 10.0)].into_iter().collect();
        assert!(find_pace_configuration(&mut est, &cons, 10).is_err());
        let init = PaceConfiguration::batch(plan.len());
        assert!(relax_pace_configuration(&mut est, &cons, init, 10).is_err());
    }

    #[test]
    fn infeasible_constraints_reported() {
        let c = catalog();
        let plan = shared_plan(&c);
        let mut est = PlanEstimator::new(&plan, &c, CostWeights::default()).unwrap();
        // Absurd absolute constraints: unreachable even at max pace.
        let cons: ConstraintMap = [(QueryId(0), 0.001), (QueryId(1), 0.001)].into_iter().collect();
        let out = find_pace_configuration(&mut est, &cons, 8).unwrap();
        assert!(!out.feasible);
        // Search still terminates with sane paces.
        out.paces.respects_plan(&plan).unwrap();
    }
}
