//! Final work constraints (Sec. 2.1).
//!
//! "The final work constraint of a query can be specified as an absolute
//! number of units of work based on a cost model (i.e. absolute final work
//! constraint) or a relative value defined as the ratio between the final
//! work users want to achieve and the final work of separately executing the
//! query in one batch (i.e. relative final work constraint)."

use ishare_common::{CostWeights, QueryId, Result};
use ishare_cost::PlanEstimator;
use ishare_mqo::{build_shared_dag, MqoConfig};
use ishare_plan::{LogicalPlan, SharedPlan};
use ishare_storage::Catalog;
use std::collections::BTreeMap;

/// A per-query latency goal, expressed in cost-model work units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FinalWorkConstraint {
    /// Absolute bound on the query's final work.
    Absolute(f64),
    /// Fraction of the query's *batch* final work (executing the query
    /// separately in one batch). `Relative(1.0)` asks for batch latency;
    /// `Relative(0.1)` asks for a 10× lower final work.
    Relative(f64),
}

impl FinalWorkConstraint {
    /// Resolve against the query's batch final work.
    pub fn resolve(self, batch_final: f64) -> f64 {
        match self {
            FinalWorkConstraint::Absolute(w) => w,
            FinalWorkConstraint::Relative(r) => r * batch_final,
        }
    }
}

/// Resolved absolute constraints per query — L(q) in the paper's formulas.
pub type ConstraintMap = BTreeMap<QueryId, f64>;

/// Estimated batch final work per query: the cost of executing each query
/// separately in one batch (the denominator of relative constraints, and the
/// quantity the evaluation's latency goals are derived from).
pub fn batch_final_works(
    queries: &[(QueryId, LogicalPlan)],
    catalog: &Catalog,
    weights: CostWeights,
) -> Result<BTreeMap<QueryId, f64>> {
    let mut out = BTreeMap::new();
    for (q, plan) in queries {
        let normalized = ishare_mqo::normalize(plan);
        let dag = build_shared_dag(&[(*q, normalized)], catalog, &MqoConfig::no_sharing())?;
        let shared = SharedPlan::from_dag(&dag, |_| false)?;
        let mut est = PlanEstimator::new(&shared, catalog, weights)?;
        let report = est.estimate(&vec![1; shared.len()])?;
        out.insert(*q, report.final_of(*q).get());
    }
    Ok(out)
}

/// Resolve per-query constraints to absolute work bounds.
pub fn resolve_constraints(
    queries: &[(QueryId, LogicalPlan)],
    constraints: &BTreeMap<QueryId, FinalWorkConstraint>,
    catalog: &Catalog,
    weights: CostWeights,
) -> Result<ConstraintMap> {
    // Queries without an explicit constraint default to Relative(1.0), so a
    // missing entry also needs the batch baseline.
    let needs_batch = queries
        .iter()
        .any(|(q, _)| !matches!(constraints.get(q), Some(FinalWorkConstraint::Absolute(_))));
    let batch =
        if needs_batch { batch_final_works(queries, catalog, weights)? } else { BTreeMap::new() };
    let mut out = ConstraintMap::new();
    for (q, _) in queries {
        let c = constraints.get(q).copied().unwrap_or(FinalWorkConstraint::Relative(1.0));
        let base = batch.get(q).copied().unwrap_or(0.0);
        out.insert(*q, c.resolve(base));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::DataType;
    use ishare_plan::PlanBuilder;
    use ishare_storage::{ColumnStats, Field, Schema, TableStats};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats {
                row_count: 1000.0,
                columns: vec![ColumnStats::ndv(20.0), ColumnStats::ndv(500.0)],
            },
        )
        .unwrap();
        c
    }

    fn query(c: &Catalog) -> LogicalPlan {
        PlanBuilder::scan(c, "t")
            .unwrap()
            .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?]))
            .unwrap()
            .build()
    }

    #[test]
    fn resolve_forms() {
        assert_eq!(FinalWorkConstraint::Absolute(42.0).resolve(1000.0), 42.0);
        assert_eq!(FinalWorkConstraint::Relative(0.1).resolve(1000.0), 100.0);
    }

    #[test]
    fn batch_final_work_positive_and_scales() {
        let c = catalog();
        let qs = vec![(QueryId(0), query(&c))];
        let batch = batch_final_works(&qs, &c, CostWeights::default()).unwrap();
        assert!(batch[&QueryId(0)] > 0.0);
    }

    #[test]
    fn resolve_constraints_mixed() {
        let c = catalog();
        let qs = vec![(QueryId(0), query(&c)), (QueryId(1), query(&c))];
        let mut cons = BTreeMap::new();
        cons.insert(QueryId(0), FinalWorkConstraint::Relative(0.5));
        cons.insert(QueryId(1), FinalWorkConstraint::Absolute(7.0));
        let resolved = resolve_constraints(&qs, &cons, &c, CostWeights::default()).unwrap();
        let batch = batch_final_works(&qs, &c, CostWeights::default()).unwrap();
        assert!((resolved[&QueryId(0)] - 0.5 * batch[&QueryId(0)]).abs() < 1e-9);
        assert_eq!(resolved[&QueryId(1)], 7.0);
    }

    #[test]
    fn missing_constraint_defaults_to_relative_one() {
        let c = catalog();
        let qs = vec![(QueryId(0), query(&c))];
        let resolved =
            resolve_constraints(&qs, &BTreeMap::new(), &c, CostWeights::default()).unwrap();
        let batch = batch_final_works(&qs, &c, CostWeights::default()).unwrap();
        assert!((resolved[&QueryId(0)] - batch[&QueryId(0)]).abs() < 1e-9);
    }
}
