//! iShare's incrementability metric (Sec. 3.1, Eq. 1–2).
//!
//! Incrementability quantifies the cost-effectiveness of eager incremental
//! execution: reduced *missed* final work per unit of extra total work.
//! Unlike the single-query original, iShare's benefit is bounded by each
//! query's final work constraint — once a query meets its constraint,
//! making its subplans eagerer buys nothing:
//!
//! ```text
//! Benefit(P_A, P_B) = Σ_q max(0, C_F(P_B, q) − C'_F(P_A, q))
//!   where C'_F(P, q) = max(L(q), C_F(P, q))
//! InC(P_A, P_B) = Benefit(P_A, P_B) / (C_T(P_A) − C_T(P_B))
//! ```

use crate::constraint::ConstraintMap;
use ishare_cost::CostReport;

/// Eq. 1: the benefit of the eagerer configuration `new` over `old`.
pub fn benefit(new: &CostReport, old: &CostReport, constraints: &ConstraintMap) -> f64 {
    let mut total = 0.0;
    for (q, l) in constraints {
        let old_f = old.final_of(*q).get();
        let new_f = new.final_of(*q).get().max(*l);
        total += (old_f - new_f).max(0.0);
    }
    total
}

/// Eq. 2: benefit per extra unit of total work.
///
/// Degenerate denominators are mapped to the useful extremes: extra benefit
/// at no extra cost is infinitely incrementable; no benefit at no cost is
/// zero.
pub fn incrementability(new: &CostReport, old: &CostReport, constraints: &ConstraintMap) -> f64 {
    let b = benefit(new, old, constraints);
    let d = new.total_work.get() - old.total_work.get();
    if d <= f64::EPSILON {
        if b > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        b / d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{QueryId, WorkUnits};

    fn report(total: f64, finals: &[(u16, f64)]) -> CostReport {
        CostReport {
            total_work: WorkUnits(total),
            final_work: finals.iter().map(|&(q, w)| (QueryId(q), WorkUnits(w))).collect(),
            subplan_total: vec![],
            subplan_final: vec![],
            subplan_inputs: vec![],
            subplan_output: vec![],
        }
    }

    fn constraints(cs: &[(u16, f64)]) -> ConstraintMap {
        cs.iter().map(|&(q, l)| (QueryId(q), l)).collect()
    }

    #[test]
    fn benefit_counts_only_missed_work() {
        let old = report(100.0, &[(0, 50.0), (1, 80.0)]);
        let new = report(120.0, &[(0, 30.0), (1, 60.0)]);
        // L(q0)=40: reduction below 40 doesn't count → benefit 50-40=10.
        // L(q1)=10: full reduction counts → 80-60=20.
        let c = constraints(&[(0, 40.0), (1, 10.0)]);
        assert!((benefit(&new, &old, &c) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn met_constraints_yield_zero_benefit() {
        let old = report(100.0, &[(0, 5.0)]);
        let new = report(150.0, &[(0, 1.0)]);
        let c = constraints(&[(0, 10.0)]);
        assert_eq!(benefit(&new, &old, &c), 0.0);
        assert_eq!(incrementability(&new, &old, &c), 0.0);
    }

    #[test]
    fn regressions_clamped_at_zero() {
        // A query whose final work GREW contributes 0, not negative.
        let old = report(100.0, &[(0, 50.0), (1, 50.0)]);
        let new = report(120.0, &[(0, 70.0), (1, 40.0)]);
        let c = constraints(&[(0, 0.0), (1, 0.0)]);
        assert!((benefit(&new, &old, &c) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn incrementability_ratio_and_degenerates() {
        let old = report(100.0, &[(0, 50.0)]);
        let new = report(110.0, &[(0, 30.0)]);
        let c = constraints(&[(0, 0.0)]);
        assert!((incrementability(&new, &old, &c) - 2.0).abs() < 1e-9);
        // Free benefit → infinite.
        let free = report(100.0, &[(0, 30.0)]);
        assert_eq!(incrementability(&free, &old, &c), f64::INFINITY);
        // No benefit, no cost → zero.
        let same = report(100.0, &[(0, 50.0)]);
        assert_eq!(incrementability(&same, &old, &c), 0.0);
    }

    #[test]
    fn queries_missing_from_constraints_ignored() {
        let old = report(100.0, &[(0, 50.0), (9, 99.0)]);
        let new = report(110.0, &[(0, 40.0), (9, 1.0)]);
        let c = constraints(&[(0, 0.0)]);
        assert!((benefit(&new, &old, &c) - 10.0).abs() < 1e-9);
    }
}
