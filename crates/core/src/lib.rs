//! # ishare-core
//!
//! The paper's contribution: the iShare optimization framework for scheduled
//! queries with heterogeneous latency goals.
//!
//! Given a set of queries with the same trigger condition and per-query
//! *final work constraints* (Sec. 2.1), iShare minimizes *total work* while
//! meeting every constraint by:
//!
//! 1. **Nonuniform paces** ([`pace_search`], Sec. 3) — a greedy search that
//!    starts from batch execution and repeatedly raises the pace of the
//!    subplan with the highest [`mod@incrementability`] (Eq. 1–2), powered by
//!    the memoized cost estimator of `ishare-cost` (Algorithm 1).
//! 2. **Decomposition / un-sharing** ([`decompose`], Sec. 4) — a clustering
//!    algorithm over the *sharing benefit* metric (Eq. 4) that splits a
//!    shared subplan's query set into partitions executed at their own
//!    (lazier) paces, plus the plan regeneration that restores the engine's
//!    query-set subsumption requirement and the pace relaxation that
//!    exploits the slack the split created. Partial decomposition
//!    (Sec. 4.3) splits only a root-anchored subtree.
//! 3. **Full-plan application** ([`optimizer`], Sec. 4.4) — subplans are
//!    visited parents-first and each beneficial decomposition is adopted.
//! 4. **Online re-optimization** ([`adapt`]) — at wavefront boundaries the
//!    stream drivers feed measured delivery counts back into the cost
//!    stats; when drift crosses a threshold the pace search re-runs on the
//!    refreshed estimator (memo reuse) under residual final-work budgets.
//!
//! [`baselines`] implements every comparison system of the evaluation
//! (Sec. 5.2): NoShare-Uniform, NoShare-Nonuniform, Share-Uniform, iShare
//! with and without unsharing, and the brute-force decomposition variant.

#![warn(missing_docs)]

pub mod adapt;
pub mod baselines;
pub mod constraint;
pub mod decompose;
pub mod incrementability;
pub mod optimizer;
pub mod pace;
pub mod pace_search;

pub use adapt::{
    AdaptController, AdaptMetrics, AdaptOptions, FrontResiduals, ObservedTable, PaceSwitch,
    WavefrontObservation,
};
pub use baselines::{plan_workload, Approach, PlannedExecution, PlanningOptions};
pub use constraint::{resolve_constraints, ConstraintMap, FinalWorkConstraint};
pub use incrementability::{benefit, incrementability};
pub use optimizer::{IShareOptimizer, IShareOptions};
pub use pace::PaceConfiguration;
pub use pace_search::{
    find_grouped_paces, find_pace_configuration, find_pace_configuration_partitioned,
    relax_pace_configuration,
};
