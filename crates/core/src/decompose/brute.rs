//! Brute-force split enumeration (the `iShare (Brute-Force)` variant of
//! Sec. 5.4/5.5).
//!
//! Enumerates *every* set partition of the queries sharing a subplan
//! (Bell-number many), evaluating each partition at its selected pace, and
//! returns the split with the smallest local total work. A wall-clock
//! deadline makes the exponential blow-up observable instead of fatal —
//! Fig. 16 plots exactly this growth against the clustering algorithm.

use super::clustering::Split;
use super::local::{LocalProblem, PartitionMemo};
use ishare_common::{QueryId, QuerySet, Result};
use std::time::{Duration, Instant};

/// Outcome of a brute-force search.
#[derive(Debug, Clone, PartialEq)]
pub enum BruteOutcome {
    /// The optimal split found.
    Done(Split),
    /// The deadline expired before the enumeration finished (the paper's
    /// DNF marker); carries the number of splits evaluated.
    TimedOut(usize),
}

/// Enumerate all splits of the subplan's query set within `deadline`.
pub fn brute_force_split(problem: &LocalProblem<'_>, deadline: Duration) -> Result<BruteOutcome> {
    let queries: Vec<QueryId> = problem.subplan.queries.iter().collect();
    let n = queries.len();
    let start = Instant::now();
    let mut memo = PartitionMemo::new();
    let mut best: Option<Split> = None;
    let mut evaluated = 0usize;

    // Enumerate set partitions via restricted growth strings.
    let mut rgs = vec![0usize; n];
    loop {
        if start.elapsed() > deadline {
            return Ok(BruteOutcome::TimedOut(evaluated));
        }
        // Materialize the partition described by `rgs`.
        let blocks = rgs.iter().copied().max().unwrap_or(0) + 1;
        let mut parts: Vec<QuerySet> = vec![QuerySet::EMPTY; blocks];
        for (i, &b) in rgs.iter().enumerate() {
            parts[b].insert(queries[i]);
        }
        let mut total = 0.0;
        let mut with_paces = Vec::with_capacity(parts.len());
        for p in &parts {
            let eval = problem.eval_partition(*p, 1, &mut memo)?;
            total += eval.wpt;
            with_paces.push((*p, eval.pace));
        }
        evaluated += 1;
        // NaN-safe: a NaN total never wins, a finite one displaces a NaN.
        debug_assert!(!total.is_nan(), "NaN local total in brute-force split");
        let better = !total.is_nan()
            && best.as_ref().is_none_or(|b| b.local_total.is_nan() || total < b.local_total);
        if better {
            with_paces.sort_by_key(|(s, _)| s.min_query().map(|q| q.0).unwrap_or(u16::MAX));
            best = Some(Split { partitions: with_paces, local_total: total });
        }
        // Next restricted growth string.
        if !next_rgs(&mut rgs) {
            break;
        }
    }
    Ok(BruteOutcome::Done(best.expect("at least the trivial partition")))
}

/// Advance a restricted growth string; returns `false` after the last one.
/// RGS invariant: `rgs[0] = 0` and `rgs[i] ≤ max(rgs[0..i]) + 1`.
fn next_rgs(rgs: &mut [usize]) -> bool {
    let n = rgs.len();
    for i in (1..n).rev() {
        let max_prefix = rgs[..i].iter().copied().max().unwrap_or(0);
        if rgs[i] <= max_prefix {
            rgs[i] += 1;
            for v in rgs[i + 1..].iter_mut() {
                *v = 0;
            }
            return true;
        }
    }
    false
}

/// Number of set partitions of an `n`-set (Bell number) — used by the
/// optimization-overhead experiments to report search-space sizes.
pub fn bell_number(n: usize) -> u128 {
    // Bell triangle.
    let mut row = vec![1u128];
    for _ in 1..=n {
        let mut next = Vec::with_capacity(row.len() + 1);
        next.push(*row.last().expect("nonempty"));
        for &v in &row {
            let last = *next.last().expect("nonempty");
            next.push(last + v);
        }
        row = next;
    }
    row[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::clustering::cluster_split;
    use crate::decompose::local::tests::{inputs_for, shared_agg_subplan};
    use ishare_common::CostWeights;
    use ishare_cost::simulate::simulate_subplan;
    use std::collections::BTreeMap;

    #[test]
    fn rgs_enumerates_all_partitions() {
        // 4 elements → Bell(4) = 15 partitions.
        let mut rgs = vec![0; 4];
        let mut count = 1;
        while next_rgs(&mut rgs) {
            count += 1;
        }
        assert_eq!(count, 15);
        assert_eq!(bell_number(4), 15);
        assert_eq!(bell_number(0), 1);
        assert_eq!(bell_number(1), 1);
        assert_eq!(bell_number(10), 115_975);
    }

    #[test]
    fn brute_force_at_least_as_good_as_clustering() {
        let sp = shared_agg_subplan();
        let inputs = inputs_for(&sp, 5_000.0);
        let batch = simulate_subplan(&sp, 1, &inputs, &CostWeights::default()).unwrap();
        let mut cons: BTreeMap<ishare_common::QueryId, f64> = BTreeMap::new();
        cons.insert(ishare_common::QueryId(0), batch.private_final * 0.05);
        cons.insert(ishare_common::QueryId(1), batch.private_final * 2.0);
        cons.insert(ishare_common::QueryId(2), batch.private_final * 2.0);
        let prob = LocalProblem {
            subplan: &sp,
            inputs: &inputs,
            local_constraints: &cons,
            weights: CostWeights::default(),
            max_pace: 100,
        };
        let clustered = cluster_split(&prob).unwrap();
        match brute_force_split(&prob, Duration::from_secs(60)).unwrap() {
            BruteOutcome::Done(best) => {
                assert!(best.local_total <= clustered.local_total + 1e-9);
            }
            BruteOutcome::TimedOut(_) => panic!("3 queries cannot time out"),
        }
    }

    #[test]
    fn deadline_produces_dnf() {
        let sp = shared_agg_subplan();
        let inputs = inputs_for(&sp, 5_000.0);
        let cons: BTreeMap<ishare_common::QueryId, f64> =
            sp.queries.iter().map(|q| (q, f64::INFINITY)).collect();
        let prob = LocalProblem {
            subplan: &sp,
            inputs: &inputs,
            local_constraints: &cons,
            weights: CostWeights::default(),
            max_pace: 100,
        };
        match brute_force_split(&prob, Duration::ZERO).unwrap() {
            BruteOutcome::TimedOut(evaluated) => assert_eq!(evaluated, 0),
            BruteOutcome::Done(_) => panic!("zero deadline must DNF"),
        }
    }
}
