//! Decomposing shared subplans (Sec. 4).
//!
//! * [`local`] — the local optimization problem, selected paces, and local
//!   final work constraints (Sec. 4.1.1).
//! * [`clustering`] — the sharing-benefit clustering algorithm
//!   (Sec. 4.1.2, Eq. 4).
//! * [`brute`] — exhaustive split enumeration with a DNF deadline (the
//!   `iShare (Brute-Force)` variant).
//! * [`regenerate`](mod@regenerate) — plan regeneration and pace
//!   initialization (Sec. 4.2).
//! * [`partial`] — partial decomposition of root-anchored subtrees
//!   (Sec. 4.3).
//! * [`try_decompose_subplan`] — the per-subplan driver combining all of
//!   the above; `ishare-core::optimizer` applies it over the full plan in
//!   parent-to-child order (Sec. 4.4).

pub mod brute;
pub mod clustering;
pub mod local;
pub mod partial;
pub mod regenerate;

pub use brute::{bell_number, brute_force_split, BruteOutcome};
pub use clustering::{cluster_split, Split};
pub use local::{local_constraints_for_subplan, LocalProblem, PartitionEval};
pub use regenerate::{initial_paces, regenerate, Regenerated};

use crate::constraint::ConstraintMap;
use crate::pace::PaceConfiguration;
use crate::pace_search::{relax_pace_configuration, SearchOutcome};
use ishare_common::{CostWeights, QueryId, Result, SubplanId};
use ishare_cost::{CostReport, PlanEstimator};
use ishare_plan::SharedPlan;
use ishare_storage::Catalog;
use std::collections::BTreeMap;
use std::time::Duration;

/// Knobs for the decomposition driver.
#[derive(Debug, Clone)]
pub struct DecomposeOptions {
    /// Pace cap (shared with the pace search).
    pub max_pace: u32,
    /// Also try partial (subtree) decompositions.
    pub partial: bool,
    /// Use the brute-force split enumeration instead of clustering.
    pub brute_force: bool,
    /// DNF deadline for the brute-force enumeration.
    pub brute_deadline: Duration,
    /// Cap on the number of partial (subtree) candidates tried per subplan.
    /// Candidates are generated closest-to-root first, which is where the
    /// paper's BFS expansion finds its splits; deeper candidates cost a full
    /// clustering run each.
    pub max_partial_candidates: usize,
}

impl Default for DecomposeOptions {
    fn default() -> Self {
        DecomposeOptions {
            max_pace: 100,
            partial: true,
            brute_force: false,
            brute_deadline: Duration::from_secs(60),
            max_partial_candidates: 4,
        }
    }
}

/// A decomposition the driver judged profitable.
#[derive(Debug)]
pub struct Adopted {
    /// The regenerated plan.
    pub plan: SharedPlan,
    /// Its relaxed pace configuration and report.
    pub outcome: SearchOutcome,
}

/// Try to decompose `target` inside `plan`, currently paced by
/// `paces`/`report`. Returns the best profitable alternative, or `None`
/// when keeping the shared subplan is better.
#[allow(clippy::too_many_arguments)]
pub fn try_decompose_subplan(
    plan: &SharedPlan,
    paces: &PaceConfiguration,
    report: &CostReport,
    target: SubplanId,
    constraints: &ConstraintMap,
    batch_finals: &BTreeMap<QueryId, f64>,
    catalog: &Catalog,
    weights: CostWeights,
    opts: &DecomposeOptions,
) -> Result<Option<Adopted>> {
    let target_sp = plan.subplan(target)?;
    if target_sp.queries.len() < 2 {
        return Ok(None);
    }
    // A pace-1 subplan already executes maximally lazily; un-sharing it can
    // only duplicate scan work. (The decomposition exists to *enable*
    // laziness that sharing prevents — there is none to enable here.)
    if paces.pace(target) <= 1 {
        return Ok(None);
    }

    // The pace searches run with lightweight reports; re-estimate once with
    // the per-leaf input estimates the local problems need.
    let detailed = {
        let mut est = PlanEstimator::new(plan, catalog, weights)?;
        est.estimate_detailed(paces.as_slice())?
    };

    let mut best: Option<Adopted> = None;
    let consider = |cand: Adopted, best: &mut Option<Adopted>| {
        let better = match best {
            None => cand.outcome.report.total_work.get() < report.total_work.get() * (1.0 - 1e-6),
            Some(b) => {
                cand.outcome.report.total_work.get()
                    < b.outcome.report.total_work.get() * (1.0 - 1e-6)
            }
        };
        if better {
            *best = Some(cand);
        }
    };

    // Whole-subplan decomposition.
    if let Some(adopted) = evaluate_candidate(
        plan,
        paces,
        target,
        &detailed.subplan_inputs[target.index()],
        constraints,
        batch_finals,
        catalog,
        weights,
        opts,
    )? {
        consider(adopted, &mut best);
    }

    // Partial decompositions: split only a root-anchored subtree.
    if opts.partial {
        for included in
            partial::subtree_candidates(target_sp).into_iter().take(opts.max_partial_candidates)
        {
            let plan2 = partial::apply_split_to_plan(plan, target, &included)?;
            if plan2.validate(catalog).is_err() {
                continue;
            }
            // Pace the intermediate plan: old paces for old subplans; the
            // bottoms (appended at the end) inherit the target's pace.
            let mut paces2 = paces.as_slice().to_vec();
            paces2.extend(std::iter::repeat_n(paces.pace(target), plan2.len() - plan.len()));
            let paces2 = PaceConfiguration::new(paces2)?;
            let mut est2 = PlanEstimator::new(&plan2, catalog, weights)?;
            let report2 = est2.estimate_detailed(paces2.as_slice())?;
            if let Some(adopted) = evaluate_candidate(
                &plan2,
                &paces2,
                target,
                &report2.subplan_inputs[target.index()],
                constraints,
                batch_finals,
                catalog,
                weights,
                opts,
            )? {
                consider(adopted, &mut best);
            }
        }
    }
    Ok(best)
}

/// Evaluate decomposing `target` within `plan` (which may be an
/// intermediate partial-split plan): find a split, regenerate, re-pace,
/// and return the outcome if it validates.
#[allow(clippy::too_many_arguments)]
fn evaluate_candidate(
    plan: &SharedPlan,
    paces: &PaceConfiguration,
    target: SubplanId,
    inputs: &ishare_cost::LeafInputs,
    constraints: &ConstraintMap,
    batch_finals: &BTreeMap<QueryId, f64>,
    catalog: &Catalog,
    weights: CostWeights,
    opts: &DecomposeOptions,
) -> Result<Option<Adopted>> {
    let target_sp = plan.subplan(target)?;
    let local_cons =
        local_constraints_for_subplan(target_sp, inputs, constraints, batch_finals, weights)?;
    let problem = LocalProblem {
        subplan: target_sp,
        inputs,
        local_constraints: &local_cons,
        weights,
        max_pace: opts.max_pace,
    };
    let split = if opts.brute_force {
        match brute_force_split(&problem, opts.brute_deadline)? {
            BruteOutcome::Done(s) => s,
            BruteOutcome::TimedOut(_) => cluster_split(&problem)?,
        }
    } else {
        cluster_split(&problem)?
    };
    if split.is_trivial() {
        return Ok(None);
    }
    let partitions: Vec<_> = split.partitions.iter().map(|(s, _)| *s).collect();
    let reg = regenerate(plan, target, &partitions, catalog)?;
    let init = initial_paces(&reg, paces)?;
    let mut est = PlanEstimator::new(&reg.plan, catalog, weights)?;
    let outcome = relax_pace_configuration(&mut est, constraints, init, opts.max_pace)?;
    Ok(Some(Adopted { plan: reg.plan, outcome }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::resolve_constraints;
    use crate::constraint::FinalWorkConstraint;
    use crate::pace_search::find_pace_configuration;
    use ishare_common::{DataType, Value};
    use ishare_expr::Expr;
    use ishare_mqo::{build_shared_dag, normalize, MqoConfig};
    use ishare_plan::PlanBuilder;
    use ishare_storage::{ColumnStats, Field, Schema, TableStats};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
            TableStats {
                row_count: 30_000.0,
                columns: vec![
                    ColumnStats::ndv(40.0),
                    ColumnStats::with_range(2000.0, Value::Int(0), Value::Int(1999)),
                ],
            },
        )
        .unwrap();
        c
    }

    /// A broad lazy query and a selective tight one sharing a max-over-sum
    /// pipeline — the Fig. 2 / Q15 situation where un-sharing pays: the
    /// outer MAX sits on the inner aggregate's churny output, so forcing
    /// the shared subplan eager (for the tight query) costs rescans over
    /// the union of both queries' data.
    fn setup(c: &Catalog, tight_frac: f64) -> (SharedPlan, ConstraintMap, BTreeMap<QueryId, f64>) {
        let broad = normalize(
            &PlanBuilder::scan(c, "t")
                .unwrap()
                .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?]))
                .unwrap()
                .aggregate(&[], |x| Ok(vec![x.max("s", "m")?]))
                .unwrap()
                .build(),
        );
        let narrow = normalize(
            &PlanBuilder::scan(c, "t")
                .unwrap()
                .select(|x| Ok(x.col("v")?.lt(Expr::lit(40i64))))
                .unwrap()
                .aggregate(&["k"], |x| Ok(vec![x.sum("v", "s")?]))
                .unwrap()
                .aggregate(&[], |x| Ok(vec![x.max("s", "m")?]))
                .unwrap()
                .build(),
        );
        let queries = vec![(QueryId(0), broad), (QueryId(1), narrow)];
        let dag = build_shared_dag(&queries, c, &MqoConfig::default()).unwrap();
        let plan = SharedPlan::from_dag(&dag, |_| false).unwrap();
        let cons_in: BTreeMap<QueryId, FinalWorkConstraint> = [
            (QueryId(0), FinalWorkConstraint::Relative(1.0)),
            (QueryId(1), FinalWorkConstraint::Relative(tight_frac)),
        ]
        .into_iter()
        .collect();
        let weights = CostWeights::default();
        let resolved = resolve_constraints(&queries, &cons_in, c, weights).unwrap();
        let batch = crate::constraint::batch_final_works(&queries, c, weights).unwrap();
        (plan, resolved, batch)
    }

    fn shared_subplan(plan: &SharedPlan) -> SubplanId {
        plan.subplans
            .iter()
            .find(|sp| sp.queries.len() > 1)
            .map(|sp| sp.id)
            .expect("a shared subplan exists")
    }

    #[test]
    fn loose_constraints_keep_the_shared_plan() {
        let c = catalog();
        let (plan, cons, batch) = setup(&c, 1.0);
        let mut est = PlanEstimator::new(&plan, &c, CostWeights::default()).unwrap();
        let outcome = find_pace_configuration(&mut est, &cons, 50).unwrap();
        let target = shared_subplan(&plan);
        let adopted = try_decompose_subplan(
            &plan,
            &outcome.paces,
            &outcome.report,
            target,
            &cons,
            &batch,
            &c,
            CostWeights::default(),
            &DecomposeOptions { max_pace: 50, ..Default::default() },
        )
        .unwrap();
        assert!(adopted.is_none(), "batch execution leaves nothing to unshare");
    }

    #[test]
    fn tight_asymmetric_constraints_trigger_unsharing() {
        let c = catalog();
        let (plan, cons, batch) = setup(&c, 0.05);
        let mut est = PlanEstimator::new(&plan, &c, CostWeights::default()).unwrap();
        let outcome = find_pace_configuration(&mut est, &cons, 100).unwrap();
        let target = shared_subplan(&plan);
        let adopted = try_decompose_subplan(
            &plan,
            &outcome.paces,
            &outcome.report,
            target,
            &cons,
            &batch,
            &c,
            CostWeights::default(),
            &DecomposeOptions { max_pace: 100, ..Default::default() },
        )
        .unwrap();
        let adopted = adopted.expect("expected a profitable decomposition");
        assert!(
            adopted.outcome.report.total_work.get() < outcome.report.total_work.get(),
            "adopted {} vs original {}",
            adopted.outcome.report.total_work.get(),
            outcome.report.total_work.get()
        );
        adopted.plan.validate(&c).unwrap();
        adopted.outcome.paces.respects_plan(&adopted.plan).unwrap();
        // Both queries still have output subplans.
        assert!(adopted.plan.query_root(QueryId(0)).is_some());
        assert!(adopted.plan.query_root(QueryId(1)).is_some());
        // The decomposed plan keeps constraint satisfaction no worse.
        for (q, l) in &cons {
            let before = (outcome.report.final_of(*q).get() - l).max(0.0);
            let after = (adopted.outcome.report.final_of(*q).get() - l).max(0.0);
            assert!(after <= before + 1e-6, "query {q} missed work regressed");
        }
    }

    #[test]
    fn single_query_subplans_never_decompose() {
        let c = catalog();
        let (plan, cons, batch) = setup(&c, 0.1);
        let mut est = PlanEstimator::new(&plan, &c, CostWeights::default()).unwrap();
        let outcome = find_pace_configuration(&mut est, &cons, 20).unwrap();
        let private = plan.subplans.iter().find(|sp| sp.queries.len() == 1).map(|sp| sp.id);
        if let Some(target) = private {
            let adopted = try_decompose_subplan(
                &plan,
                &outcome.paces,
                &outcome.report,
                target,
                &cons,
                &batch,
                &c,
                CostWeights::default(),
                &DecomposeOptions::default(),
            )
            .unwrap();
            assert!(adopted.is_none());
        }
    }
}
