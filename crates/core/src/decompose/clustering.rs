//! The clustering algorithm and sharing benefit (Sec. 4.1.2).
//!
//! Bottom-up agglomerative clustering of the queries sharing a subplan:
//! start with singletons at their selected paces, repeatedly merge the pair
//! with the highest *sharing benefit*
//!
//! ```text
//! SharingBenefit(O_i, O_j) = W_PT(O_i, R*_i) + W_PT(O_j, R*_j) − W_PT(O_ij, R*_ij)
//! ```
//!
//! until no merge has positive benefit or a single partition remains. The
//! merged partition's selected-pace search starts from the larger of the two
//! old selected paces (monotonicity observation).

use super::local::{LocalProblem, PartitionEval, PartitionMemo};
use ishare_common::{QuerySet, Result};

/// A proposed split of a shared subplan.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Partitions with their selected paces (sorted by smallest member for
    /// determinism).
    pub partitions: Vec<(QuerySet, u32)>,
    /// Local total work of the split: Σ W_PT at the selected paces.
    pub local_total: f64,
}

impl Split {
    /// `true` iff this split keeps everything in one partition (i.e. no
    /// decomposition is proposed).
    pub fn is_trivial(&self) -> bool {
        self.partitions.len() <= 1
    }
}

/// `true` iff a merge with sharing benefit `b` beats the incumbent best.
/// NaN-safe: a NaN benefit never wins, and any non-NaN benefit displaces a
/// NaN incumbent — a poisoned cost cannot steer the clustering.
pub(crate) fn merge_better(b: f64, best: Option<f64>) -> bool {
    if b.is_nan() {
        return false;
    }
    match best {
        None => true,
        Some(bb) => bb.is_nan() || b.total_cmp(&bb).is_gt(),
    }
}

/// Run the clustering algorithm for one local problem.
pub fn cluster_split(problem: &LocalProblem<'_>) -> Result<Split> {
    let mut memo = PartitionMemo::new();
    let mut parts: Vec<(QuerySet, PartitionEval)> = Vec::new();
    for q in problem.subplan.queries.iter() {
        let set = QuerySet::single(q);
        let eval = problem.eval_partition(set, 1, &mut memo)?;
        parts.push((set, eval));
    }

    while parts.len() > 1 {
        let mut best: Option<(f64, usize, usize, PartitionEval)> = None;
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                let merged = parts[i].0.union(parts[j].0);
                let start = parts[i].1.pace.max(parts[j].1.pace);
                let eval = problem.eval_partition(merged, start, &mut memo)?;
                let b = parts[i].1.wpt + parts[j].1.wpt - eval.wpt;
                debug_assert!(!b.is_nan(), "NaN sharing benefit for {merged}");
                if merge_better(b, best.as_ref().map(|(bb, ..)| *bb)) {
                    best = Some((b, i, j, eval));
                }
            }
        }
        match best {
            Some((b, i, j, eval)) if b > 0.0 => {
                let merged = parts[i].0.union(parts[j].0);
                // Remove j first (j > i) to keep indices valid.
                parts.remove(j);
                parts.remove(i);
                parts.push((merged, eval));
            }
            _ => break,
        }
    }

    parts.sort_by_key(|(s, _)| s.min_query().map(|q| q.0).unwrap_or(u16::MAX));
    let local_total = parts.iter().map(|(_, e)| e.wpt).sum();
    Ok(Split { partitions: parts.into_iter().map(|(s, e)| (s, e.pace)).collect(), local_total })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::local::tests::{inputs_for, shared_agg_subplan};
    use ishare_common::{CostWeights, QueryId};
    use ishare_cost::simulate::simulate_subplan;
    use std::collections::BTreeMap;

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    #[test]
    fn nan_benefit_cannot_win_a_merge() {
        // Regression for the NaN-unsafe `b > *bb` comparison: a NaN sharing
        // benefit must lose to everything (including a worse finite benefit)
        // and a finite benefit must displace a NaN incumbent.
        assert!(!merge_better(f64::NAN, None));
        assert!(!merge_better(f64::NAN, Some(-5.0)));
        assert!(merge_better(-5.0, Some(f64::NAN)));
        assert!(merge_better(1.0, None));
        assert!(merge_better(2.0, Some(1.0)));
        assert!(!merge_better(1.0, Some(2.0)));
        assert!(merge_better(f64::INFINITY, Some(1.0)));
    }

    #[test]
    fn loose_constraints_keep_sharing() {
        // With loose constraints every partition runs at pace 1; sharing is
        // free work reduction, so everything merges.
        let sp = shared_agg_subplan();
        let inputs = inputs_for(&sp, 10_000.0);
        let batch = simulate_subplan(&sp, 1, &inputs, &CostWeights::default()).unwrap();
        let cons: BTreeMap<QueryId, f64> =
            sp.queries.iter().map(|q| (q, batch.private_final * 2.0)).collect();
        let prob = LocalProblem {
            subplan: &sp,
            inputs: &inputs,
            local_constraints: &cons,
            weights: CostWeights::default(),
            max_pace: 100,
        };
        let split = cluster_split(&prob).unwrap();
        assert!(split.is_trivial(), "got {:?}", split.partitions);
        assert_eq!(split.partitions[0].0, qs(&[0, 1, 2]));
        assert_eq!(split.partitions[0].1, 1);
    }

    #[test]
    fn unfiltered_tight_query_rides_along_shared() {
        // q0 (unfiltered) is tight: it must process all data eagerly anyway,
        // so adding the selective q1/q2 to its subplan is nearly free, while
        // separating them would re-scan everything. The clustering must KEEP
        // sharing here — un-sharing is not always the answer.
        let sp = shared_agg_subplan();
        let inputs = inputs_for(&sp, 10_000.0);
        let batch = simulate_subplan(&sp, 1, &inputs, &CostWeights::default()).unwrap();
        let mut cons: BTreeMap<QueryId, f64> = BTreeMap::new();
        cons.insert(QueryId(0), batch.private_final * 0.05);
        cons.insert(QueryId(1), batch.private_final * 2.0);
        cons.insert(QueryId(2), batch.private_final * 2.0);
        let prob = LocalProblem {
            subplan: &sp,
            inputs: &inputs,
            local_constraints: &cons,
            weights: CostWeights::default(),
            max_pace: 100,
        };
        let split = cluster_split(&prob).unwrap();
        assert!(split.is_trivial(), "expected sharing kept, got {:?}", split.partitions);
    }

    #[test]
    fn tight_query_splits_off_under_churny_input() {
        // The paper's Fig. 14 / Q15 mechanism: the shared subplan maintains
        // a MAX over an input stream that already churns (it is fed by an
        // upstream aggregate). Eager execution pays retract-processing and
        // extremum rescans over the UNION of the queries' data; a tightly
        // constrained selective query forces that eagerness on everyone.
        // Splitting lets the tight query run eagerly over its small slice
        // while the others stay lazy.
        use ishare_common::{SubplanId, TableId};
        use ishare_expr::Expr;
        use ishare_plan::{AggExpr, AggFunc, InputSource, OpTree, SelectBranch, Subplan, TreeOp};
        let q = |ids: &[u16]| QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)));
        let tree = OpTree::node(
            TreeOp::Aggregate {
                group_by: vec![],
                aggs: vec![AggExpr::new(AggFunc::Max, Expr::col(1), "m")],
            },
            vec![OpTree::node(
                TreeOp::Select {
                    branches: vec![
                        SelectBranch { queries: q(&[0]), predicate: Expr::true_lit() },
                        SelectBranch {
                            queries: q(&[1]),
                            // Very selective: ~2% of the domain.
                            predicate: Expr::col(0).lt(Expr::lit(1i64)),
                        },
                    ],
                },
                vec![OpTree::input(InputSource::Base(TableId(0)))],
            )],
        );
        let sp = Subplan {
            id: SubplanId(0),
            root: tree,
            queries: q(&[0, 1]),
            output_queries: QuerySet::EMPTY,
        };
        let mut inputs = inputs_for(&sp, 20_000.0);
        for est in inputs.values_mut() {
            est.delete_frac = 0.35; // fed by an upstream aggregate
        }
        let batch = simulate_subplan(&sp, 1, &inputs, &CostWeights::default()).unwrap();
        let mut cons: BTreeMap<QueryId, f64> = BTreeMap::new();
        cons.insert(QueryId(1), batch.private_final * 0.02); // tight, selective
        cons.insert(QueryId(0), batch.private_final * 2.0); // loose, broad
        let prob = LocalProblem {
            subplan: &sp,
            inputs: &inputs,
            local_constraints: &cons,
            weights: CostWeights::default(),
            max_pace: 100,
        };
        let split = cluster_split(&prob).unwrap();
        assert!(!split.is_trivial(), "expected un-sharing, got {:?}", split.partitions);
        let q1_pace = split.partitions.iter().find(|(s, _)| s.contains(QueryId(1))).unwrap().1;
        let q0_pace = split.partitions.iter().find(|(s, _)| s.contains(QueryId(0))).unwrap().1;
        assert!(q1_pace > q0_pace, "tight query eager ({q1_pace}), loose lazy ({q0_pace})");
        // And the split beats the fully shared evaluation locally.
        let mut memo = PartitionMemo::new();
        let full = prob.eval_partition(sp.queries, 1, &mut memo).unwrap();
        assert!(split.local_total < full.wpt);
    }

    #[test]
    fn split_partitions_are_a_partition() {
        let sp = shared_agg_subplan();
        let inputs = inputs_for(&sp, 5_000.0);
        let batch = simulate_subplan(&sp, 1, &inputs, &CostWeights::default()).unwrap();
        let mut cons: BTreeMap<QueryId, f64> = BTreeMap::new();
        cons.insert(QueryId(0), batch.private_final * 0.1);
        cons.insert(QueryId(1), batch.private_final * 0.5);
        cons.insert(QueryId(2), batch.private_final * 1.5);
        let prob = LocalProblem {
            subplan: &sp,
            inputs: &inputs,
            local_constraints: &cons,
            weights: CostWeights::default(),
            max_pace: 100,
        };
        let split = cluster_split(&prob).unwrap();
        let mut seen = QuerySet::EMPTY;
        for (s, pace) in &split.partitions {
            assert!(!s.intersects(seen), "partitions must be disjoint");
            assert!(*pace >= 1);
            seen = seen.union(*s);
        }
        assert_eq!(seen, sp.queries, "partitions must cover all queries");
    }
}
