//! The local optimization problem of Sec. 4.1.
//!
//! Decomposing a shared subplan is judged *locally*: find a split `O` of the
//! subplan's queries and a local pace configuration `R` minimizing the local
//! total work `W_T(O,R) = Σ_i W_PT(O_i, R_i)` subject to each partition's
//! local final work meeting the lowest local final work constraint among its
//! queries (`W_F(O_i, R_i) ≤ min_{j∈O_i} S_j`).
//!
//! The *selected pace* `R*_i` of a partition is the smallest pace meeting
//! its constraint — the laziest admissible execution — and is monotone under
//! merging (the paper's pruning observation): merging two partitions never
//! yields a smaller selected pace, so searches start from the merged
//! partitions' larger selected pace.

use ishare_common::{CostWeights, Error, QueryId, QuerySet, Result};
use ishare_cost::simulate::simulate_subplan;
use ishare_cost::LeafInputs;
use std::collections::BTreeMap;

/// Partition-evaluation memo shared across the clustering and brute-force
/// searches. A `BTreeMap` (QuerySet derives `Ord`) so any iteration over
/// cached evaluations is deterministic.
pub type PartitionMemo = BTreeMap<QuerySet, PartitionEval>;

/// One partition's evaluation at its selected pace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionEval {
    /// Selected pace R*: smallest pace meeting the partition's constraint
    /// (capped at `max_pace` when infeasible).
    pub pace: u32,
    /// Partial local total work W_PT at the selected pace.
    pub wpt: f64,
    /// Local final work W_F at the selected pace.
    pub wf: f64,
    /// Whether the constraint was actually met within `max_pace`.
    pub feasible: bool,
}

/// The local problem for one shared subplan.
pub struct LocalProblem<'a> {
    /// The subplan being split.
    pub subplan: &'a ishare_plan::Subplan,
    /// Full-trigger input estimates per leaf (from simulating the chosen
    /// nonuniform pace configuration of the full plan — Fig. 7).
    pub inputs: &'a LeafInputs,
    /// Local final work constraints S_j per query.
    pub local_constraints: &'a BTreeMap<QueryId, f64>,
    /// Cost weights.
    pub weights: CostWeights,
    /// Pace cap.
    pub max_pace: u32,
}

impl LocalProblem<'_> {
    /// Evaluate a partition: restrict the subplan to `queries`, then find
    /// the selected pace starting the search at `start_pace` (monotonicity
    /// of R* under merging makes starting above 1 sound).
    ///
    /// `memo` caches evaluations per query set across the clustering and
    /// brute-force searches.
    pub fn eval_partition(
        &self,
        queries: QuerySet,
        start_pace: u32,
        memo: &mut PartitionMemo,
    ) -> Result<PartitionEval> {
        if let Some(hit) = memo.get(&queries) {
            return Ok(*hit);
        }
        let restricted = self.subplan.restrict(queries)?;
        // NaN-safe minimum: a NaN constraint is rejected outright instead of
        // silently winning or losing the fold (`f64::min` drops NaN, turning
        // a poisoned constraint into "unconstrained").
        let mut limit = f64::INFINITY;
        for q in queries.iter() {
            let l = self
                .local_constraints
                .get(&q)
                .copied()
                .ok_or_else(|| Error::NotFound(format!("local constraint for {q}")))?;
            if l.is_nan() {
                return Err(Error::InvalidConfig(format!("NaN local constraint for {q}")));
            }
            if l.total_cmp(&limit).is_lt() {
                limit = l;
            }
        }

        // W_F is (approximately) monotone decreasing in the pace, so the
        // selected pace is found by galloping up from `start_pace` and
        // binary-refining, instead of the O(max_pace) linear scan — each
        // probe costs O(pace) simulation steps, so this matters.
        let probe = |pace: u32| -> Result<(f64, f64)> {
            let sim = simulate_subplan(&restricted, pace, self.inputs, &self.weights)?;
            debug_assert!(
                sim.private_total.is_finite() && sim.private_final.is_finite(),
                "non-finite simulated cost at pace {pace}"
            );
            Ok((sim.private_total, sim.private_final))
        };
        let start = start_pace.max(1);
        let (mut lo_wpt, mut lo_wf) = probe(start)?;
        let eval = if lo_wf <= limit + 1e-9 {
            PartitionEval { pace: start, wpt: lo_wpt, wf: lo_wf, feasible: true }
        } else {
            // Gallop to an upper bound that satisfies the limit.
            let mut lo = start;
            let mut hi = start;
            let mut hi_eval = None;
            while hi < self.max_pace {
                hi = (hi.saturating_mul(2)).min(self.max_pace);
                let (wpt, wf) = probe(hi)?;
                if wf <= limit + 1e-9 {
                    hi_eval = Some((wpt, wf));
                    break;
                }
                lo = hi;
                lo_wpt = wpt;
                lo_wf = wf;
            }
            match hi_eval {
                None => {
                    // Even max pace misses the limit.
                    let _ = (lo_wpt, lo_wf);
                    let (wpt, wf) = if hi == lo { (lo_wpt, lo_wf) } else { probe(hi)? };
                    PartitionEval { pace: hi, wpt, wf, feasible: false }
                }
                Some((mut hi_wpt, mut hi_wf)) => {
                    // Binary refine: smallest pace in (lo, hi] meeting the
                    // limit.
                    let mut best = (hi, hi_wpt, hi_wf);
                    while hi - lo > 1 {
                        let mid = lo + (hi - lo) / 2;
                        let (wpt, wf) = probe(mid)?;
                        if wf <= limit + 1e-9 {
                            hi = mid;
                            hi_wpt = wpt;
                            hi_wf = wf;
                            best = (mid, wpt, wf);
                        } else {
                            lo = mid;
                        }
                    }
                    let _ = (hi_wpt, hi_wf);
                    PartitionEval { pace: best.0, wpt: best.1, wf: best.2, feasible: true }
                }
            }
        };
        // The paper equates the laziest feasible pace with the cheapest
        // ("the laziest possible execution that reduces the most local total
        // work"), which holds when W_PT grows with the pace. Churn-fed
        // subplans violate that: eager execution lets retractions cancel in
        // operator state and can be CHEAPER than lazy. Probe a geometric
        // ladder above the laziest feasible pace and keep the cheapest
        // feasible evaluation, preserving the paper's intent.
        let eval = if eval.feasible {
            let mut best = eval;
            let mut cand = best.pace;
            loop {
                cand = ((cand as f64 * 1.6) as u32).max(cand + 1);
                if cand > self.max_pace {
                    break;
                }
                let sim = simulate_subplan(&restricted, cand, self.inputs, &self.weights)?;
                if sim.private_final <= limit + 1e-9 && sim.private_total < best.wpt {
                    best = PartitionEval {
                        pace: cand,
                        wpt: sim.private_total,
                        wf: sim.private_final,
                        feasible: true,
                    };
                }
            }
            best
        } else {
            eval
        };
        memo.insert(queries, eval);
        Ok(eval)
    }
}

/// Sec. 4.1.1: local final work constraints. Each query's absolute
/// constraint `L(q)` is scaled by the share of the query's separate batch
/// work that this subplan's operators account for:
///
/// > "Assume that the two operators occupy 20% of the work of executing q
/// > separately in one batch. Then, the local final work constraint for the
/// > two operators is also 20% of the constraint on q."
pub fn local_constraints_for_subplan(
    subplan: &ishare_plan::Subplan,
    inputs: &LeafInputs,
    global_constraints: &BTreeMap<QueryId, f64>,
    batch_finals: &BTreeMap<QueryId, f64>,
    weights: CostWeights,
) -> Result<BTreeMap<QueryId, f64>> {
    let mut out = BTreeMap::new();
    for q in subplan.queries.iter() {
        let restricted = subplan.restrict(QuerySet::single(q))?;
        let sim = simulate_subplan(&restricted, 1, inputs, &weights)?;
        let total_batch = batch_finals.get(&q).copied().unwrap_or(0.0);
        let fraction =
            if total_batch > 0.0 { (sim.private_total / total_batch).clamp(0.0, 1.0) } else { 1.0 };
        let l = global_constraints.get(&q).copied().unwrap_or(f64::INFINITY);
        if l.is_nan() {
            return Err(Error::InvalidConfig(format!("NaN final-work constraint for {q}")));
        }
        out.insert(q, l * fraction);
    }
    Ok(out)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use ishare_common::{SubplanId, TableId};
    use ishare_cost::StreamEstimate;
    use ishare_expr::Expr;
    use ishare_plan::{AggExpr, AggFunc, InputSource, OpTree, SelectBranch, Subplan, TreeOp};
    use ishare_storage::ColumnStats;

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    /// A shared aggregate subplan over three queries with per-query selects.
    pub(crate) fn shared_agg_subplan() -> Subplan {
        let tree = OpTree::node(
            TreeOp::Aggregate {
                group_by: vec![(Expr::col(0), "k".into())],
                aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")],
            },
            vec![OpTree::node(
                TreeOp::Select {
                    branches: vec![
                        SelectBranch { queries: qs(&[0]), predicate: Expr::true_lit() },
                        SelectBranch {
                            queries: qs(&[1]),
                            predicate: Expr::col(1).gt(Expr::lit(50i64)),
                        },
                        SelectBranch {
                            queries: qs(&[2]),
                            predicate: Expr::col(1).lt(Expr::lit(10i64)),
                        },
                    ],
                },
                vec![OpTree::input(InputSource::Base(TableId(0)))],
            )],
        );
        Subplan {
            id: SubplanId(0),
            root: tree,
            queries: qs(&[0, 1, 2]),
            output_queries: QuerySet::EMPTY,
        }
    }

    pub(crate) fn inputs_for(sp: &Subplan, total: f64) -> LeafInputs {
        let mut m = LeafInputs::new();
        fn collect(t: &OpTree, p: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if matches!(t.op, TreeOp::Input(_)) {
                out.push(p.clone());
            }
            for (i, c) in t.inputs.iter().enumerate() {
                p.push(i);
                collect(c, p, out);
                p.pop();
            }
        }
        let mut paths = Vec::new();
        collect(&sp.root, &mut Vec::new(), &mut paths);
        for p in paths {
            m.insert(
                p,
                StreamEstimate::insert_only(
                    total,
                    sp.queries,
                    vec![
                        ColumnStats::with_range(
                            50.0,
                            ishare_common::Value::Int(0),
                            ishare_common::Value::Int(49),
                        ),
                        ColumnStats::with_range(
                            100.0,
                            ishare_common::Value::Int(0),
                            ishare_common::Value::Int(99),
                        ),
                    ],
                ),
            );
        }
        m
    }

    #[test]
    fn selected_pace_meets_constraint() {
        let sp = shared_agg_subplan();
        let inputs = inputs_for(&sp, 10_000.0);
        // Find the batch final work first, then demand a quarter of it.
        let batch = simulate_subplan(&sp, 1, &inputs, &CostWeights::default()).unwrap();
        let limit = batch.private_final * 0.25;
        let cons: BTreeMap<QueryId, f64> = sp.queries.iter().map(|q| (q, limit)).collect();
        let prob = LocalProblem {
            subplan: &sp,
            inputs: &inputs,
            local_constraints: &cons,
            weights: CostWeights::default(),
            max_pace: 100,
        };
        let mut memo = PartitionMemo::new();
        let eval = prob.eval_partition(sp.queries, 1, &mut memo).unwrap();
        assert!(eval.feasible);
        assert!(eval.pace >= 4, "roughly 1/pace final work");
        assert!(eval.wf <= limit + 1e-9);
        // Memo hit returns identical result.
        let again = prob.eval_partition(sp.queries, 1, &mut memo).unwrap();
        assert_eq!(eval, again);
    }

    #[test]
    fn singleton_partitions_can_be_lazier() {
        let sp = shared_agg_subplan();
        let inputs = inputs_for(&sp, 10_000.0);
        let batch = simulate_subplan(&sp, 1, &inputs, &CostWeights::default()).unwrap();
        // q1 is highly selective (v > 50 keeps little data): its restricted
        // subplan meets the same absolute limit at a lazier pace.
        let limit = batch.private_final * 0.25;
        let cons: BTreeMap<QueryId, f64> = sp.queries.iter().map(|q| (q, limit)).collect();
        let prob = LocalProblem {
            subplan: &sp,
            inputs: &inputs,
            local_constraints: &cons,
            weights: CostWeights::default(),
            max_pace: 100,
        };
        let mut memo = PartitionMemo::new();
        let full = prob.eval_partition(sp.queries, 1, &mut memo).unwrap();
        let q1_only = prob.eval_partition(qs(&[1]), 1, &mut memo).unwrap();
        assert!(q1_only.pace <= full.pace);
        assert!(q1_only.wpt < full.wpt);
    }

    #[test]
    fn infeasible_partitions_cap_at_max_pace() {
        let sp = shared_agg_subplan();
        let inputs = inputs_for(&sp, 10_000.0);
        let cons: BTreeMap<QueryId, f64> = sp.queries.iter().map(|q| (q, 0.0001)).collect();
        let prob = LocalProblem {
            subplan: &sp,
            inputs: &inputs,
            local_constraints: &cons,
            weights: CostWeights::default(),
            max_pace: 6,
        };
        let mut memo = PartitionMemo::new();
        let eval = prob.eval_partition(sp.queries, 1, &mut memo).unwrap();
        assert!(!eval.feasible);
        assert_eq!(eval.pace, 6);
    }

    #[test]
    fn missing_local_constraint_is_error() {
        let sp = shared_agg_subplan();
        let inputs = inputs_for(&sp, 100.0);
        let cons: BTreeMap<QueryId, f64> = BTreeMap::new();
        let prob = LocalProblem {
            subplan: &sp,
            inputs: &inputs,
            local_constraints: &cons,
            weights: CostWeights::default(),
            max_pace: 10,
        };
        let mut memo = PartitionMemo::new();
        assert!(prob.eval_partition(qs(&[0]), 1, &mut memo).is_err());
    }

    #[test]
    fn local_constraints_scale_by_fraction() {
        let sp = shared_agg_subplan();
        let inputs = inputs_for(&sp, 1000.0);
        let global: BTreeMap<QueryId, f64> = sp.queries.iter().map(|q| (q, 100.0)).collect();
        // Pretend each query's separate batch work is 4× this subplan's.
        let mut batch = BTreeMap::new();
        for q in sp.queries.iter() {
            let restricted = sp.restrict(QuerySet::single(q)).unwrap();
            let sim = simulate_subplan(&restricted, 1, &inputs, &CostWeights::default()).unwrap();
            batch.insert(q, sim.private_total * 4.0);
        }
        let local =
            local_constraints_for_subplan(&sp, &inputs, &global, &batch, CostWeights::default())
                .unwrap();
        for q in sp.queries.iter() {
            assert!((local[&q] - 25.0).abs() < 1e-6, "25% of L(q)=100");
        }
    }

    #[test]
    fn nan_constraint_is_rejected_not_silently_dropped() {
        // Regression: the old `fold(INFINITY, f64::min)` dropped NaN (Rust's
        // `f64::min` returns the non-NaN operand), silently treating a
        // poisoned constraint as "unconstrained" and mis-ranking candidates.
        let sp = shared_agg_subplan();
        let inputs = inputs_for(&sp, 1_000.0);
        let mut cons: BTreeMap<QueryId, f64> = sp.queries.iter().map(|q| (q, 1_000.0)).collect();
        cons.insert(QueryId(1), f64::NAN);
        let prob = LocalProblem {
            subplan: &sp,
            inputs: &inputs,
            local_constraints: &cons,
            weights: CostWeights::default(),
            max_pace: 10,
        };
        let mut memo = PartitionMemo::new();
        assert!(prob.eval_partition(sp.queries, 1, &mut memo).is_err());
        // Global NaN constraints are rejected when localizing, too.
        let mut global: BTreeMap<QueryId, f64> = sp.queries.iter().map(|q| (q, 100.0)).collect();
        global.insert(QueryId(0), f64::NAN);
        let batch: BTreeMap<QueryId, f64> = sp.queries.iter().map(|q| (q, 400.0)).collect();
        assert!(local_constraints_for_subplan(
            &sp,
            &inputs,
            &global,
            &batch,
            CostWeights::default()
        )
        .is_err());
    }
}
