//! Partial decomposition (Sec. 4.3).
//!
//! Instead of un-sharing a whole subplan, iShare can split only a subtree
//! that contains the subplan's root, leaving the operators below it shared:
//! "we first break the subplan into three subplans: the join operator
//! itself, and the left/right child subtree of the join operator.
//! Afterwards, we split the join operator using the clustering algorithm."
//!
//! Candidates are generated breadth-first from the root, each adding the
//! not-yet-included operator closest to the root, so there are at most as
//! many candidates as operators in the subplan.

use ishare_common::{QuerySet, Result, SubplanId};
use ishare_plan::{InputSource, OpTree, SharedPlan, Subplan, TreeOp};
use std::collections::HashSet;

/// A candidate cut: the set of tree paths kept in the top (root) subplan.
pub type IncludedSet = HashSet<Vec<usize>>;

/// Generate the BFS candidate sequence of root-anchored subtrees. Each
/// candidate includes one more operator than the previous, in
/// breadth-first (closest-to-root) order. Candidates that would cut nothing
/// (every excluded child is already a leaf) and the full tree are skipped —
/// the former is equivalent to whole-subplan decomposition, which the
/// caller tries separately.
pub fn subtree_candidates(subplan: &Subplan) -> Vec<IncludedSet> {
    // All internal (non-leaf) node paths in BFS order.
    let mut internal: Vec<Vec<usize>> = Vec::new();
    let mut queue: Vec<(Vec<usize>, &OpTree)> = vec![(Vec::new(), &subplan.root)];
    let mut qi = 0;
    while qi < queue.len() {
        let (path, node) = queue[qi].clone();
        qi += 1;
        if !matches!(node.op, TreeOp::Input(_)) {
            internal.push(path.clone());
        }
        for (i, c) in node.inputs.iter().enumerate() {
            let mut p = path.clone();
            p.push(i);
            queue.push((p, c));
        }
    }
    // Sort by depth then path (BFS order is already by depth).
    let total_internal = internal.len();
    let mut out = Vec::new();
    let mut included: IncludedSet = HashSet::new();
    for (n, path) in internal.into_iter().enumerate() {
        included.insert(path);
        // Skip the full tree (== whole-subplan decomposition).
        if n + 1 == total_internal {
            break;
        }
        // Skip candidates that cut only leaves.
        if cut_points(subplan, &included).is_empty() {
            continue;
        }
        out.push(included.clone());
    }
    out
}

/// The non-leaf subtrees directly below the cut (paths of excluded internal
/// nodes whose parent is included).
fn cut_points(subplan: &Subplan, included: &IncludedSet) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    fn go(t: &OpTree, path: &mut Vec<usize>, included: &IncludedSet, out: &mut Vec<Vec<usize>>) {
        for (i, c) in t.inputs.iter().enumerate() {
            path.push(i);
            if included.contains(path.as_slice()) {
                go(c, path, included, out);
            } else if !matches!(c.op, TreeOp::Input(_)) {
                out.push(path.clone());
            }
            path.pop();
        }
    }
    if included.contains(&Vec::new()) {
        go(&subplan.root, &mut Vec::new(), included, &mut out);
    }
    out
}

/// Split `subplan` at `included`: returns the top subplan (keeping the
/// original id) and one bottom subplan per cut subtree, with ids starting
/// at `next_id`. Bottoms serve the same queries and produce no query
/// output.
pub fn split_at(
    subplan: &Subplan,
    included: &IncludedSet,
    next_id: u32,
) -> Result<(Subplan, Vec<Subplan>)> {
    let mut bottoms = Vec::new();
    let top_root =
        rebuild(&subplan.root, &mut Vec::new(), included, subplan.queries, next_id, &mut bottoms)?;
    let top = Subplan {
        id: subplan.id,
        root: top_root,
        queries: subplan.queries,
        output_queries: subplan.output_queries,
    };
    Ok((top, bottoms))
}

fn rebuild(
    t: &OpTree,
    path: &mut Vec<usize>,
    included: &IncludedSet,
    queries: QuerySet,
    next_id: u32,
    bottoms: &mut Vec<Subplan>,
) -> Result<OpTree> {
    let mut inputs = Vec::with_capacity(t.inputs.len());
    for (i, c) in t.inputs.iter().enumerate() {
        path.push(i);
        let keep = included.contains(path.as_slice()) || matches!(c.op, TreeOp::Input(_));
        let rebuilt = if keep && !matches!(c.op, TreeOp::Input(_)) {
            rebuild(c, path, included, queries, next_id, bottoms)?
        } else if keep {
            c.clone()
        } else {
            let id = SubplanId(next_id + bottoms.len() as u32);
            bottoms.push(Subplan { id, root: c.clone(), queries, output_queries: QuerySet::EMPTY });
            OpTree::input(InputSource::Subplan(id))
        };
        inputs.push(rebuilt);
        path.pop();
    }
    Ok(OpTree { op: t.op.clone(), inputs })
}

/// Build the intermediate plan where `target` is replaced by its top part
/// and the bottom subplans are appended; the target id keeps addressing the
/// top, so existing references stay valid.
pub fn apply_split_to_plan(
    plan: &SharedPlan,
    target: SubplanId,
    included: &IncludedSet,
) -> Result<SharedPlan> {
    let sp = plan.subplan(target)?;
    let (top, bottoms) = split_at(sp, included, plan.len() as u32)?;
    let mut subplans = plan.subplans.clone();
    subplans[target.index()] = top;
    subplans.extend(bottoms);
    Ok(SharedPlan { subplans })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ishare_common::{QueryId, TableId};
    use ishare_expr::Expr;
    use ishare_plan::{AggExpr, AggFunc, SelectBranch};

    fn qs(ids: &[u16]) -> QuerySet {
        QuerySet::from_iter(ids.iter().map(|&i| QueryId(i)))
    }

    /// agg( join( select(scan t), agg2(scan u) ) ) — two internal levels.
    fn deep_subplan() -> Subplan {
        let left = OpTree::node(
            TreeOp::Select {
                branches: vec![SelectBranch { queries: qs(&[0, 1]), predicate: Expr::true_lit() }],
            },
            vec![OpTree::input(InputSource::Base(TableId(0)))],
        );
        let right = OpTree::node(
            TreeOp::Aggregate {
                group_by: vec![(Expr::col(0), "k".into())],
                aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")],
            },
            vec![OpTree::input(InputSource::Base(TableId(1)))],
        );
        let join = OpTree::node(
            TreeOp::Join { keys: vec![(Expr::col(0), Expr::col(0))] },
            vec![left, right],
        );
        let root = OpTree::node(
            TreeOp::Aggregate {
                group_by: vec![(Expr::col(0), "k".into())],
                aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(3), "t")],
            },
            vec![join],
        );
        Subplan { id: SubplanId(0), root, queries: qs(&[0, 1]), output_queries: qs(&[0, 1]) }
    }

    #[test]
    fn candidate_count_bounded_by_operators() {
        let sp = deep_subplan();
        let cands = subtree_candidates(&sp);
        // Internal ops: root agg, join, select, agg2 → at most 3 proper
        // candidates (full tree excluded).
        assert!(!cands.is_empty());
        assert!(cands.len() <= sp.root.operator_count());
        // Candidates grow monotonically.
        for w in cands.windows(2) {
            assert!(w[0].len() < w[1].len());
            assert!(w[0].iter().all(|p| w[1].contains(p)));
        }
        // First candidate = root only.
        assert!(cands[0].contains(&Vec::new()));
    }

    #[test]
    fn split_at_root_creates_bottom_for_join() {
        let sp = deep_subplan();
        let mut included = IncludedSet::new();
        included.insert(Vec::new()); // root aggregate only
        let (top, bottoms) = split_at(&sp, &included, 10).unwrap();
        assert_eq!(bottoms.len(), 1, "the join subtree becomes one bottom");
        assert_eq!(bottoms[0].id, SubplanId(10));
        assert_eq!(bottoms[0].root.op.label(), "join");
        assert_eq!(top.root.op.label(), "aggregate");
        assert_eq!(top.root.inputs[0].op.label(), "input");
        assert_eq!(top.children(), vec![SubplanId(10)]);
        assert_eq!(bottoms[0].queries, sp.queries);
        assert!(bottoms[0].output_queries.is_empty());
    }

    #[test]
    fn split_deeper_keeps_join_cuts_children() {
        let sp = deep_subplan();
        let mut included = IncludedSet::new();
        included.insert(Vec::new());
        included.insert(vec![0]); // include the join
        let (top, bottoms) = split_at(&sp, &included, 5).unwrap();
        // Left child of join is select (internal → bottom), right is agg2
        // (internal → bottom).
        assert_eq!(bottoms.len(), 2);
        assert_eq!(top.root.inputs[0].op.label(), "join");
        let kids = top.children();
        assert_eq!(kids.len(), 2);
    }

    #[test]
    fn leaf_children_stay_inline() {
        let sp = deep_subplan();
        let mut included = IncludedSet::new();
        included.insert(Vec::new());
        included.insert(vec![0]);
        included.insert(vec![0, 0]); // select included; its child is a leaf
        let (top, bottoms) = split_at(&sp, &included, 5).unwrap();
        assert_eq!(bottoms.len(), 1, "only agg2 is cut");
        // The select's base input stays a leaf of the top.
        assert!(top.root.referenced_tables().contains(&TableId(0)));
    }
}
